//! CoDel-style adaptive admission control on queue sojourn time.
//!
//! Classic tail-drop sheds only when the buffer is *full*, which is too
//! late: a standing queue one item short of capacity adds worst-case
//! latency to every admitted request while never triggering
//! backpressure. CoDel instead watches how long items *waited* — the
//! sojourn time observed at dequeue — and starts shedding from the head
//! once sojourn has exceeded a target for a full interval, because a
//! persistent standing queue means arrival rate exceeds service rate and
//! queueing is no longer absorbing a transient burst. Drops are spaced
//! `interval / √count` apart, the control law from the CoDel paper: the
//! longer the overload persists, the faster the controller sheds, and
//! the moment sojourn dips under target the state fully resets.
//!
//! Everything is integer math on the virtual clock ([`crate::isqrt`]),
//! so a simulated fleet replays the exact drop sequence at any thread
//! count.

use crate::isqrt;

/// CoDel control-law parameters (virtual µs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodelConfig {
    /// Acceptable standing sojourn time. Queues that keep dequeue waits
    /// under this never shed.
    pub target_us: u64,
    /// How long sojourn must stay above target before the first drop,
    /// and the base spacing of the `interval / √count` drop law.
    pub interval_us: u64,
}

impl Default for CodelConfig {
    fn default() -> Self {
        Self {
            target_us: 20_000,
            interval_us: 100_000,
        }
    }
}

/// Verdict for one dequeued item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodelDecision {
    /// Serve it.
    Admit,
    /// Shed it (head drop) and try the next queued item.
    Drop,
}

impl CodelDecision {
    /// `true` for [`CodelDecision::Drop`].
    pub fn is_drop(self) -> bool {
        self == CodelDecision::Drop
    }
}

/// The controller: feed it `(now, sojourn)` at every queue pickup.
#[derive(Debug, Clone, PartialEq)]
pub struct CodelController {
    cfg: CodelConfig,
    /// When the current above-target excursion would earn its first
    /// drop; `None` while sojourn is below target.
    first_above_us: Option<u64>,
    /// In the dropping state (sojourn stayed above target a full
    /// interval and has not come back down).
    dropping: bool,
    /// Next scheduled drop while dropping.
    drop_next_us: u64,
    /// Drops in the current dropping episode (drives the √count law).
    drop_count: u64,
    /// Total drops over the controller's lifetime.
    drops: u64,
}

impl CodelController {
    /// Fresh controller.
    pub fn new(cfg: CodelConfig) -> Self {
        Self {
            cfg,
            first_above_us: None,
            dropping: false,
            drop_next_us: 0,
            drop_count: 0,
            drops: 0,
        }
    }

    /// Parameters in force.
    pub fn config(&self) -> CodelConfig {
        self.cfg
    }

    /// Lifetime drop count.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Observe one dequeue at virtual time `now_us` whose item waited
    /// `sojourn_us`, and decide its fate.
    pub fn on_pickup(&mut self, now_us: u64, sojourn_us: u64) -> CodelDecision {
        if sojourn_us < self.cfg.target_us {
            // Queue drained below target: the overload episode is over.
            self.first_above_us = None;
            self.dropping = false;
            return CodelDecision::Admit;
        }
        let first_above = match self.first_above_us {
            Some(t) => t,
            None => {
                // First above-target observation: arm the interval timer
                // but keep admitting — this may be a transient burst.
                let t = now_us + self.cfg.interval_us;
                self.first_above_us = Some(t);
                return CodelDecision::Admit;
            }
        };
        if self.dropping {
            if now_us >= self.drop_next_us {
                self.drop_count += 1;
                self.drops += 1;
                let spacing = self.cfg.interval_us / isqrt(self.drop_count).max(1);
                self.drop_next_us = now_us + spacing.max(1);
                return CodelDecision::Drop;
            }
            return CodelDecision::Admit;
        }
        if now_us >= first_above {
            // Above target for a full interval: a standing queue, not a
            // burst. Enter the dropping state with an immediate drop.
            self.dropping = true;
            self.drop_count = 1;
            self.drops += 1;
            self.drop_next_us = now_us + self.cfg.interval_us;
            return CodelDecision::Drop;
        }
        CodelDecision::Admit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CodelConfig {
        CodelConfig {
            target_us: 100,
            interval_us: 1_000,
        }
    }

    #[test]
    fn below_target_never_drops() {
        let mut c = CodelController::new(cfg());
        for t in 0..10_000u64 {
            assert_eq!(c.on_pickup(t, 50), CodelDecision::Admit);
        }
        assert_eq!(c.drops(), 0);
    }

    #[test]
    fn transient_burst_shorter_than_interval_is_admitted() {
        let mut c = CodelController::new(cfg());
        // Above target, but the excursion ends before the interval.
        assert_eq!(c.on_pickup(0, 500), CodelDecision::Admit);
        assert_eq!(c.on_pickup(500, 500), CodelDecision::Admit);
        // Back below target before t=1000: state resets.
        assert_eq!(c.on_pickup(900, 50), CodelDecision::Admit);
        assert_eq!(c.on_pickup(1_500, 500), CodelDecision::Admit);
        assert_eq!(c.drops(), 0);
    }

    #[test]
    fn standing_queue_drops_and_drop_rate_ramps() {
        let mut c = CodelController::new(cfg());
        let mut drop_times = Vec::new();
        for t in (0..40_000u64).step_by(10) {
            if c.on_pickup(t, 500).is_drop() {
                drop_times.push(t);
            }
        }
        assert!(drop_times.len() >= 4, "sustained overload must shed");
        // First drop lands one full interval after the first above-target
        // observation; the interval/√count law then shrinks the spacing
        // as the overload persists (integer isqrt makes the very first
        // few gaps plateau, so assert the trend, not strict monotony).
        assert_eq!(drop_times[0], 1_000);
        let gaps: Vec<u64> = drop_times.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps[gaps.len() - 1] < gaps[0], "spacing must shrink: {gaps:?}");
        assert!(
            gaps.iter().rev().take(5).all(|g| *g < 100),
            "late-episode drops must be much denser than the interval: {gaps:?}"
        );
    }

    #[test]
    fn recovery_resets_the_control_law() {
        let mut c = CodelController::new(cfg());
        for t in (0..5_000u64).step_by(10) {
            c.on_pickup(t, 500);
        }
        let drops_before = c.drops();
        assert!(drops_before > 0);
        // One below-target pickup ends the episode...
        assert_eq!(c.on_pickup(5_000, 10), CodelDecision::Admit);
        // ...and the next excursion must again survive a full interval
        // before shedding.
        assert_eq!(c.on_pickup(5_010, 500), CodelDecision::Admit);
        assert_eq!(c.on_pickup(5_500, 500), CodelDecision::Admit);
        assert_eq!(c.drops(), drops_before);
    }

    #[test]
    fn replays_identically() {
        let run = || {
            let mut c = CodelController::new(cfg());
            (0..20_000u64)
                .step_by(7)
                .map(|t| c.on_pickup(t, if t % 3_000 < 2_000 { 400 } else { 20 }))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
