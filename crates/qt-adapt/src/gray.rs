//! Gray-failure detection: eject slow-but-alive replicas.
//!
//! A crashed replica is easy — it stops answering and the lifecycle
//! machinery notices. A *gray* replica is worse: it completes every
//! request, passes every health gate (its numerics are fine, its
//! breaker stays closed), and silently drags fleet p99 because it runs
//! N× slow. The detector compares each replica's windowed attempt-
//! latency p99 against the fleet *median* — a robust baseline that a
//! single straggler cannot shift — and calls a replica gray once its
//! p99 exceeds `factor ×` median for `eject_consecutive` windows in a
//! row. Ejection is delegated to the caller (the fleet forces the
//! replica's breaker open, reusing the half-open probe path as the
//! rejoin ramp); the detector keeps marking the replica until it posts
//! `rejoin_consecutive` healthy windows, so a flapping replica re-earns
//! eligibility instead of oscillating in and out of rotation.

/// Outlier-detection thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayConfig {
    /// A window is an outlier when replica p99 > `factor` × fleet
    /// median p99.
    pub factor: f64,
    /// Minimum attempt samples a replica needs in a window to be
    /// judged at all (too few samples → no verdict either way).
    pub min_samples: usize,
    /// Consecutive outlier windows before ejection.
    pub eject_consecutive: u32,
    /// Consecutive healthy windows before an ejected replica is
    /// considered recovered.
    pub rejoin_consecutive: u32,
}

impl Default for GrayConfig {
    fn default() -> Self {
        Self {
            factor: 2.0,
            min_samples: 4,
            eject_consecutive: 2,
            rejoin_consecutive: 2,
        }
    }
}

/// What the detector decided this window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GrayEvent {
    /// Replica crossed the outlier threshold for enough consecutive
    /// windows: take it out of rotation.
    Eject {
        /// Replica id.
        replica: usize,
        /// Virtual time of the verdict.
        at_us: u64,
        /// Its p99 over the fleet median at ejection time.
        ratio: f64,
    },
    /// An ejected replica posted enough healthy windows: it may re-earn
    /// traffic through the normal (half-open) path.
    Rejoin {
        /// Replica id.
        replica: usize,
        /// Virtual time of the verdict.
        at_us: u64,
    },
}

/// Per-replica streak state over the whole fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayDetector {
    cfg: GrayConfig,
    outlier_streak: Vec<u32>,
    healthy_streak: Vec<u32>,
    ejected: Vec<bool>,
    ejections: u64,
}

impl GrayDetector {
    /// Detector over `replicas` replicas.
    pub fn new(cfg: GrayConfig, replicas: usize) -> Self {
        Self {
            cfg,
            outlier_streak: vec![0; replicas],
            healthy_streak: vec![0; replicas],
            ejected: vec![false; replicas],
            ejections: 0,
        }
    }

    /// Thresholds in force.
    pub fn config(&self) -> GrayConfig {
        self.cfg
    }

    /// Is `replica` currently marked ejected?
    pub fn is_ejected(&self, replica: usize) -> bool {
        self.ejected.get(replica).copied().unwrap_or(false)
    }

    /// Lifetime ejection count.
    pub fn ejections(&self) -> u64 {
        self.ejections
    }

    /// Feed one window of per-replica p99 latencies (µs); `None` for
    /// replicas with fewer than [`GrayConfig::min_samples`] samples.
    /// Returns the verdicts reached this window, in replica order.
    pub fn observe_window(&mut self, at_us: u64, p99_us: &[Option<f64>]) -> Vec<GrayEvent> {
        let mut events = Vec::new();
        let mut seen: Vec<f64> = p99_us.iter().filter_map(|p| *p).collect();
        if seen.len() < 2 {
            // One p99 has no peer group: no verdicts either way.
            return events;
        }
        seen.sort_by(|a, b| a.total_cmp(b));
        // Lower median: with an even count this biases toward the fast
        // half, which is what makes a 2-replica fleet ejectable at all.
        let median = seen[(seen.len() - 1) / 2];
        for (r, p) in p99_us.iter().enumerate() {
            let Some(p) = *p else { continue };
            let outlier = median > 0.0 && p > self.cfg.factor * median;
            if outlier {
                self.healthy_streak[r] = 0;
                self.outlier_streak[r] = self.outlier_streak[r].saturating_add(1);
                if !self.ejected[r] && self.outlier_streak[r] >= self.cfg.eject_consecutive {
                    self.ejected[r] = true;
                    self.ejections += 1;
                    events.push(GrayEvent::Eject {
                        replica: r,
                        at_us,
                        ratio: p / median,
                    });
                }
            } else {
                self.outlier_streak[r] = 0;
                if self.ejected[r] {
                    self.healthy_streak[r] += 1;
                    if self.healthy_streak[r] >= self.cfg.rejoin_consecutive {
                        self.ejected[r] = false;
                        self.healthy_streak[r] = 0;
                        events.push(GrayEvent::Rejoin { replica: r, at_us });
                    }
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> GrayDetector {
        GrayDetector::new(GrayConfig::default(), 3)
    }

    #[test]
    fn healthy_fleet_never_ejects() {
        let mut d = detector();
        for w in 0..50u64 {
            let evs = d.observe_window(w * 100, &[Some(10.0), Some(11.0), Some(12.0)]);
            assert!(evs.is_empty());
        }
        assert_eq!(d.ejections(), 0);
    }

    #[test]
    fn straggler_is_ejected_after_consecutive_outlier_windows() {
        let mut d = detector();
        // First outlier window: streak starts, no verdict yet.
        assert!(d
            .observe_window(0, &[Some(10.0), Some(80.0), Some(12.0)])
            .is_empty());
        // Second consecutive window crosses eject_consecutive = 2.
        let evs = d.observe_window(100, &[Some(10.0), Some(80.0), Some(12.0)]);
        assert_eq!(evs.len(), 1);
        match evs[0] {
            GrayEvent::Eject { replica, at_us, ratio } => {
                assert_eq!(replica, 1);
                assert_eq!(at_us, 100);
                assert!(ratio > 2.0);
            }
            other => panic!("expected eject, got {other:?}"),
        }
        assert!(d.is_ejected(1));
        assert!(!d.is_ejected(0));
    }

    #[test]
    fn interrupted_streak_does_not_eject() {
        let mut d = detector();
        assert!(d
            .observe_window(0, &[Some(10.0), Some(80.0), Some(12.0)])
            .is_empty());
        // A healthy window resets the streak...
        assert!(d
            .observe_window(100, &[Some(10.0), Some(11.0), Some(12.0)])
            .is_empty());
        // ...so one more outlier window is still not enough.
        assert!(d
            .observe_window(200, &[Some(10.0), Some(80.0), Some(12.0)])
            .is_empty());
        assert!(!d.is_ejected(1));
    }

    #[test]
    fn ejected_replica_re_earns_eligibility_with_hysteresis() {
        let mut d = detector();
        let slow = [Some(10.0), Some(80.0), Some(12.0)];
        let fast = [Some(10.0), Some(11.0), Some(12.0)];
        d.observe_window(0, &slow);
        d.observe_window(100, &slow);
        assert!(d.is_ejected(1));
        // One healthy window is not enough to rejoin.
        assert!(d.observe_window(200, &fast).is_empty());
        assert!(d.is_ejected(1));
        // A relapse resets the healthy streak.
        assert!(d.observe_window(300, &slow).is_empty());
        assert!(d.observe_window(400, &fast).is_empty());
        // Second consecutive healthy window: rejoin.
        let evs = d.observe_window(500, &fast);
        assert_eq!(evs, vec![GrayEvent::Rejoin { replica: 1, at_us: 500 }]);
        assert!(!d.is_ejected(1));
        // Going gray again after rejoin needs the full eject streak —
        // and counts a second ejection.
        d.observe_window(600, &slow);
        let evs = d.observe_window(700, &slow);
        assert!(matches!(evs[0], GrayEvent::Eject { replica: 1, .. }));
        assert_eq!(d.ejections(), 2);
    }

    #[test]
    fn missing_windows_are_no_verdict() {
        let mut d = detector();
        // Probe-starved replica (None) keeps whatever streak it had.
        d.observe_window(0, &[Some(10.0), Some(80.0), Some(12.0)]);
        d.observe_window(100, &[Some(10.0), None, Some(12.0)]);
        let evs = d.observe_window(200, &[Some(10.0), Some(80.0), Some(12.0)]);
        assert_eq!(evs.len(), 1, "streak survives a sample-less window");
        // A single reporting replica has no peer group.
        let mut d2 = detector();
        assert!(d2.observe_window(0, &[None, Some(80.0), None]).is_empty());
    }

    #[test]
    fn two_replica_fleet_uses_lower_median() {
        let mut d = GrayDetector::new(GrayConfig::default(), 2);
        d.observe_window(0, &[Some(10.0), Some(80.0)]);
        let evs = d.observe_window(100, &[Some(10.0), Some(80.0)]);
        assert!(matches!(evs[0], GrayEvent::Eject { replica: 1, .. }));
    }
}
