//! Adaptive control plane for the serving fleet.
//!
//! Three coordinated defenses, all pure state machines on a **virtual**
//! microsecond clock — no wall time, no randomness, no I/O — so every
//! decision replays byte-identically inside the discrete-event fleet
//! simulation at any `QT_THREADS` pool size:
//!
//! - [`CodelController`]: CoDel-style adaptive admission control. Sheds
//!   from the *head* of the queue when sojourn time stays above target
//!   for a full interval, spacing drops by `interval / √count` so the
//!   drop rate ramps with the persistence of the standing queue.
//! - [`BrownoutLadder`]: a priority-tiered degradation ladder
//!   ([`Brownout`]) that trades precision and background work for
//!   paid-tier availability *before* shedding paid traffic, with
//!   hysteresis so the fleet climbs one rung at a time and only steps
//!   down after sustained calm.
//! - [`GrayDetector`]: per-replica latency outlier detection (windowed
//!   p99 vs. fleet median) that ejects slow-but-alive replicas into the
//!   breaker's half-open rejoin path, with consecutive-window hysteresis
//!   so flapping replicas re-earn eligibility.
//! - [`AutoscalePolicy`]: queue-pressure-driven scale up/down with a
//!   modeled cold-start delay, reusing the fleet's snapshot-recovery
//!   lifecycle as the scale-up substrate.
//!
//! The crate is zero-dependency by design: everything here is decision
//! logic; the fleet owns the signals (queue depths, attempt latencies)
//! and the actuators (shedding, forced breaker opens, replica
//! lifecycle).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autoscale;
mod brownout;
mod codel;
mod gray;

pub use autoscale::{AutoscaleConfig, AutoscalePolicy, ScaleDecision};
pub use brownout::{Brownout, BrownoutConfig, BrownoutLadder, BrownoutTransition, PriorityTier};
pub use codel::{CodelConfig, CodelController, CodelDecision};
pub use gray::{GrayConfig, GrayDetector, GrayEvent};

/// Integer square root (floor), used wherever CoDel-style control-law
/// math must be bit-exact across platforms — `f64::sqrt` would be too,
/// but an integer law keeps the determinism contract self-evident.
pub(crate) fn isqrt(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let mut x = n / 2 + 1;
    let mut y = (x + n / x) / 2;
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::isqrt;

    #[test]
    fn isqrt_matches_float_sqrt_floor() {
        for n in 0..10_000u64 {
            assert_eq!(isqrt(n), (n as f64).sqrt() as u64, "n={n}");
        }
        assert_eq!(isqrt(u64::MAX), (1u64 << 32) - 1);
    }
}
