//! Priority-tiered brownout ladder: trade precision and background work
//! for paid-tier availability before shedding paid traffic.
//!
//! Under sustained overload a fleet that sheds blindly (tail drop,
//! whoever arrives last) converts every tier's availability into a coin
//! flip. The ladder instead degrades in a fixed order of *cheapest harm
//! first*: batch work is shed, then best-effort traffic is served on the
//! economy (degraded-precision) path, then even paid traffic drops to
//! the BF16 fallback, and only at the top rung is interactive
//! best-effort traffic rejected outright — paid requests are still
//! *served* at every rung, just cheaper. This is the serving-side
//! mirror of the paper's precision story: the 8-bit primary path is the
//! thing being traded away, rung by rung, for availability.
//!
//! The ladder moves one rung at a time on a periodic evaluation tick,
//! climbing immediately when queue pressure crosses the up threshold
//! but stepping down only after `down_consecutive` calm ticks —
//! hysteresis so a sawtooth load doesn't flap the fleet between service
//! levels.

/// Request priority tiers, derived deterministically from the user id
/// so the load generator and every consumer agree without threading a
/// field through the request structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PriorityTier {
    /// Interactive, paying traffic: protected the longest.
    Paid,
    /// Interactive free-tier traffic.
    BestEffort,
    /// Offline/background work: first against the wall.
    Batch,
}

impl PriorityTier {
    /// Tier of `user`: 50% paid, 25% best-effort, 25% batch.
    pub fn of_user(user: u64) -> Self {
        match user % 4 {
            0 | 1 => PriorityTier::Paid,
            2 => PriorityTier::BestEffort,
            _ => PriorityTier::Batch,
        }
    }

    /// Stable lowercase label.
    pub fn name(self) -> &'static str {
        match self {
            PriorityTier::Paid => "paid",
            PriorityTier::BestEffort => "best_effort",
            PriorityTier::Batch => "batch",
        }
    }
}

/// The brownout rungs, in climbing order. Each rung includes every
/// degradation below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Brownout {
    /// Full service for every tier.
    Normal,
    /// Batch traffic is shed.
    ShedBatch,
    /// \+ best-effort traffic is served on the economy path (single
    /// degraded-precision attempt, no retries/failover/hedging).
    DegradeE4M3,
    /// \+ paid traffic is served on the economy (BF16 fallback) path.
    DegradeBF16,
    /// \+ best-effort traffic is rejected; paid still served (economy).
    RejectBestEffort,
}

impl Brownout {
    /// All rungs, bottom to top.
    pub const LADDER: [Brownout; 5] = [
        Brownout::Normal,
        Brownout::ShedBatch,
        Brownout::DegradeE4M3,
        Brownout::DegradeBF16,
        Brownout::RejectBestEffort,
    ];

    /// Rung index (0 = Normal), the severity scale used in telemetry.
    pub fn severity(self) -> u8 {
        match self {
            Brownout::Normal => 0,
            Brownout::ShedBatch => 1,
            Brownout::DegradeE4M3 => 2,
            Brownout::DegradeBF16 => 3,
            Brownout::RejectBestEffort => 4,
        }
    }

    /// Stable lowercase label.
    pub fn name(self) -> &'static str {
        match self {
            Brownout::Normal => "normal",
            Brownout::ShedBatch => "shed_batch",
            Brownout::DegradeE4M3 => "degrade_e4m3",
            Brownout::DegradeBF16 => "degrade_bf16",
            Brownout::RejectBestEffort => "reject_best_effort",
        }
    }

    /// Does this rung shed `tier` outright at admission?
    pub fn sheds(self, tier: PriorityTier) -> bool {
        match tier {
            PriorityTier::Batch => self >= Brownout::ShedBatch,
            PriorityTier::BestEffort => self >= Brownout::RejectBestEffort,
            PriorityTier::Paid => false,
        }
    }

    /// Does this rung serve `tier` on the economy path (degraded
    /// precision, no retry/failover budget)?
    pub fn economy(self, tier: PriorityTier) -> bool {
        if self.sheds(tier) {
            return false;
        }
        match tier {
            PriorityTier::Batch => false,
            PriorityTier::BestEffort => self >= Brownout::DegradeE4M3,
            PriorityTier::Paid => self >= Brownout::DegradeBF16,
        }
    }
}

/// Ladder thresholds on queue pressure (occupied fraction of total
/// queue capacity, 0.0..=1.0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Climb one rung when pressure is at or above this.
    pub up_pressure: f64,
    /// A tick counts as calm when pressure is at or below this.
    pub down_pressure: f64,
    /// Calm ticks required before stepping one rung down.
    pub down_consecutive: u32,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self {
            up_pressure: 0.75,
            down_pressure: 0.25,
            down_consecutive: 3,
        }
    }
}

/// One recorded rung change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutTransition {
    /// Virtual time of the evaluation tick.
    pub at_us: u64,
    /// Rung before.
    pub from: Brownout,
    /// Rung after.
    pub to: Brownout,
}

/// The ladder state machine. Call [`BrownoutLadder::observe`] once per
/// adaptation tick with the current queue pressure.
#[derive(Debug, Clone, PartialEq)]
pub struct BrownoutLadder {
    cfg: BrownoutConfig,
    level: Brownout,
    peak: Brownout,
    calm_streak: u32,
    transitions: Vec<BrownoutTransition>,
}

impl BrownoutLadder {
    /// Fresh ladder at [`Brownout::Normal`].
    pub fn new(cfg: BrownoutConfig) -> Self {
        Self {
            cfg,
            level: Brownout::Normal,
            peak: Brownout::Normal,
            calm_streak: 0,
            transitions: Vec::new(),
        }
    }

    /// Current rung.
    pub fn level(&self) -> Brownout {
        self.level
    }

    /// Highest rung reached over the ladder's lifetime.
    pub fn peak(&self) -> Brownout {
        self.peak
    }

    /// Every rung change, in order.
    pub fn transitions(&self) -> &[BrownoutTransition] {
        &self.transitions
    }

    /// Evaluate one tick; returns the (possibly unchanged) rung.
    pub fn observe(&mut self, at_us: u64, pressure: f64) -> Brownout {
        let idx = self.level.severity() as usize;
        if pressure >= self.cfg.up_pressure {
            self.calm_streak = 0;
            if idx + 1 < Brownout::LADDER.len() {
                self.step(at_us, Brownout::LADDER[idx + 1]);
            }
        } else if pressure <= self.cfg.down_pressure {
            self.calm_streak += 1;
            if self.calm_streak >= self.cfg.down_consecutive && idx > 0 {
                self.calm_streak = 0;
                self.step(at_us, Brownout::LADDER[idx - 1]);
            }
        } else {
            // In the dead band: hold the rung, reset the calm streak so
            // stepping down always requires *consecutive* calm ticks.
            self.calm_streak = 0;
        }
        self.level
    }

    fn step(&mut self, at_us: u64, to: Brownout) {
        self.transitions.push(BrownoutTransition {
            at_us,
            from: self.level,
            to,
        });
        self.level = to;
        self.peak = self.peak.max(to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_deterministic_and_cover_all_rungs() {
        for user in 0..100 {
            assert_eq!(PriorityTier::of_user(user), PriorityTier::of_user(user));
        }
        assert_eq!(PriorityTier::of_user(0), PriorityTier::Paid);
        assert_eq!(PriorityTier::of_user(2), PriorityTier::BestEffort);
        assert_eq!(PriorityTier::of_user(3), PriorityTier::Batch);
    }

    #[test]
    fn ladder_order_matches_severity() {
        for (i, rung) in Brownout::LADDER.iter().enumerate() {
            assert_eq!(rung.severity() as usize, i);
        }
        assert!(Brownout::Normal < Brownout::RejectBestEffort);
    }

    #[test]
    fn shed_and_economy_tables() {
        use Brownout::*;
        use PriorityTier::*;
        // Paid is never shed, at any rung.
        for rung in Brownout::LADDER {
            assert!(!rung.sheds(Paid), "{rung:?}");
        }
        assert!(!Normal.sheds(Batch) && !Normal.economy(BestEffort));
        assert!(ShedBatch.sheds(Batch) && !ShedBatch.economy(BestEffort));
        assert!(DegradeE4M3.economy(BestEffort) && !DegradeE4M3.economy(Paid));
        assert!(DegradeBF16.economy(Paid));
        assert!(RejectBestEffort.sheds(BestEffort));
        assert!(!RejectBestEffort.economy(BestEffort), "shed, not served");
        assert!(RejectBestEffort.economy(Paid));
    }

    #[test]
    fn climbs_one_rung_per_tick_and_descends_with_hysteresis() {
        let mut l = BrownoutLadder::new(BrownoutConfig::default());
        // Sustained pressure walks the ladder monotonically, one rung
        // per tick, and saturates at the top.
        let mut seen = vec![l.level()];
        for t in 0..6 {
            seen.push(l.observe(t * 100, 0.9));
        }
        assert_eq!(
            &seen[..5],
            &Brownout::LADDER[..],
            "one rung per tick, in order"
        );
        assert_eq!(l.level(), Brownout::RejectBestEffort);
        assert_eq!(l.peak(), Brownout::RejectBestEffort);
        // Two calm ticks are not enough to step down...
        l.observe(700, 0.1);
        l.observe(800, 0.1);
        assert_eq!(l.level(), Brownout::RejectBestEffort);
        // ...the third is.
        l.observe(900, 0.1);
        assert_eq!(l.level(), Brownout::DegradeBF16);
        // A pressure blip inside the dead band resets the calm streak.
        l.observe(1_000, 0.1);
        l.observe(1_100, 0.1);
        l.observe(1_200, 0.5);
        l.observe(1_300, 0.1);
        l.observe(1_400, 0.1);
        assert_eq!(l.level(), Brownout::DegradeBF16, "streak must restart");
        l.observe(1_500, 0.1);
        assert_eq!(l.level(), Brownout::DegradeE4M3);
    }

    #[test]
    fn transitions_are_single_step_and_logged_in_order(){
        let mut l = BrownoutLadder::new(BrownoutConfig::default());
        let pressures = [0.9, 0.9, 0.1, 0.1, 0.1, 0.9, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1];
        for (i, p) in pressures.iter().enumerate() {
            l.observe(i as u64 * 50, *p);
        }
        let trs = l.transitions();
        assert!(!trs.is_empty());
        for w in trs.windows(2) {
            assert!(w[1].at_us >= w[0].at_us);
            assert_eq!(w[1].from, w[0].to, "transitions chain");
        }
        for tr in trs {
            let diff = tr.to.severity() as i32 - tr.from.severity() as i32;
            assert_eq!(diff.abs(), 1, "one rung at a time: {tr:?}");
        }
        assert_eq!(l.level(), Brownout::Normal, "calm tail returns to Normal");
    }
}
