//! Queue-driven autoscaling: spin replicas up from snapshot, drain them
//! down, on sustained queue-pressure signals.
//!
//! The policy is deliberately boring — streaks of pressure above/below
//! thresholds, a replica-count band, and a modeled cold-start delay —
//! because the interesting machinery already exists in the fleet: a
//! scale-up is exactly the crash-recovery path (load the newest health
//! snapshot, rejoin through the breaker's half-open probes) minus the
//! crash, and a scale-down is a drain (stop routing, finish the queue).
//! The policy only decides *when*; the fleet owns *how*.

/// Scaling thresholds and band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Never drain below this many active replicas.
    pub min_replicas: usize,
    /// Never boot above this many active replicas.
    pub max_replicas: usize,
    /// A tick counts toward scale-up when pressure ≥ this.
    pub up_pressure: f64,
    /// A tick counts toward scale-down when pressure ≤ this.
    pub down_pressure: f64,
    /// Consecutive hot ticks before booting a replica.
    pub up_consecutive: u32,
    /// Consecutive idle ticks before draining a replica.
    pub down_consecutive: u32,
    /// Virtual boot time: snapshot load + rejoin ramp begins this long
    /// after the scale-up decision.
    pub cold_start_us: u64,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            min_replicas: 1,
            max_replicas: 4,
            up_pressure: 0.75,
            down_pressure: 0.10,
            up_consecutive: 2,
            down_consecutive: 6,
            cold_start_us: 50_000,
        }
    }
}

/// What the policy wants done this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Keep the current replica set.
    Hold,
    /// Boot one replica (after [`AutoscaleConfig::cold_start_us`]).
    Up,
    /// Drain one replica.
    Down,
}

/// The streak-counting state machine. Feed it one pressure observation
/// per adaptation tick.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalePolicy {
    cfg: AutoscaleConfig,
    up_streak: u32,
    down_streak: u32,
    scale_ups: u64,
    scale_downs: u64,
}

impl AutoscalePolicy {
    /// Fresh policy.
    pub fn new(cfg: AutoscaleConfig) -> Self {
        Self {
            cfg,
            up_streak: 0,
            down_streak: 0,
            scale_ups: 0,
            scale_downs: 0,
        }
    }

    /// Thresholds and band in force.
    pub fn config(&self) -> AutoscaleConfig {
        self.cfg
    }

    /// Lifetime scale-up decisions.
    pub fn scale_ups(&self) -> u64 {
        self.scale_ups
    }

    /// Lifetime scale-down decisions.
    pub fn scale_downs(&self) -> u64 {
        self.scale_downs
    }

    /// One tick: `active` replicas taking traffic, `pending` replicas
    /// mid-cold-start, current queue `pressure` (0.0..=1.0).
    pub fn observe(&mut self, active: usize, pending: usize, pressure: f64) -> ScaleDecision {
        if pressure >= self.cfg.up_pressure {
            self.up_streak = self.up_streak.saturating_add(1);
            self.down_streak = 0;
        } else if pressure <= self.cfg.down_pressure {
            self.down_streak = self.down_streak.saturating_add(1);
            self.up_streak = 0;
        } else {
            self.up_streak = 0;
            self.down_streak = 0;
        }
        if self.up_streak >= self.cfg.up_consecutive && active + pending < self.cfg.max_replicas {
            self.up_streak = 0;
            self.scale_ups += 1;
            return ScaleDecision::Up;
        }
        // Draining while a boot is in flight would thrash: the pending
        // replica was requested because we were hot moments ago.
        if self.down_streak >= self.cfg.down_consecutive
            && pending == 0
            && active > self.cfg.min_replicas
        {
            self.down_streak = 0;
            self.scale_downs += 1;
            return ScaleDecision::Down;
        }
        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscaleConfig {
        AutoscaleConfig {
            min_replicas: 1,
            max_replicas: 3,
            up_consecutive: 2,
            down_consecutive: 3,
            ..AutoscaleConfig::default()
        }
    }

    #[test]
    fn sustained_pressure_boots_up_to_the_band_ceiling() {
        let mut p = AutoscalePolicy::new(cfg());
        assert_eq!(p.observe(1, 0, 0.9), ScaleDecision::Hold);
        assert_eq!(p.observe(1, 0, 0.9), ScaleDecision::Up);
        // The booting replica counts against the ceiling immediately.
        assert_eq!(p.observe(1, 1, 0.9), ScaleDecision::Hold);
        assert_eq!(p.observe(1, 1, 0.9), ScaleDecision::Up);
        // At the ceiling (1 active + 2 pending = max 3): never Up again.
        for _ in 0..10 {
            assert_eq!(p.observe(1, 2, 0.9), ScaleDecision::Hold);
        }
        assert_eq!(p.scale_ups(), 2);
    }

    #[test]
    fn sustained_idle_drains_down_to_the_floor() {
        let mut p = AutoscalePolicy::new(cfg());
        assert_eq!(p.observe(3, 0, 0.05), ScaleDecision::Hold);
        assert_eq!(p.observe(3, 0, 0.05), ScaleDecision::Hold);
        assert_eq!(p.observe(3, 0, 0.05), ScaleDecision::Down);
        // Streak restarts after a decision.
        assert_eq!(p.observe(2, 0, 0.05), ScaleDecision::Hold);
        assert_eq!(p.observe(2, 0, 0.05), ScaleDecision::Hold);
        assert_eq!(p.observe(2, 0, 0.05), ScaleDecision::Down);
        // At the floor: hold forever.
        for _ in 0..10 {
            assert_eq!(p.observe(1, 0, 0.05), ScaleDecision::Hold);
        }
        assert_eq!(p.scale_downs(), 2);
    }

    #[test]
    fn pending_boot_vetoes_draining() {
        let mut p = AutoscalePolicy::new(cfg());
        for _ in 0..10 {
            assert_eq!(p.observe(2, 1, 0.05), ScaleDecision::Hold);
        }
    }

    #[test]
    fn dead_band_resets_both_streaks() {
        let mut p = AutoscalePolicy::new(cfg());
        assert_eq!(p.observe(1, 0, 0.9), ScaleDecision::Hold);
        assert_eq!(p.observe(1, 0, 0.5), ScaleDecision::Hold);
        assert_eq!(p.observe(1, 0, 0.9), ScaleDecision::Hold, "streak restarted");
        assert_eq!(p.observe(1, 0, 0.9), ScaleDecision::Up);
    }
}
