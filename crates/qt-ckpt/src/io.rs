//! Crash-safe file writes: the one way any artifact in this workspace
//! reaches disk.
//!
//! A plain `fs::write` can be torn by a crash or power loss: the file
//! exists with partial contents and no way to tell. The atomic recipe —
//! write a temporary sibling, `fsync` it, `rename` over the destination,
//! `fsync` the directory — guarantees a reader sees either the old
//! complete file or the new complete file, never a mixture.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent writers targeting the same destination.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Atomically replace `path` with `bytes`.
///
/// Parent directories are created as needed. The data is durable (synced)
/// before the rename is attempted, so a crash at any point leaves either
/// the previous file or the new one — never a torn write.
///
/// # Errors
///
/// Any I/O error from creating directories, writing, syncing or renaming.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent().filter(|d| !d.as_os_str().is_empty()) {
        Some(d) => {
            std::fs::create_dir_all(d)?;
            d.to_path_buf()
        }
        None => std::path::PathBuf::from("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("atomic_write: path has no file name"))?;
    let unique = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        name.to_string_lossy(),
        std::process::id(),
        unique
    ));
    let result = (|| {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable. Directory fsync is a Unix-ism;
        // failure here (or on platforms without it) is non-fatal — the
        // rename is already atomic, only its durability window widens.
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// [`atomic_write`] for text content.
///
/// # Errors
///
/// Any I/O error from the underlying [`atomic_write`].
pub fn atomic_write_str(path: &Path, text: &str) -> std::io::Result<()> {
    atomic_write(path, text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("qt-ckpt-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("basic");
        let path = dir.join("nested/out.txt");
        atomic_write_str(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        atomic_write_str(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn leaves_no_temp_files() {
        let dir = tmp_dir("clean");
        let path = dir.join("out.bin");
        atomic_write(&path, &[1, 2, 3]).unwrap();
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries, vec!["out.bin".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
