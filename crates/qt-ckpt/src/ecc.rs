//! SEC-DED sidecar plane for serialized checkpoint payloads.
//!
//! CRC32 *detects* storage rot but cannot fix it: today a flipped bit
//! in a snapshot file costs the whole generation (the store falls back
//! to an older one). This module pairs any byte payload with a
//! qt-shield parity plane — one check byte per 8 payload bytes, ~12.5%
//! overhead — so a loader can *correct* single-bit rot per 64-bit word
//! in place and only reject on genuine multi-bit damage.
//!
//! The plane is stored out-of-band (a sidecar file or a dedicated
//! envelope section) and never changes the payload bytes themselves,
//! keeping the format readable by plane-unaware tools.

use qt_shield::secded::{self, Decode};

/// Outcome of verifying a payload against its parity plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// Payload matches the plane exactly.
    Clean,
    /// This many single-bit flips were corrected in place.
    Corrected(u64),
    /// A word had multi-bit damage (or the plane doesn't fit the
    /// payload); the payload must not be trusted.
    Uncorrectable,
}

/// Number of check bytes a payload of `len` bytes needs.
pub fn ecc_plane_len(len: usize) -> usize {
    len.div_ceil(8)
}

/// Compute the parity plane for `payload`: one SEC-DED check byte per
/// 8-byte little-endian word, the last word zero-padded.
pub fn ecc_plane(payload: &[u8]) -> Vec<u8> {
    payload
        .chunks(8)
        .map(|ch| secded::encode(word_of(ch)))
        .collect()
}

/// Verify `payload` against `plane`, correcting single-bit flips in
/// place. Returns [`EccOutcome::Uncorrectable`] without touching the
/// payload if the plane length doesn't match.
pub fn ecc_verify(payload: &mut [u8], plane: &[u8]) -> EccOutcome {
    if plane.len() != ecc_plane_len(payload.len()) {
        return EccOutcome::Uncorrectable;
    }
    let mut corrected = 0u64;
    let len = payload.len();
    for (i, check) in plane.iter().enumerate() {
        let ch = &payload[i * 8..(i * 8 + 8).min(len)];
        match secded::decode(word_of(ch), *check) {
            Decode::Clean => {}
            Decode::Corrected { word, bit, .. } => {
                // A flip in the zero padding or the check byte itself
                // never maps back into payload bytes.
                if (bit as usize) < ch.len() * 8 {
                    let fixed = word.to_le_bytes();
                    let n = ch.len();
                    payload[i * 8..i * 8 + n].copy_from_slice(&fixed[..n]);
                }
                corrected += 1;
            }
            Decode::Uncorrectable => return EccOutcome::Uncorrectable,
        }
    }
    if corrected == 0 {
        EccOutcome::Clean
    } else {
        EccOutcome::Corrected(corrected)
    }
}

fn word_of(chunk: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b[..chunk.len()].copy_from_slice(chunk);
    u64::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i as u8).wrapping_mul(31).wrapping_add(7)).collect()
    }

    #[test]
    fn clean_payload_verifies() {
        for n in [0usize, 1, 7, 8, 9, 64, 100] {
            let mut p = payload(n);
            let plane = ecc_plane(&p);
            assert_eq!(plane.len(), ecc_plane_len(n));
            assert_eq!(ecc_verify(&mut p, &plane), EccOutcome::Clean);
            assert_eq!(p, payload(n));
        }
    }

    #[test]
    fn every_single_bit_flip_is_corrected() {
        let orig = payload(41); // exercises a padded final word
        let plane = ecc_plane(&orig);
        for byte in 0..orig.len() {
            for bit in 0..8 {
                let mut p = orig.clone();
                p[byte] ^= 1 << bit;
                assert_eq!(
                    ecc_verify(&mut p, &plane),
                    EccOutcome::Corrected(1),
                    "byte {byte} bit {bit}"
                );
                assert_eq!(p, orig, "byte {byte} bit {bit} not restored");
            }
        }
    }

    #[test]
    fn double_flip_in_one_word_is_rejected() {
        let orig = payload(32);
        let plane = ecc_plane(&orig);
        let mut p = orig.clone();
        p[8] ^= 0x01;
        p[9] ^= 0x80; // same 8-byte word
        assert_eq!(ecc_verify(&mut p, &plane), EccOutcome::Uncorrectable);
    }

    #[test]
    fn flips_in_different_words_all_corrected() {
        let orig = payload(32);
        let plane = ecc_plane(&orig);
        let mut p = orig.clone();
        p[0] ^= 0x10;
        p[10] ^= 0x02;
        p[25] ^= 0x40;
        assert_eq!(ecc_verify(&mut p, &plane), EccOutcome::Corrected(3));
        assert_eq!(p, orig);
    }

    #[test]
    fn mismatched_plane_is_rejected() {
        let mut p = payload(16);
        let plane = ecc_plane(&p[..8]);
        assert_eq!(ecc_verify(&mut p, &plane), EccOutcome::Uncorrectable);
    }

    #[test]
    fn corrupted_plane_byte_is_survivable() {
        // A flip can land in the parity plane itself; the payload decodes
        // clean-with-correction and is untouched.
        let orig = payload(24);
        let mut plane = ecc_plane(&orig);
        plane[1] ^= 0x04;
        let mut p = orig.clone();
        assert_eq!(ecc_verify(&mut p, &plane), EccOutcome::Corrected(1));
        assert_eq!(p, orig);
    }
}
