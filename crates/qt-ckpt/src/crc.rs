//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every checkpoint section and the whole file.
//!
//! Table-driven, built once at first use. This is the same polynomial as
//! zlib/gzip, so artifacts can be cross-checked with standard tools
//! (`python -c 'import zlib, sys; print(zlib.crc32(open(sys.argv[1],"rb").read()))'`).

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// Streaming CRC32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The final checksum value.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC32 of a byte slice in one call.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut c = Crc32::new();
        c.update(&data[..100]);
        c.update(&data[100..]);
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base: Vec<u8> = (0..64u8).collect();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.clone();
                m[byte] ^= 1 << bit;
                assert_ne!(crc32(&m), reference, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
