//! Typed checkpoint errors. Every way a checkpoint can fail to load is a
//! distinct, inspectable variant — recovery code branches on them.

use std::fmt;

/// Error from writing, reading or validating a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// An I/O operation failed (message carries the OS error).
    Io(String),
    /// The file does not start with the `QTCK` magic.
    BadMagic,
    /// The format version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The file ended before a declared length was satisfied.
    Truncated {
        /// Bytes the reader needed.
        expected: u64,
        /// Bytes actually available.
        actual: u64,
    },
    /// A section's payload failed its CRC32 check.
    SectionCrc {
        /// Name of the failing section.
        section: String,
        /// Byte offset of the section's payload within the file — where
        /// a repair tool (or a human with a hex dump) should look.
        offset: u64,
    },
    /// The whole-file CRC32 trailer does not match the contents.
    FileCrc,
    /// A required section is absent.
    MissingSection(String),
    /// A payload decoded but its contents are structurally invalid.
    Malformed(String),
    /// The store has no loadable checkpoint (empty, or every generation
    /// was rejected as corrupt).
    NoCheckpoint,
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CkptError::Truncated { expected, actual } => {
                write!(f, "truncated checkpoint: needed {expected} bytes, have {actual}")
            }
            CkptError::SectionCrc { section, offset } => {
                write!(
                    f,
                    "CRC mismatch in checkpoint section {section:?} (payload at byte offset {offset})"
                )
            }
            CkptError::FileCrc => write!(f, "whole-file CRC mismatch"),
            CkptError::MissingSection(s) => write!(f, "missing checkpoint section {s:?}"),
            CkptError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CkptError::NoCheckpoint => write!(f, "no intact checkpoint available"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e.to_string())
    }
}
