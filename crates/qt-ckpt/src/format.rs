//! The versioned binary checkpoint envelope.
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//! 0       4     magic "QTCK"
//! 4       2     format version (LE)
//! 6       4     section count (LE)
//!               ── per section ─────────────────────────────────
//!         2     name length (LE)
//!         n     name (UTF-8)
//!         8     payload length (LE)
//!         p     payload
//!         4     CRC32 of payload (LE)
//!               ────────────────────────────────────────────────
//! end-4   4     CRC32 of every preceding byte (LE)
//! ```
//!
//! All integers are little-endian. Every payload byte is covered by its
//! section CRC; every header/length/name byte is covered by the trailing
//! whole-file CRC — so **any** single flipped bit or truncation is
//! detected before a single field is interpreted.

use crate::crc::crc32;
use crate::error::CkptError;

/// File magic: the first four bytes of every checkpoint.
pub const MAGIC: [u8; 4] = *b"QTCK";

/// Current format version written by [`Envelope::finish`].
pub const VERSION: u16 = 1;

/// Growable little-endian byte sink for payload encoding.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f32` as its exact bit pattern (NaN payloads survive).
    pub fn put_f32_bits(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Bounds-checked little-endian byte cursor for payload decoding. Every
/// read past the end reports [`CkptError::Truncated`] instead of
/// panicking — corrupt lengths must never take the process down.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Cursor over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current byte offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Take `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated {
                expected: (self.pos + n) as u64,
                actual: self.buf.len() as u64,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a `u16`.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] past the end.
    pub fn get_u16(&mut self) -> Result<u16, CkptError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Read a `u32`.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] past the end.
    pub fn get_u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Read a `u64`.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] past the end.
    pub fn get_u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Read an `f32` bit pattern written by [`ByteWriter::put_f32_bits`].
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] past the end.
    pub fn get_f32_bits(&mut self) -> Result<f32, CkptError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] past the end, [`CkptError::Malformed`] on
    /// invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String, CkptError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CkptError::Malformed("non-UTF-8 string".into()))
    }
}

/// Builder for a complete checkpoint file: named sections, each
/// CRC-guarded, closed with a whole-file CRC trailer.
#[derive(Debug)]
pub struct Envelope {
    buf: Vec<u8>,
    sections: u32,
}

impl Envelope {
    /// Start a new envelope (magic + version written immediately; the
    /// section count is patched in by [`Envelope::finish`]).
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // patched later
        Self { buf, sections: 0 }
    }

    /// Append one named section with its payload CRC.
    pub fn section(&mut self, name: &str, payload: &[u8]) {
        self.buf
            .extend_from_slice(&(name.len() as u16).to_le_bytes());
        self.buf.extend_from_slice(name.as_bytes());
        self.buf
            .extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        self.sections += 1;
    }

    /// Patch the section count, append the whole-file CRC, return the
    /// finished bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[6..10].copy_from_slice(&self.sections.to_le_bytes());
        let crc = crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf
    }
}

impl Default for Envelope {
    fn default() -> Self {
        Self::new()
    }
}

/// Fully validate `bytes` and return the decoded `(name, payload)`
/// sections in file order.
///
/// Validation order is strictly outside-in: magic, version, whole-file
/// CRC (which covers every header byte), then each section's payload CRC.
/// No payload byte is interpreted before its checksums pass, so corrupt
/// state can never be *silently* loaded.
///
/// # Errors
///
/// Any [`CkptError`] variant describing the first integrity failure.
pub fn parse_envelope(bytes: &[u8]) -> Result<Vec<(String, &[u8])>, CkptError> {
    if bytes.len() < 4 || bytes[..4] != MAGIC {
        // A truncated magic is indistinguishable from a foreign file.
        return Err(CkptError::BadMagic);
    }
    if bytes.len() < 14 {
        return Err(CkptError::Truncated {
            expected: 14,
            actual: bytes.len() as u64,
        });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("len 2"));
    if version == 0 || version > VERSION {
        return Err(CkptError::UnsupportedVersion(version));
    }
    // Whole-file CRC first: it covers headers and lengths, so a flipped
    // length byte cannot send the section walk off the rails undetected.
    let body = &bytes[..bytes.len() - 4];
    let trailer = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("len 4"));
    if crc32(body) != trailer {
        return Err(CkptError::FileCrc);
    }
    let mut r = ByteReader::new(body);
    let _ = r.take(6); // magic + version, already checked
    let count = r.get_u32()?;
    let mut sections = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let name_len = r.get_u16()? as usize;
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| CkptError::Malformed("non-UTF-8 section name".into()))?;
        let payload_len = r.get_u64()? as usize;
        let payload_offset = r.position() as u64;
        let payload = r.take(payload_len)?;
        let crc = r.get_u32()?;
        if crc32(payload) != crc {
            return Err(CkptError::SectionCrc {
                section: name,
                offset: payload_offset,
            });
        }
        sections.push((name, payload));
    }
    if r.remaining() != 0 {
        return Err(CkptError::Malformed(format!(
            "{} trailing bytes after last section",
            r.remaining()
        )));
    }
    Ok(sections)
}

/// Find a required section by name in a parsed envelope.
///
/// # Errors
///
/// [`CkptError::MissingSection`] when absent.
pub fn require_section<'a>(
    sections: &[(String, &'a [u8])],
    name: &str,
) -> Result<&'a [u8], CkptError> {
    sections
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, p)| *p)
        .ok_or_else(|| CkptError::MissingSection(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut e = Envelope::new();
        e.section("alpha", b"payload-one");
        e.section("beta", &[0u8; 37]);
        e.finish()
    }

    #[test]
    fn roundtrip() {
        let bytes = sample();
        let sections = parse_envelope(&bytes).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].0, "alpha");
        assert_eq!(sections[0].1, b"payload-one");
        assert_eq!(sections[1].0, "beta");
        assert_eq!(require_section(&sections, "beta").unwrap().len(), 37);
        assert!(matches!(
            require_section(&sections, "gamma"),
            Err(CkptError::MissingSection(_))
        ));
    }

    #[test]
    fn section_crc_error_names_section_and_offset() {
        let mut e = Envelope::new();
        e.section("alpha", b"payload-one");
        let mut bytes = e.finish();
        // Corrupt one payload byte, then re-seal the whole-file CRC so the
        // outer check passes and the per-section CRC is what fires.
        // Payload starts after magic(4) + version(2) + count(4) +
        // name_len(2) + "alpha"(5) + payload_len(8) = byte 25.
        bytes[25] ^= 0x01;
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]);
        let crc_bytes = crc.to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc_bytes);
        let err = parse_envelope(&bytes).unwrap_err();
        assert_eq!(
            err,
            CkptError::SectionCrc {
                section: "alpha".into(),
                offset: 25,
            }
        );
        assert_eq!(
            err.to_string(),
            "CRC mismatch in checkpoint section \"alpha\" (payload at byte offset 25)"
        );
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[byte] ^= 1 << bit;
                assert!(
                    parse_envelope(&m).is_err(),
                    "flip at byte {byte} bit {bit} loaded silently"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample();
        for len in 0..bytes.len() {
            assert!(
                parse_envelope(&bytes[..len]).is_err(),
                "truncation to {len} bytes loaded silently"
            );
        }
    }

    #[test]
    fn foreign_and_future_files_rejected() {
        assert_eq!(parse_envelope(b"JSON{}"), Err(CkptError::BadMagic));
        let mut future = sample();
        future[4] = 0xFF;
        future[5] = 0x7F;
        // CRC fires first? No: version is checked before the CRC so the
        // error names the real problem.
        assert_eq!(
            parse_envelope(&future),
            Err(CkptError::UnsupportedVersion(0x7FFF))
        );
    }

    #[test]
    fn byte_cursor_bounds_checked() {
        let mut w = ByteWriter::new();
        w.put_u64(7);
        w.put_str("name");
        w.put_f32_bits(f32::from_bits(0x7FC0_1234)); // NaN with payload
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u64().unwrap(), 7);
        assert_eq!(r.get_str().unwrap(), "name");
        assert_eq!(r.get_f32_bits().unwrap().to_bits(), 0x7FC0_1234);
        assert!(matches!(r.get_u32(), Err(CkptError::Truncated { .. })));
    }
}
