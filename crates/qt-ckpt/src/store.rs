//! On-disk checkpoint store: numbered generations, a chained manifest,
//! keep-last-K retention, and newest→oldest fallback on corruption.
//!
//! Layout of a store directory:
//!
//! ```text
//! <dir>/
//!   ckpt-00000001.qtck     oldest retained generation
//!   ckpt-00000002.qtck
//!   ckpt-00000003.qtck     newest generation
//!   MANIFEST               chained index (see below)
//! ```
//!
//! The manifest is advisory: recovery never *requires* it. Loading scans
//! the directory, tries generations newest-first, and fully validates
//! each candidate before trusting it — so a corrupt manifest can slow
//! diagnosis but can never cause corrupt state to load.

use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::error::CkptError;
use crate::io::{atomic_write, atomic_write_str};
use crate::state::TrainState;

const CKPT_PREFIX: &str = "ckpt-";
const CKPT_SUFFIX: &str = ".qtck";
const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_HEADER: &str = "qtck-manifest v1";

/// Result of a successful [`CheckpointStore::save`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveInfo {
    /// Generation number assigned to this checkpoint.
    pub generation: u64,
    /// Where the checkpoint landed.
    pub path: PathBuf,
    /// Serialized size in bytes.
    pub bytes: u64,
    /// Whole-file CRC32 of the serialized checkpoint.
    pub crc: u32,
    /// Generations deleted by keep-last-K retention.
    pub pruned: Vec<u64>,
}

/// Result of a successful [`CheckpointStore::load_latest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreInfo {
    /// Generation that loaded cleanly.
    pub generation: u64,
    /// File it came from.
    pub path: PathBuf,
    /// How many newer generations were rejected before this one.
    pub fallback_depth: u64,
    /// The rejected generations, newest first, with why each failed.
    pub rejected: Vec<(u64, CkptError)>,
}

/// One validated line of the chained manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Generation number.
    pub generation: u64,
    /// Checkpoint file name (relative to the store directory).
    pub file: String,
    /// Serialized size in bytes.
    pub bytes: u64,
    /// Whole-file CRC32 of the checkpoint.
    pub crc: u32,
    /// Chain value: CRC32 over the previous chain value and this entry.
    pub chain: u32,
}

/// A directory of numbered, checksummed checkpoint generations.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep_last: usize,
}

fn gen_file_name(generation: u64) -> String {
    format!("{CKPT_PREFIX}{generation:08}{CKPT_SUFFIX}")
}

fn parse_gen_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix(CKPT_PREFIX)?.strip_suffix(CKPT_SUFFIX)?;
    if digits.len() < 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn chain_value(prev_chain: u32, generation: u64, bytes: u64, crc: u32) -> u32 {
    let mut buf = Vec::with_capacity(20);
    buf.extend_from_slice(&prev_chain.to_le_bytes());
    buf.extend_from_slice(&generation.to_le_bytes());
    buf.extend_from_slice(&bytes.to_le_bytes());
    buf.extend_from_slice(&crc.to_le_bytes());
    crc32(&buf)
}

impl CheckpointStore {
    /// Open (or designate) a store at `dir`, retaining the last 3
    /// generations by default. The directory is created on first save.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            keep_last: 3,
        }
    }

    /// Retain the newest `keep_last` generations (minimum 1).
    #[must_use]
    pub fn with_keep_last(mut self, keep_last: usize) -> Self {
        self.keep_last = keep_last.max(1);
        self
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a specific generation's file.
    pub fn path_for(&self, generation: u64) -> PathBuf {
        self.dir.join(gen_file_name(generation))
    }

    /// Generations currently on disk, ascending. Missing directory ⇒ empty.
    pub fn generations(&self) -> Vec<u64> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut gens: Vec<u64> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_gen_file_name(&e.file_name().to_string_lossy()))
            .collect();
        gens.sort_unstable();
        gens.dedup();
        gens
    }

    /// Persist `state` as the next generation, prune beyond keep-last-K,
    /// and rewrite the chained manifest.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] if the atomic write or manifest update fails.
    pub fn save(&self, state: &TrainState) -> Result<SaveInfo, CkptError> {
        let generation = self.generations().last().copied().unwrap_or(0) + 1;
        let bytes = state.to_bytes();
        let crc = crc32(&bytes);
        let path = self.path_for(generation);
        atomic_write(&path, &bytes)?;

        let mut pruned = Vec::new();
        let gens = self.generations();
        if gens.len() > self.keep_last {
            for &old in &gens[..gens.len() - self.keep_last] {
                if std::fs::remove_file(self.path_for(old)).is_ok() {
                    pruned.push(old);
                }
            }
        }
        self.rewrite_manifest(generation, bytes.len() as u64, crc)?;
        Ok(SaveInfo {
            generation,
            path,
            bytes: bytes.len() as u64,
            crc,
            pruned,
        })
    }

    /// Load and fully validate one specific generation.
    ///
    /// # Errors
    ///
    /// Any [`CkptError`] from I/O or validation; corrupt data is never
    /// returned.
    pub fn load_generation(&self, generation: u64) -> Result<TrainState, CkptError> {
        let bytes = std::fs::read(self.path_for(generation))?;
        TrainState::from_bytes(&bytes)
    }

    /// Load the newest intact generation, falling back through older ones
    /// when validation fails.
    ///
    /// # Errors
    ///
    /// [`CkptError::NoCheckpoint`] when the store is empty or every
    /// generation on disk fails validation.
    pub fn load_latest(&self) -> Result<(TrainState, RestoreInfo), CkptError> {
        let mut rejected = Vec::new();
        for &generation in self.generations().iter().rev() {
            match self.load_generation(generation) {
                Ok(state) => {
                    return Ok((
                        state,
                        RestoreInfo {
                            generation,
                            path: self.path_for(generation),
                            fallback_depth: rejected.len() as u64,
                            rejected,
                        },
                    ));
                }
                Err(e) => rejected.push((generation, e)),
            }
        }
        Err(CkptError::NoCheckpoint)
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_NAME)
    }

    /// Rebuild the manifest from prior validated entries plus the new
    /// generation, dropping pruned entries and advancing the base chain.
    fn rewrite_manifest(&self, generation: u64, bytes: u64, crc: u32) -> Result<(), CkptError> {
        let retained: std::collections::BTreeSet<u64> = self.generations().into_iter().collect();
        // Start from the old manifest when it still validates; otherwise
        // rebuild from scratch (the manifest is an index, not a source of
        // truth — a corrupt one is replaced, not trusted).
        let mut entries = self.read_manifest().unwrap_or_default();
        entries.retain(|e| retained.contains(&e.generation) && e.generation != generation);
        entries.push(ManifestEntry {
            generation,
            file: gen_file_name(generation),
            bytes,
            crc,
            chain: 0, // recomputed below
        });
        // Self-heal: re-derive any retained generation the (possibly
        // replaced) old manifest no longer lists, from the file itself.
        for &gen in &retained {
            if entries.iter().any(|e| e.generation == gen) {
                continue;
            }
            if let Ok(data) = std::fs::read(self.path_for(gen)) {
                entries.push(ManifestEntry {
                    generation: gen,
                    file: gen_file_name(gen),
                    bytes: data.len() as u64,
                    crc: crc32(&data),
                    chain: 0,
                });
            }
        }
        entries.sort_by_key(|e| e.generation);

        // Base chain encodes how many generations preceded the first
        // retained entry, so truncating history doesn't reset the chain.
        let base = entries.first().map_or(0, |e| e.generation.wrapping_sub(1));
        let base_chain = crc32(&base.to_le_bytes());
        let mut text = String::new();
        text.push_str(MANIFEST_HEADER);
        text.push('\n');
        text.push_str(&format!("base {base_chain:08x}\n"));
        let mut chain = base_chain;
        for e in &mut entries {
            chain = chain_value(chain, e.generation, e.bytes, e.crc);
            e.chain = chain;
            text.push_str(&format!(
                "gen {} file {} bytes {} crc {:08x} chain {:08x}\n",
                e.generation, e.file, e.bytes, e.crc, e.chain
            ));
        }
        atomic_write_str(&self.manifest_path(), &text)?;
        Ok(())
    }

    /// Parse and verify the chained manifest.
    ///
    /// # Errors
    ///
    /// [`CkptError::Malformed`] when the manifest is absent, unparsable,
    /// or its chain does not verify.
    pub fn read_manifest(&self) -> Result<Vec<ManifestEntry>, CkptError> {
        let text = std::fs::read_to_string(self.manifest_path())
            .map_err(|e| CkptError::Malformed(format!("manifest unreadable: {e}")))?;
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(CkptError::Malformed("manifest: bad header".into()));
        }
        let base_line = lines
            .next()
            .ok_or_else(|| CkptError::Malformed("manifest: missing base line".into()))?;
        let base_chain = base_line
            .strip_prefix("base ")
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| CkptError::Malformed("manifest: bad base line".into()))?;

        let mut entries = Vec::new();
        let mut chain = base_chain;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let entry = (|| -> Option<ManifestEntry> {
                if fields.len() != 10
                    || fields[0] != "gen"
                    || fields[2] != "file"
                    || fields[4] != "bytes"
                    || fields[6] != "crc"
                    || fields[8] != "chain"
                {
                    return None;
                }
                Some(ManifestEntry {
                    generation: fields[1].parse().ok()?,
                    file: fields[3].to_string(),
                    bytes: fields[5].parse().ok()?,
                    crc: u32::from_str_radix(fields[7], 16).ok()?,
                    chain: u32::from_str_radix(fields[9], 16).ok()?,
                })
            })()
            .ok_or_else(|| CkptError::Malformed(format!("manifest: bad line {line:?}")))?;
            chain = chain_value(chain, entry.generation, entry.bytes, entry.crc);
            if chain != entry.chain {
                return Err(CkptError::Malformed(format!(
                    "manifest: chain mismatch at generation {}",
                    entry.generation
                )));
            }
            entries.push(entry);
        }
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{Counters, TensorBlob};

    fn tmp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("qt-ckpt-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir)
    }

    fn state_at(step: u64) -> TrainState {
        TrainState {
            counters: Counters {
                steps: step,
                data_seed: 7,
                ..Counters::default()
            },
            params: vec![TensorBlob::from_f32("w", &[2], &[step as f32, -1.5])],
            ..TrainState::default()
        }
    }

    #[test]
    fn save_load_roundtrip_and_generations() {
        let store = tmp_store("roundtrip");
        assert!(matches!(store.load_latest(), Err(CkptError::NoCheckpoint)));
        let s1 = store.save(&state_at(1)).unwrap();
        let s2 = store.save(&state_at(2)).unwrap();
        assert_eq!((s1.generation, s2.generation), (1, 2));
        let (state, info) = store.load_latest().unwrap();
        assert_eq!(state, state_at(2));
        assert_eq!(info.generation, 2);
        assert_eq!(info.fallback_depth, 0);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn keep_last_prunes_oldest() {
        let store = tmp_store("prune").with_keep_last(2);
        for step in 1..=5 {
            store.save(&state_at(step)).unwrap();
        }
        assert_eq!(store.generations(), vec![4, 5]);
        // Manifest still verifies after pruning.
        let entries = store.read_manifest().unwrap();
        assert_eq!(
            entries.iter().map(|e| e.generation).collect::<Vec<_>>(),
            vec![4, 5]
        );
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let store = tmp_store("fallback");
        store.save(&state_at(1)).unwrap();
        store.save(&state_at(2)).unwrap();
        // Flip one bit in the newest generation.
        let p = store.path_for(2);
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&p, &bytes).unwrap();

        let (state, info) = store.load_latest().unwrap();
        assert_eq!(state, state_at(1));
        assert_eq!(info.generation, 1);
        assert_eq!(info.fallback_depth, 1);
        assert_eq!(info.rejected.len(), 1);
        assert_eq!(info.rejected[0].0, 2);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn all_corrupt_is_no_checkpoint() {
        let store = tmp_store("allbad");
        store.save(&state_at(1)).unwrap();
        let p = store.path_for(1);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(store.load_latest(), Err(CkptError::NoCheckpoint)));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn tampered_manifest_is_rejected_but_recovery_still_works() {
        let store = tmp_store("manifest");
        store.save(&state_at(1)).unwrap();
        store.save(&state_at(2)).unwrap();
        let mpath = store.dir().join("MANIFEST");
        let text = std::fs::read_to_string(&mpath).unwrap();
        // Tamper: claim generation 2 has different byte length.
        let tampered: String = text
            .lines()
            .map(|l| {
                if l.starts_with("gen 2") {
                    l.replacen("bytes ", "bytes 9", 1)
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(&mpath, tampered).unwrap();
        assert!(matches!(
            store.read_manifest(),
            Err(CkptError::Malformed(_))
        ));
        // Recovery does not depend on the manifest.
        let (state, _) = store.load_latest().unwrap();
        assert_eq!(state, state_at(2));
        // The next save replaces the corrupt manifest with a valid one.
        store.save(&state_at(3)).unwrap();
        assert_eq!(store.read_manifest().unwrap().len(), 3);
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
