//! # qt-ckpt — durable, checksummed training checkpoints
//!
//! Crash-safety layer for the 8-bit transformer reproduction (DESIGN.md
//! §10). Only dependency: the zero-dep qt-shield SEC-DED codec, for the
//! optional parity sidecar ([`ecc_plane`]/[`ecc_verify`]) that upgrades
//! CRC *detection* of storage rot into single-bit *correction*. Three
//! guarantees:
//!
//! 1. **Atomicity** — every artifact write (checkpoints, bench JSON,
//!    traces, manifests) goes through [`atomic_write`]: temp sibling,
//!    fsync, rename. A crash leaves the old file or the new file, never
//!    a torn one.
//! 2. **Integrity** — the `QTCK` envelope carries a CRC32 per section
//!    plus a whole-file CRC; any single flipped bit or truncation is
//!    detected at load. Corrupt state is *never* silently loaded.
//! 3. **Exactness** — [`TrainState`] stores `f32` bit patterns, so a
//!    resumed run continues bitwise-identically to the uninterrupted
//!    trajectory (given the qt-par deterministic kernels, at any
//!    `QT_THREADS`).
//!
//! [`CheckpointStore`] adds numbered generations, a chained manifest,
//! keep-last-K retention, and newest→oldest fallback when the newest
//! generation fails validation.

#![warn(missing_docs)]

mod crc;
mod ecc;
mod error;
mod format;
mod io;
mod state;
mod store;

pub use crc::{crc32, Crc32};
pub use ecc::{ecc_plane, ecc_plane_len, ecc_verify, EccOutcome};
pub use error::CkptError;
pub use format::{parse_envelope, ByteReader, ByteWriter, Envelope, MAGIC, VERSION};
pub use io::{atomic_write, atomic_write_str};
pub use state::{
    AmaxState, Counters, OptState, QuantBlob, ScalerState, SnapshotState, TensorBlob, TrainState,
};
pub use store::{CheckpointStore, ManifestEntry, RestoreInfo, SaveInfo};
