//! The checkpointed training state and its (de)serialization.
//!
//! `qt-ckpt` is deliberately model-agnostic: it knows nothing about
//! tensors, optimizers or quantization schemes. [`TrainState`] is a bag
//! of named blobs — exact `f32` bit patterns for everything the resumed
//! trajectory must reproduce **bitwise**, plus an optional compact
//! section of stored 8-bit codes + scales (the artifact an edge device
//! would actually flash). `qt-train` owns the conversion in both
//! directions.

use crate::error::CkptError;
use crate::format::{parse_envelope, require_section, ByteReader, ByteWriter, Envelope};

/// A named tensor stored as exact `f32` bit patterns.
///
/// Bit patterns (not values) so that serialize→deserialize is the
/// identity on every input, including negative zero and NaN payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorBlob {
    /// Parameter name (e.g. `enc.0.q.w.lora_a`).
    pub name: String,
    /// Tensor shape.
    pub shape: Vec<u32>,
    /// Element bit patterns, row-major.
    pub bits: Vec<u32>,
}

impl TensorBlob {
    /// Capture a named `f32` buffer exactly.
    pub fn from_f32(name: impl Into<String>, shape: &[usize], data: &[f32]) -> Self {
        Self {
            name: name.into(),
            shape: shape.iter().map(|&d| d as u32).collect(),
            bits: data.iter().map(|x| x.to_bits()).collect(),
        }
    }

    /// The stored values, bit-exact.
    pub fn to_f32(&self) -> Vec<f32> {
        self.bits.iter().map(|&b| f32::from_bits(b)).collect()
    }

    /// Shape as `usize` dims.
    pub fn shape_usize(&self) -> Vec<usize> {
        self.shape.iter().map(|&d| d as usize).collect()
    }
}

/// A named tensor stored as element-format codes plus one power-of-two
/// scale — the paper's deployable 8-bit form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantBlob {
    /// Parameter name.
    pub name: String,
    /// Tensor shape.
    pub shape: Vec<u32>,
    /// Element format name (e.g. `Posit(8,1)`, `E4M3`).
    pub format: String,
    /// Bit pattern of the per-tensor scale applied before encoding.
    pub scale_bits: u32,
    /// Stored element codes (≤ 16 bits each).
    pub codes: Vec<u16>,
}

impl QuantBlob {
    /// The scale as an `f32`.
    pub fn scale(&self) -> f32 {
        f32::from_bits(self.scale_bits)
    }
}

/// Serialized optimizer state: a kind tag, named scalar bit patterns,
/// and named slots of per-parameter moment tensors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OptState {
    /// Optimizer kind (`"sgd"`, `"adamw"`, …) — checked on import.
    pub kind: String,
    /// Named scalars as 64-bit patterns (`f32` scalars go in the low bits).
    pub scalars: Vec<(String, u64)>,
    /// Named tensor slots (`m`, `v`, `velocity`, …).
    pub slots: Vec<(String, Vec<TensorBlob>)>,
}

impl OptState {
    /// Look up a scalar by name.
    pub fn scalar(&self, name: &str) -> Option<u64> {
        self.scalars.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a scalar stored as an `f32` bit pattern.
    pub fn scalar_f32(&self, name: &str) -> Option<f32> {
        self.scalar(name).map(|v| f32::from_bits(v as u32))
    }

    /// Look up a tensor slot by name.
    pub fn slot(&self, name: &str) -> Option<&[TensorBlob]> {
        self.slots
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }
}

/// Full dynamic-loss-scaler state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalerState {
    /// Current scale (bit pattern).
    pub scale_bits: u32,
    /// Growth factor (bit pattern).
    pub growth_bits: u32,
    /// Backoff factor (bit pattern).
    pub backoff_bits: u32,
    /// Clean steps required before growing.
    pub growth_interval: u64,
    /// Lower scale bound (bit pattern).
    pub min_bits: u32,
    /// Upper scale bound (bit pattern).
    pub max_bits: u32,
    /// Clean steps since the last adjustment.
    pub good_steps: u64,
    /// Overflows seen so far.
    pub overflows: u64,
    /// Retained-event ring capacity.
    pub event_capacity: u64,
    /// Events dropped by the ring so far.
    pub events_dropped: u64,
}

/// Per-tensor amax histories (delayed-scaling state, §5.1).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AmaxState {
    /// History window length.
    pub history_len: u64,
    /// `(tensor name, recorded amaxes)`, sorted by name for determinism.
    pub entries: Vec<(String, Vec<f32>)>,
}

/// Step/skip/rollback counters plus the data-order seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Optimizer steps applied.
    pub steps: u64,
    /// Steps skipped for non-finite gradients.
    pub skipped: u64,
    /// Consecutive skips at capture time.
    pub consecutive_skips: u64,
    /// Snapshot rollbacks performed.
    pub rollbacks: u64,
    /// Seed that reproduces the data order (batches consumed =
    /// `steps + skipped`).
    pub data_seed: u64,
}

/// An in-memory rollback snapshot, checkpointed so a resumed run can
/// still roll back exactly like the uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotState {
    /// Parameters at snapshot time.
    pub params: Vec<TensorBlob>,
    /// Optimizer state at snapshot time.
    pub opt: OptState,
    /// Amax histories at snapshot time.
    pub amax: AmaxState,
    /// Applied-step count at snapshot time.
    pub steps: u64,
}

/// Everything a training run needs to continue bitwise-identically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainState {
    /// Free-form annotations (`run`, `scheme`, …), sorted by producer.
    pub meta: Vec<(String, String)>,
    /// Step counters and the data-order seed.
    pub counters: Counters,
    /// Model parameters, bit-exact.
    pub params: Vec<TensorBlob>,
    /// Optional compact export: stored 8-bit codes + scales.
    pub qparams: Vec<QuantBlob>,
    /// Optimizer moments and hyperparameters.
    pub opt: OptState,
    /// Dynamic loss-scaler state, when one is attached.
    pub scaler: Option<ScalerState>,
    /// Delayed-scaling amax histories.
    pub amax: AmaxState,
    /// In-memory rollback snapshot, when one exists.
    pub snapshot: Option<SnapshotState>,
}

fn put_tensors(w: &mut ByteWriter, tensors: &[TensorBlob]) {
    w.put_u32(tensors.len() as u32);
    for t in tensors {
        w.put_str(&t.name);
        w.put_u32(t.shape.len() as u32);
        for &d in &t.shape {
            w.put_u32(d);
        }
        w.put_u64(t.bits.len() as u64);
        for &b in &t.bits {
            w.put_u32(b);
        }
    }
}

fn get_tensors(r: &mut ByteReader<'_>) -> Result<Vec<TensorBlob>, CkptError> {
    let count = r.get_u32()?;
    let mut out = Vec::with_capacity(count.min(65_536) as usize);
    for _ in 0..count {
        let name = r.get_str()?;
        let ndim = r.get_u32()?;
        let mut shape = Vec::with_capacity(ndim.min(16) as usize);
        for _ in 0..ndim {
            shape.push(r.get_u32()?);
        }
        let len = r.get_u64()?;
        let declared: u64 = shape.iter().map(|&d| d as u64).product();
        if len != declared {
            return Err(CkptError::Malformed(format!(
                "tensor {name:?}: shape implies {declared} elements, payload has {len}"
            )));
        }
        let mut bits = Vec::with_capacity(len.min(1 << 24) as usize);
        for _ in 0..len {
            bits.push(r.get_u32()?);
        }
        out.push(TensorBlob { name, shape, bits });
    }
    Ok(out)
}

fn put_opt(w: &mut ByteWriter, opt: &OptState) {
    w.put_str(&opt.kind);
    w.put_u32(opt.scalars.len() as u32);
    for (name, v) in &opt.scalars {
        w.put_str(name);
        w.put_u64(*v);
    }
    w.put_u32(opt.slots.len() as u32);
    for (name, tensors) in &opt.slots {
        w.put_str(name);
        put_tensors(w, tensors);
    }
}

fn get_opt(r: &mut ByteReader<'_>) -> Result<OptState, CkptError> {
    let kind = r.get_str()?;
    let n_scalars = r.get_u32()?;
    let mut scalars = Vec::with_capacity(n_scalars.min(1024) as usize);
    for _ in 0..n_scalars {
        let name = r.get_str()?;
        scalars.push((name, r.get_u64()?));
    }
    let n_slots = r.get_u32()?;
    let mut slots = Vec::with_capacity(n_slots.min(64) as usize);
    for _ in 0..n_slots {
        let name = r.get_str()?;
        slots.push((name, get_tensors(r)?));
    }
    Ok(OptState {
        kind,
        scalars,
        slots,
    })
}

fn put_amax(w: &mut ByteWriter, amax: &AmaxState) {
    w.put_u64(amax.history_len);
    w.put_u32(amax.entries.len() as u32);
    for (name, hist) in &amax.entries {
        w.put_str(name);
        w.put_u32(hist.len() as u32);
        for &a in hist {
            w.put_f32_bits(a);
        }
    }
}

fn get_amax(r: &mut ByteReader<'_>) -> Result<AmaxState, CkptError> {
    let history_len = r.get_u64()?;
    let count = r.get_u32()?;
    let mut entries = Vec::with_capacity(count.min(65_536) as usize);
    for _ in 0..count {
        let name = r.get_str()?;
        let n = r.get_u32()?;
        let mut hist = Vec::with_capacity(n.min(4096) as usize);
        for _ in 0..n {
            hist.push(r.get_f32_bits()?);
        }
        entries.push((name, hist));
    }
    Ok(AmaxState {
        history_len,
        entries,
    })
}

impl TrainState {
    /// Look up a meta annotation.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Global step (applied + skipped) — how many batches the data
    /// iterator has consumed.
    pub fn global_step(&self) -> u64 {
        self.counters.steps + self.counters.skipped
    }

    /// Serialize into the checksummed envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut env = Envelope::new();

        let mut w = ByteWriter::new();
        w.put_u32(self.meta.len() as u32);
        for (k, v) in &self.meta {
            w.put_str(k);
            w.put_str(v);
        }
        env.section("meta", &w.into_bytes());

        let mut w = ByteWriter::new();
        let c = &self.counters;
        for v in [c.steps, c.skipped, c.consecutive_skips, c.rollbacks, c.data_seed] {
            w.put_u64(v);
        }
        env.section("counters", &w.into_bytes());

        let mut w = ByteWriter::new();
        put_tensors(&mut w, &self.params);
        env.section("params", &w.into_bytes());

        if !self.qparams.is_empty() {
            let mut w = ByteWriter::new();
            w.put_u32(self.qparams.len() as u32);
            for q in &self.qparams {
                w.put_str(&q.name);
                w.put_str(&q.format);
                w.put_u32(q.shape.len() as u32);
                for &d in &q.shape {
                    w.put_u32(d);
                }
                w.put_u32(q.scale_bits);
                w.put_u64(q.codes.len() as u64);
                for &code in &q.codes {
                    w.put_u16(code);
                }
            }
            env.section("qparams", &w.into_bytes());
        }

        let mut w = ByteWriter::new();
        put_opt(&mut w, &self.opt);
        env.section("opt", &w.into_bytes());

        if let Some(s) = &self.scaler {
            let mut w = ByteWriter::new();
            w.put_u32(s.scale_bits);
            w.put_u32(s.growth_bits);
            w.put_u32(s.backoff_bits);
            w.put_u64(s.growth_interval);
            w.put_u32(s.min_bits);
            w.put_u32(s.max_bits);
            w.put_u64(s.good_steps);
            w.put_u64(s.overflows);
            w.put_u64(s.event_capacity);
            w.put_u64(s.events_dropped);
            env.section("scaler", &w.into_bytes());
        }

        let mut w = ByteWriter::new();
        put_amax(&mut w, &self.amax);
        env.section("amax", &w.into_bytes());

        if let Some(snap) = &self.snapshot {
            let mut w = ByteWriter::new();
            put_tensors(&mut w, &snap.params);
            put_opt(&mut w, &snap.opt);
            put_amax(&mut w, &snap.amax);
            w.put_u64(snap.steps);
            env.section("snapshot", &w.into_bytes());
        }

        env.finish()
    }

    /// Parse and fully validate a serialized checkpoint.
    ///
    /// # Errors
    ///
    /// Any [`CkptError`]: integrity failures from the envelope, or
    /// [`CkptError::Malformed`] / [`CkptError::MissingSection`] from the
    /// payload decoders.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let sections = parse_envelope(bytes)?;

        let mut r = ByteReader::new(require_section(&sections, "meta")?);
        let n = r.get_u32()?;
        let mut meta = Vec::with_capacity(n.min(1024) as usize);
        for _ in 0..n {
            let k = r.get_str()?;
            meta.push((k, r.get_str()?));
        }

        let mut r = ByteReader::new(require_section(&sections, "counters")?);
        let counters = Counters {
            steps: r.get_u64()?,
            skipped: r.get_u64()?,
            consecutive_skips: r.get_u64()?,
            rollbacks: r.get_u64()?,
            data_seed: r.get_u64()?,
        };

        let mut r = ByteReader::new(require_section(&sections, "params")?);
        let params = get_tensors(&mut r)?;

        let qparams = match sections.iter().find(|(n, _)| n == "qparams") {
            None => Vec::new(),
            Some((_, payload)) => {
                let mut r = ByteReader::new(payload);
                let count = r.get_u32()?;
                let mut out = Vec::with_capacity(count.min(65_536) as usize);
                for _ in 0..count {
                    let name = r.get_str()?;
                    let format = r.get_str()?;
                    let ndim = r.get_u32()?;
                    let mut shape = Vec::with_capacity(ndim.min(16) as usize);
                    for _ in 0..ndim {
                        shape.push(r.get_u32()?);
                    }
                    let scale_bits = r.get_u32()?;
                    let len = r.get_u64()?;
                    let declared: u64 = shape.iter().map(|&d| d as u64).product();
                    if len != declared {
                        return Err(CkptError::Malformed(format!(
                            "qparam {name:?}: shape implies {declared} codes, payload has {len}"
                        )));
                    }
                    let mut codes = Vec::with_capacity(len.min(1 << 24) as usize);
                    for _ in 0..len {
                        codes.push(r.get_u16()?);
                    }
                    out.push(QuantBlob {
                        name,
                        shape,
                        format,
                        scale_bits,
                        codes,
                    });
                }
                out
            }
        };

        let mut r = ByteReader::new(require_section(&sections, "opt")?);
        let opt = get_opt(&mut r)?;

        let scaler = match sections.iter().find(|(n, _)| n == "scaler") {
            None => None,
            Some((_, payload)) => {
                let mut r = ByteReader::new(payload);
                Some(ScalerState {
                    scale_bits: r.get_u32()?,
                    growth_bits: r.get_u32()?,
                    backoff_bits: r.get_u32()?,
                    growth_interval: r.get_u64()?,
                    min_bits: r.get_u32()?,
                    max_bits: r.get_u32()?,
                    good_steps: r.get_u64()?,
                    overflows: r.get_u64()?,
                    event_capacity: r.get_u64()?,
                    events_dropped: r.get_u64()?,
                })
            }
        };

        let mut r = ByteReader::new(require_section(&sections, "amax")?);
        let amax = get_amax(&mut r)?;

        let snapshot = match sections.iter().find(|(n, _)| n == "snapshot") {
            None => None,
            Some((_, payload)) => {
                let mut r = ByteReader::new(payload);
                Some(SnapshotState {
                    params: get_tensors(&mut r)?,
                    opt: get_opt(&mut r)?,
                    amax: get_amax(&mut r)?,
                    steps: r.get_u64()?,
                })
            }
        };

        Ok(Self {
            meta,
            counters,
            params,
            qparams,
            opt,
            scaler,
            amax,
            snapshot,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> TrainState {
        TrainState {
            meta: vec![("run".into(), "test".into()), ("scheme".into(), "posit8".into())],
            counters: Counters {
                steps: 12,
                skipped: 3,
                consecutive_skips: 1,
                rollbacks: 2,
                data_seed: 0xDEAD_BEEF,
            },
            params: vec![
                TensorBlob::from_f32("w", &[2, 2], &[1.0, -0.0, f32::NAN, 3.5e-12]),
                TensorBlob::from_f32("b", &[2], &[f32::INFINITY, f32::MIN_POSITIVE]),
            ],
            qparams: vec![QuantBlob {
                name: "w".into(),
                shape: vec![2, 2],
                format: "Posit(8,1)".into(),
                scale_bits: 64.0f32.to_bits(),
                codes: vec![0x7F, 0x80, 0x01, 0x00],
            }],
            opt: OptState {
                kind: "adamw".into(),
                scalars: vec![("t".into(), 12), ("lr".into(), 2e-3f32.to_bits() as u64)],
                slots: vec![(
                    "m".into(),
                    vec![TensorBlob::from_f32("w", &[2, 2], &[0.1, 0.2, 0.3, 0.4])],
                )],
            },
            scaler: Some(ScalerState {
                scale_bits: 65536.0f32.to_bits(),
                growth_bits: 2.0f32.to_bits(),
                backoff_bits: 0.5f32.to_bits(),
                growth_interval: 64,
                min_bits: 1.0f32.to_bits(),
                max_bits: f32::MAX.to_bits(),
                good_steps: 7,
                overflows: 2,
                event_capacity: 256,
                events_dropped: 0,
            }),
            amax: AmaxState {
                history_len: 16,
                entries: vec![("w.grad".into(), vec![1e-4, 2e-4, f32::MIN_POSITIVE])],
            },
            snapshot: Some(SnapshotState {
                params: vec![TensorBlob::from_f32("w", &[2, 2], &[1.0; 4])],
                opt: OptState {
                    kind: "adamw".into(),
                    scalars: vec![("t".into(), 10)],
                    slots: vec![],
                },
                amax: AmaxState::default(),
                steps: 10,
            }),
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let state = sample_state();
        let bytes = state.to_bytes();
        let back = TrainState::from_bytes(&bytes).unwrap();
        // PartialEq on bit patterns: NaN-carrying tensors still compare
        // equal because we compare bits, not float values.
        assert_eq!(back, state);
        assert_eq!(back.global_step(), 15);
        assert_eq!(back.meta_value("scheme"), Some("posit8"));
    }

    #[test]
    fn optional_sections_stay_optional() {
        let state = TrainState {
            scaler: None,
            snapshot: None,
            qparams: Vec::new(),
            ..sample_state()
        };
        let back = TrainState::from_bytes(&state.to_bytes()).unwrap();
        assert!(back.scaler.is_none());
        assert!(back.snapshot.is_none());
        assert!(back.qparams.is_empty());
    }

    #[test]
    fn every_bit_flip_detected_on_state() {
        let bytes = sample_state().to_bytes();
        // Sampling stride keeps the test fast; the format test covers
        // exhaustive flips on a smaller envelope.
        for pos in (0..bytes.len() * 8).step_by(7) {
            let mut m = bytes.clone();
            m[pos / 8] ^= 1 << (pos % 8);
            assert!(
                TrainState::from_bytes(&m).is_err(),
                "bit {pos} flipped silently"
            );
        }
    }

    #[test]
    fn shape_length_mismatch_rejected() {
        // Hand-build a params section whose shape disagrees with the
        // element count — structural validation must catch it even though
        // the CRCs are valid.
        let mut w = ByteWriter::new();
        w.put_u32(1);
        w.put_str("w");
        w.put_u32(1);
        w.put_u32(3); // shape [3]
        w.put_u64(2); // but 2 elements
        w.put_u32(0);
        w.put_u32(0);
        let mut env = Envelope::new();
        env.section("meta", &{
            let mut m = ByteWriter::new();
            m.put_u32(0);
            m.into_bytes()
        });
        env.section("counters", &{
            let mut c = ByteWriter::new();
            for _ in 0..5 {
                c.put_u64(0);
            }
            c.into_bytes()
        });
        env.section("params", &w.into_bytes());
        let bytes = env.finish();
        assert!(matches!(
            TrainState::from_bytes(&bytes),
            Err(CkptError::Malformed(_))
        ));
    }
}
