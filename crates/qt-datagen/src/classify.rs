//! GLUE-style synthetic classification suite (four tasks of graded
//! difficulty, mirroring the paper's MNLI/QNLI/MRPC/SST-2 selection).

use crate::tokens::*;
use qt_transformer::TokenBatch;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Which GLUE-like task to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifyKind {
    /// Sentiment-style: label = which of two token pools dominates
    /// (2 classes, easiest).
    Sst2,
    /// Question-entailment-style: does the context contain the question
    /// key? (2 classes).
    Qnli,
    /// Paraphrase-style: are the two segments permutations of the same
    /// token multiset? (2 classes).
    Mrpc,
    /// Inference-style: entail / neutral / contradict, encoded by the
    /// arithmetic relation between segment keys (3 classes, hardest).
    Mnli,
}

impl ClassifyKind {
    /// All tasks, in the paper's Table 7 column order.
    pub const ALL: [ClassifyKind; 4] = [
        ClassifyKind::Mnli,
        ClassifyKind::Qnli,
        ClassifyKind::Mrpc,
        ClassifyKind::Sst2,
    ];

    /// Task name as printed in tables.
    pub fn name(self) -> &'static str {
        match self {
            ClassifyKind::Sst2 => "SST-2",
            ClassifyKind::Qnli => "QNLI",
            ClassifyKind::Mrpc => "MRPC",
            ClassifyKind::Mnli => "MNLI",
        }
    }

    /// Number of classes.
    pub fn classes(self) -> usize {
        match self {
            ClassifyKind::Mnli => 3,
            _ => 2,
        }
    }
}

/// Generator of classification examples.
#[derive(Debug, Clone)]
pub struct ClassifyTask {
    /// Task flavour.
    pub kind: ClassifyKind,
    /// Vocabulary size.
    pub vocab: usize,
    /// Padded sequence length.
    pub seq_len: usize,
}

impl ClassifyTask {
    /// Create a task.
    pub fn new(kind: ClassifyKind, vocab: usize, seq_len: usize) -> Self {
        Self {
            kind,
            vocab,
            seq_len,
        }
    }

    /// Sample one `(padded_ids, valid, label)` example.
    pub fn sample(&self, rng: &mut StdRng) -> (Vec<usize>, Vec<bool>, usize) {
        let body_budget = self.seq_len - 2; // CLS … (room for SEPs inside)
        let (mut body, label) = match self.kind {
            ClassifyKind::Sst2 => self.sample_sst2(rng, body_budget),
            ClassifyKind::Qnli => self.sample_qnli(rng, body_budget),
            ClassifyKind::Mrpc => self.sample_mrpc(rng, body_budget),
            ClassifyKind::Mnli => self.sample_mnli(rng, body_budget),
        };
        let mut ids = vec![CLS];
        ids.append(&mut body);
        let used = ids.len();
        assert!(used <= self.seq_len, "body overflow");
        ids.resize(self.seq_len, PAD);
        let mut valid = vec![true; used];
        valid.resize(self.seq_len, false);
        (ids, valid, label)
    }

    fn pools(&self) -> (usize, usize, usize) {
        // two disjoint pools of 8 tokens + keys region
        let pos = FIRST_CONTENT;
        let neg = pos + 8;
        let keys = neg + 8;
        assert!(self.vocab > keys + 24, "vocab too small for classify task");
        (pos, neg, keys)
    }

    fn sample_sst2(&self, rng: &mut StdRng, budget: usize) -> (Vec<usize>, usize) {
        let (pos, neg, _) = self.pools();
        let len = rng.gen_range(5..=budget.min(self.seq_len - 2));
        // draw an imbalanced mixture so the majority is learnable
        let p_pos: f64 = if rng.gen_bool(0.5) { 0.7 } else { 0.3 };
        let mut n_pos = 0usize;
        let body: Vec<usize> = (0..len)
            .map(|_| {
                if rng.gen_bool(p_pos) {
                    n_pos += 1;
                    pos + rng.gen_range(0..8)
                } else {
                    neg + rng.gen_range(0..8)
                }
            })
            .collect();
        let label = usize::from(2 * n_pos > len);
        (body, label)
    }

    fn sample_qnli(&self, rng: &mut StdRng, budget: usize) -> (Vec<usize>, usize) {
        let (_, _, keys) = self.pools();
        let q = keys + rng.gen_range(0..8);
        let ctx_len = rng.gen_range(4..=budget - 2);
        let mut body = vec![q, SEP];
        let contains = rng.gen_bool(0.5);
        let insert_at = rng.gen_range(0..ctx_len);
        for i in 0..ctx_len {
            if contains && i == insert_at {
                body.push(q);
            } else {
                // filler from a region disjoint from the key tokens
                body.push(keys + 8 + rng.gen_range(0..16));
            }
        }
        (body, usize::from(contains))
    }

    fn sample_mrpc(&self, rng: &mut StdRng, budget: usize) -> (Vec<usize>, usize) {
        let (_, _, keys) = self.pools();
        let content = keys + 8;
        let half = (budget - 1) / 2;
        let len = rng.gen_range(3..=half.min(8));
        let seg1: Vec<usize> = (0..len).map(|_| content + rng.gen_range(0..16)).collect();
        let paraphrase = rng.gen_bool(0.5);
        let mut seg2 = seg1.clone();
        if paraphrase {
            seg2.shuffle(rng);
        } else {
            // perturb one token
            let i = rng.gen_range(0..len);
            seg2[i] = content + ((seg2[i] - content + 1 + rng.gen_range(0..14)) % 16);
            seg2.shuffle(rng);
        }
        let mut body = seg1;
        body.push(SEP);
        body.extend(seg2);
        (body, usize::from(paraphrase))
    }

    fn sample_mnli(&self, rng: &mut StdRng, _budget: usize) -> (Vec<usize>, usize) {
        let (_, _, keys) = self.pools();
        let content = keys + 8;
        let key = rng.gen_range(0..14);
        let label = rng.gen_range(0..3usize); // 0 entail, 1 neutral, 2 contradict
        let second = match label {
            0 => key,                                 // same key → entailment
            2 => (key + 1) % 16,                      // successor → contradiction
            _ => (key + 2 + rng.gen_range(0..12)) % 16, // anything else → neutral
        };
        let mut body = vec![content + key];
        for _ in 0..3 {
            body.push(content + 16 + rng.gen_range(0..8));
        }
        body.push(SEP);
        body.push(content + second);
        for _ in 0..3 {
            body.push(content + 16 + rng.gen_range(0..8));
        }
        (body, label)
    }

    /// Deterministic dataset.
    pub fn dataset(&self, n: usize, seed: u64) -> Vec<(Vec<usize>, Vec<bool>, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }

    /// Pack into a batch plus labels.
    pub fn batch(
        &self,
        examples: &[(Vec<usize>, Vec<bool>, usize)],
    ) -> (TokenBatch, Vec<usize>) {
        let b = examples.len();
        let mut ids = Vec::with_capacity(b * self.seq_len);
        let mut valid = Vec::with_capacity(b * self.seq_len);
        let mut labels = Vec::with_capacity(b);
        for (i, v, l) in examples {
            ids.extend_from_slice(i);
            valid.extend_from_slice(v);
            labels.push(*l);
        }
        (TokenBatch::with_mask(ids, b, self.seq_len, valid), labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_generate_valid_examples() {
        let mut rng = StdRng::seed_from_u64(11);
        for kind in ClassifyKind::ALL {
            let task = ClassifyTask::new(kind, 96, 24);
            for _ in 0..100 {
                let (ids, valid, label) = task.sample(&mut rng);
                assert_eq!(ids.len(), 24);
                assert_eq!(valid.len(), 24);
                assert!(label < kind.classes());
                assert_eq!(ids[0], CLS);
                // padding aligns with mask
                for (t, v) in ids.iter().zip(&valid) {
                    if !v {
                        assert_eq!(*t, PAD);
                    }
                }
            }
        }
    }

    #[test]
    fn sst2_label_matches_majority() {
        let task = ClassifyTask::new(ClassifyKind::Sst2, 96, 24);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let (ids, valid, label) = task.sample(&mut rng);
            let (pos, neg, _) = task.pools();
            let mut n_pos = 0;
            let mut n_neg = 0;
            for (t, v) in ids.iter().zip(&valid) {
                if !v || *t == CLS {
                    continue;
                }
                if (pos..pos + 8).contains(t) {
                    n_pos += 1;
                } else if (neg..neg + 8).contains(t) {
                    n_neg += 1;
                }
            }
            assert_eq!(label, usize::from(n_pos > n_neg));
        }
    }

    #[test]
    fn qnli_label_matches_containment() {
        let task = ClassifyTask::new(ClassifyKind::Qnli, 96, 24);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let (ids, valid, label) = task.sample(&mut rng);
            let q = ids[1];
            let contains = ids[3..]
                .iter()
                .zip(&valid[3..])
                .any(|(&t, &v)| v && t == q);
            assert_eq!(label, usize::from(contains));
        }
    }

    #[test]
    fn label_balance() {
        // every class appears reasonably often
        for kind in ClassifyKind::ALL {
            let task = ClassifyTask::new(kind, 96, 24);
            let data = task.dataset(300, 5);
            for c in 0..kind.classes() {
                let count = data.iter().filter(|(_, _, l)| *l == c).count();
                assert!(count > 40, "{kind:?} class {c}: {count}");
            }
        }
    }
}
