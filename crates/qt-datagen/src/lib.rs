//! Synthetic task generators standing in for the paper's datasets.
//!
//! The reproduction cannot ship SQuAD/GLUE/LibriSpeech/WikiText, so each
//! evaluation exercises the *same code path and metric* on a synthetic
//! distribution (see DESIGN.md for the substitution argument):
//!
//! - [`SpanTask`] — SQuAD-style extractive QA, scored by token-overlap F1;
//! - [`ClassifyTask`] — a four-task GLUE-style suite (`sst2`-, `qnli`-,
//!   `mrpc`-, `mnli`-like), scored by accuracy;
//! - [`AsrTask`] — sequence-to-sequence transcription of noisy repeated
//!   frames, scored by word error rate;
//! - [`LmTask`] — a structured order-1 Markov language, scored by
//!   perplexity.
//!
//! All generators are deterministic given a seed and emit padded
//! variable-length batches, so attention masking is load-bearing (which
//! the approximate-softmax experiments require).

#![warn(missing_docs)]

mod asr;
mod classify;
mod lm;
mod span;

pub use asr::{AsrExample, AsrTask};
pub use classify::{ClassifyKind, ClassifyTask};
pub use lm::LmTask;
pub use span::{SpanExample, SpanTask};

/// Reserved token ids shared by all tasks.
pub mod tokens {
    /// Padding.
    pub const PAD: usize = 0;
    /// Sequence-start / classification token.
    pub const CLS: usize = 1;
    /// Separator.
    pub const SEP: usize = 2;
    /// Decoder start-of-sequence.
    pub const BOS: usize = 3;
    /// End-of-sequence.
    pub const EOS: usize = 4;
    /// First free content token.
    pub const FIRST_CONTENT: usize = 5;
}
