//! Synthetic speech-recognition task (LibriSpeech stand-in, Table 5).
//!
//! "Audio" is simulated as a frame sequence in which each target token is
//! emitted 1–3 times (duration variability) with occasional noise frames —
//! the same many-to-one alignment structure an ASR encoder-decoder has to
//! learn. The decoder transcribes autoregressively and is scored by word
//! error rate (WER).

use crate::tokens::*;
use qt_transformer::TokenBatch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One utterance: noisy frames in, clean transcript out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsrExample {
    /// Encoder frame tokens (padded).
    pub frames: Vec<usize>,
    /// Frame validity mask.
    pub frames_valid: Vec<bool>,
    /// Clean transcript (no BOS/EOS).
    pub transcript: Vec<usize>,
}

/// Generator of synthetic ASR examples.
#[derive(Debug, Clone)]
pub struct AsrTask {
    /// Vocabulary size (shared encoder/decoder).
    pub vocab: usize,
    /// Padded encoder length.
    pub frame_len: usize,
    /// Maximum transcript length (decoder length = this + 2 for BOS/EOS).
    pub max_words: usize,
    /// Probability of a noise frame between emissions.
    pub noise_prob: f64,
}

impl AsrTask {
    /// Default task.
    pub fn new(vocab: usize, frame_len: usize, max_words: usize) -> Self {
        Self {
            vocab,
            frame_len,
            max_words,
            noise_prob: 0.1,
        }
    }

    /// Decoder sequence length (`max_words + BOS + EOS`).
    pub fn dec_len(&self) -> usize {
        self.max_words + 2
    }

    const NOISE: usize = FIRST_CONTENT; // a single dedicated noise token

    /// Words are drawn from this range.
    fn word_range(&self) -> (usize, usize) {
        (FIRST_CONTENT + 1, self.vocab)
    }

    /// Sample one utterance.
    pub fn sample(&self, rng: &mut StdRng) -> AsrExample {
        let (w_lo, w_hi) = self.word_range();
        let n_words = rng.gen_range(2..=self.max_words);
        let transcript: Vec<usize> = (0..n_words).map(|_| rng.gen_range(w_lo..w_hi)).collect();
        let mut frames = Vec::with_capacity(self.frame_len);
        for &w in &transcript {
            let repeats = rng.gen_range(1..=3);
            for _ in 0..repeats {
                if frames.len() < self.frame_len {
                    frames.push(w);
                }
            }
            if rng.gen_bool(self.noise_prob) && frames.len() < self.frame_len {
                frames.push(Self::NOISE);
            }
        }
        let used = frames.len().min(self.frame_len);
        frames.resize(self.frame_len, PAD);
        let mut frames_valid = vec![true; used];
        frames_valid.resize(self.frame_len, false);
        AsrExample {
            frames,
            frames_valid,
            transcript,
        }
    }

    /// Deterministic dataset.
    pub fn dataset(&self, n: usize, seed: u64) -> Vec<AsrExample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }

    /// Pack into `(encoder_batch, decoder_batch, targets)` for teacher-
    /// forced training: the decoder sees `[BOS, w_1 … w_n, PAD…]` and the
    /// targets are `[w_1 … w_n, EOS, ignore…]`.
    pub fn batch(&self, examples: &[AsrExample]) -> (TokenBatch, TokenBatch, Vec<usize>) {
        let b = examples.len();
        let dl = self.dec_len();
        let mut enc_ids = Vec::with_capacity(b * self.frame_len);
        let mut enc_valid = Vec::with_capacity(b * self.frame_len);
        let mut dec_ids = Vec::with_capacity(b * dl);
        let mut dec_valid = Vec::with_capacity(b * dl);
        let mut targets = Vec::with_capacity(b * dl);
        for ex in examples {
            enc_ids.extend_from_slice(&ex.frames);
            enc_valid.extend_from_slice(&ex.frames_valid);
            let n = ex.transcript.len();
            dec_ids.push(BOS);
            dec_ids.extend_from_slice(&ex.transcript);
            dec_ids.resize(dec_ids.len() + (dl - 1 - n), PAD);
            let mut dv = vec![true; 1 + n];
            dv.resize(dl, false);
            dec_valid.extend_from_slice(&dv);
            targets.extend_from_slice(&ex.transcript);
            targets.push(EOS);
            targets.extend(std::iter::repeat_n(usize::MAX, dl - 1 - n));
        }
        (
            TokenBatch::with_mask(enc_ids, b, self.frame_len, enc_valid),
            TokenBatch::with_mask(dec_ids, b, dl, dec_valid),
            targets,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_cover_transcript_in_order() {
        let task = AsrTask::new(64, 32, 6);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let ex = task.sample(&mut rng);
            // de-duplicated, noise-free frame sequence == transcript prefix
            let mut dedup = Vec::new();
            for (&f, &v) in ex.frames.iter().zip(&ex.frames_valid) {
                if !v || f == AsrTask::NOISE {
                    continue;
                }
                if dedup.last() != Some(&f) {
                    dedup.push(f);
                }
            }
            // repeats of the same word merge, so compare against the
            // transcript with adjacent duplicates merged too
            let mut merged = Vec::new();
            for &w in &ex.transcript {
                if merged.last() != Some(&w) {
                    merged.push(w);
                }
            }
            let k = dedup.len();
            assert_eq!(&dedup[..], &merged[..k.min(merged.len())]);
        }
    }

    #[test]
    fn batch_layout() {
        let task = AsrTask::new(64, 24, 5);
        let data = task.dataset(3, 1);
        let (enc, dec, targets) = task.batch(&data);
        assert_eq!(enc.batch, 3);
        assert_eq!(dec.seq, task.dec_len());
        assert_eq!(targets.len(), 3 * task.dec_len());
        // first decoder token is BOS, first target is first word
        assert_eq!(dec.ids[0], BOS);
        assert_eq!(targets[0], data[0].transcript[0]);
        // EOS target after the last word
        let n = data[0].transcript.len();
        assert_eq!(targets[n], EOS);
        assert_eq!(targets[task.dec_len() - 1], usize::MAX);
    }

    #[test]
    fn deterministic() {
        let task = AsrTask::new(64, 24, 5);
        assert_eq!(task.dataset(5, 9), task.dataset(5, 9));
    }
}
