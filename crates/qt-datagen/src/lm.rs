//! Structured Markov language for perplexity experiments (WikiText
//! stand-in, Table 6).
//!
//! An order-1 Markov chain over content tokens where every token has a
//! small set of likely successors (sparse, peaked transitions). A model
//! that learns the transition table reaches low perplexity; quantization
//! noise shows up directly as a perplexity increase.

use crate::tokens::*;
use qt_transformer::TokenBatch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Markov language-model task.
#[derive(Debug, Clone)]
pub struct LmTask {
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length per training row.
    pub seq_len: usize,
    /// Likely successors per token.
    pub branching: usize,
    /// Probability mass on the likely successors.
    pub peak_mass: f64,
    table: Vec<Vec<usize>>,
}

impl LmTask {
    /// Build a task; the transition table is derived from `structure_seed`
    /// so the "language" itself is reproducible independent of sampling.
    pub fn new(vocab: usize, seq_len: usize, structure_seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(structure_seed);
        let branching = 4;
        let content = FIRST_CONTENT;
        let table: Vec<Vec<usize>> = (0..vocab)
            .map(|_| {
                (0..branching)
                    .map(|_| content + rng.gen_range(0..vocab - content))
                    .collect()
            })
            .collect();
        Self {
            vocab,
            seq_len,
            branching,
            peak_mass: 0.9,
            table,
        }
    }

    /// Sample one token sequence (starts at BOS, then the chain).
    pub fn sample(&self, rng: &mut StdRng) -> Vec<usize> {
        let content = FIRST_CONTENT;
        let mut seq = Vec::with_capacity(self.seq_len);
        seq.push(BOS);
        let mut cur = content + rng.gen_range(0..self.vocab - content);
        seq.push(cur);
        while seq.len() < self.seq_len {
            cur = if rng.gen_bool(self.peak_mass) {
                self.table[cur][rng.gen_range(0..self.branching)]
            } else {
                content + rng.gen_range(0..self.vocab - content)
            };
            seq.push(cur);
        }
        seq
    }

    /// Deterministic dataset of `n` rows.
    pub fn dataset(&self, n: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }

    /// Pack rows into an LM batch: inputs are the sequence, targets are the
    /// next tokens (shifted left, final position ignored).
    pub fn batch(&self, rows: &[Vec<usize>]) -> (TokenBatch, Vec<usize>) {
        let b = rows.len();
        let mut ids = Vec::with_capacity(b * self.seq_len);
        let mut targets = Vec::with_capacity(b * self.seq_len);
        for row in rows {
            assert_eq!(row.len(), self.seq_len, "row length mismatch");
            ids.extend_from_slice(row);
            targets.extend(row[1..].iter().copied());
            targets.push(qt_autograd_ignore());
        }
        (TokenBatch::dense(ids, b, self.seq_len), targets)
    }

    /// Theoretical per-token entropy of the chain in nats (perplexity
    /// floor = `exp(entropy)`), ignoring the uniform-restart mass overlap.
    pub fn entropy_floor(&self) -> f64 {
        let content_count = (self.vocab - FIRST_CONTENT) as f64;
        let p_peak = self.peak_mass / self.branching as f64;
        let p_rest = (1.0 - self.peak_mass) / content_count;
        // branching tokens get p_peak (+ tiny rest mass, ignored)
        
        -(self.branching as f64) * p_peak * p_peak.ln()
            - (content_count - self.branching as f64) * p_rest * p_rest.ln().min(0.0)
    }
}

/// The ignore-index sentinel (re-exported to avoid a dependency cycle).
fn qt_autograd_ignore() -> usize {
    usize::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_follow_the_chain_mostly() {
        let task = LmTask::new(128, 32, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            let s = task.sample(&mut rng);
            assert_eq!(s.len(), 32);
            assert_eq!(s[0], BOS);
            for w in s[1..].windows(2) {
                total += 1;
                if task.table[w[0]].contains(&w[1]) {
                    hits += 1;
                }
            }
        }
        let frac = hits as f64 / total as f64;
        assert!(frac > 0.8, "peaked transitions should dominate: {frac}");
    }

    #[test]
    fn batch_targets_are_shifted() {
        let task = LmTask::new(128, 8, 0);
        let rows = task.dataset(2, 3);
        let (batch, targets) = task.batch(&rows);
        assert_eq!(batch.batch, 2);
        assert_eq!(targets.len(), 16);
        assert_eq!(targets[0], rows[0][1]);
        assert_eq!(targets[7], usize::MAX); // last position ignored
        assert_eq!(targets[8], rows[1][1]);
    }

    #[test]
    fn structure_seed_controls_language() {
        let a = LmTask::new(64, 16, 1).dataset(3, 9);
        let b = LmTask::new(64, 16, 1).dataset(3, 9);
        let c = LmTask::new(64, 16, 2).dataset(3, 9);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn entropy_floor_positive() {
        let task = LmTask::new(128, 32, 0);
        let h = task.entropy_floor();
        assert!(h > 0.3 && h < 5.0, "{h}");
    }
}
