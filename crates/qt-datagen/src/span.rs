//! SQuAD-style synthetic span extraction.
//!
//! Each example is `[CLS, q, SEP, c_1 … c_n, SEP, PAD…]`. Exactly one
//! context position holds the *marker* token equal to the question token
//! `q`; the answer is the span of `answer_len` payload tokens that follows
//! it. The model must attend from the question to the matching marker —
//! the same needle-finding structure as extractive QA — and is scored with
//! the token-overlap F1 used for SQuAD.

use crate::tokens::*;
use qt_transformer::TokenBatch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One span-extraction example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanExample {
    /// Padded token ids (length `seq_len`).
    pub ids: Vec<usize>,
    /// Validity mask.
    pub valid: Vec<bool>,
    /// Answer start position (inclusive).
    pub start: usize,
    /// Answer end position (inclusive).
    pub end: usize,
}

/// Generator of span-extraction examples.
#[derive(Debug, Clone)]
pub struct SpanTask {
    /// Model vocabulary size (tokens are drawn below this).
    pub vocab: usize,
    /// Padded sequence length.
    pub seq_len: usize,
    /// Number of distinct question keys.
    pub num_keys: usize,
    /// Answer span length.
    pub answer_len: usize,
    /// Probability that a filler position holds a *decoy* key (a key
    /// token different from the question), forcing sharp attention.
    pub decoy_prob: f64,
}

impl SpanTask {
    /// Default task sized for the simulation-scale models
    /// (vocab ≥ 96 recommended).
    pub fn new(vocab: usize, seq_len: usize) -> Self {
        Self {
            vocab,
            seq_len,
            num_keys: 8,
            answer_len: 2,
            decoy_prob: 0.25,
        }
    }

    /// Sample one example.
    pub fn sample(&self, rng: &mut StdRng) -> SpanExample {
        let keys_base = FIRST_CONTENT;
        let content_base = keys_base + self.num_keys;
        assert!(
            self.vocab > content_base + 8,
            "vocab too small for span task"
        );
        let q = keys_base + rng.gen_range(0..self.num_keys);
        // variable-length context leaves room for padding
        let min_ctx = self.answer_len + 4;
        let max_ctx = self.seq_len - 4; // CLS q SEP … SEP
        let ctx_len = rng.gen_range(min_ctx..=max_ctx.max(min_ctx));

        let mut ids = vec![CLS, q, SEP];
        let marker_pos_in_ctx = rng.gen_range(0..=ctx_len - 1 - self.answer_len);
        for i in 0..ctx_len {
            if i == marker_pos_in_ctx {
                ids.push(q); // the marker equals the question key
            } else if rng.gen_bool(self.decoy_prob) {
                // decoy: a *different* key — the model must attend sharply
                // to the exact match, which drives attention logits wide
                let decoy = keys_base
                    + (q - keys_base + 1 + rng.gen_range(0..self.num_keys - 1))
                        % self.num_keys;
                ids.push(decoy);
            } else {
                // filler that never collides with a key token
                ids.push(content_base + rng.gen_range(0..self.vocab - content_base));
            }
        }
        ids.push(SEP);
        let start = 3 + marker_pos_in_ctx;
        let end = start + self.answer_len - 1;
        let used = ids.len();
        ids.resize(self.seq_len, PAD);
        let mut valid = vec![true; used];
        valid.resize(self.seq_len, false);
        SpanExample {
            ids,
            valid,
            start,
            end,
        }
    }

    /// Deterministic dataset of `n` examples.
    pub fn dataset(&self, n: usize, seed: u64) -> Vec<SpanExample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }

    /// Pack examples into a batch plus per-row `(start, end)` targets.
    pub fn batch(&self, examples: &[SpanExample]) -> (TokenBatch, Vec<(usize, usize)>) {
        let b = examples.len();
        let mut ids = Vec::with_capacity(b * self.seq_len);
        let mut valid = Vec::with_capacity(b * self.seq_len);
        let mut targets = Vec::with_capacity(b);
        for ex in examples {
            ids.extend_from_slice(&ex.ids);
            valid.extend_from_slice(&ex.valid);
            targets.push((ex.start, ex.end));
        }
        (
            TokenBatch::with_mask(ids, b, self.seq_len, valid),
            targets,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn examples_are_well_formed() {
        let task = SpanTask::new(96, 32);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let ex = task.sample(&mut rng);
            assert_eq!(ex.ids.len(), 32);
            assert_eq!(ex.ids[0], CLS);
            assert_eq!(ex.ids[2], SEP);
            assert!(ex.start <= ex.end && ex.end < 32);
            // answer positions must be valid (not padding)
            assert!(ex.valid[ex.start] && ex.valid[ex.end]);
            // marker token equals the question token
            assert_eq!(ex.ids[ex.start], ex.ids[1]);
            // exactly one marker in the context
            let q = ex.ids[1];
            let count = ex.ids[3..]
                .iter()
                .zip(&ex.valid[3..])
                .filter(|&(&t, &v)| v && t == q)
                .count();
            assert_eq!(count, 1, "{:?}", ex.ids);
        }
    }

    #[test]
    fn deterministic_datasets() {
        let task = SpanTask::new(96, 24);
        assert_eq!(task.dataset(10, 7), task.dataset(10, 7));
        assert_ne!(task.dataset(10, 7), task.dataset(10, 8));
    }

    #[test]
    fn batching() {
        let task = SpanTask::new(96, 24);
        let data = task.dataset(4, 1);
        let (batch, targets) = task.batch(&data);
        assert_eq!(batch.batch, 4);
        assert_eq!(batch.seq, 24);
        assert_eq!(targets.len(), 4);
        assert_eq!(batch.ids[..24], data[0].ids[..]);
    }

    #[test]
    fn padding_present() {
        // with variable-length contexts, some rows must contain padding
        let task = SpanTask::new(96, 32);
        let data = task.dataset(50, 3);
        assert!(data.iter().any(|ex| ex.valid.iter().any(|&v| !v)));
    }
}
