//! Loss functions with fused, numerically-stable backward passes.

use crate::{Tape, Var};
use qt_tensor::Tensor;

/// Sentinel target meaning "ignore this position" (padding) in
/// [`Tape::cross_entropy`].
pub const IGNORE_INDEX: usize = usize::MAX;

impl Tape {
    /// Mean cross-entropy between `logits` (`[..., C]`, flattened to rows)
    /// and integer `targets` (one per row; [`IGNORE_INDEX`] rows are
    /// excluded from both the mean and the gradient).
    ///
    /// Forward uses a stable log-softmax; backward is the fused
    /// `(softmax - onehot) / n_valid`.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` does not equal the number of rows, or if a
    /// non-ignored target is out of range.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize]) -> Var {
        let classes = *self
            .value(logits)
            .shape()
            .last()
            .expect("cross_entropy on scalar");
        let rows = self.value(logits).len() / classes;
        assert_eq!(targets.len(), rows, "one target per logit row required");
        let ls = self.value(logits).log_softmax_lastdim();
        let mut n_valid = 0usize;
        let mut total = 0.0f64;
        for (r, &t) in targets.iter().enumerate() {
            if t == IGNORE_INDEX {
                continue;
            }
            assert!(t < classes, "target {t} out of range ({classes} classes)");
            n_valid += 1;
            total -= ls.data()[r * classes + t] as f64;
        }
        let n = n_valid.max(1) as f32;
        let loss = Tensor::scalar((total / n as f64) as f32);
        let targets = targets.to_vec();
        self.unary(logits, loss, move |g, parents, _| {
            let sm = parents.softmax_lastdim();
            let mut dl = sm;
            for (r, &t) in targets.iter().enumerate() {
                let row = &mut dl.data_mut()[r * classes..(r + 1) * classes];
                if t == IGNORE_INDEX {
                    row.iter_mut().for_each(|x| *x = 0.0);
                } else {
                    row[t] -= 1.0;
                }
            }
            dl.mul_scalar(g.data()[0] / n)
        })
    }

    /// Mean squared error between `pred` and a constant `target` of the
    /// same shape.
    pub fn mse(&mut self, pred: Var, target: &Tensor) -> Var {
        assert_eq!(
            self.value(pred).shape(),
            target.shape(),
            "mse shape mismatch"
        );
        let n = target.len() as f32;
        let diff = self.value(pred).sub(target);
        let loss = Tensor::scalar(diff.data().iter().map(|d| d * d).sum::<f32>() / n);
        let target = target.clone();
        self.unary(pred, loss, move |g, parents, _| {
            parents
                .sub(&target)
                .mul_scalar(2.0 * g.data()[0] / n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_perfect_prediction() {
        let mut t = Tape::new();
        // Extremely confident, correct logits → loss ≈ 0.
        let logits = t.leaf(
            Tensor::from_vec(vec![100.0, 0.0, 0.0, 0.0, 100.0, 0.0], &[2, 3]),
            true,
        );
        let loss = t.cross_entropy(logits, &[0, 1]);
        assert!(t.value(loss).data()[0] < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform() {
        let mut t = Tape::new();
        let logits = t.leaf(Tensor::zeros(&[1, 4]), true);
        let loss = t.cross_entropy(logits, &[2]);
        assert!((t.value(loss).data()[0] - (4.0f32).ln()).abs() < 1e-6);
        let g = t.backward(loss);
        let gl = g.get(logits).unwrap();
        // softmax - onehot = 0.25 everywhere except target (-0.75)
        assert!((gl.data()[2] + 0.75).abs() < 1e-6);
        assert!((gl.data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_ignores_padding() {
        let mut t = Tape::new();
        let logits = t.leaf(Tensor::zeros(&[3, 2]), true);
        let loss = t.cross_entropy(logits, &[0, IGNORE_INDEX, 1]);
        // mean over 2 valid rows
        assert!((t.value(loss).data()[0] - (2.0f32).ln()).abs() < 1e-6);
        let g = t.backward(loss);
        let gl = g.get(logits).unwrap();
        assert_eq!(&gl.data()[2..4], &[0.0, 0.0]); // padded row gets no grad
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let x0 = Tensor::from_vec(vec![0.2, -0.7, 1.1, 0.0, 0.5, -0.5], &[2, 3]);
        let targets = [2usize, 0];
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone(), true);
        let loss = tape.cross_entropy(x, &targets);
        let g = tape.backward(loss);
        let gx = g.get(x).unwrap().clone();
        for idx in 0..6 {
            let eval = |v: f32| {
                let mut x1 = x0.clone();
                x1.data_mut()[idx] = v;
                let mut t2 = Tape::new();
                let xv = t2.leaf(x1, false);
                let l = t2.cross_entropy(xv, &targets);
                t2.value(l).data()[0]
            };
            let eps = 1e-2;
            let fd = (eval(x0.data()[idx] + eps) - eval(x0.data()[idx] - eps)) / (2.0 * eps);
            assert!((gx.data()[idx] - fd).abs() < 1e-3, "idx {idx}");
        }
    }

    #[test]
    fn mse_gradient() {
        let mut t = Tape::new();
        let p = t.leaf(Tensor::from_vec(vec![1.0, 3.0], &[2]), true);
        let target = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        let loss = t.mse(p, &target);
        assert!((t.value(loss).data()[0] - 2.5).abs() < 1e-6); // (1 + 4)/2
        let g = t.backward(loss);
        assert_eq!(g.get(p).unwrap().data(), &[1.0, 2.0]); // 2*(p-t)/n
    }
}
