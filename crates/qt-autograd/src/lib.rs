//! Tape-based reverse-mode automatic differentiation over [`qt_tensor`].
//!
//! The paper fine-tunes Transformers with quantization inserted *between
//! every operation*, including custom gradients for the approximate posit
//! softmax (§5.2). That requires an AD engine where individual ops can carry
//! hand-written backward passes: this crate provides a classic Wengert tape.
//!
//! A [`Tape`] owns every intermediate [`qt_tensor::Tensor`]; operations push
//! nodes and return [`Var`] handles. [`Tape::backward`] walks the tape in
//! reverse and accumulates gradients, summing over broadcast axes so shapes
//! always match the forward operands.
//!
//! # Example
//!
//! ```
//! use qt_autograd::Tape;
//! use qt_tensor::Tensor;
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]), true);
//! let w = tape.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2]), true);
//! let y = tape.mul(x, w);
//! let loss = tape.sum_all(y); // d loss / dx = w
//! let grads = tape.backward(loss);
//! assert_eq!(grads.get(x).unwrap().data(), &[3.0, 4.0]);
//! assert_eq!(grads.get(w).unwrap().data(), &[1.0, 2.0]);
//! ```

#![warn(missing_docs)]

mod loss;
mod ops;

pub use loss::IGNORE_INDEX;

use qt_tensor::Tensor;

/// Handle to a value on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The node index on the tape (stable for the tape's lifetime).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Backward function: given the output gradient, the parents' values and the
/// node's own output value, produce one gradient per parent (already shaped
/// like the parent).
pub type BackwardFn = Box<dyn Fn(&Tensor, &[Tensor], &Tensor) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
    requires_grad: bool,
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
#[derive(Debug, Default)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `var`, if it participated.
    pub fn get(&self, var: Var) -> Option<&Tensor> {
        self.grads.get(var.0).and_then(|g| g.as_ref())
    }

    /// Take ownership of a gradient, leaving `None`.
    pub fn take(&mut self, var: Var) -> Option<Tensor> {
        self.grads.get_mut(var.0).and_then(|g| g.take())
    }
}

/// A Wengert tape: records the forward computation, replays it backward.
///
/// Typical lifecycle: create per step, [`Tape::leaf`] the inputs and
/// parameters, build the graph, call [`Tape::backward`] on a scalar loss,
/// read gradients, drop the tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Record a leaf value. Set `requires_grad` for parameters and for any
    /// input whose gradient you need.
    pub fn leaf(&mut self, value: Tensor, requires_grad: bool) -> Var {
        self.push(value, vec![], None, requires_grad)
    }

    /// The forward value of a variable.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    /// Record a custom operation with an arbitrary backward function.
    ///
    /// This is the extension point used for quantizers (straight-through
    /// estimators) and the approximate posit softmax.
    pub fn custom(&mut self, parents: Vec<Var>, value: Tensor, backward: BackwardFn) -> Var {
        let rg = parents.iter().any(|p| self.nodes[p.0].requires_grad);
        self.push(value, parents, Some(backward), rg)
    }

    fn push(
        &mut self,
        value: Tensor,
        parents: Vec<Var>,
        backward: Option<BackwardFn>,
        requires_grad: bool,
    ) -> Var {
        self.nodes.push(Node {
            value,
            parents,
            backward,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    pub(crate) fn unary(
        &mut self,
        a: Var,
        value: Tensor,
        back: impl Fn(&Tensor, &Tensor, &Tensor) -> Tensor + 'static,
    ) -> Var {
        self.custom(
            vec![a],
            value,
            Box::new(move |g, parents, out| vec![back(g, &parents[0], out)]),
        )
    }

    /// Run reverse-mode accumulation from `loss` (must be scalar — shape
    /// `[]` or a single element).
    ///
    /// # Panics
    ///
    /// Panics if `loss` has more than one element.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward requires a scalar loss (got shape {:?})",
            self.nodes[loss.0].value.shape()
        );
        self.backward_seeded(loss, Tensor::full(self.nodes[loss.0].value.shape(), 1.0))
    }

    /// Reverse-mode accumulation with an explicit seed gradient (must match
    /// the shape of `root`'s value).
    pub fn backward_seeded(&self, root: Var, seed: Tensor) -> Gradients {
        assert_eq!(
            seed.shape(),
            self.nodes[root.0].value.shape(),
            "seed gradient shape mismatch"
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[root.0] = Some(seed);
        // Nodes are in topological order by construction; walk backwards.
        for i in (0..=root.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            let node = &self.nodes[i];
            if let Some(back) = &node.backward {
                let parent_values: Vec<Tensor> = node
                    .parents
                    .iter()
                    .map(|p| self.nodes[p.0].value.clone())
                    .collect();
                let parent_grads = back(&g, &parent_values, &node.value);
                assert_eq!(
                    parent_grads.len(),
                    node.parents.len(),
                    "backward fn returned wrong arity"
                );
                for (p, pg) in node.parents.iter().zip(parent_grads) {
                    if !self.nodes[p.0].requires_grad {
                        continue;
                    }
                    debug_assert_eq!(
                        pg.shape(),
                        self.nodes[p.0].value.shape(),
                        "gradient shape mismatch for parent {p:?}"
                    );
                    match &mut grads[p.0] {
                        Some(acc) => *acc = acc.add(&pg),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
            // keep leaf/root grads
            if node.backward.is_none() || i == root.0 {
                grads[i] = Some(g);
            }
        }
        Gradients { grads }
    }
}

/// Sum `grad` over axes that were broadcast when producing it from a parent
/// of shape `target`: collapses leading extra axes, then sums size-1 axes.
pub fn reduce_grad_to_shape(grad: &Tensor, target: &[usize]) -> Tensor {
    if grad.shape() == target {
        return grad.clone();
    }
    let mut g = grad.clone();
    while g.ndim() > target.len() {
        g = g.sum_axis(0);
    }
    for ax in 0..target.len() {
        if target[ax] == 1 && g.shape()[ax] != 1 {
            let mut shape = g.shape().to_vec();
            shape[ax] = 1;
            g = g.sum_axis(ax).reshape(&shape);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(f32) -> f32, x: f32) -> f32 {
        let eps = 1e-3;
        (f(x + eps) - f(x - eps)) / (2.0 * eps)
    }

    #[test]
    fn add_mul_chain() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::scalar(2.0), true);
        let b = t.leaf(Tensor::scalar(3.0), true);
        let c = t.add(a, b); // 5
        let d = t.mul(c, a); // 10
        let g = t.backward(d);
        // d = (a+b)*a → dd/da = 2a + b = 7, dd/db = a = 2
        assert_eq!(g.get(a).unwrap().data(), &[7.0]);
        assert_eq!(g.get(b).unwrap().data(), &[2.0]);
    }

    #[test]
    fn no_grad_for_frozen_leaf() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::scalar(2.0), true);
        let w = t.leaf(Tensor::scalar(5.0), false);
        let y = t.mul(a, w);
        let g = t.backward(y);
        assert!(g.get(w).is_none());
        assert_eq!(g.get(a).unwrap().data(), &[5.0]);
    }

    #[test]
    fn broadcast_gradient_reduction() {
        // y = x (shape [2,3]) + b (shape [3]); dL/db sums over rows.
        let mut t = Tape::new();
        let x = t.leaf(Tensor::ones(&[2, 3]), true);
        let b = t.leaf(Tensor::zeros(&[3]), true);
        let y = t.add(x, b);
        let l = t.sum_all(y);
        let g = t.backward(l);
        assert_eq!(g.get(b).unwrap().shape(), &[3]);
        assert_eq!(g.get(b).unwrap().data(), &[2.0, 2.0, 2.0]);
        assert_eq!(g.get(x).unwrap().shape(), &[2, 3]);
    }

    #[test]
    fn matmul_gradients_match_finite_difference() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let a0 = Tensor::randn(&[2, 3], &mut rng);
        let b0 = Tensor::randn(&[3, 4], &mut rng);

        let mut t = Tape::new();
        let a = t.leaf(a0.clone(), true);
        let b = t.leaf(b0.clone(), true);
        let y = t.matmul(a, b);
        let l = t.sum_all(y);
        let g = t.backward(l);
        let ga = g.get(a).unwrap().clone();
        let gb = g.get(b).unwrap().clone();

        for idx in 0..6 {
            let f = |v: f32| {
                let mut a1 = a0.clone();
                a1.data_mut()[idx] = v;
                a1.matmul(&b0).sum_all()
            };
            let fd = finite_diff(f, a0.data()[idx]);
            assert!((ga.data()[idx] - fd).abs() < 1e-2, "a[{idx}]");
        }
        for idx in 0..12 {
            let f = |v: f32| {
                let mut b1 = b0.clone();
                b1.data_mut()[idx] = v;
                a0.matmul(&b1).sum_all()
            };
            let fd = finite_diff(f, b0.data()[idx]);
            assert!((gb.data()[idx] - fd).abs() < 1e-2, "b[{idx}]");
        }
    }

    #[test]
    fn reuse_accumulates() {
        // y = x + x → dy/dx = 2
        let mut t = Tape::new();
        let x = t.leaf(Tensor::scalar(1.5), true);
        let y = t.add(x, x);
        let g = t.backward(y);
        assert_eq!(g.get(x).unwrap().data(), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn non_scalar_loss_panics() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::ones(&[2]), true);
        t.backward(x);
    }

    #[test]
    fn custom_op_straight_through() {
        // A fake-quantizer: forward rounds, backward passes through.
        let mut t = Tape::new();
        let x = t.leaf(Tensor::from_vec(vec![0.3, 1.7], &[2]), true);
        let xv = t.value(x).map(|v| v.round());
        let q = t.custom(vec![x], xv, Box::new(|g, _, _| vec![g.clone()]));
        assert_eq!(t.value(q).data(), &[0.0, 2.0]);
        let l = t.sum_all(q);
        let g = t.backward(l);
        assert_eq!(g.get(x).unwrap().data(), &[1.0, 1.0]);
    }
}
