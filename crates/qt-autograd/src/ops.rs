//! Standard differentiable operations on the [`Tape`].

use crate::{reduce_grad_to_shape, Tape, Var};
use qt_tensor::Tensor;

impl Tape {
    /// Elementwise sum with broadcasting.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.custom(
            vec![a, b],
            v,
            Box::new(|g, parents, _| {
                vec![
                    reduce_grad_to_shape(g, parents[0].shape()),
                    reduce_grad_to_shape(g, parents[1].shape()),
                ]
            }),
        )
    }

    /// Elementwise difference with broadcasting.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.custom(
            vec![a, b],
            v,
            Box::new(|g, parents, _| {
                vec![
                    reduce_grad_to_shape(g, parents[0].shape()),
                    reduce_grad_to_shape(&g.neg(), parents[1].shape()),
                ]
            }),
        )
    }

    /// Elementwise product with broadcasting.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.custom(
            vec![a, b],
            v,
            Box::new(|g, parents, _| {
                vec![
                    reduce_grad_to_shape(&g.mul(&parents[1]), parents[0].shape()),
                    reduce_grad_to_shape(&g.mul(&parents[0]), parents[1].shape()),
                ]
            }),
        )
    }

    /// Multiply by a constant scalar.
    pub fn mul_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).mul_scalar(s);
        self.unary(a, v, move |g, _, _| g.mul_scalar(s))
    }

    /// Add a constant scalar.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).add_scalar(s);
        self.unary(a, v, |g, _, _| g.clone())
    }

    /// Negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = self.value(a).neg();
        self.unary(a, v, |g, _, _| g.neg())
    }

    /// Batched matrix product (see [`Tensor::matmul`] for shape rules).
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.custom(
            vec![a, b],
            v,
            Box::new(|g, parents, _| {
                let ga = g.matmul(&parents[1].transpose_last2());
                let gb = parents[0].transpose_last2().matmul(g);
                vec![
                    reduce_grad_to_shape(&ga, parents[0].shape()),
                    reduce_grad_to_shape(&gb, parents[1].shape()),
                ]
            }),
        )
    }

    /// Swap the last two axes.
    pub fn transpose_last2(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose_last2();
        self.unary(a, v, |g, _, _| g.transpose_last2())
    }

    /// Permute axes.
    pub fn permute(&mut self, a: Var, perm: &[usize]) -> Var {
        let v = self.value(a).permute(perm);
        let mut inverse = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        self.unary(a, v, move |g, _, _| g.permute(&inverse))
    }

    /// Reshape (same element count; one axis may be `usize::MAX` to infer).
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let v = self.value(a).clone().reshape(shape);
        let orig = self.value(a).shape().to_vec();
        self.unary(a, v, move |g, _, _| g.clone().reshape(&orig))
    }

    /// GELU activation (tanh approximation).
    pub fn gelu(&mut self, a: Var) -> Var {
        let v = self.value(a).gelu();
        self.unary(a, v, |g, parents, _| g.mul(&parents.gelu_grad()))
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).relu();
        self.unary(a, v, |g, parents, _| {
            g.mul(&parents.map(|x| if x > 0.0 { 1.0 } else { 0.0 }))
        })
    }

    /// Elementwise `tanh`.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).tanh();
        self.unary(a, v, |g, _, out| g.mul(&out.map(|t| 1.0 - t * t)))
    }

    /// Numerically-stable softmax over the last axis (exact float version;
    /// the approximate posit softmax lives in `qt-transformer`).
    pub fn softmax_lastdim(&mut self, a: Var) -> Var {
        let v = self.value(a).softmax_lastdim();
        self.unary(a, v, |g, _, s| {
            // ds = s ∘ (g − Σ_j g_j s_j)
            let dot = g.mul(s).sum_axis(s.ndim() - 1);
            let dot = dot.clone().reshape(&with_trailing_one(dot.shape()));
            s.mul(&g.sub(&dot))
        })
    }

    /// Layer normalisation over the last axis with learned scale and shift.
    ///
    /// `gamma` and `beta` must be 1-D of the last-axis length.
    pub fn layernorm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let v = self
            .value(x)
            .layernorm_lastdim(self.value(gamma), self.value(beta), eps);
        self.custom(
            vec![x, gamma, beta],
            v,
            Box::new(move |g, parents, _| {
                let x = &parents[0];
                let gamma = &parents[1];
                let h = *x.shape().last().expect("layernorm of scalar") as f32;
                let rows = x.len() / h as usize;
                let hn = h as usize;
                let mut dx = Tensor::zeros(x.shape());
                let mut dgamma = Tensor::zeros(gamma.shape());
                let mut dbeta = Tensor::zeros(gamma.shape());
                for r in 0..rows {
                    let xr = &x.data()[r * hn..(r + 1) * hn];
                    let gr = &g.data()[r * hn..(r + 1) * hn];
                    let mean = xr.iter().sum::<f32>() / h;
                    let var = xr.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / h;
                    let inv = 1.0 / (var + eps).sqrt();
                    // xhat and ghat = g * gamma
                    let xhat: Vec<f32> = xr.iter().map(|&v| (v - mean) * inv).collect();
                    let ghat: Vec<f32> = gr
                        .iter()
                        .zip(gamma.data())
                        .map(|(&gv, &gam)| gv * gam)
                        .collect();
                    let mg = ghat.iter().sum::<f32>() / h;
                    let mgx = ghat
                        .iter()
                        .zip(&xhat)
                        .map(|(&a, &b)| a * b)
                        .sum::<f32>()
                        / h;
                    for j in 0..hn {
                        dx.data_mut()[r * hn + j] = inv * (ghat[j] - mg - xhat[j] * mgx);
                        dgamma.data_mut()[j] += gr[j] * xhat[j];
                        dbeta.data_mut()[j] += gr[j];
                    }
                }
                vec![dx, dgamma, dbeta]
            }),
        )
    }

    /// Embedding lookup: `table` is `[V, H]`, `ids` index rows; output shape
    /// is `ids_shape ++ [H]`. The backward pass scatter-adds into the table.
    pub fn embedding(&mut self, table: Var, ids: &[usize], ids_shape: &[usize]) -> Var {
        let v = self.value(table).gather_rows(ids, ids_shape);
        let ids = ids.to_vec();
        self.unary(table, v, move |g, parents, _| {
            let mut dt = Tensor::zeros(parents.shape());
            dt.scatter_add_rows(&ids, g);
            dt
        })
    }

    /// Sum of all elements, as a scalar variable.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum_all());
        self.unary(a, v, |g, parents, _| {
            Tensor::full(parents.shape(), g.data()[0])
        })
    }

    /// Mean of all elements, as a scalar variable.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let n = self.value(a).len() as f32;
        let s = self.sum_all(a);
        self.mul_scalar(s, 1.0 / n)
    }

    /// Concatenate along the last axis.
    pub fn concat_lastdim(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<Tensor> = parts.iter().map(|&p| self.value(p).clone()).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let v = Tensor::concat_lastdim(&refs);
        self.custom(
            parts.to_vec(),
            v,
            Box::new(|g, parents, _| {
                let lead: usize = g.shape()[..g.ndim() - 1].iter().product();
                let glast = g.shape()[g.ndim() - 1];
                let mut outs = Vec::with_capacity(parents.len());
                let mut col = 0usize;
                for p in parents {
                    let plast = p.shape()[p.ndim() - 1];
                    let mut out = Tensor::zeros(p.shape());
                    for r in 0..lead {
                        let src = &g.data()[r * glast + col..r * glast + col + plast];
                        out.data_mut()[r * plast..(r + 1) * plast].copy_from_slice(src);
                    }
                    col += plast;
                    outs.push(out);
                }
                outs
            }),
        )
    }
}

fn with_trailing_one(shape: &[usize]) -> Vec<usize> {
    let mut s = shape.to_vec();
    s.push(1);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Numerical-gradient check harness for composite graphs.
    fn check_grad(
        build: impl Fn(&mut Tape, Var) -> Var,
        x0: &Tensor,
        tol: f32,
    ) {
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone(), true);
        let y = build(&mut tape, x);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        let gx = grads.get(x).expect("no grad").clone();

        for idx in 0..x0.len() {
            let eval = |v: f32| {
                let mut xp = x0.clone();
                xp.data_mut()[idx] = v;
                let mut t2 = Tape::new();
                let xv = t2.leaf(xp, false);
                let yv = build(&mut t2, xv);
                t2.value(yv).sum_all()
            };
            let eps = 1e-2;
            let fd = (eval(x0.data()[idx] + eps) - eval(x0.data()[idx] - eps)) / (2.0 * eps);
            assert!(
                (gx.data()[idx] - fd).abs() < tol,
                "idx {idx}: autograd {} vs fd {fd}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn gelu_grad() {
        let x = Tensor::from_vec(vec![-2.0, -0.3, 0.0, 0.8, 2.5], &[5]);
        check_grad(|t, x| t.gelu(x), &x, 1e-2);
    }

    #[test]
    fn tanh_grad() {
        let x = Tensor::from_vec(vec![-1.0, 0.2, 1.3], &[3]);
        check_grad(|t, x| t.tanh(x), &x, 1e-2);
    }

    #[test]
    fn softmax_grad() {
        let x = Tensor::from_vec(vec![0.1, -0.4, 0.9, 0.3, 0.0, -1.2], &[2, 3]);
        // compose with a weighting so the gradient is non-trivial
        check_grad(
            |t, x| {
                let s = t.softmax_lastdim(x);
                let w = t.leaf(
                    Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.5, 2.0], &[2, 3]),
                    false,
                );
                t.mul(s, w)
            },
            &x,
            1e-2,
        );
    }

    #[test]
    fn layernorm_grad() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&[3, 4], &mut rng);
        check_grad(
            |t, x| {
                let g = t.leaf(Tensor::from_vec(vec![1.0, 2.0, 0.5, 1.5], &[4]), false);
                let b = t.leaf(Tensor::from_vec(vec![0.1, -0.2, 0.0, 0.3], &[4]), false);
                let n = t.layernorm(x, g, b, 1e-5);
                // weight to break symmetry
                let w = t.leaf(Tensor::arange(12).reshape(&[3, 4]), false);
                t.mul(n, w)
            },
            &x,
            2e-2,
        );
    }

    #[test]
    fn layernorm_param_grads() {
        let mut rng = StdRng::seed_from_u64(4);
        let x0 = Tensor::randn(&[5, 4], &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone(), false);
        let g0 = Tensor::ones(&[4]);
        let gamma = tape.leaf(g0.clone(), true);
        let beta = tape.leaf(Tensor::zeros(&[4]), true);
        let y = tape.layernorm(x, gamma, beta, 1e-5);
        let l = tape.sum_all(y);
        let grads = tape.backward(l);
        // dbeta = number of rows per column = 5
        assert_eq!(grads.get(beta).unwrap().data(), &[5.0; 4]);
        // dgamma = sum of xhat per column; finite check on one entry
        let dg = grads.get(gamma).unwrap().clone();
        let eval = |v: f32| {
            let mut g1 = g0.clone();
            g1.data_mut()[2] = v;
            x0.layernorm_lastdim(&g1, &Tensor::zeros(&[4]), 1e-5).sum_all()
        };
        let fd = (eval(1.0 + 1e-2) - eval(1.0 - 1e-2)) / 2e-2;
        assert!((dg.data()[2] - fd).abs() < 1e-2, "{} vs {fd}", dg.data()[2]);
    }

    #[test]
    fn embedding_grad_scatter() {
        let mut tape = Tape::new();
        let table = tape.leaf(Tensor::arange(8).reshape(&[4, 2]), true);
        let e = tape.embedding(table, &[1, 1, 3], &[3]);
        assert_eq!(tape.value(e).shape(), &[3, 2]);
        let l = tape.sum_all(e);
        let g = tape.backward(l);
        let gt = g.get(table).unwrap();
        assert_eq!(gt.at(&[1, 0]), 2.0);
        assert_eq!(gt.at(&[3, 1]), 1.0);
        assert_eq!(gt.at(&[0, 0]), 0.0);
    }

    #[test]
    fn permute_reshape_grads() {
        let x = Tensor::arange(8).reshape(&[2, 2, 2]);
        check_grad(
            |t, x| {
                let p = t.permute(x, &[2, 0, 1]);
                let r = t.reshape(p, &[4, 2]);
                let w = t.leaf(Tensor::arange(8).reshape(&[4, 2]), false);
                t.mul(r, w)
            },
            &x,
            1e-2,
        );
    }

    #[test]
    fn concat_grad_splits() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[2, 2]), true);
        let b = tape.leaf(Tensor::ones(&[2, 3]), true);
        let c = tape.concat_lastdim(&[a, b]);
        assert_eq!(tape.value(c).shape(), &[2, 5]);
        let w = tape.leaf(Tensor::arange(10).reshape(&[2, 5]), false);
        let y = tape.mul(c, w);
        let l = tape.sum_all(y);
        let g = tape.backward(l);
        assert_eq!(g.get(a).unwrap().data(), &[0.0, 1.0, 5.0, 6.0]);
        assert_eq!(g.get(b).unwrap().data(), &[2.0, 3.0, 4.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn matmul_batched_broadcast_grad() {
        let mut rng = StdRng::seed_from_u64(9);
        // weights [3,2] broadcast over batch [2, 4, 3]
        let x0 = Tensor::randn(&[2, 4, 3], &mut rng);
        let w0 = Tensor::randn(&[3, 2], &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone(), false);
        let w = tape.leaf(w0.clone(), true);
        let y = tape.matmul(x, w);
        let l = tape.sum_all(y);
        let g = tape.backward(l);
        let gw = g.get(w).unwrap().clone();
        assert_eq!(gw.shape(), &[3, 2]);
        let eval = |idx: usize, v: f32| {
            let mut w1 = w0.clone();
            w1.data_mut()[idx] = v;
            x0.matmul(&w1).sum_all()
        };
        for idx in 0..6 {
            let eps = 1e-2;
            let fd = (eval(idx, w0.data()[idx] + eps) - eval(idx, w0.data()[idx] - eps)) / (2.0 * eps);
            assert!((gw.data()[idx] - fd).abs() < 2e-2, "idx {idx}");
        }
    }
}
