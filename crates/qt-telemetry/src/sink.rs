//! The telemetry sink: one object every producer reports into.
//!
//! A [`TelemetrySink`] owns the windowed series, the SLO engine, the
//! per-replica flight recorders, and the request trace book, and
//! exposes one named method per event the serving stack produces
//! (arrival, dispatch, outcome, breaker transition, crash, …). Each
//! method fans the event out to every subsystem that cares: an outcome
//! bumps fleet and replica counters, feeds the latency histogram,
//! updates every SLO, lands in the replica's flight ring, and closes
//! the request's trace.
//!
//! Producers hold an `Option<&`[`TelemetryHandle`]`>` — the qt-trace
//! pattern — so a `None` sink costs nothing on the hot path. All
//! timestamps are virtual µs; the sink records no wall-clock data, so
//! everything it exports is byte-identical at any `QT_THREADS`.

use crate::flight::{FlightDump, FlightRecorder};
use crate::reqtrace::{TraceBook, TraceId};
use crate::series::{Scope, SeriesSet, WindowedSeries};
use crate::slo::{AlertEvent, SloEngine, SloSpec};
use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

/// How a sink is put together.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Window width for every series and SLO bucket, virtual µs.
    pub interval_us: u64,
    /// Windows retained per series (the ring bound).
    pub retain_windows: usize,
    /// Objectives to track (empty = no SLO accounting).
    pub slos: Vec<SloSpec>,
    /// Flight-recorder ring capacity per replica.
    pub flight_capacity: usize,
    /// Where to write flight dumps; `None` keeps them in memory only.
    pub flight_dir: Option<PathBuf>,
    /// Mint a [`TraceId`] and build a span tree per request.
    pub trace_requests: bool,
    /// Seed for trace-id minting.
    pub seed: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            interval_us: 100_000,
            retain_windows: 512,
            slos: vec![SloSpec::availability(0.999)],
            flight_capacity: 256,
            flight_dir: None,
            trace_requests: true,
            seed: 0,
        }
    }
}

/// Shared handle to a sink (single-threaded interior mutability, the
/// same shape as `qt_trace::TraceHandle`).
pub type TelemetryHandle = Rc<RefCell<TelemetrySink>>;

/// The telemetry plane of one run.
#[derive(Debug)]
pub struct TelemetrySink {
    cfg: TelemetryConfig,
    series: SeriesSet,
    slo: SloEngine,
    flight: Vec<FlightRecorder>,
    dumps: Vec<FlightDump>,
    book: TraceBook,
    latest_us: u64,
}

impl TelemetrySink {
    /// Sink for `replicas` replicas under `cfg`.
    pub fn new(cfg: TelemetryConfig, replicas: usize) -> Self {
        let slo = SloEngine::new(cfg.slos.clone(), cfg.interval_us);
        let flight = (0..replicas.max(1))
            .map(|_| FlightRecorder::new(cfg.flight_capacity))
            .collect();
        let book = TraceBook::new(cfg.seed);
        Self {
            cfg,
            series: SeriesSet::new(),
            slo,
            flight,
            dumps: Vec::new(),
            book,
            latest_us: 0,
        }
    }

    /// `new` wrapped in a [`TelemetryHandle`].
    pub fn handle(cfg: TelemetryConfig, replicas: usize) -> TelemetryHandle {
        Rc::new(RefCell::new(Self::new(cfg, replicas)))
    }

    /// The config the sink was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Latest event timestamp seen, virtual µs.
    pub fn latest_us(&self) -> u64 {
        self.latest_us
    }

    fn touch(&mut self, at_us: u64) {
        self.latest_us = self.latest_us.max(at_us);
    }

    fn counter(&mut self, scope: Scope, name: &str, at_us: u64, delta: u64) {
        self.series.counter_add(
            scope,
            name,
            at_us,
            delta,
            self.cfg.interval_us,
            self.cfg.retain_windows,
        );
    }

    fn gauge(&mut self, scope: Scope, name: &str, at_us: u64, value: f64) {
        self.series.gauge_set(
            scope,
            name,
            at_us,
            value,
            self.cfg.interval_us,
            self.cfg.retain_windows,
        );
    }

    fn hist(&mut self, scope: Scope, name: &str, at_us: u64, x: f32) {
        self.series.observe(
            scope,
            name,
            at_us,
            x,
            self.cfg.interval_us,
            self.cfg.retain_windows,
        );
    }

    fn black_box(&mut self, replica: usize, at_us: u64, kind: &str, detail: Vec<(String, f64)>) {
        if let Some(r) = self.flight.get_mut(replica) {
            r.record(at_us, kind, detail);
        }
    }

    // ---- event surface -------------------------------------------------

    /// A request was admitted at `at_us`; opens its trace when request
    /// tracing is on. Returns the minted trace id, if any.
    pub fn arrival(&mut self, at_us: u64, req_id: u64) -> Option<TraceId> {
        self.touch(at_us);
        self.counter(Scope::Fleet, "arrivals", at_us, 1);
        if self.cfg.trace_requests {
            Some(self.book.begin(req_id, at_us))
        } else {
            None
        }
    }

    /// A request was dispatched to `replica` (`cause` is the dispatch
    /// cause name). Adds a point-span to the request trace.
    pub fn dispatch(&mut self, at_us: u64, req_id: u64, replica: usize, cause: &str) {
        self.touch(at_us);
        self.counter(Scope::Fleet, "dispatch", at_us, 1);
        self.counter(Scope::Replica(replica), "dispatch", at_us, 1);
        self.counter(
            Scope::Replica(replica),
            &format!("dispatch.{cause}"),
            at_us,
            1,
        );
        self.black_box(
            replica,
            at_us,
            &format!("dispatch.{cause}"),
            vec![("req".to_string(), req_id as f64)],
        );
        if self.cfg.trace_requests {
            self.book.span(
                req_id,
                None,
                "dispatch",
                Some(replica as u32),
                at_us,
                at_us,
                vec![],
            );
        }
    }

    /// One service attempt on `replica` spanning
    /// `[start_us, end_us]`; `completed` is false for attempts cut short
    /// by a crash or a lost hedge.
    pub fn attempt(
        &mut self,
        req_id: u64,
        replica: usize,
        start_us: u64,
        end_us: u64,
        flagged: bool,
        completed: bool,
    ) {
        self.touch(end_us.max(start_us));
        if flagged {
            self.counter(Scope::Fleet, "flagged_attempts", start_us, 1);
            self.counter(Scope::Replica(replica), "flagged_attempts", start_us, 1);
        }
        self.black_box(
            replica,
            start_us,
            "attempt",
            vec![
                ("req".to_string(), req_id as f64),
                ("flagged".to_string(), flagged as u64 as f64),
                ("completed".to_string(), completed as u64 as f64),
            ],
        );
        if self.cfg.trace_requests {
            self.book.span(
                req_id,
                None,
                "attempt",
                Some(replica as u32),
                start_us,
                end_us,
                vec![
                    ("flagged".to_string(), flagged as u64 as f64),
                    ("completed".to_string(), completed as u64 as f64),
                ],
            );
        }
    }

    /// A request reached its terminal outcome. `replica` is the serving
    /// replica (None for sheds that never dispatched), `outcome` its
    /// stable name, `served` whether a real answer went out, `shed`
    /// whether it was load-shed, `latency_us` the admission→finish
    /// latency. Feeds counters, the latency histogram, every SLO, the
    /// flight ring, and closes the request trace.
    #[allow(clippy::too_many_arguments)]
    pub fn outcome(
        &mut self,
        at_us: u64,
        req_id: u64,
        replica: Option<usize>,
        outcome: &str,
        served: bool,
        shed: bool,
        latency_us: u64,
    ) {
        self.touch(at_us);
        self.counter(Scope::Fleet, "responses", at_us, 1);
        self.counter(Scope::Fleet, &format!("outcome.{outcome}"), at_us, 1);
        if served {
            self.counter(Scope::Fleet, "served", at_us, 1);
            self.hist(Scope::Fleet, "latency_us", at_us, latency_us as f32);
        } else if shed {
            self.counter(Scope::Fleet, "shed", at_us, 1);
        } else {
            self.counter(Scope::Fleet, "failed", at_us, 1);
        }
        if let Some(r) = replica {
            let scope = Scope::Replica(r);
            self.counter(scope, &format!("outcome.{outcome}"), at_us, 1);
            if served {
                self.counter(scope, "served", at_us, 1);
                self.hist(scope, "latency_us", at_us, latency_us as f32);
            }
            self.black_box(
                r,
                at_us,
                &format!("outcome.{outcome}"),
                vec![
                    ("req".to_string(), req_id as f64),
                    ("latency_us".to_string(), latency_us as f64),
                ],
            );
        }
        self.slo.record(at_us, served, latency_us);
        if self.cfg.trace_requests {
            self.book.end(req_id, at_us, outcome);
        }
    }

    /// A replica's queue depth changed.
    pub fn queue_depth(&mut self, at_us: u64, replica: usize, depth: usize) {
        self.touch(at_us);
        self.gauge(Scope::Replica(replica), "queue_depth", at_us, depth as f64);
    }

    /// Time a request spent queued before pickup.
    pub fn queue_wait(&mut self, at_us: u64, replica: usize, wait_us: u64) {
        self.touch(at_us);
        self.hist(Scope::Fleet, "queue_wait_us", at_us, wait_us as f32);
        self.hist(
            Scope::Replica(replica),
            "queue_wait_us",
            at_us,
            wait_us as f32,
        );
    }

    /// A replica's circuit breaker transitioned `from` → `to`
    /// (`to_code` is the state's numeric code, `unhealthy_rate` the
    /// window rate that drove it). A transition *into* Open freezes the
    /// replica's flight ring.
    #[allow(clippy::too_many_arguments)]
    pub fn breaker(
        &mut self,
        at_us: u64,
        replica: usize,
        from: &str,
        to: &str,
        to_code: f64,
        unhealthy_rate: f64,
    ) {
        self.touch(at_us);
        self.gauge(Scope::Replica(replica), "breaker_state", at_us, to_code);
        self.counter(
            Scope::Replica(replica),
            &format!("breaker.{to}"),
            at_us,
            1,
        );
        self.black_box(
            replica,
            at_us,
            &format!("breaker.{from}->{to}"),
            vec![("unhealthy_rate".to_string(), unhealthy_rate)],
        );
        if to == "open" {
            self.take_dump(replica, at_us, "breaker_open");
        }
    }

    /// A replica crashed; freezes its flight ring.
    pub fn crash(&mut self, at_us: u64, replica: usize) {
        self.touch(at_us);
        self.counter(Scope::Fleet, "crashes", at_us, 1);
        self.counter(Scope::Replica(replica), "crashes", at_us, 1);
        self.black_box(replica, at_us, "crash", vec![]);
        self.take_dump(replica, at_us, "crash");
    }

    /// A replica recovered; `corrupt` marks a snapshot that failed its
    /// CRC on load.
    pub fn recover(&mut self, at_us: u64, replica: usize, corrupt: bool) {
        self.touch(at_us);
        self.counter(Scope::Fleet, "recoveries", at_us, 1);
        self.counter(Scope::Replica(replica), "recoveries", at_us, 1);
        if corrupt {
            self.counter(Scope::Fleet, "snapshot_corrupt", at_us, 1);
            self.counter(Scope::Replica(replica), "snapshot_corrupt", at_us, 1);
        }
        self.black_box(
            replica,
            at_us,
            "recover",
            vec![("corrupt".to_string(), corrupt as u64 as f64)],
        );
    }

    /// A replica saved a snapshot.
    pub fn snapshot_save(&mut self, at_us: u64, replica: usize) {
        self.touch(at_us);
        self.counter(Scope::Fleet, "snapshot_saves", at_us, 1);
        self.counter(Scope::Replica(replica), "snapshot_saves", at_us, 1);
        self.black_box(replica, at_us, "snapshot_save", vec![]);
    }

    /// A request failed over off `replica`.
    pub fn failover(&mut self, at_us: u64, req_id: u64, replica: usize, cause: &str) {
        self.touch(at_us);
        self.counter(Scope::Fleet, "failovers", at_us, 1);
        self.counter(Scope::Replica(replica), "failovers", at_us, 1);
        self.black_box(
            replica,
            at_us,
            &format!("failover.{cause}"),
            vec![("req".to_string(), req_id as f64)],
        );
        if self.cfg.trace_requests {
            self.book.span(
                req_id,
                None,
                &format!("failover.{cause}"),
                Some(replica as u32),
                at_us,
                at_us,
                vec![],
            );
        }
    }

    /// A hedged duplicate of `req_id` was launched on `replica`.
    pub fn hedge(&mut self, at_us: u64, req_id: u64, replica: usize) {
        self.touch(at_us);
        self.counter(Scope::Fleet, "hedges", at_us, 1);
        self.counter(Scope::Replica(replica), "hedges", at_us, 1);
        self.black_box(
            replica,
            at_us,
            "hedge",
            vec![("req".to_string(), req_id as f64)],
        );
        if self.cfg.trace_requests {
            self.book.span(
                req_id,
                None,
                "hedge",
                Some(replica as u32),
                at_us,
                at_us,
                vec![],
            );
        }
    }

    /// The brownout ladder moved `from` → `to` (`severity` is the
    /// destination rung's 0-based index).
    pub fn brownout(&mut self, at_us: u64, from: &str, to: &str, severity: u8) {
        self.touch(at_us);
        self.gauge(Scope::Fleet, "adapt.brownout_level", at_us, severity as f64);
        self.counter(Scope::Fleet, "adapt.brownout_transitions", at_us, 1);
        self.counter(
            Scope::Fleet,
            &format!("adapt.brownout.{from}->{to}"),
            at_us,
            1,
        );
    }

    /// The gray detector ejected `replica` (its windowed p99 ran
    /// `ratio`× the fleet median). The forced breaker-open that follows
    /// freezes the flight ring via [`TelemetrySink::breaker`]; here we
    /// only record *why*.
    pub fn gray_eject(&mut self, at_us: u64, replica: usize, ratio: f64) {
        self.touch(at_us);
        self.counter(Scope::Fleet, "adapt.gray_ejections", at_us, 1);
        self.counter(Scope::Replica(replica), "adapt.gray_ejections", at_us, 1);
        self.black_box(
            replica,
            at_us,
            "gray_eject",
            vec![("ratio".to_string(), ratio)],
        );
    }

    /// An ejected replica posted enough healthy windows to rejoin.
    pub fn gray_rejoin(&mut self, at_us: u64, replica: usize) {
        self.touch(at_us);
        self.counter(Scope::Fleet, "adapt.gray_rejoins", at_us, 1);
        self.counter(Scope::Replica(replica), "adapt.gray_rejoins", at_us, 1);
        self.black_box(replica, at_us, "gray_rejoin", vec![]);
    }

    /// An autoscale lifecycle edge on `replica` (`kind` is one of
    /// `scale_up_start`, `scale_up_done`, `scale_down_start`,
    /// `scale_down_done`; `active` the routable replica count after it).
    pub fn scale(&mut self, at_us: u64, replica: usize, kind: &str, active: usize) {
        self.touch(at_us);
        self.counter(Scope::Fleet, &format!("adapt.{kind}"), at_us, 1);
        self.gauge(Scope::Fleet, "adapt.active_replicas", at_us, active as f64);
        self.black_box(
            replica,
            at_us,
            kind,
            vec![("active".to_string(), active as f64)],
        );
    }

    /// A scrub pass finished on `replica`: `corrected` single-bit
    /// errors fixed in place, `uncorrectable` double-bit detections.
    /// Quiet passes (both zero) are not recorded — a healthy scrubber
    /// is silent in the telemetry plane.
    pub fn scrub(&mut self, at_us: u64, replica: usize, corrected: u64, uncorrectable: u64) {
        if corrected == 0 && uncorrectable == 0 {
            return;
        }
        self.touch(at_us);
        if corrected > 0 {
            self.counter(Scope::Fleet, "scrub.corrected", at_us, corrected);
            self.counter(Scope::Replica(replica), "scrub.corrected", at_us, corrected);
        }
        if uncorrectable > 0 {
            self.counter(Scope::Fleet, "scrub.uncorrectable", at_us, uncorrectable);
            self.counter(
                Scope::Replica(replica),
                "scrub.uncorrectable",
                at_us,
                uncorrectable,
            );
        }
        self.black_box(
            replica,
            at_us,
            "scrub",
            vec![
                ("corrected".to_string(), corrected as f64),
                ("uncorrectable".to_string(), uncorrectable as f64),
            ],
        );
    }

    /// The request read path corrected storage faults transiently while
    /// serving (counted separately from scrubber corrections: these are
    /// faults the scrubber hadn't reached yet).
    pub fn read_corrected(&mut self, at_us: u64, replica: usize, corrected: u64) {
        if corrected == 0 {
            return;
        }
        self.touch(at_us);
        self.counter(Scope::Fleet, "scrub.read_corrected", at_us, corrected);
        self.counter(Scope::Replica(replica), "scrub.read_corrected", at_us, corrected);
    }

    /// A double-bit detection quarantined region `region` on `replica`;
    /// primary serving routes around it until repair completes.
    pub fn quarantine(&mut self, at_us: u64, replica: usize, region: usize) {
        self.touch(at_us);
        self.counter(Scope::Fleet, "scrub.quarantines", at_us, 1);
        self.counter(Scope::Replica(replica), "scrub.quarantines", at_us, 1);
        self.black_box(
            replica,
            at_us,
            "quarantine",
            vec![("region".to_string(), region as f64)],
        );
        self.take_dump(replica, at_us, "quarantine");
    }

    /// A quarantined region was repaired from pristine master weights
    /// after `latency_us` of degraded service.
    pub fn repair(&mut self, at_us: u64, replica: usize, region: usize, latency_us: u64) {
        self.touch(at_us);
        self.counter(Scope::Fleet, "scrub.repairs", at_us, 1);
        self.counter(Scope::Replica(replica), "scrub.repairs", at_us, 1);
        self.hist(Scope::Fleet, "scrub.repair_us", at_us, latency_us as f32);
        self.hist(
            Scope::Replica(replica),
            "scrub.repair_us",
            at_us,
            latency_us as f32,
        );
        self.black_box(
            replica,
            at_us,
            "repair",
            vec![
                ("region".to_string(), region as f64),
                ("latency_us".to_string(), latency_us as f64),
            ],
        );
    }

    // ---- flight dumps --------------------------------------------------

    /// Freeze `replica`'s flight ring now, writing the dump atomically
    /// when a `flight_dir` is configured (write errors are reported to
    /// stderr, never fatal — telemetry must not kill the fleet).
    pub fn take_dump(&mut self, replica: usize, at_us: u64, reason: &str) {
        let Some(rec) = self.flight.get(replica) else {
            return;
        };
        let mut dump = rec.dump(replica, at_us, reason);
        if let Some(dir) = &self.cfg.flight_dir {
            let name = format!("flight_r{replica}_{:03}.json", self.dumps.len());
            let path = dir.join(&name);
            dump.file = Some(name);
            let doc = serde_json::to_string_pretty(&dump.to_json()).unwrap_or_default();
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|_| qt_ckpt::atomic_write_str(&path, &doc))
            {
                eprintln!("qt-telemetry: flight dump {} failed: {e}", path.display());
            }
        }
        self.dumps.push(dump);
    }

    // ---- accessors -----------------------------------------------------

    /// Every windowed series.
    pub fn series(&self) -> &SeriesSet {
        &self.series
    }

    /// One series by scope + name.
    pub fn series_get(&self, scope: Scope, name: &str) -> Option<&WindowedSeries> {
        self.series.get(scope, name)
    }

    /// The SLO engine.
    pub fn slo(&self) -> &SloEngine {
        &self.slo
    }

    /// All alert transitions so far.
    pub fn alerts(&self) -> &[AlertEvent] {
        self.slo.alerts()
    }

    /// The request trace book.
    pub fn book(&self) -> &TraceBook {
        &self.book
    }

    /// All flight dumps taken, in order.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// Per-replica flight recorders.
    pub fn recorders(&self) -> &[FlightRecorder] {
        &self.flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink() -> TelemetrySink {
        TelemetrySink::new(
            TelemetryConfig {
                interval_us: 1_000,
                seed: 7,
                ..TelemetryConfig::default()
            },
            2,
        )
    }

    #[test]
    fn outcome_fans_out_to_every_subsystem() {
        let mut s = sink();
        s.arrival(100, 1);
        s.dispatch(100, 1, 0, "primary");
        s.attempt(1, 0, 100, 600, false, true);
        s.outcome(600, 1, Some(0), "served_primary", true, false, 500);
        assert_eq!(
            s.series_get(Scope::Fleet, "served").unwrap().counter_total(),
            1
        );
        assert_eq!(
            s.series_get(Scope::Replica(0), "served")
                .unwrap()
                .counter_total(),
            1
        );
        assert!(s
            .series_get(Scope::Fleet, "latency_us")
            .unwrap()
            .hist_at(600)
            .is_some());
        assert_eq!(s.slo().trackers()[0].totals(), (1, 0));
        let t = s.book().get(1).unwrap();
        assert!(t.is_complete());
        assert_eq!(t.spans_named("attempt").count(), 1);
        assert!(s.recorders()[0].len() >= 2);
        assert_eq!(s.latest_us(), 600);
    }

    #[test]
    fn crash_and_breaker_open_take_dumps() {
        let mut s = sink();
        s.dispatch(10, 1, 1, "primary");
        s.crash(20, 1);
        s.breaker(30, 1, "closed", "open", 1.0, 0.9);
        assert_eq!(s.dumps().len(), 2);
        assert_eq!(s.dumps()[0].reason, "crash");
        assert_eq!(s.dumps()[1].reason, "breaker_open");
        // The crash dump holds the replica's final events.
        assert!(s.dumps()[0]
            .events
            .iter()
            .any(|e| e.kind == "dispatch.primary"));
        assert!(s.dumps()[0].events.iter().any(|e| e.kind == "crash"));
        assert_eq!(s.dumps()[0].file, None);
    }

    #[test]
    fn dump_writes_relative_file_when_dir_set() {
        let dir = std::env::temp_dir().join("qt_telemetry_sink_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = TelemetrySink::new(
            TelemetryConfig {
                flight_dir: Some(dir.clone()),
                ..TelemetryConfig::default()
            },
            1,
        );
        s.crash(5, 0);
        let f = s.dumps()[0].file.clone().unwrap();
        assert_eq!(f, "flight_r0_000.json");
        let doc = std::fs::read_to_string(dir.join(&f)).unwrap();
        let v = serde_json::from_str(&doc).unwrap();
        assert_eq!(v["schema"], "qt-telemetry/flight/v1");
        assert_eq!(v["reason"], "crash");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shed_without_replica_counts_and_closes_trace() {
        let mut s = sink();
        s.arrival(50, 9);
        s.outcome(50, 9, None, "shed_queue", false, true, 0);
        assert_eq!(
            s.series_get(Scope::Fleet, "shed").unwrap().counter_total(),
            1
        );
        assert_eq!(s.slo().trackers()[0].totals(), (0, 1));
        assert!(s.book().get(9).unwrap().is_complete());
    }
}
