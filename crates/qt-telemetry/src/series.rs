//! Windowed time-series on the virtual clock.
//!
//! A series is a map from *window index* (`at_us / interval_us`) to an
//! aggregate: a counter sum, the latest gauge value, or a log2-magnitude
//! histogram ([`qt_trace::LogHist`], the same binade buckets the rest of
//! the workspace uses). Windows live in a `BTreeMap` pruned to a bounded
//! retention, so a series behaves like a ring buffer over recent virtual
//! time while iterating — and therefore exporting — in deterministic
//! window order.
//!
//! Aggregation is designed to be *arrival-order invariant* for counters
//! and histograms (sums commute) and timestamp-resolved for gauges (the
//! observation with the greatest timestamp in a window wins), so the
//! exported values depend only on the set of `(at_us, value)` events,
//! never on the interleaving the event loop happened to deliver them in.

use qt_trace::LogHist;
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Who a series describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// The whole fleet (or a single-engine runtime).
    Fleet,
    /// One replica, by fleet id.
    Replica(usize),
}

impl Scope {
    /// Stable key prefix (`fleet` or `replica<N>`).
    pub fn key(&self) -> String {
        match self {
            Scope::Fleet => "fleet".to_string(),
            Scope::Replica(r) => format!("replica{r}"),
        }
    }
}

/// What a series aggregates per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotonic event count per window (a rate, once divided by the
    /// interval).
    Counter,
    /// Latest value per window (greatest observation timestamp wins).
    Gauge,
    /// Log2-magnitude histogram of observations per window.
    Hist,
}

impl SeriesKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Hist => "hist",
        }
    }
}

/// One window's aggregate.
#[derive(Debug, Clone, PartialEq)]
enum WindowValue {
    Counter(u64),
    Gauge { at_us: u64, value: f64 },
    Hist(LogHist),
}

/// One named, windowed time-series.
#[derive(Debug, Clone)]
pub struct WindowedSeries {
    kind: SeriesKind,
    interval_us: u64,
    retain: usize,
    windows: BTreeMap<u64, WindowValue>,
    /// Windows evicted by the retention bound (so exports can say what
    /// they do not show).
    evicted: u64,
}

impl WindowedSeries {
    /// Empty series of `kind` with `interval_us`-wide windows, keeping at
    /// most `retain` of them.
    pub fn new(kind: SeriesKind, interval_us: u64, retain: usize) -> Self {
        Self {
            kind,
            interval_us: interval_us.max(1),
            retain: retain.max(1),
            windows: BTreeMap::new(),
            evicted: 0,
        }
    }

    /// The aggregate kind.
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    /// Window width, µs.
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// Windows currently retained.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` when no window has data.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Windows evicted by the retention bound so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    fn idx(&self, at_us: u64) -> u64 {
        at_us / self.interval_us
    }

    fn prune(&mut self) {
        while self.windows.len() > self.retain {
            if let Some((&oldest, _)) = self.windows.iter().next() {
                self.windows.remove(&oldest);
                self.evicted += 1;
            }
        }
    }

    /// Add `delta` to the counter window covering `at_us`.
    pub fn counter_add(&mut self, at_us: u64, delta: u64) {
        debug_assert_eq!(self.kind, SeriesKind::Counter);
        let idx = self.idx(at_us);
        match self.windows.entry(idx).or_insert(WindowValue::Counter(0)) {
            WindowValue::Counter(c) => *c += delta,
            _ => unreachable!("kind checked at creation"),
        }
        self.prune();
    }

    /// Set the gauge window covering `at_us`; within a window the
    /// observation with the greatest timestamp wins (ties: last write).
    pub fn gauge_set(&mut self, at_us: u64, value: f64) {
        debug_assert_eq!(self.kind, SeriesKind::Gauge);
        let idx = self.idx(at_us);
        match self
            .windows
            .entry(idx)
            .or_insert(WindowValue::Gauge { at_us, value })
        {
            WindowValue::Gauge {
                at_us: prev_at,
                value: prev,
            } => {
                if at_us >= *prev_at {
                    *prev_at = at_us;
                    *prev = value;
                }
            }
            _ => unreachable!("kind checked at creation"),
        }
        self.prune();
    }

    /// Record one scalar into the histogram window covering `at_us`.
    pub fn observe(&mut self, at_us: u64, x: f32) {
        debug_assert_eq!(self.kind, SeriesKind::Hist);
        let idx = self.idx(at_us);
        match self
            .windows
            .entry(idx)
            .or_insert_with(|| WindowValue::Hist(LogHist::default()))
        {
            WindowValue::Hist(h) => h.observe(x),
            _ => unreachable!("kind checked at creation"),
        }
        self.prune();
    }

    /// Counter value of the window covering `at_us` (0 when absent).
    pub fn counter_at(&self, at_us: u64) -> u64 {
        match self.windows.get(&self.idx(at_us)) {
            Some(WindowValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Gauge value of the window covering `at_us`, if any.
    pub fn gauge_at(&self, at_us: u64) -> Option<f64> {
        match self.windows.get(&self.idx(at_us)) {
            Some(WindowValue::Gauge { value, .. }) => Some(*value),
            _ => None,
        }
    }

    /// Histogram of the window covering `at_us`, if any.
    pub fn hist_at(&self, at_us: u64) -> Option<&LogHist> {
        match self.windows.get(&self.idx(at_us)) {
            Some(WindowValue::Hist(h)) => Some(h),
            _ => None,
        }
    }

    /// Sum of all retained counter windows.
    pub fn counter_total(&self) -> u64 {
        self.windows
            .values()
            .map(|w| match w {
                WindowValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// The series as `[window_start_us, value]` pairs in window order —
    /// the deterministic export shape. Counter windows export the count,
    /// gauge windows the value, histogram windows
    /// `{count, p50, p99}` (binade-resolution quantiles).
    pub fn to_json(&self) -> Value {
        let windows: Vec<Value> = self
            .windows
            .iter()
            .map(|(idx, w)| {
                let start = idx * self.interval_us;
                let v = match w {
                    WindowValue::Counter(c) => json!(*c),
                    WindowValue::Gauge { value, .. } => json!(*value),
                    WindowValue::Hist(h) => json!({
                        "count": h.zeros + h.count() + h.nonfinite,
                        "p50": h.quantile(0.5).unwrap_or(0.0),
                        "p99": h.quantile(0.99).unwrap_or(0.0),
                    }),
                };
                json!([start, v])
            })
            .collect();
        json!({
            "kind": self.kind.name(),
            "interval_us": self.interval_us,
            "evicted": self.evicted,
            "windows": windows,
        })
    }
}

/// A registry of named windowed series, keyed `scope.name` in
/// deterministic order.
#[derive(Debug, Clone, Default)]
pub struct SeriesSet {
    series: BTreeMap<String, WindowedSeries>,
}

impl SeriesSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(scope: Scope, name: &str) -> String {
        format!("{}.{name}", scope.key())
    }

    fn entry(
        &mut self,
        scope: Scope,
        name: &str,
        kind: SeriesKind,
        interval_us: u64,
        retain: usize,
    ) -> &mut WindowedSeries {
        self.series
            .entry(Self::key(scope, name))
            .or_insert_with(|| WindowedSeries::new(kind, interval_us, retain))
    }

    /// Add `delta` to counter `scope.name` at `at_us`.
    pub fn counter_add(
        &mut self,
        scope: Scope,
        name: &str,
        at_us: u64,
        delta: u64,
        interval_us: u64,
        retain: usize,
    ) {
        self.entry(scope, name, SeriesKind::Counter, interval_us, retain)
            .counter_add(at_us, delta);
    }

    /// Set gauge `scope.name` at `at_us`.
    pub fn gauge_set(
        &mut self,
        scope: Scope,
        name: &str,
        at_us: u64,
        value: f64,
        interval_us: u64,
        retain: usize,
    ) {
        self.entry(scope, name, SeriesKind::Gauge, interval_us, retain)
            .gauge_set(at_us, value);
    }

    /// Observe into histogram `scope.name` at `at_us`.
    pub fn observe(
        &mut self,
        scope: Scope,
        name: &str,
        at_us: u64,
        x: f32,
        interval_us: u64,
        retain: usize,
    ) {
        self.entry(scope, name, SeriesKind::Hist, interval_us, retain)
            .observe(at_us, x);
    }

    /// A series by scope + name.
    pub fn get(&self, scope: Scope, name: &str) -> Option<&WindowedSeries> {
        self.series.get(&Self::key(scope, name))
    }

    /// All series in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &WindowedSeries)> {
        self.series.iter()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_windows_sum_and_key_by_interval() {
        let mut s = WindowedSeries::new(SeriesKind::Counter, 100, 16);
        s.counter_add(10, 1);
        s.counter_add(99, 2);
        s.counter_add(100, 5);
        assert_eq!(s.counter_at(50), 3);
        assert_eq!(s.counter_at(150), 5);
        assert_eq!(s.counter_at(250), 0);
        assert_eq!(s.counter_total(), 8);
    }

    #[test]
    fn gauge_latest_timestamp_wins_regardless_of_order() {
        let mut a = WindowedSeries::new(SeriesKind::Gauge, 100, 16);
        a.gauge_set(40, 1.0);
        a.gauge_set(60, 2.0);
        let mut b = WindowedSeries::new(SeriesKind::Gauge, 100, 16);
        b.gauge_set(60, 2.0);
        b.gauge_set(40, 1.0);
        assert_eq!(a.gauge_at(0), Some(2.0));
        assert_eq!(a.gauge_at(0), b.gauge_at(0));
    }

    #[test]
    fn retention_bounds_window_count() {
        let mut s = WindowedSeries::new(SeriesKind::Counter, 10, 4);
        for t in 0..100 {
            s.counter_add(t * 10, 1);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.evicted(), 96);
        // Oldest retained window is index 96.
        assert_eq!(s.counter_at(960), 1);
        assert_eq!(s.counter_at(0), 0);
    }

    #[test]
    fn hist_windows_expose_quantiles() {
        let mut s = WindowedSeries::new(SeriesKind::Hist, 1000, 8);
        for _ in 0..10 {
            s.observe(500, 3.0);
        }
        let h = s.hist_at(999).unwrap();
        assert_eq!(h.count(), 10);
        let j = s.to_json();
        assert_eq!(j["kind"], "hist");
        assert_eq!(j["windows"][0][0], 0.0);
        assert_eq!(j["windows"][0][1]["count"], 10.0);
    }

    #[test]
    fn set_iterates_in_key_order() {
        let mut set = SeriesSet::new();
        set.counter_add(Scope::Replica(1), "served", 0, 1, 100, 8);
        set.counter_add(Scope::Fleet, "arrivals", 0, 1, 100, 8);
        let keys: Vec<&String> = set.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["fleet.arrivals", "replica1.served"]);
        assert_eq!(
            set.get(Scope::Fleet, "arrivals").unwrap().counter_total(),
            1
        );
    }
}
