//! Deterministic renderers: the telemetry scoreboard and line exports.
//!
//! [`telemetry_report`] turns a finished [`TelemetrySink`] into the
//! `BENCH_telemetry.json` scoreboard (schema `qt-telemetry/report/v1`);
//! [`timeseries_jsonl`] / [`alerts_jsonl`] render line-oriented exports
//! for plotting; [`export_to_trace`] copies the request span trees and
//! alert transitions into a `qt_trace::TraceSession`, so the existing
//! Perfetto/JSONL exporters carry the telemetry plane too. Everything
//! here is a pure function of the sink — no wall clock, no absolute
//! paths — so every artifact byte-compares across thread counts and
//! output directories.

use crate::sink::TelemetrySink;
use qt_trace::TraceSession;
use serde_json::{json, Value};

/// The run's telemetry scoreboard as a deterministic JSON document
/// (schema `qt-telemetry/report/v1`).
pub fn telemetry_report(sink: &TelemetrySink) -> Value {
    let series: Vec<Value> = sink
        .series()
        .iter()
        .map(|(key, s)| {
            let mut v = s.to_json();
            if let Value::Object(o) = &mut v {
                o.insert("name".to_string(), Value::String(key.clone()));
            }
            v
        })
        .collect();
    let slos: Vec<Value> = sink.slo().trackers().iter().map(|t| t.to_json()).collect();
    let alerts: Vec<Value> = sink.alerts().iter().map(|a| a.to_json()).collect();
    let dumps: Vec<Value> = sink
        .dumps()
        .iter()
        .map(|d| {
            let file = d.file.as_ref().map(Value::from).unwrap_or(Value::Null);
            json!({
                "replica": d.replica,
                "at_us": d.at_us,
                "reason": d.reason.clone(),
                "events": d.events.len(),
                "dropped": d.dropped,
                "file": file,
            })
        })
        .collect();
    let book = sink.book();
    json!({
        "schema": "qt-telemetry/report/v1",
        "interval_us": sink.config().interval_us,
        "end_us": sink.latest_us(),
        "series": series,
        "slos": slos,
        "alerts": alerts,
        "alert_fires": sink.slo().fires(),
        "flight": json!({
            "capacity": sink.config().flight_capacity,
            "dumps": dumps,
        }),
        "traces": json!({
            "requests": book.len(),
            "complete": book.complete_count(),
            "spans": book.span_count(),
        }),
    })
}

/// Every series window as one JSONL line
/// (`{"series":…,"kind":…,"window_us":…,"value":…}` per line, key
/// order), for plotting without loading the whole scoreboard.
pub fn timeseries_jsonl(sink: &TelemetrySink) -> String {
    let mut out = String::new();
    for (key, s) in sink.series().iter() {
        let v = s.to_json();
        if let Some(windows) = v["windows"].as_array() {
            for w in windows {
                let line = json!({
                    "series": key.clone(),
                    "kind": s.kind().name(),
                    "window_us": w[0].clone(),
                    "value": w[1].clone(),
                });
                out.push_str(&serde_json::to_string(&line).unwrap_or_default());
                out.push('\n');
            }
        }
    }
    out
}

/// Every alert transition as one JSONL line, in evaluation order.
pub fn alerts_jsonl(sink: &TelemetrySink) -> String {
    let mut out = String::new();
    for a in sink.alerts() {
        out.push_str(&serde_json::to_string(&a.to_json()).unwrap_or_default());
        out.push('\n');
    }
    out
}

/// Copy the telemetry plane into a qt-trace session so the existing
/// Perfetto/JSONL exporters carry it: one `telemetry.span` instant per
/// request span (virtual timestamps in args, trace id in the metric
/// labels' stead as a tag), one `telemetry.alert` instant per alert
/// transition, and summary counters in the metrics registry.
pub fn export_to_trace(sink: &TelemetrySink, session: &mut TraceSession) {
    for (_, t) in sink.book().iter() {
        for s in &t.spans {
            let mut args = vec![
                ("trace_id".to_string(), t.trace_id.0 as f64),
                ("req".to_string(), t.req_id as f64),
                ("span".to_string(), s.id as f64),
                (
                    "parent".to_string(),
                    s.parent.map(f64::from).unwrap_or(-1.0),
                ),
                ("start_us".to_string(), s.start_us as f64),
                ("end_us".to_string(), s.end_us as f64),
            ];
            if let Some(r) = s.replica {
                args.push(("replica".to_string(), r as f64));
            }
            session.instant(&format!("telemetry.span.{}", s.name), "telemetry", args);
        }
    }
    for a in sink.alerts() {
        session.instant(
            &format!("telemetry.alert.{}.{}", a.slo, a.rule),
            "telemetry",
            vec![
                ("at_us".to_string(), a.at_us as f64),
                ("firing".to_string(), a.firing as u64 as f64),
                ("burn_short".to_string(), a.burn_short),
                ("burn_long".to_string(), a.burn_long),
            ],
        );
    }
    let m = session.metrics_mut();
    m.counter_add(
        "telemetry.trace_spans",
        &[],
        sink.book().span_count() as u64,
    );
    m.counter_add("telemetry.alerts", &[], sink.alerts().len() as u64);
    m.counter_add("telemetry.flight_dumps", &[], sink.dumps().len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TelemetryConfig;

    fn busy_sink() -> TelemetrySink {
        let mut s = TelemetrySink::new(
            TelemetryConfig {
                interval_us: 1_000,
                seed: 3,
                ..TelemetryConfig::default()
            },
            2,
        );
        s.arrival(100, 1);
        s.dispatch(100, 1, 0, "primary");
        s.attempt(1, 0, 100, 700, false, true);
        s.outcome(700, 1, Some(0), "served_primary", true, false, 600);
        s.arrival(200, 2);
        s.outcome(200, 2, None, "shed_queue", false, true, 0);
        s.crash(900, 1);
        s
    }

    #[test]
    fn report_has_schema_and_sections() {
        let s = busy_sink();
        let r = telemetry_report(&s);
        assert_eq!(r["schema"], "qt-telemetry/report/v1");
        assert_eq!(r["end_us"], 900.0);
        assert!(!r["series"].as_array().unwrap().is_empty());
        assert_eq!(r["slos"][0]["good"], 1.0);
        assert_eq!(r["slos"][0]["bad"], 1.0);
        assert_eq!(r["traces"]["requests"], 2.0);
        assert_eq!(r["traces"]["complete"], 2.0);
        assert_eq!(r["flight"]["dumps"][0]["reason"], "crash");
    }

    #[test]
    fn report_is_deterministic() {
        let a = serde_json::to_string(&telemetry_report(&busy_sink())).unwrap();
        let b = serde_json::to_string(&telemetry_report(&busy_sink())).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn jsonl_exports_line_per_window_and_alert() {
        let s = busy_sink();
        let ts = timeseries_jsonl(&s);
        assert!(ts.lines().count() >= s.series().len());
        for line in ts.lines() {
            let v = serde_json::from_str(line).unwrap();
            assert!(v.get("series").is_some());
            assert!(v.get("window_us").is_some());
        }
        // The 50% bad fraction in this tiny run fires the fast rule.
        let al = alerts_jsonl(&s);
        assert_eq!(al.lines().count(), s.alerts().len());
        assert!(!al.is_empty());
        for line in al.lines() {
            let v = serde_json::from_str(line).unwrap();
            assert_eq!(v["slo"], "availability");
        }
    }

    #[test]
    fn trace_export_emits_instants_and_counters() {
        let s = busy_sink();
        let mut session = TraceSession::new("t");
        export_to_trace(&s, &mut session);
        assert_eq!(
            session.metrics().counter_value("telemetry.trace_spans", &[]),
            s.book().span_count() as u64
        );
        assert_eq!(
            session.metrics().counter_value("telemetry.flight_dumps", &[]),
            1
        );
    }
}
