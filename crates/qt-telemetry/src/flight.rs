//! Crash flight recorder: a bounded ring of recent telemetry events.
//!
//! Each replica gets a [`FlightRecorder`] — a fixed-capacity ring of
//! the most recent [`FlightEvent`]s it produced. When the replica
//! crashes or its breaker opens, the ring is frozen into a
//! [`FlightDump`] ("the black box") and written atomically via
//! qt-ckpt, so a post-mortem can see exactly what the replica was doing
//! in its final virtual milliseconds even though the live series have
//! long since rolled their windows.

use serde_json::{json, Value};
use std::collections::VecDeque;

/// One recorded event: a virtual timestamp, a kind, and numeric detail.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Event time, virtual µs.
    pub at_us: u64,
    /// Stable kind name (`arrival`, `dispatch`, `outcome.miss`, …).
    pub kind: String,
    /// Numeric detail in insertion order.
    pub detail: Vec<(String, f64)>,
}

impl FlightEvent {
    /// The event as a deterministic JSON object.
    pub fn to_json(&self) -> Value {
        let detail: Vec<Value> = self
            .detail
            .iter()
            .map(|(k, v)| json!([k.clone(), *v]))
            .collect();
        json!({ "at_us": self.at_us, "kind": self.kind.clone(), "detail": detail })
    }
}

/// Fixed-capacity ring of recent events; recording past capacity drops
/// the oldest event and counts it.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cap: usize,
    dropped: u64,
    ring: VecDeque<FlightEvent>,
}

impl FlightRecorder {
    /// Empty recorder holding at most `cap` events (minimum 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            cap,
            dropped: 0,
            ring: VecDeque::with_capacity(cap),
        }
    }

    /// Capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held (never exceeds capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing has been recorded (or everything dropped).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted by the capacity bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Record one event, evicting the oldest when full.
    pub fn record(&mut self, at_us: u64, kind: &str, detail: Vec<(String, f64)>) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(FlightEvent {
            at_us,
            kind: kind.to_string(),
            detail,
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.ring.iter()
    }

    /// Freeze the current ring into a dump for `replica` at `at_us`.
    pub fn dump(&self, replica: usize, at_us: u64, reason: &str) -> FlightDump {
        FlightDump {
            replica,
            at_us,
            reason: reason.to_string(),
            dropped: self.dropped,
            events: self.ring.iter().cloned().collect(),
            file: None,
        }
    }
}

/// A frozen flight-recorder ring: the black box of one replica at one
/// moment.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Replica the ring belonged to.
    pub replica: usize,
    /// Dump time, virtual µs.
    pub at_us: u64,
    /// Why the dump was taken (`crash`, `breaker_open`, …).
    pub reason: String,
    /// Events evicted before the dump (context for truncation).
    pub dropped: u64,
    /// The retained events, oldest first.
    pub events: Vec<FlightEvent>,
    /// Relative file name the dump was written to, if it was (relative
    /// by construction so artifacts byte-compare across output dirs).
    pub file: Option<String>,
}

impl FlightDump {
    /// The dump as a deterministic JSON document
    /// (schema `qt-telemetry/flight/v1`).
    pub fn to_json(&self) -> Value {
        let events: Vec<Value> = self.events.iter().map(FlightEvent::to_json).collect();
        let file = self.file.as_ref().map(Value::from).unwrap_or(Value::Null);
        json!({
            "schema": "qt-telemetry/flight/v1",
            "replica": self.replica,
            "at_us": self.at_us,
            "reason": self.reason.clone(),
            "dropped": self.dropped,
            "events": events,
            "file": file,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_never_exceeds_capacity() {
        let mut r = FlightRecorder::new(4);
        for t in 0..100u64 {
            r.record(t, "tick", vec![("n".into(), t as f64)]);
            assert!(r.len() <= 4);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 96);
        let times: Vec<u64> = r.events().map(|e| e.at_us).collect();
        assert_eq!(times, vec![96, 97, 98, 99]);
    }

    #[test]
    fn dump_freezes_ring_and_reports_truncation() {
        let mut r = FlightRecorder::new(2);
        r.record(1, "a", vec![]);
        r.record(2, "b", vec![]);
        r.record(3, "c", vec![]);
        let d = r.dump(7, 3, "crash");
        assert_eq!(d.replica, 7);
        assert_eq!(d.reason, "crash");
        assert_eq!(d.dropped, 1);
        assert_eq!(d.events.len(), 2);
        let j = d.to_json();
        assert_eq!(j["schema"], "qt-telemetry/flight/v1");
        assert_eq!(j["events"][0]["kind"], "b");
        assert_eq!(j["events"][1]["at_us"], 3.0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = FlightRecorder::new(0);
        r.record(1, "a", vec![]);
        r.record(2, "b", vec![]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.events().next().unwrap().kind, "b");
    }
}
