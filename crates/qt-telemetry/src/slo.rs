//! Declarative SLOs with error budgets and multi-window burn-rate alerts.
//!
//! An [`SloSpec`] names an objective — "99.9% of requests are served"
//! (availability) or "99% of requests finish under 40 ms" (latency) —
//! and carries the burn-rate rules that alert on it. The math follows
//! the Google SRE workbook's multi-window, multi-burn-rate recipe: a
//! rule fires when the burn rate over *both* a short and a long window
//! is at least its factor, which makes alerts fast on real outages and
//! quiet on blips. All windows are in **virtual** microseconds and are
//! clipped to the start of the run, so a simulation much shorter than
//! "1 hour" of virtual time still alerts on a sustained outage.
//!
//! Events may arrive slightly out of chronological order (the fleet
//! records a response at *pickup* with its future finish timestamp);
//! the tracker therefore buckets observations by timestamp and always
//! evaluates at the latest timestamp seen so far, which makes the alert
//! sequence a pure function of the event *multiset* order the
//! deterministic event loop produces.

use serde_json::{json, Value};
use std::collections::BTreeMap;

/// One µs-denominated burn-rate rule: fire when the burn rate over both
/// windows reaches `factor`.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnRule {
    /// Stable rule name (`fast`, `slow`, …).
    pub name: String,
    /// Short window width, virtual µs.
    pub short_us: u64,
    /// Long window width, virtual µs.
    pub long_us: u64,
    /// Burn-rate threshold both windows must reach.
    pub factor: f64,
}

const MINUTE_US: u64 = 60_000_000;
const HOUR_US: u64 = 3_600_000_000;
const DAY_US: u64 = 86_400_000_000;

impl BurnRule {
    /// The fast-burn page: 5 m / 1 h windows at burn ≥ 14.4 (consumes
    /// 2% of a 30-day budget in an hour).
    pub fn fast() -> Self {
        Self {
            name: "fast".to_string(),
            short_us: 5 * MINUTE_US,
            long_us: HOUR_US,
            factor: 14.4,
        }
    }

    /// The slow-burn ticket: 6 h / 3 d windows at burn ≥ 6.0 (consumes
    /// 10% of a 30-day budget in 6 hours).
    pub fn slow() -> Self {
        Self {
            name: "slow".to_string(),
            short_us: 6 * HOUR_US,
            long_us: 3 * DAY_US,
            factor: 6.0,
        }
    }

    /// The same rule with both windows multiplied by `scale` (at least
    /// 1 µs each) — lets short simulations exercise the full
    /// fast-and-slow pair without simulating days of virtual time.
    pub fn scaled(&self, scale: f64) -> Self {
        let mul = |w: u64| ((w as f64 * scale) as u64).max(1);
        Self {
            name: self.name.clone(),
            short_us: mul(self.short_us),
            long_us: mul(self.long_us),
            factor: self.factor,
        }
    }
}

/// What counts as a *good* event for an objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// Good = the request was served at all.
    Availability,
    /// Good = the request was served *and* finished within `target_us`.
    LatencyP99 {
        /// Latency bound a good request must meet, virtual µs.
        target_us: u64,
    },
}

impl SloKind {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            SloKind::Availability => "availability",
            SloKind::LatencyP99 { .. } => "latency_p99",
        }
    }
}

/// A named objective: a target fraction of good events, a kind, and the
/// burn-rate rules that alert on it.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Stable objective name.
    pub name: String,
    /// Target good fraction in `(0, 1)`, e.g. `0.999`.
    pub target: f64,
    /// What counts as good.
    pub kind: SloKind,
    /// Burn-rate rules (default: [`BurnRule::fast`] + [`BurnRule::slow`]).
    pub rules: Vec<BurnRule>,
}

impl SloSpec {
    /// Availability objective at `target` with the default rule pair.
    pub fn availability(target: f64) -> Self {
        Self {
            name: "availability".to_string(),
            target,
            kind: SloKind::Availability,
            rules: vec![BurnRule::fast(), BurnRule::slow()],
        }
    }

    /// Latency objective: `target` fraction of requests finish within
    /// `target_us`, with the default rule pair.
    pub fn latency_p99(target: f64, target_us: u64) -> Self {
        Self {
            name: "latency_p99".to_string(),
            target,
            kind: SloKind::LatencyP99 { target_us },
            rules: vec![BurnRule::fast(), BurnRule::slow()],
        }
    }

    /// The spec with every rule's windows multiplied by `scale`.
    pub fn with_window_scale(mut self, scale: f64) -> Self {
        self.rules = self.rules.iter().map(|r| r.scaled(scale)).collect();
        self
    }

    /// Error budget: the allowed bad fraction, floored at a tiny
    /// positive value so a `target` of exactly 1.0 cannot divide by
    /// zero.
    pub fn budget(&self) -> f64 {
        (1.0 - self.target).max(1e-12)
    }
}

/// One alert state *transition* (fire or resolve) — recorded only on
/// change, so an outage produces exactly one fire and one resolve per
/// rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Evaluation timestamp, virtual µs.
    pub at_us: u64,
    /// Objective name.
    pub slo: String,
    /// Rule name.
    pub rule: String,
    /// `true` = fired, `false` = resolved.
    pub firing: bool,
    /// Burn rate over the rule's short window at evaluation.
    pub burn_short: f64,
    /// Burn rate over the rule's long window at evaluation.
    pub burn_long: f64,
}

impl AlertEvent {
    /// The event as a deterministic JSON object.
    pub fn to_json(&self) -> Value {
        json!({
            "at_us": self.at_us,
            "slo": self.slo.clone(),
            "rule": self.rule.clone(),
            "firing": self.firing,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
        })
    }
}

/// Good/bad accounting for one objective, bucketed on the virtual
/// clock.
#[derive(Debug, Clone)]
pub struct SloTracker {
    spec: SloSpec,
    interval_us: u64,
    /// Window index → (good, bad). Kept for the whole run: the long
    /// windows need deep history and a run's bucket count is bounded by
    /// its virtual duration / interval.
    buckets: BTreeMap<u64, (u64, u64)>,
    total_good: u64,
    total_bad: u64,
    firing: Vec<bool>,
}

impl SloTracker {
    /// Fresh tracker for `spec`, bucketing at `interval_us`.
    pub fn new(spec: SloSpec, interval_us: u64) -> Self {
        let firing = vec![false; spec.rules.len()];
        Self {
            spec,
            interval_us: interval_us.max(1),
            buckets: BTreeMap::new(),
            total_good: 0,
            total_bad: 0,
            firing,
        }
    }

    /// The objective.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Whether this objective counts `(served, latency_us)` as good.
    pub fn is_good(&self, served: bool, latency_us: u64) -> bool {
        match self.spec.kind {
            SloKind::Availability => served,
            SloKind::LatencyP99 { target_us } => served && latency_us <= target_us,
        }
    }

    /// Record one event at `at_us`.
    pub fn observe(&mut self, at_us: u64, good: bool) {
        let e = self.buckets.entry(at_us / self.interval_us).or_insert((0, 0));
        if good {
            e.0 += 1;
            self.total_good += 1;
        } else {
            e.1 += 1;
            self.total_bad += 1;
        }
    }

    /// (good, bad) over the window of `width_us` ending at `end_us`,
    /// clipped to the run start.
    fn window_counts(&self, end_us: u64, width_us: u64) -> (u64, u64) {
        let lo = end_us.saturating_sub(width_us) / self.interval_us;
        let hi = end_us / self.interval_us;
        let mut good = 0;
        let mut bad = 0;
        for (_, &(g, b)) in self.buckets.range(lo..=hi) {
            good += g;
            bad += b;
        }
        (good, bad)
    }

    /// Burn rate — (bad fraction over the window) / (error budget) —
    /// over the window of `width_us` ending at `end_us`. Zero when the
    /// window is empty.
    pub fn burn(&self, end_us: u64, width_us: u64) -> f64 {
        let (good, bad) = self.window_counts(end_us, width_us);
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / self.spec.budget()
    }

    /// Re-evaluate every rule at `eval_us`, appending one [`AlertEvent`]
    /// per rule whose firing state changed.
    pub fn evaluate(&mut self, eval_us: u64, out: &mut Vec<AlertEvent>) {
        for (i, rule) in self.spec.rules.iter().enumerate() {
            let burn_short = {
                let (good, bad) = self.window_counts(eval_us, rule.short_us);
                let total = good + bad;
                if total == 0 {
                    0.0
                } else {
                    (bad as f64 / total as f64) / self.spec.budget()
                }
            };
            let burn_long = {
                let (good, bad) = self.window_counts(eval_us, rule.long_us);
                let total = good + bad;
                if total == 0 {
                    0.0
                } else {
                    (bad as f64 / total as f64) / self.spec.budget()
                }
            };
            let now_firing = burn_short >= rule.factor && burn_long >= rule.factor;
            if now_firing != self.firing[i] {
                self.firing[i] = now_firing;
                out.push(AlertEvent {
                    at_us: eval_us,
                    slo: self.spec.name.clone(),
                    rule: rule.name.clone(),
                    firing: now_firing,
                    burn_short,
                    burn_long,
                });
            }
        }
    }

    /// Per-rule firing state, in rule order.
    pub fn firing(&self) -> &[bool] {
        &self.firing
    }

    /// Whole-run budget consumption: (overall bad fraction) / (error
    /// budget). 1.0 means the run exactly spent its budget; above 1.0
    /// the objective is violated.
    pub fn budget_consumed(&self) -> f64 {
        let total = self.total_good + self.total_bad;
        if total == 0 {
            return 0.0;
        }
        (self.total_bad as f64 / total as f64) / self.spec.budget()
    }

    /// (good, bad) totals for the whole run.
    pub fn totals(&self) -> (u64, u64) {
        (self.total_good, self.total_bad)
    }

    /// The tracker's final state as a deterministic JSON object.
    pub fn to_json(&self) -> Value {
        let rules: Vec<Value> = self
            .spec
            .rules
            .iter()
            .zip(&self.firing)
            .map(|(r, &firing)| {
                json!({
                    "name": r.name.clone(),
                    "short_us": r.short_us,
                    "long_us": r.long_us,
                    "factor": r.factor,
                    "firing": firing,
                })
            })
            .collect();
        json!({
            "name": self.spec.name.clone(),
            "kind": self.spec.kind.name(),
            "target": self.spec.target,
            "good": self.total_good,
            "bad": self.total_bad,
            "budget_consumed": self.budget_consumed(),
            "rules": rules,
        })
    }
}

/// All of a run's objectives plus the merged, ordered alert log.
#[derive(Debug, Clone, Default)]
pub struct SloEngine {
    trackers: Vec<SloTracker>,
    alerts: Vec<AlertEvent>,
    latest_us: u64,
}

impl SloEngine {
    /// Engine over `specs`, bucketing at `interval_us`.
    pub fn new(specs: Vec<SloSpec>, interval_us: u64) -> Self {
        Self {
            trackers: specs
                .into_iter()
                .map(|s| SloTracker::new(s, interval_us))
                .collect(),
            alerts: Vec::new(),
            latest_us: 0,
        }
    }

    /// Record one finished request outcome and re-evaluate every rule.
    ///
    /// Evaluation happens at `max(at_us, latest seen)` so events
    /// recorded with a future finish timestamp (the fleet records at
    /// pickup) keep the evaluation clock monotone.
    pub fn record(&mut self, at_us: u64, served: bool, latency_us: u64) {
        self.latest_us = self.latest_us.max(at_us);
        let eval_us = self.latest_us;
        for t in &mut self.trackers {
            let good = t.is_good(served, latency_us);
            t.observe(at_us, good);
            t.evaluate(eval_us, &mut self.alerts);
        }
    }

    /// All alert transitions, in evaluation order.
    pub fn alerts(&self) -> &[AlertEvent] {
        &self.alerts
    }

    /// The trackers, in spec order.
    pub fn trackers(&self) -> &[SloTracker] {
        &self.trackers
    }

    /// Latest evaluation timestamp.
    pub fn latest_us(&self) -> u64 {
        self.latest_us
    }

    /// `true` if any rule of any objective is currently firing.
    pub fn any_firing(&self) -> bool {
        self.trackers
            .iter()
            .any(|t| t.firing().iter().any(|&f| f))
    }

    /// Count of *fire* transitions (ignores resolves).
    pub fn fires(&self) -> usize {
        self.alerts.iter().filter(|a| a.firing).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avail_spec() -> SloSpec {
        // 99.9% availability with tiny windows so tests run in µs.
        SloSpec {
            rules: vec![BurnRule {
                name: "fast".to_string(),
                short_us: 1_000,
                long_us: 10_000,
                factor: 14.4,
            }],
            ..SloSpec::availability(0.999)
        }
    }

    #[test]
    fn healthy_run_never_alerts() {
        let mut e = SloEngine::new(vec![avail_spec()], 100);
        for t in 0..200u64 {
            e.record(t * 50, true, 10);
        }
        assert!(e.alerts().is_empty());
        assert!(!e.any_firing());
        assert_eq!(e.trackers()[0].budget_consumed(), 0.0);
    }

    #[test]
    fn outage_fires_then_resolves_once() {
        let mut e = SloEngine::new(vec![avail_spec()], 100);
        // Healthy warmup, then a hard outage, then recovery long enough
        // for both windows to drain.
        for t in 0..20u64 {
            e.record(t * 50, true, 10);
        }
        for t in 20..60u64 {
            e.record(t * 50, false, 0);
        }
        for t in 60..600u64 {
            e.record(t * 50, true, 10);
        }
        let fires: Vec<&AlertEvent> = e.alerts().iter().filter(|a| a.firing).collect();
        let resolves: Vec<&AlertEvent> = e.alerts().iter().filter(|a| !a.firing).collect();
        assert_eq!(fires.len(), 1, "alerts: {:?}", e.alerts());
        assert_eq!(resolves.len(), 1, "alerts: {:?}", e.alerts());
        assert!(fires[0].at_us < resolves[0].at_us);
        assert!(fires[0].burn_short >= 14.4);
        assert!(!e.any_firing());
        assert!(e.trackers()[0].budget_consumed() > 1.0);
    }

    #[test]
    fn rule_needs_both_windows() {
        // Bad events confined to old buckets: short window over recent
        // time sees no badness, so no alert despite long-window burn.
        let spec = avail_spec();
        let mut t = SloTracker::new(spec, 100);
        for i in 0..10 {
            t.observe(i * 100, false);
        }
        for i in 50..100u64 {
            t.observe(i * 100, true);
        }
        let mut out = Vec::new();
        t.evaluate(10_000, &mut out);
        assert!(out.is_empty());
        assert!(t.burn(10_000, 10_000) > 14.4);
        assert_eq!(t.burn(10_000, 1_000), 0.0);
    }

    #[test]
    fn out_of_order_events_keep_eval_clock_monotone() {
        let mut a = SloEngine::new(vec![avail_spec()], 100);
        // Pickup-order recording: a later finish time arrives first.
        a.record(5_000, true, 10);
        a.record(4_900, false, 0);
        assert_eq!(a.latest_us(), 5_000);
        let mut b = SloEngine::new(vec![avail_spec()], 100);
        b.record(4_900, false, 0);
        b.record(5_000, true, 10);
        // Totals agree regardless of arrival order.
        assert_eq!(a.trackers()[0].totals(), b.trackers()[0].totals());
    }

    #[test]
    fn latency_kind_counts_slow_served_as_bad() {
        let spec = SloSpec {
            rules: vec![],
            ..SloSpec::latency_p99(0.99, 100)
        };
        let mut t = SloTracker::new(spec, 100);
        assert!(t.is_good(true, 100));
        assert!(!t.is_good(true, 101));
        assert!(!t.is_good(false, 10));
        t.observe(0, true);
        t.observe(0, false);
        assert_eq!(t.totals(), (1, 1));
        assert!((t.budget_consumed() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn window_scale_shrinks_rules() {
        let s = SloSpec::availability(0.999).with_window_scale(1e-6);
        assert_eq!(s.rules[0].short_us, 300); // 5 min → 300 µs
        assert_eq!(s.rules[0].long_us, 3_600);
        assert_eq!(s.rules[1].short_us, 21_600);
        assert_eq!(s.rules[1].long_us, 259_200);
    }

    #[test]
    fn target_one_does_not_divide_by_zero() {
        let spec = SloSpec {
            target: 1.0,
            rules: vec![],
            ..SloSpec::availability(1.0)
        };
        let mut t = SloTracker::new(spec, 100);
        t.observe(0, false);
        assert!(t.budget_consumed().is_finite());
    }
}
