//! qt-telemetry: the fleet-wide SLO telemetry plane.
//!
//! qt-trace (spans, metrics, manifests) observes a single run *after the
//! fact*; the serving fleet needs to be *watched while it runs*: live
//! time-series per replica, service-level objectives with error budgets,
//! a causal trace for every request across router → replica → engine
//! hops, and enough recent history around a crash to reconstruct what
//! the dying replica was doing. This crate is that layer:
//!
//! - **Windowed time-series** ([`series`]) — fixed-interval windows
//!   keyed on the discrete-event simulation's *virtual* clock, holding
//!   counter-rates, gauges, and log2 histograms per replica and
//!   fleet-wide. Nothing in a window derives from wall time, so every
//!   export is byte-identical at any `QT_THREADS`.
//! - **SLO engine** ([`slo`]) — declarative objectives (availability,
//!   latency bound) with error-budget accounting and Google-SRE-style
//!   multi-window burn-rate alerts (fast 5m/1h and slow 6h/3d windows in
//!   virtual time, both clipped to the run so short simulations still
//!   alert). Alert transitions are recorded as deterministic events.
//! - **Request-scoped tracing** ([`reqtrace`]) — a [`TraceId`] minted at
//!   admission and propagated through dispatch, retries, hedges, and
//!   failover, so every attempt's span links causally into one
//!   per-request tree; exportable through the existing qt-trace
//!   Perfetto/JSONL exporters.
//! - **Flight recorder** ([`flight`]) — a bounded ring of recent
//!   telemetry events per replica, dumped atomically (qt-ckpt) on crash
//!   or breaker-open for post-mortem analysis.
//!
//! Producers hold an `Option<`[`TelemetryHandle`]`>` exactly like the
//! qt-trace pattern: when it is `None`, the hot path emits nothing.
//! [`report::telemetry_report`] turns a finished sink into the
//! deterministic `BENCH_telemetry.json` scoreboard.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod report;
pub mod reqtrace;
pub mod series;
pub mod sink;
pub mod slo;

pub use flight::{FlightDump, FlightEvent, FlightRecorder};
pub use report::{alerts_jsonl, export_to_trace, telemetry_report, timeseries_jsonl};
pub use reqtrace::{RequestTrace, SpanRec, TraceBook, TraceId};
pub use series::{Scope, SeriesKind, SeriesSet, WindowedSeries};
pub use sink::{TelemetryConfig, TelemetryHandle, TelemetrySink};
pub use slo::{AlertEvent, BurnRule, SloEngine, SloKind, SloSpec, SloTracker};
