//! Request-scoped tracing: one causal span tree per request.
//!
//! A [`TraceId`] is minted deterministically at admission (seed ×
//! request id through splitmix64, the same mixer the retry/fault seeds
//! use elsewhere in the workspace) and follows the request through
//! dispatch, retries, hedges, and failover. Every attempt contributes a
//! span whose parent is the request's root span, so the whole life of a
//! request — including the replica that crashed under it and the
//! replica that finally served it — reads as a single tree. Spans carry
//! *virtual* timestamps only.

use serde_json::{json, Value};
use std::collections::BTreeMap;

/// splitmix64 — the workspace's standard cheap bijective mixer.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 64-bit request-scoped trace identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Deterministically mint the id for `req_id` under `seed`.
    pub fn mint(seed: u64, req_id: u64) -> Self {
        TraceId(splitmix64(seed ^ splitmix64(req_id)))
    }

    /// The id as fixed-width lowercase hex (the export form).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// One span in a request's tree. Span ids are assigned in insertion
/// order, so a parent id is always smaller than its children's.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Id within the request's tree (root is 0).
    pub id: u32,
    /// Parent span id; `None` only for the root.
    pub parent: Option<u32>,
    /// Span name (`request`, `dispatch`, `attempt`, …).
    pub name: String,
    /// Replica the span executed on, if any.
    pub replica: Option<u32>,
    /// Start, virtual µs.
    pub start_us: u64,
    /// End, virtual µs (>= start).
    pub end_us: u64,
    /// Numeric tags in insertion order.
    pub tags: Vec<(String, f64)>,
}

impl SpanRec {
    /// The span as a deterministic JSON object.
    pub fn to_json(&self) -> Value {
        let tags: Vec<Value> = self
            .tags
            .iter()
            .map(|(k, v)| json!([k.clone(), *v]))
            .collect();
        let parent = self.parent.map(Value::from).unwrap_or(Value::Null);
        let replica = self.replica.map(Value::from).unwrap_or(Value::Null);
        json!({
            "id": self.id,
            "parent": parent,
            "name": self.name.clone(),
            "replica": replica,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "tags": tags,
        })
    }
}

/// The span tree of one request.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// The minted trace id.
    pub trace_id: TraceId,
    /// The request id the trace belongs to.
    pub req_id: u64,
    /// `true` once the terminal outcome was recorded.
    pub closed: bool,
    /// Terminal outcome name, once closed.
    pub outcome: Option<String>,
    /// All spans, id order; `spans[0]` is the root.
    pub spans: Vec<SpanRec>,
}

impl RequestTrace {
    fn new(trace_id: TraceId, req_id: u64, at_us: u64) -> Self {
        Self {
            trace_id,
            req_id,
            closed: false,
            outcome: None,
            spans: vec![SpanRec {
                id: 0,
                parent: None,
                name: "request".to_string(),
                replica: None,
                start_us: at_us,
                end_us: at_us,
                tags: Vec::new(),
            }],
        }
    }

    /// Root span (always present).
    pub fn root(&self) -> &SpanRec {
        &self.spans[0]
    }

    /// Spans named `name`.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRec> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Structural completeness: closed, exactly one root, every parent
    /// id resolves to an *earlier* span, and every child's interval
    /// nests inside its parent's.
    pub fn is_complete(&self) -> bool {
        if !self.closed {
            return false;
        }
        let roots = self.spans.iter().filter(|s| s.parent.is_none()).count();
        if roots != 1 || self.spans[0].parent.is_some() {
            return false;
        }
        for s in &self.spans[1..] {
            let Some(p) = s.parent else { return false };
            if p >= s.id {
                return false;
            }
            let parent = &self.spans[p as usize];
            if parent.id != p {
                return false;
            }
            if s.start_us < parent.start_us || s.end_us > parent.end_us {
                return false;
            }
            if s.end_us < s.start_us {
                return false;
            }
        }
        true
    }

    /// The trace as a deterministic JSON object.
    pub fn to_json(&self) -> Value {
        let spans: Vec<Value> = self.spans.iter().map(SpanRec::to_json).collect();
        let outcome = self
            .outcome
            .as_ref()
            .map(Value::from)
            .unwrap_or(Value::Null);
        json!({
            "trace_id": self.trace_id.hex(),
            "req_id": self.req_id,
            "closed": self.closed,
            "outcome": outcome,
            "spans": spans,
        })
    }
}

/// All request traces of a run, keyed by request id.
#[derive(Debug, Clone)]
pub struct TraceBook {
    seed: u64,
    traces: BTreeMap<u64, RequestTrace>,
}

impl TraceBook {
    /// Empty book minting ids under `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            traces: BTreeMap::new(),
        }
    }

    /// Open `req_id`'s trace at admission time `at_us`; returns its
    /// minted id. Re-opening an existing trace is a no-op returning the
    /// original id.
    pub fn begin(&mut self, req_id: u64, at_us: u64) -> TraceId {
        let seed = self.seed;
        self.traces
            .entry(req_id)
            .or_insert_with(|| RequestTrace::new(TraceId::mint(seed, req_id), req_id, at_us))
            .trace_id
    }

    /// Add a span under `req_id`'s tree; returns the span id, or `None`
    /// when the trace was never opened. `parent` defaults to the root.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        req_id: u64,
        parent: Option<u32>,
        name: &str,
        replica: Option<u32>,
        start_us: u64,
        end_us: u64,
        tags: Vec<(String, f64)>,
    ) -> Option<u32> {
        let t = self.traces.get_mut(&req_id)?;
        let id = t.spans.len() as u32;
        let parent = Some(parent.unwrap_or(0).min(id.saturating_sub(1)));
        t.spans.push(SpanRec {
            id,
            parent,
            name: name.to_string(),
            replica,
            start_us,
            end_us: end_us.max(start_us),
            tags,
        });
        Some(id)
    }

    /// Close `req_id`'s trace with its terminal `outcome` at `at_us`
    /// (extends the root span to cover every recorded child).
    pub fn end(&mut self, req_id: u64, at_us: u64, outcome: &str) {
        if let Some(t) = self.traces.get_mut(&req_id) {
            let max_child_end = t.spans[1..]
                .iter()
                .map(|s| s.end_us)
                .max()
                .unwrap_or(at_us);
            t.spans[0].end_us = at_us.max(max_child_end).max(t.spans[0].start_us);
            let min_child_start = t.spans[1..].iter().map(|s| s.start_us).min();
            if let Some(lo) = min_child_start {
                t.spans[0].start_us = t.spans[0].start_us.min(lo);
            }
            t.closed = true;
            t.outcome = Some(outcome.to_string());
        }
    }

    /// A request's trace.
    pub fn get(&self, req_id: u64) -> Option<&RequestTrace> {
        self.traces.get(&req_id)
    }

    /// All traces in request-id order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &RequestTrace)> {
        self.traces.iter()
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// `true` when no trace was opened.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total spans across all traces.
    pub fn span_count(&self) -> usize {
        self.traces.values().map(|t| t.spans.len()).sum()
    }

    /// Traces that pass [`RequestTrace::is_complete`].
    pub fn complete_count(&self) -> usize {
        self.traces.values().filter(|t| t.is_complete()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        let a = TraceId::mint(42, 7);
        assert_eq!(a, TraceId::mint(42, 7));
        assert_ne!(a, TraceId::mint(42, 8));
        assert_ne!(a, TraceId::mint(43, 7));
        assert_eq!(a.hex().len(), 16);
    }

    #[test]
    fn book_builds_a_complete_tree() {
        let mut b = TraceBook::new(1);
        let id = b.begin(5, 100);
        assert_eq!(b.begin(5, 100), id);
        let d = b
            .span(5, None, "dispatch", Some(0), 100, 100, vec![])
            .unwrap();
        let a1 = b
            .span(5, None, "attempt", Some(0), 100, 300, vec![("flagged".into(), 0.0)])
            .unwrap();
        assert_eq!(d, 1);
        assert_eq!(a1, 2);
        assert!(!b.get(5).unwrap().is_complete(), "open trace incomplete");
        b.end(5, 300, "served_primary");
        let t = b.get(5).unwrap();
        assert!(t.is_complete());
        assert_eq!(t.outcome.as_deref(), Some("served_primary"));
        assert_eq!(t.root().end_us, 300);
        assert_eq!(t.spans_named("attempt").count(), 1);
    }

    #[test]
    fn root_stretches_over_children() {
        let mut b = TraceBook::new(1);
        b.begin(9, 200);
        // An attempt recorded with a finish beyond the close timestamp
        // (pickup-order emission) still nests after close.
        b.span(9, None, "attempt", Some(1), 200, 900, vec![]);
        b.end(9, 500, "served_degraded");
        let t = b.get(9).unwrap();
        assert_eq!(t.root().end_us, 900);
        assert!(t.is_complete());
    }

    #[test]
    fn span_on_unopened_request_is_none() {
        let mut b = TraceBook::new(1);
        assert_eq!(b.span(1, None, "attempt", None, 0, 1, vec![]), None);
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn incomplete_shapes_are_rejected() {
        let mut b = TraceBook::new(1);
        b.begin(2, 0);
        b.end(2, 10, "shed_queue");
        let mut t = b.get(2).unwrap().clone();
        assert!(t.is_complete());
        // Forge an orphan: parent pointing at a later id.
        t.spans.push(SpanRec {
            id: 1,
            parent: Some(5),
            name: "x".into(),
            replica: None,
            start_us: 0,
            end_us: 1,
            tags: vec![],
        });
        assert!(!t.is_complete());
    }
}
