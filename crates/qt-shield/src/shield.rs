//! The shield proper: a set of protected regions, a budgeted
//! round-robin scrub cursor, quarantine bookkeeping, and the counters
//! integrity campaigns audit against.

use crate::region::EccRegion;
use crate::secded::{self, Decode};

/// Aggregate integrity counters for one shield instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShieldStats {
    /// Bit flips landed on protected storage by fault injection.
    pub flips_injected: u64,
    /// Words decoded by the scrubber.
    pub words_scrubbed: u64,
    /// Single-bit errors corrected in place by the scrubber.
    pub scrub_corrected: u64,
    /// Single-bit errors corrected transiently on the request read path.
    pub read_corrected: u64,
    /// Uncorrectable (multi-bit) detections, scrub or read path.
    pub uncorrectable: u64,
    /// Regions newly quarantined.
    pub quarantines: u64,
    /// Regions repaired from pristine master weights.
    pub repairs: u64,
}

/// A corrected (or injected) flip position, addressable down to the bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlipFix {
    /// Region index within the shield.
    pub region: usize,
    /// ECC word index within the region.
    pub word: usize,
    /// Bit within the 72-bit codeword (0..64 data, 64..72 check).
    pub bit: u8,
}

/// Result of one budgeted scrub pass.
#[derive(Debug, Clone, Default)]
pub struct ScrubOutcome {
    /// Words decoded under this pass's bandwidth budget.
    pub words_scrubbed: u64,
    /// Exact positions corrected in place.
    pub corrected: Vec<FlipFix>,
    /// Regions newly quarantined by a double-bit detection.
    pub quarantined: Vec<usize>,
}

/// Result of a read-path verification sweep across all regions.
#[derive(Debug, Clone, Default)]
pub struct ReadOutcome {
    /// Transient single-bit corrections performed for this read.
    pub corrected: u64,
    /// Regions newly quarantined by a double-bit detection.
    pub quarantined: Vec<usize>,
}

/// ECC shield over a set of named regions.
#[derive(Debug, Clone)]
pub struct Shield {
    regions: Vec<EccRegion>,
    /// Cumulative word offsets, for global word/bit addressing.
    offsets: Vec<u64>,
    cur_region: usize,
    cur_word: usize,
    stats: ShieldStats,
    corrected_log: Vec<FlipFix>,
}

impl Shield {
    /// Build a shield over already-protected regions.
    pub fn new(regions: Vec<EccRegion>) -> Self {
        let mut offsets = Vec::with_capacity(regions.len() + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for r in &regions {
            acc += r.words() as u64;
            offsets.push(acc);
        }
        Shield {
            regions,
            offsets,
            cur_region: 0,
            cur_word: 0,
            stats: ShieldStats::default(),
            corrected_log: Vec::new(),
        }
    }

    /// Protected regions, in insertion order.
    pub fn regions(&self) -> &[EccRegion] {
        &self.regions
    }

    /// Total ECC words under protection.
    pub fn total_words(&self) -> u64 {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Total protected bits: every data *and* check bit is a fault target.
    pub fn total_bits(&self) -> u64 {
        self.total_words() * secded::CODE_BITS as u64
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> ShieldStats {
        self.stats
    }

    /// Exact positions the scrubber has corrected, in scrub order —
    /// campaigns compare this against the injected-flip log.
    pub fn corrected_log(&self) -> &[FlipFix] {
        &self.corrected_log
    }

    /// Indices of currently quarantined regions.
    pub fn quarantined_regions(&self) -> Vec<usize> {
        self.regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_quarantined())
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether any region is quarantined (primary serving must degrade).
    pub fn has_quarantine(&self) -> bool {
        self.regions.iter().any(|r| r.is_quarantined())
    }

    /// Map a global bit address in `0..total_bits()` onto (region, word,
    /// bit-in-codeword) and flip it.
    pub fn inject_global_bit(&mut self, global_bit: u64) -> FlipFix {
        let word = global_bit / secded::CODE_BITS as u64;
        let bit = (global_bit % secded::CODE_BITS as u64) as u8;
        // offsets is sorted; find the region containing `word`.
        let region = match self.offsets.binary_search(&word) {
            Ok(mut i) => {
                // Land on a boundary: skip any zero-word regions.
                while self.offsets[i + 1] == self.offsets[i] {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        let local = (word - self.offsets[region]) as usize;
        self.inject(region, local, bit);
        FlipFix { region, word: local, bit }
    }

    /// Flip one bit of one region's stored codeword.
    pub fn inject(&mut self, region: usize, word: usize, bit: u8) {
        self.regions[region].inject_flip(word, bit);
        self.stats.flips_injected += 1;
    }

    /// One background scrub pass: decode up to `budget_words` words,
    /// continuing round-robin from where the previous pass stopped.
    /// Single-bit errors are corrected in place; a double-bit detection
    /// quarantines the region and the cursor skips to the next one.
    pub fn scrub(&mut self, budget_words: usize) -> ScrubOutcome {
        let mut out = ScrubOutcome::default();
        if self.total_words() == 0 {
            return out;
        }
        // Cap the budget at the scannable word count so a generous budget
        // is one full pass, not a rescan loop.
        let scannable = |regions: &[EccRegion]| {
            regions
                .iter()
                .filter(|r| !r.is_quarantined())
                .map(|r| r.words() as u64)
                .sum::<u64>()
        };
        let mut budget = (budget_words as u64).min(scannable(&self.regions));
        let mut visited = 0u64;
        while visited < budget {
            // Skip quarantined or empty regions (repair owns them).
            let mut hops = 0;
            while self.regions[self.cur_region].is_quarantined()
                || self.regions[self.cur_region].words() == 0
            {
                self.cur_region = (self.cur_region + 1) % self.regions.len();
                self.cur_word = 0;
                hops += 1;
                if hops > self.regions.len() {
                    return out; // everything quarantined/empty
                }
            }
            let r = self.cur_region;
            let w = self.cur_word;
            visited += 1;
            self.stats.words_scrubbed += 1;
            out.words_scrubbed += 1;
            match self.regions[r].scrub_word(w) {
                Decode::Clean => {}
                Decode::Corrected { bit, .. } => {
                    self.stats.scrub_corrected += 1;
                    let fix = FlipFix { region: r, word: w, bit };
                    self.corrected_log.push(fix);
                    out.corrected.push(fix);
                }
                Decode::Uncorrectable => {
                    self.stats.uncorrectable += 1;
                    self.stats.quarantines += 1;
                    out.quarantined.push(r);
                    // Abandon the region and shrink the pass accordingly.
                    budget = budget.min(visited + scannable(&self.regions));
                    self.cur_region = (r + 1) % self.regions.len();
                    self.cur_word = 0;
                    continue;
                }
            }
            self.cur_word += 1;
            if self.cur_word >= self.regions[r].words() {
                self.cur_word = 0;
                self.cur_region = (r + 1) % self.regions.len();
            }
        }
        out
    }

    /// Read-path sweep before serving from protected storage: verify
    /// every possibly-faulted word, correcting transiently. Regions
    /// already quarantined are skipped (they are awaiting repair and the
    /// caller must route around them).
    pub fn verify_reads(&mut self) -> ReadOutcome {
        let mut out = ReadOutcome::default();
        for (i, r) in self.regions.iter_mut().enumerate() {
            if r.is_quarantined() {
                continue;
            }
            let chk = r.verify_reads();
            out.corrected += chk.corrected;
            if chk.uncorrectable {
                self.stats.uncorrectable += 1;
                self.stats.quarantines += 1;
                out.quarantined.push(i);
            }
        }
        self.stats.read_corrected += out.corrected;
        out
    }

    /// Repair one region from pristine codes (re-quantized master
    /// weights), clearing its quarantine.
    pub fn repair_region(&mut self, region: usize, pristine: &[u16]) {
        self.regions[region].repair_from(pristine);
        self.stats.repairs += 1;
    }

    /// Silent-corruption audit: codes that would decode wrong without a
    /// flag, summed over non-quarantined regions. `pristine` yields the
    /// reference codes per region index.
    pub fn silent_errors<F>(&self, mut pristine: F) -> u64
    where
        F: FnMut(usize) -> Vec<u16>,
    {
        self.regions
            .iter()
            .enumerate()
            .map(|(i, r)| r.silent_errors(&pristine(i)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::EccRegion;

    fn shield3() -> (Shield, Vec<Vec<u16>>) {
        let planes: Vec<Vec<u16>> = (0..3)
            .map(|t| (0..23 + t * 9).map(|i| (i as u16) * 7 + t as u16).collect())
            .collect();
        let regions = planes
            .iter()
            .enumerate()
            .map(|(i, c)| EccRegion::protect(&format!("p{i}"), c))
            .collect();
        (Shield::new(regions), planes)
    }

    #[test]
    fn global_bit_addressing_covers_every_region() {
        let (mut s, planes) = shield3();
        let step = 131; // co-prime stride over the bit space
        let mut hit = [false; 3];
        for k in 0..(s.total_bits() / step) {
            let fix = s.inject_global_bit((k * step) % s.total_bits());
            hit[fix.region] = true;
            assert!(fix.word < s.regions()[fix.region].words());
        }
        assert!(hit.iter().all(|&h| h), "stride missed a region");
        // A full-budget scrub pass corrects every single-bit fault; words
        // with an even number of hits per bit cancel back to clean.
        s.scrub(s.total_words() as usize);
        s.scrub(s.total_words() as usize); // second pass: anything left
        for (i, p) in planes.iter().enumerate() {
            if !s.regions()[i].is_quarantined() {
                assert_eq!(s.regions()[i].silent_errors(p), 0);
            }
        }
    }

    #[test]
    fn budgeted_cursor_resumes_round_robin() {
        let (mut s, _) = shield3();
        let total = s.total_words();
        let mut seen = 0u64;
        while seen < total {
            seen += s.scrub(5).words_scrubbed;
        }
        assert_eq!(seen, total, "cursor covered each word exactly once");
    }

    #[test]
    fn scrub_corrects_and_logs_positions() {
        let (mut s, _) = shield3();
        s.inject(1, 2, 17);
        s.inject(2, 0, 66);
        let out = s.scrub(s.total_words() as usize);
        let mut fixed = out.corrected.clone();
        fixed.sort();
        assert_eq!(
            fixed,
            vec![
                FlipFix { region: 1, word: 2, bit: 17 },
                FlipFix { region: 2, word: 0, bit: 66 },
            ]
        );
        assert_eq!(s.stats().scrub_corrected, 2);
        assert_eq!(s.corrected_log().len(), 2);
    }

    #[test]
    fn double_bit_quarantines_then_repair_restores_exact() {
        let (mut s, planes) = shield3();
        s.inject(1, 3, 5);
        s.inject(1, 3, 41);
        let read = s.verify_reads();
        assert_eq!(read.quarantined, vec![1]);
        assert!(s.has_quarantine());
        // Scrub skips the quarantined region but still covers the rest.
        let out = s.scrub(s.total_words() as usize);
        assert!(out.quarantined.is_empty());
        assert_eq!(
            out.words_scrubbed,
            s.total_words() - s.regions()[1].words() as u64
        );
        s.repair_region(1, &planes[1]);
        assert!(!s.has_quarantine());
        assert!(s.regions()[1].matches_exact(&planes[1]));
        assert_eq!(s.stats().repairs, 1);
        assert_eq!(s.silent_errors(|i| planes[i].clone()), 0);
    }
}
