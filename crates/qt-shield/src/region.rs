//! A contiguous ECC-protected region of packed quantized codes.
//!
//! Storage codes are at most 16 bits wide in this stack (see
//! `ElemFormat` in qt-quant), so four codes pack little-endian into one
//! 64-bit ECC word; each word carries one out-of-band check byte (the
//! parity plane, ~1.5% overhead at 8-bit formats). The region also
//! tracks which words may currently hold injected faults ("dirty"), so
//! the request read path only has to re-verify words that can possibly
//! have rotted — semantically identical to verifying everything,
//! because an untouched word decodes `Clean` by construction.

use crate::secded::{self, Decode};
use std::collections::BTreeSet;

/// Storage codes packed per 64-bit ECC word.
pub const CODES_PER_WORD: usize = 4;

/// Summary of a read-path verification pass over a region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadCheck {
    /// Single-bit errors corrected transiently (storage not rewritten;
    /// the scrubber owns in-place correction).
    pub corrected: u64,
    /// Whether an uncorrectable word was found (region now quarantined).
    pub uncorrectable: bool,
}

/// One named ECC-protected storage plane plus its parity plane.
#[derive(Debug, Clone)]
pub struct EccRegion {
    name: String,
    n_codes: usize,
    words: Vec<u64>,
    check: Vec<u8>,
    quarantined: bool,
    dirty: BTreeSet<u32>,
}

impl EccRegion {
    /// Pack `codes` four-per-word and compute the parity plane.
    pub fn protect(name: &str, codes: &[u16]) -> Self {
        let words = pack(codes);
        let check = words.iter().map(|&w| secded::encode(w)).collect();
        EccRegion {
            name: name.to_string(),
            n_codes: codes.len(),
            words,
            check,
            quarantined: false,
            dirty: BTreeSet::new(),
        }
    }

    /// Region name (the protected tensor's parameter name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of 64-bit ECC words in the region.
    pub fn words(&self) -> usize {
        self.words.len()
    }

    /// Number of protected storage codes.
    pub fn codes_len(&self) -> usize {
        self.n_codes
    }

    /// Whether a double-bit detection has quarantined this region.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Words currently marked as possibly faulted.
    pub fn dirty_words(&self) -> usize {
        self.dirty.len()
    }

    /// Raw stored (word, check) pair — test/audit hook.
    pub fn raw(&self, word: usize) -> (u64, u8) {
        (self.words[word], self.check[word])
    }

    /// Flip one bit of the stored codeword `word`; `bit` addresses the
    /// full 72-bit codeword (64 data + 8 check bits).
    pub fn inject_flip(&mut self, word: usize, bit: u8) {
        let (w, c) = secded::flip(self.words[word], self.check[word], bit);
        self.words[word] = w;
        self.check[word] = c;
        self.dirty.insert(word as u32);
    }

    /// Scrub one word: decode, correct single-bit errors **in place**,
    /// and quarantine the region on an uncorrectable word.
    pub fn scrub_word(&mut self, word: usize) -> Decode {
        let d = secded::decode(self.words[word], self.check[word]);
        match d {
            Decode::Clean => {
                self.dirty.remove(&(word as u32));
            }
            Decode::Corrected { word: w, check: c, .. } => {
                self.words[word] = w;
                self.check[word] = c;
                self.dirty.remove(&(word as u32));
            }
            Decode::Uncorrectable => {
                self.quarantined = true;
            }
        }
        d
    }

    /// Read-path verification: decode every possibly-faulted word
    /// transiently. Corrections are counted but **not** written back;
    /// an uncorrectable word quarantines the region.
    pub fn verify_reads(&mut self) -> ReadCheck {
        let mut out = ReadCheck::default();
        for &w in &self.dirty {
            match secded::decode(self.words[w as usize], self.check[w as usize]) {
                Decode::Clean => {}
                Decode::Corrected { .. } => out.corrected += 1,
                Decode::Uncorrectable => out.uncorrectable = true,
            }
        }
        if out.uncorrectable {
            self.quarantined = true;
        }
        out
    }

    /// Decode the current storage into codes, applying transient
    /// single-bit correction; uncorrectable words decode as stored.
    pub fn codes(&self) -> Vec<u16> {
        let mut out = Vec::with_capacity(self.n_codes);
        for (i, &raw) in self.words.iter().enumerate() {
            let w = match secded::decode(raw, self.check[i]) {
                Decode::Corrected { word, .. } => word,
                _ => raw,
            };
            for k in 0..CODES_PER_WORD {
                if out.len() < self.n_codes {
                    out.push((w >> (16 * k)) as u16);
                }
            }
        }
        out
    }

    /// Rebuild the region from pristine codes (re-quantized from the
    /// f32 master weights), clearing quarantine and dirty state.
    pub fn repair_from(&mut self, pristine: &[u16]) {
        assert_eq!(
            pristine.len(),
            self.n_codes,
            "repair payload shape mismatch for region {:?}",
            self.name
        );
        self.words = pack(pristine);
        self.check = self.words.iter().map(|&w| secded::encode(w)).collect();
        self.quarantined = false;
        self.dirty.clear();
    }

    /// Whether the stored data **and** parity planes are bit-exact with
    /// a fresh encoding of `codes` — the post-repair audit.
    pub fn matches_exact(&self, codes: &[u16]) -> bool {
        if codes.len() != self.n_codes {
            return false;
        }
        let words = pack(codes);
        self.words == words
            && self
                .check
                .iter()
                .zip(words.iter())
                .all(|(&c, &w)| c == secded::encode(w))
    }

    /// Codes that would decode wrong *without being flagged*: the
    /// silent-corruption count against a pristine reference. Quarantined
    /// regions are flagged by definition, so they contribute zero.
    pub fn silent_errors(&self, pristine: &[u16]) -> u64 {
        if self.quarantined {
            return 0;
        }
        self.codes()
            .iter()
            .zip(pristine.iter())
            .filter(|(a, b)| a != b)
            .count() as u64
    }
}

fn pack(codes: &[u16]) -> Vec<u64> {
    codes
        .chunks(CODES_PER_WORD)
        .map(|ch| {
            let mut w = 0u64;
            for (k, &c) in ch.iter().enumerate() {
                w |= (c as u64) << (16 * k);
            }
            w
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(n: usize) -> Vec<u16> {
        (0..n).map(|i| (i as u16).wrapping_mul(0x9E37)).collect()
    }

    #[test]
    fn protect_round_trips_codes() {
        for n in [0usize, 1, 3, 4, 5, 64, 63] {
            let c = codes(n);
            let r = EccRegion::protect("t", &c);
            assert_eq!(r.codes(), c);
            assert_eq!(r.words(), n.div_ceil(CODES_PER_WORD));
            assert!(r.matches_exact(&c));
        }
    }

    #[test]
    fn single_flip_scrubs_back() {
        let c = codes(17);
        let mut r = EccRegion::protect("t", &c);
        r.inject_flip(2, 37);
        assert_eq!(r.dirty_words(), 1);
        // Transient read correction does not rewrite storage.
        assert_eq!(r.verify_reads(), ReadCheck { corrected: 1, uncorrectable: false });
        assert!(!r.matches_exact(&c));
        assert_eq!(r.codes(), c, "read path sees corrected codes");
        // Scrub corrects in place.
        match r.scrub_word(2) {
            Decode::Corrected { bit, .. } => assert_eq!(bit, 37),
            other => panic!("{other:?}"),
        }
        assert!(r.matches_exact(&c));
        assert_eq!(r.dirty_words(), 0);
        assert_eq!(r.silent_errors(&c), 0);
    }

    #[test]
    fn check_bit_flip_scrubs_back() {
        let c = codes(8);
        let mut r = EccRegion::protect("t", &c);
        r.inject_flip(1, 70);
        assert_eq!(r.codes(), c, "data plane untouched by check-bit flip");
        r.scrub_word(1);
        assert!(r.matches_exact(&c));
    }

    #[test]
    fn double_flip_quarantines_and_repair_restores() {
        let c = codes(33);
        let mut r = EccRegion::protect("t", &c);
        r.inject_flip(4, 3);
        r.inject_flip(4, 55);
        assert_eq!(r.scrub_word(4), Decode::Uncorrectable);
        assert!(r.is_quarantined());
        assert_eq!(r.silent_errors(&c), 0, "quarantined corruption is flagged, not silent");
        r.repair_from(&c);
        assert!(!r.is_quarantined());
        assert!(r.matches_exact(&c));
    }

    #[test]
    fn unprotected_double_flip_would_be_silent() {
        // The counterfactual the parity plane exists for: without ECC the
        // same two flips corrupt decoded codes with no flag at all.
        let c = codes(33);
        let mut r = EccRegion::protect("t", &c);
        r.inject_flip(4, 3);
        r.inject_flip(4, 55);
        let decoded = {
            // Bypass quarantine: decode the raw words directly.
            let (w, _) = r.raw(4);
            (0..CODES_PER_WORD).map(|k| (w >> (16 * k)) as u16).collect::<Vec<_>>()
        };
        assert_ne!(&decoded[..], &c[16..20], "raw storage really is corrupt");
    }
}
