//! SEC-DED (72,64) codec: a Hamming code extended with an overall
//! parity bit, applied per 64-bit storage word.
//!
//! Layout follows the classic Hamming convention: codeword positions
//! `1..=71` hold the 64 data bits interleaved with 7 check bits at the
//! power-of-two positions (1, 2, 4, 8, 16, 32, 64); an eighth overall
//! parity bit covers the whole codeword so that single-bit errors are
//! *corrected* (syndrome points at the flipped position) while
//! double-bit errors are *detected* (non-zero syndrome with even
//! overall parity) and never miscorrected.
//!
//! The 8 check bits are stored out-of-band as one check byte per data
//! word: bits 0..7 are the Hamming checks p0..p6, bit 7 is the overall
//! parity. Public bit indices run 0..72: `0..64` address data bits,
//! `64..71` the Hamming check bits, and `71` the overall parity bit.

/// Data bits protected per codeword.
pub const DATA_BITS: u32 = 64;
/// Check bits stored per codeword (7 Hamming + 1 overall parity).
pub const CHECK_BITS: u32 = 8;
/// Total codeword width: any of these bit positions may be flipped and
/// the codec still corrects (one flip) or detects (two flips).
pub const CODE_BITS: u32 = DATA_BITS + CHECK_BITS;

/// For each Hamming check bit `j`, the mask over the 64 *data* bits
/// whose codeword position has bit `j` set.
const MASKS: [u64; 7] = data_masks();
/// Inverse map: codeword position (1..=71) to data bit index, or 0xFF
/// for check-bit positions. Indexed by the 7-bit syndrome.
const POS_TO_DATA: [u8; 128] = pos_to_data();

const fn data_masks() -> [u64; 7] {
    let mut masks = [0u64; 7];
    let mut i = 0u32; // data bit index
    let mut pos = 1u32; // codeword position
    while pos <= 71 {
        if !pos.is_power_of_two() {
            let mut j = 0;
            while j < 7 {
                if pos & (1 << j) != 0 {
                    masks[j] |= 1u64 << i;
                }
                j += 1;
            }
            i += 1;
        }
        pos += 1;
    }
    masks
}

const fn pos_to_data() -> [u8; 128] {
    let mut map = [0xFFu8; 128];
    let mut i = 0u8;
    let mut pos = 1u32;
    while pos <= 71 {
        if !pos.is_power_of_two() {
            map[pos as usize] = i;
            i += 1;
        }
        pos += 1;
    }
    map
}

#[inline]
fn parity64(x: u64) -> u8 {
    (x.count_ones() & 1) as u8
}

#[inline]
fn parity8(x: u8) -> u8 {
    (x.count_ones() & 1) as u8
}

/// Compute the check byte for a data word.
#[inline]
pub fn encode(word: u64) -> u8 {
    let mut check = 0u8;
    let mut j = 0;
    while j < 7 {
        check |= parity64(word & MASKS[j]) << j;
        j += 1;
    }
    // Overall parity: even parity over all 72 bits including itself.
    check | ((parity64(word) ^ parity8(check)) << 7)
}

/// Outcome of decoding one stored (word, check) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decode {
    /// No error detected; the stored word is the encoded word.
    Clean,
    /// Exactly one bit was flipped and has been corrected. `bit` is the
    /// public bit index (0..64 data, 64..71 Hamming check, 71 overall
    /// parity); `word` and `check` are the corrected pair.
    Corrected {
        /// Flipped bit position in public 0..72 indexing.
        bit: u8,
        /// Corrected data word (equals the stored word for check-bit flips).
        word: u64,
        /// Corrected check byte.
        check: u8,
    },
    /// A multi-bit error was detected; the word cannot be trusted and
    /// the region holding it must be quarantined and repaired.
    Uncorrectable,
}

/// Decode a stored (word, check) pair, correcting a single flipped bit
/// anywhere in the 72-bit codeword and detecting double flips.
pub fn decode(word: u64, check: u8) -> Decode {
    let mut syn = 0u32;
    let mut j = 0;
    while j < 7 {
        syn |= ((parity64(word & MASKS[j]) ^ ((check >> j) & 1)) as u32) << j;
        j += 1;
    }
    // Recomputed overall parity over all 72 stored bits: zero when the
    // error count is even, one when odd.
    let ov = parity64(word) ^ parity8(check);
    match (syn, ov) {
        (0, 0) => Decode::Clean,
        (0, 1) => Decode::Corrected {
            bit: (CODE_BITS - 1) as u8,
            word,
            check: check ^ 0x80,
        },
        (s, 1) if s.is_power_of_two() && s <= 64 => {
            let j = s.trailing_zeros() as u8;
            Decode::Corrected {
                bit: DATA_BITS as u8 + j,
                word,
                check: check ^ (1 << j),
            }
        }
        (s, 1) => match POS_TO_DATA[s as usize] {
            // Syndrome addresses a position outside the codeword: only
            // reachable with >= 3 flips. Refuse to "correct".
            0xFF => Decode::Uncorrectable,
            i => {
                let fixed = word ^ (1u64 << i);
                Decode::Corrected {
                    bit: i,
                    word: fixed,
                    check,
                }
            }
        },
        // Non-zero syndrome with even overall parity: double error.
        (_, _) => Decode::Uncorrectable,
    }
}

/// Flip one bit of a stored (word, check) pair, addressing the full
/// 72-bit codeword with the public indexing used by [`Decode`].
#[inline]
pub fn flip(word: u64, check: u8, bit: u8) -> (u64, u8) {
    debug_assert!((bit as u32) < CODE_BITS);
    if (bit as u32) < DATA_BITS {
        (word ^ (1u64 << bit), check)
    } else {
        (word, check ^ (1u8 << (bit as u32 - DATA_BITS)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORDS: [u64; 6] = [
        0,
        u64::MAX,
        0xDEAD_BEEF_CAFE_F00D,
        1,
        0x8000_0000_0000_0000,
        0x5555_5555_5555_5555,
    ];

    #[test]
    fn clean_round_trip() {
        for &w in &WORDS {
            assert_eq!(decode(w, encode(w)), Decode::Clean);
        }
    }

    #[test]
    fn every_single_flip_corrects() {
        for &w in &WORDS {
            let check = encode(w);
            for bit in 0..CODE_BITS as u8 {
                let (fw, fc) = flip(w, check, bit);
                match decode(fw, fc) {
                    Decode::Corrected {
                        bit: b,
                        word: cw,
                        check: cc,
                    } => {
                        assert_eq!(b, bit, "word {w:#x}");
                        assert_eq!(cw, w, "word {w:#x} bit {bit}");
                        assert_eq!(cc, check, "word {w:#x} bit {bit}");
                    }
                    other => panic!("word {w:#x} bit {bit}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_double_flip_detected() {
        for &w in &WORDS {
            let check = encode(w);
            for a in 0..CODE_BITS as u8 {
                for b in (a + 1)..CODE_BITS as u8 {
                    let (fw, fc) = flip(w, check, a);
                    let (fw, fc) = flip(fw, fc, b);
                    assert_eq!(
                        decode(fw, fc),
                        Decode::Uncorrectable,
                        "word {w:#x} bits {a},{b}"
                    );
                }
            }
        }
    }
}
