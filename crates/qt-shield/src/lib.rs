//! qt-shield — SEC-DED memory integrity for quantized code storage.
//!
//! The paper's runtime keeps 8-bit weight codes resident in accelerator
//! SRAM — exactly the memory most exposed to soft errors. PR 1's fault
//! campaigns showed `TensorHealth` can *detect* corruption; this crate
//! turns detection into *correction*:
//!
//! - [`secded`]: a (72,64) Hamming-extended codec — one check byte per
//!   64-bit word corrects any single flipped bit (data or parity) and
//!   detects all double flips without ever miscorrecting.
//! - [`EccRegion`]: a named plane of packed storage codes (four u16
//!   codes per ECC word) plus its parity plane, with fault injection,
//!   in-place scrubbing, transient read-path correction, quarantine,
//!   and bit-exact repair from pristine codes.
//! - [`Shield`]: a set of regions walked by a budgeted round-robin
//!   scrub cursor, with the counters and corrected-position log that
//!   integrity campaigns audit against injected faults.
//!
//! The crate is deliberately zero-dependency and clock-free: callers
//! (qt-fleet's DES, qt-ckpt's loader) decide *when* to scrub; the
//! shield only decides *what* a pass under a bandwidth budget touches.
//! Everything here is deterministic — no RNG, no ambient time — so the
//! whole surface stays byte-identical across `QT_THREADS`.

#![warn(missing_docs)]

pub mod region;
pub mod secded;
mod shield;

pub use region::{EccRegion, ReadCheck, CODES_PER_WORD};
pub use secded::{decode, encode, flip, Decode, CHECK_BITS, CODE_BITS, DATA_BITS};
pub use shield::{FlipFix, ReadOutcome, ScrubOutcome, Shield, ShieldStats};
