//! Code-domain GEMM: multiply straight from stored quantization codes.
//!
//! The paper's datapath keeps every operand as 8-bit codes with shared
//! scales; the f32 tensors this repo carries are only a simulation
//! vehicle. This module closes the gap for the GEMM hot path:
//!
//! - [`QuantizedTensor`] holds a tensor as its stored bit codes
//!   ([`ElemFormat::encode_code`] words — what accelerator SRAM holds);
//! - [`PackedQuantB`] decodes a weight matrix **once** per pack, via a
//!   `2^bits` direct-index decode table, straight into the blocked
//!   `KC × NR` panel layout of [`qt_tensor::gemm::PackedB`] — no full
//!   f32 weight materialization per call, and the pack is reusable
//!   across forwards (the per-site weight-pack cache in qt-transformer);
//! - [`matmul_codes`] drives the shared SIMD-dispatched blocked GEMM
//!   over a pre-packed weight;
//! - [`ProductLut`] + [`matmul_product_lut`] go further for pairs of
//!   ≤ 8-bit formats (posit8, E4M3, …): a `2^16`-entry table of all
//!   `decode(a) · decode(b)` products lets the inner loop accumulate
//!   `i8 × i8 → f32` products by table lookup, with no decode at all.
//!
//! # Bitwise-identity contract
//!
//! Both paths produce outputs **bit-identical** to dequantizing and
//! calling [`Tensor::matmul`] (asserted by tests, not assumed):
//!
//! - decode ∘ encode is the identity on every value a [`FakeQuant`]
//!   emits, except that a `-0.0` grid value may decode as `+0.0` — and
//!   zeros are skip-gated identically on both sides, so no output bit
//!   can differ;
//! - each [`ProductLut`] entry is the *single* IEEE rounding of
//!   `decode(a) · decode(b)`, exactly the `mul` the f32 kernel performs;
//! - tiling, accumulation order (`k` ascending per element), and the
//!   row-finite-gated zero skip are shared with the f32 engine.

use crate::format::ElemFormat;
use crate::quantizer::FakeQuant;
use qt_tensor::gemm::{self, PackedB, KC, MC, NR};
use qt_tensor::Tensor;

/// A tensor stored as quantization codes: the format, the shape, and one
/// `u16` storage word per element (only the low [`ElemFormat::bits`] bits
/// are meaningful).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedTensor {
    format: ElemFormat,
    shape: Vec<usize>,
    codes: Vec<u16>,
}

impl QuantizedTensor {
    /// Wrap raw codes. `codes.len()` must match the shape's element count.
    ///
    /// # Panics
    ///
    /// Panics if the element count mismatches or the format is `Fp32`
    /// (a carrier, not a storage format).
    pub fn new(format: ElemFormat, shape: &[usize], codes: Vec<u16>) -> Self {
        assert!(
            format != ElemFormat::Fp32,
            "Fp32 is a carrier, not a storage format"
        );
        let count: usize = shape.iter().product();
        assert_eq!(codes.len(), count, "codes do not fill shape {shape:?}");
        Self {
            format,
            shape: shape.to_vec(),
            codes,
        }
    }

    /// The storage format of the codes.
    pub fn format(&self) -> ElemFormat {
        self.format
    }

    /// The logical tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The stored code words, row-major.
    pub fn codes(&self) -> &[u16] {
        &self.codes
    }

    /// Mutable view of the stored code words — the surface fault
    /// injectors and integrity shields (qt-shield) operate on. Code
    /// values past the format's bit width have no decode meaning;
    /// writers are expected to stay within [`ElemFormat::bits`].
    pub fn codes_mut(&mut self) -> &mut [u16] {
        &mut self.codes
    }

    /// Decode back to the f32 values the datapath computes with.
    pub fn dequantize(&self) -> Tensor {
        let lut = DecodeLut::new(self.format);
        let data: Vec<f32> = self.codes.iter().map(|&c| lut.get(c)).collect();
        Tensor::from_vec(data, &self.shape)
    }
}

/// Direct-index decode table: `table[code]` = the f32 the code decodes
/// to. `2^bits` entries (≤ 256 KiB even for the 16-bit formats), built
/// once per pack / LUT construction.
struct DecodeLut {
    table: Vec<f32>,
    mask: u16,
}

impl DecodeLut {
    fn new(format: ElemFormat) -> Self {
        let bits = format.bits();
        assert!(bits <= 16, "decode LUT needs a storage format");
        let table: Vec<f32> = (0..1u32 << bits)
            .map(|c| format.decode_code(c as u16).expect("storage format"))
            .collect();
        Self {
            table,
            mask: ((1u32 << bits) - 1) as u16,
        }
    }

    #[inline]
    fn get(&self, code: u16) -> f32 {
        self.table[(code & self.mask) as usize]
    }
}

impl FakeQuant {
    /// Quantize to stored codes: round each element onto the grid (the
    /// exact [`FakeQuant::quantize_scalar`] path, including underflow and
    /// non-finite policies) and encode the resulting grid value. `None`
    /// for `Fp32`, which has no storage code.
    pub fn quantize_to_codes(&self, t: &Tensor) -> Option<QuantizedTensor> {
        if self.format() == ElemFormat::Fp32 {
            return None;
        }
        let fmt = self.format();
        // Fixed chunking: the decomposition is thread-count-invariant.
        let chunks = qt_par::parallel_map_slices(t.data(), 8 * 1024, |_, _, xs| {
            xs.iter()
                .map(|&x| {
                    fmt.encode_code(self.quantize_scalar(x))
                        .expect("non-Fp32 format encodes")
                })
                .collect::<Vec<u16>>()
        });
        let mut codes = Vec::with_capacity(t.len());
        for c in chunks {
            codes.extend(c);
        }
        Some(QuantizedTensor::new(fmt, t.shape(), codes))
    }
}

/// A 2-D weight matrix decoded once from codes into the blocked panel
/// layout the SIMD microkernels consume. Build it once per weight
/// version; every forward then multiplies without touching the codes or
/// materializing an f32 weight tensor.
pub struct PackedQuantB {
    format: ElemFormat,
    pack: PackedB,
}

impl PackedQuantB {
    /// Decode-and-pack a `[k, n]` quantized matrix.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not 2-D.
    pub fn pack(w: &QuantizedTensor) -> Self {
        assert_eq!(w.shape().len(), 2, "weight pack needs a 2-D matrix");
        let (k, n) = (w.shape()[0], w.shape()[1]);
        let lut = DecodeLut::new(w.format());
        let codes = w.codes();
        let pack = PackedB::pack_with(k, n, |kk, row| {
            for (slot, &c) in row.iter_mut().zip(&codes[kk * n..(kk + 1) * n]) {
                *slot = lut.get(c);
            }
        });
        Self {
            format: w.format(),
            pack,
        }
    }

    /// The code format this pack was decoded from.
    pub fn format(&self) -> ElemFormat {
        self.format
    }

    /// Contraction depth (`k`).
    pub fn k(&self) -> usize {
        self.pack.k()
    }

    /// Output width (`n`).
    pub fn n(&self) -> usize {
        self.pack.n()
    }

    /// Resident bytes (pack-cache accounting).
    pub fn bytes(&self) -> usize {
        self.pack.bytes()
    }

    /// The underlying f32 panel pack.
    pub fn pack_ref(&self) -> &PackedB {
        &self.pack
    }
}

/// Multiply `x` (`[..., m, k]`, f32 carrier — typically fake-quantized
/// activations) by a pre-packed quantized weight (`[k, n]`), producing
/// `[..., m, n]`. All leading axes share the weight, so they flatten
/// into one row dimension and parallelize over MC-row blocks through
/// the shared backend-dispatched engine.
///
/// Bitwise-identical to `x.matmul(&w.dequantize())` at any thread count
/// and backend.
///
/// # Panics
///
/// Panics if `x` has fewer than 2 axes or its last axis is not `w.k()`.
pub fn matmul_codes(x: &Tensor, w: &PackedQuantB) -> Tensor {
    assert!(x.ndim() >= 2, "matmul_codes lhs must be at least 2-D");
    let k = x.shape()[x.ndim() - 1];
    assert_eq!(
        k,
        w.k(),
        "matmul_codes contraction mismatch: {:?} x [{}, {}]",
        x.shape(),
        w.k(),
        w.n()
    );
    let n = w.n();
    let rows: usize = x.shape()[..x.ndim() - 1].iter().product();
    let mut out_shape = x.shape()[..x.ndim() - 1].to_vec();
    out_shape.push(n);
    let mut out = Tensor::zeros(&out_shape);
    if rows == 0 || n == 0 || k == 0 {
        return out;
    }
    gemm::gemm_prepacked(x.data(), rows, k, n, w.pack_ref(), out.data_mut());
    out
}

/// All `decode(a) · decode(b)` products of two ≤ 8-bit formats, each a
/// single IEEE f32 rounding: 2^16 entries, 256 KiB. Indexed
/// `(a_code << 8) | b_code`.
pub struct ProductLut {
    a_format: ElemFormat,
    b_format: ElemFormat,
    table: Vec<f32>,
    /// `a_zero[code]`: the code decodes to ±0.0 (skip-gate, matching the
    /// f32 kernels' `av == 0.0` test).
    a_zero: Vec<bool>,
}

impl ProductLut {
    /// Build the product table. `None` unless both formats store in at
    /// most 8 bits (posit8 variants, E4M3, E5M2 — the paper's edge
    /// formats; 9- and 16-bit formats would need a 2^18+ table and use
    /// the panel-decode path instead).
    pub fn new(a_format: ElemFormat, b_format: ElemFormat) -> Option<Self> {
        if a_format.bits() > 8 || b_format.bits() > 8 {
            return None;
        }
        let da = DecodeLut::new(a_format);
        let db = DecodeLut::new(b_format);
        let mut table = vec![0.0f32; 1 << 16];
        for ac in 0..256u16 {
            let av = da.get(ac);
            for bc in 0..256u16 {
                // One rounding: identical bits to the kernel's `av * bv`.
                table[((ac as usize) << 8) | bc as usize] = av * db.get(bc);
            }
        }
        let a_zero: Vec<bool> = (0..256u16).map(|c| da.get(c) == 0.0).collect();
        Some(Self {
            a_format,
            b_format,
            table,
            a_zero,
        })
    }

    /// LHS format.
    pub fn a_format(&self) -> ElemFormat {
        self.a_format
    }

    /// RHS format.
    pub fn b_format(&self) -> ElemFormat {
        self.b_format
    }

    /// The product `decode(a) · decode(b)`.
    #[inline]
    pub fn product(&self, a: u16, b: u16) -> f32 {
        self.table[(((a & 0xFF) as usize) << 8) | (b & 0xFF) as usize]
    }
}

/// A `[k, n]` weight held as *codes* in the blocked tile layout (same
/// `tile_offsets` geometry as [`PackedB`]) for the product-LUT path,
/// plus the row-finite flags that gate the zero skip.
pub struct PackedCodesB {
    format: ElemFormat,
    codes: Vec<u16>,
    tile_off: Vec<usize>,
    row_finite: Vec<bool>,
    njb: usize,
    k: usize,
    n: usize,
}

impl PackedCodesB {
    /// Tile a 2-D quantized matrix's codes.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not 2-D.
    pub fn pack(w: &QuantizedTensor) -> Self {
        assert_eq!(w.shape().len(), 2, "weight pack needs a 2-D matrix");
        let (k, n) = (w.shape()[0], w.shape()[1]);
        let lut = DecodeLut::new(w.format());
        let src = w.codes();
        let (tile_off, njb) = gemm::tile_offsets(k, n);
        let mut codes = vec![0u16; k * n];
        let mut row_finite = vec![false; k];
        for kk in 0..k {
            let row = &src[kk * n..(kk + 1) * n];
            row_finite[kk] = row.iter().all(|&c| lut.get(c).is_finite());
            let panel = kk / KC;
            let kloc = kk - panel * KC;
            for (jb, j0) in (0..n).step_by(NR).enumerate() {
                let nr = NR.min(n - j0);
                let dst = tile_off[panel * njb + jb] + kloc * nr;
                codes[dst..dst + nr].copy_from_slice(&row[j0..j0 + nr]);
            }
        }
        Self {
            format: w.format(),
            codes,
            tile_off,
            row_finite,
            njb,
            k,
            n,
        }
    }

    /// The code format.
    pub fn format(&self) -> ElemFormat {
        self.format
    }

    /// Contraction depth (`k`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width (`n`).
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn tile(&self, panel: usize, jb: usize, kc: usize, nr: usize) -> &[u16] {
        let off = self.tile_off[panel * self.njb + jb];
        &self.codes[off..off + kc * nr]
    }
}

/// Multiply quantized activations (`[..., m, k]` codes) by a code-tiled
/// weight (`[k, n]`), accumulating `decode(a) · decode(b)` products
/// fetched from the 2^16 [`ProductLut`] — the inner loop never decodes
/// an operand. Leading axes flatten into rows as in [`matmul_codes`].
///
/// Bitwise-identical to `a.dequantize().matmul(&w.dequantize())`
/// (shared tiling, ascending-`k` accumulation, and the same
/// finite-gated zero skip; each table entry is the same single-rounded
/// product the f32 kernel computes).
///
/// # Panics
///
/// Panics if shapes or formats disagree with the LUT.
pub fn matmul_product_lut(a: &QuantizedTensor, w: &PackedCodesB, lut: &ProductLut) -> Tensor {
    assert!(a.shape().len() >= 2, "product-LUT lhs must be at least 2-D");
    assert_eq!(a.format(), lut.a_format(), "LHS format != LUT a-format");
    assert_eq!(w.format(), lut.b_format(), "RHS format != LUT b-format");
    let nd = a.shape().len();
    let k = a.shape()[nd - 1];
    assert_eq!(
        k,
        w.k(),
        "product-LUT contraction mismatch: {:?} x [{}, {}]",
        a.shape(),
        w.k(),
        w.n()
    );
    let n = w.n();
    let rows: usize = a.shape()[..nd - 1].iter().product();
    let mut out_shape = a.shape()[..nd - 1].to_vec();
    out_shape.push(n);
    let mut out = Tensor::zeros(&out_shape);
    if rows == 0 || n == 0 || k == 0 {
        return out;
    }
    let acodes = a.codes();
    let row_blocks = rows.div_ceil(MC);
    let part_lens: Vec<usize> = (0..row_blocks)
        .map(|rb| MC.min(rows - rb * MC) * n)
        .collect();
    gemm::run_parts(out.data_mut(), &part_lens, rows * k * n, |rb, opart| {
        let i0 = rb * MC;
        let nrows = MC.min(rows - i0);
        for (panel, k0) in (0..k).step_by(KC).enumerate() {
            let kc = KC.min(k - k0);
            for (jb, j0) in (0..n).step_by(NR).enumerate() {
                let nr = NR.min(n - j0);
                let tile = w.tile(panel, jb, kc, nr);
                let finite = &w.row_finite[k0..k0 + kc];
                for r in 0..nrows {
                    let arow = &acodes[(i0 + r) * k + k0..(i0 + r) * k + k0 + kc];
                    let orow = &mut opart[r * n + j0..r * n + j0 + nr];
                    for (kk, &ac) in arow.iter().enumerate() {
                        if lut.a_zero[(ac & 0xFF) as usize] && finite[kk] {
                            continue;
                        }
                        let base = ((ac & 0xFF) as usize) << 8;
                        let brow = &tile[kk * nr..(kk + 1) * nr];
                        for (ov, &bc) in orow.iter_mut().zip(brow) {
                            *ov += lut.table[base | (bc & 0xFF) as usize];
                        }
                    }
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FORMATS_8BIT: [ElemFormat; 5] = [
        ElemFormat::P8E0,
        ElemFormat::P8E1,
        ElemFormat::P8E2,
        ElemFormat::E4M3,
        ElemFormat::E5M2,
    ];

    fn messy_tensor(shape: &[usize], salt: usize) -> Tensor {
        let count: usize = shape.iter().product();
        let data: Vec<f32> = (0..count)
            .map(|i| {
                let m = ((i + salt) * 2654435761) & 0xffff;
                if m.is_multiple_of(9) {
                    0.0
                } else {
                    ((m as f32) - 32768.0) * 1.7f32.powi((m % 11) as i32 - 5) * 1e-3
                }
            })
            .collect();
        Tensor::from_vec(data, shape)
    }

    #[test]
    fn decode_encode_round_trips_quantizer_output() {
        for fmt in [
            ElemFormat::P8E1,
            ElemFormat::E4M3,
            ElemFormat::E5M3,
            ElemFormat::P16E1,
            ElemFormat::Bf16,
        ] {
            let fq = FakeQuant::new(fmt);
            let t = messy_tensor(&[64], 7);
            let q = fq.quantize(&t);
            let codes = fq.quantize_to_codes(&t).unwrap();
            let back = codes.dequantize();
            for (i, (&a, &b)) in q.data().iter().zip(back.data()).enumerate() {
                // Exact bits, except -0.0 may decode as +0.0.
                if a == 0.0 && b == 0.0 {
                    continue;
                }
                assert_eq!(a.to_bits(), b.to_bits(), "{fmt} elem {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn matmul_codes_matches_dequantized_matmul() {
        for fmt in [ElemFormat::P8E1, ElemFormat::E4M3, ElemFormat::P16E1] {
            let fq = FakeQuant::new(fmt);
            let x = fq.quantize(&messy_tensor(&[2, 5, 33], 1));
            let wq = fq.quantize_to_codes(&messy_tensor(&[33, 17], 2)).unwrap();
            let packed = PackedQuantB::pack(&wq);
            let got = matmul_codes(&x, &packed);
            let want = x.matmul(&wq.dequantize());
            assert_eq!(got.shape(), &[2, 5, 17]);
            for (g, w) in got.data().iter().zip(want.data()) {
                assert_eq!(g.to_bits(), w.to_bits(), "{fmt}");
            }
        }
    }

    #[test]
    fn product_lut_matches_dequantized_matmul() {
        for fmt in FORMATS_8BIT {
            let fq = FakeQuant::new(fmt);
            let a = fq.quantize_to_codes(&messy_tensor(&[3, 40], 3)).unwrap();
            let w = fq.quantize_to_codes(&messy_tensor(&[40, 9], 4)).unwrap();
            let lut = ProductLut::new(fmt, fmt).unwrap();
            let packed = PackedCodesB::pack(&w);
            let got = matmul_product_lut(&a, &packed, &lut);
            let want = a.dequantize().matmul(&w.dequantize());
            for (g, v) in got.data().iter().zip(want.data()) {
                assert_eq!(g.to_bits(), v.to_bits(), "{fmt}");
            }
        }
    }

    #[test]
    fn product_lut_rejects_wide_formats() {
        assert!(ProductLut::new(ElemFormat::P16E1, ElemFormat::P8E1).is_none());
        assert!(ProductLut::new(ElemFormat::E4M3, ElemFormat::E5M3).is_none());
    }
}
