//! Quantization machinery for 8-bit Transformer inference and fine-tuning:
//! element formats, fast fake-quantization, the paper's operation-fusion
//! schemes (§4), and per-tensor gradient scaling (§5.1).
//!
//! The paper's experiments run "fake-quantized": tensors live in a wide
//! carrier type and are *clipped to the representable set* of an 8-bit
//! format at every operation boundary that the fusion scheme does not
//! exempt. [`ElemFormat`] names the formats, [`FakeQuant`] rounds tensors
//! onto a format's grid (via a 256-entry sorted table for the 8-bit
//! formats), [`FusionLevel`] decides which operation inputs skip
//! quantization, and [`AmaxTracker`] implements the delayed-scaling
//! per-tensor factors used for activation gradients.
//!
//! # Example
//!
//! ```
//! use qt_quant::{ElemFormat, FakeQuant};
//!
//! let q = FakeQuant::new(ElemFormat::P8E1);
//! assert_eq!(q.quantize_scalar(1.05), 1.0625); // nearest Posit(8,1)
//! assert_eq!(q.quantize_scalar(1e9), 4096.0);  // saturates at maxpos
//! ```

#![warn(missing_docs)]

mod format;
mod fusion;
mod guard;
mod qgemm;
mod quantizer;
mod scaling;
mod scheme;

pub use format::ElemFormat;
pub use fusion::{FusionLevel, OpClass, OpSet};
pub use guard::{HealthWindow, NonFinitePolicy, QuantError, TensorHealth};
pub use qgemm::{
    matmul_codes, matmul_product_lut, PackedCodesB, PackedQuantB, ProductLut, QuantizedTensor,
};
pub use qt_posit::UnderflowPolicy;
pub use quantizer::FakeQuant;
pub use scaling::{AmaxTracker, ScalingMode};
pub use scheme::{QuantScheme, SoftmaxKind};
