//! [`QuantScheme`]: the complete configuration of a quantized run —
//! formats, fusion level, underflow policy, softmax implementation and
//! gradient scaling.

use crate::format::ElemFormat;
use crate::fusion::{FusionLevel, OpSet};
use crate::guard::NonFinitePolicy;
use crate::scaling::ScalingMode;
use qt_posit::approx::ExpApprox;
use qt_posit::UnderflowPolicy;

/// Which softmax implementation the attention layers use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SoftmaxKind {
    /// Exact float softmax.
    Exact,
    /// The posit softmax of §4.1/§5.2: approximate exponential and/or
    /// approximate reciprocal, each individually toggleable (Table 4).
    PositApprox {
        /// Use the approximate exponential (sigmoid + reciprocal tricks).
        approx_exp: bool,
        /// Use the approximate (piecewise-linear) reciprocal for `1/Σe^z`.
        approx_recip: bool,
        /// Threshold/shift configuration of the exponential.
        exp: ExpApprox,
    },
}

impl SoftmaxKind {
    /// The paper's full posit softmax (both approximations on, best θ/ε).
    pub fn posit_full() -> Self {
        SoftmaxKind::PositApprox {
            approx_exp: true,
            approx_recip: true,
            exp: ExpApprox::PAPER_BEST,
        }
    }
}

/// Complete configuration of a quantized inference or fine-tuning run.
///
/// Use the named constructors for the paper's standard settings and the
/// `with_*` builders for sweeps:
///
/// ```
/// use qt_quant::{ElemFormat, FusionLevel, QuantScheme};
///
/// let s = QuantScheme::posit8().with_fusion(FusionLevel::Residual);
/// assert_eq!(s.fwd, ElemFormat::P8E1);
/// let fp8 = QuantScheme::fp8();
/// assert_eq!(fp8.fwd, ElemFormat::E4M3);
/// assert_eq!(fp8.bwd, ElemFormat::E5M2); // NVIDIA's hybrid recipe
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantScheme {
    /// Format for forward-pass tensors (weights and activations).
    pub fwd: ElemFormat,
    /// Format for backward-pass tensors (activation gradients).
    pub bwd: ElemFormat,
    /// Operation-fusion level (§4).
    pub fusion: FusionLevel,
    /// Explicit override of which operation inputs are quantized (Table 1
    /// ablations); `None` derives the set from `fusion`.
    pub ops_override: Option<OpSet>,
    /// Posit underflow policy (§3.4).
    pub underflow: UnderflowPolicy,
    /// What quantizers do with NaN/±∞ inputs.
    pub nonfinite: NonFinitePolicy,
    /// Softmax implementation.
    pub softmax: SoftmaxKind,
    /// Gradient scaling during training (§5.1).
    pub scaling: ScalingMode,
}

impl QuantScheme {
    /// Unquantized FP32 run (sanity baseline).
    pub fn fp32() -> Self {
        Self::uniform(ElemFormat::Fp32)
    }

    /// BFloat16 run — the paper's accuracy baseline.
    pub fn bf16() -> Self {
        Self::uniform(ElemFormat::Bf16)
    }

    /// Posit(8,1) forward and backward, exact softmax.
    pub fn posit8() -> Self {
        Self::uniform(ElemFormat::P8E1)
    }

    /// Posit(8,2) forward and backward.
    pub fn posit8_es2() -> Self {
        Self::uniform(ElemFormat::P8E2)
    }

    /// Posit(8,1) with the approximate posit softmax
    /// (the paper's "Posit8 Approximation" rows).
    pub fn posit8_approx() -> Self {
        Self {
            softmax: SoftmaxKind::posit_full(),
            ..Self::uniform(ElemFormat::P8E1)
        }
    }

    /// FP8 per NVIDIA's recipe: E4M3 forward, E5M2 backward.
    pub fn fp8() -> Self {
        Self {
            bwd: ElemFormat::E5M2,
            ..Self::uniform(ElemFormat::E4M3)
        }
    }

    /// Same format both directions, exact softmax, no fusion, default
    /// underflow and per-tensor scaling.
    pub fn uniform(fmt: ElemFormat) -> Self {
        Self {
            fwd: fmt,
            bwd: fmt,
            fusion: FusionLevel::None,
            ops_override: None,
            underflow: UnderflowPolicy::RoundTiesToZero,
            nonfinite: NonFinitePolicy::default(),
            softmax: SoftmaxKind::Exact,
            scaling: ScalingMode::default(),
        }
    }

    /// Set the fusion level.
    pub fn with_fusion(mut self, fusion: FusionLevel) -> Self {
        self.fusion = fusion;
        self.ops_override = None;
        self
    }

    /// Quantize exactly the given operation classes (overrides `fusion`).
    pub fn with_ops(mut self, ops: OpSet) -> Self {
        self.ops_override = Some(ops);
        self
    }

    /// The effective set of quantized operation inputs.
    pub fn quantized_ops(&self) -> OpSet {
        self.ops_override
            .unwrap_or_else(|| OpSet::from_fusion(self.fusion))
    }

    /// Set the softmax implementation.
    pub fn with_softmax(mut self, softmax: SoftmaxKind) -> Self {
        self.softmax = softmax;
        self
    }

    /// Set the gradient-scaling mode.
    pub fn with_scaling(mut self, scaling: ScalingMode) -> Self {
        self.scaling = scaling;
        self
    }

    /// Set the posit underflow policy.
    pub fn with_underflow(mut self, underflow: UnderflowPolicy) -> Self {
        self.underflow = underflow;
        self
    }

    /// Set the non-finite input policy for both quantizers.
    pub fn with_nonfinite(mut self, nonfinite: NonFinitePolicy) -> Self {
        self.nonfinite = nonfinite;
        self
    }

    /// `true` when nothing is quantized (FP32 both ways, exact softmax).
    pub fn is_identity(&self) -> bool {
        matches!(self.fwd, ElemFormat::Fp32)
            && matches!(self.bwd, ElemFormat::Fp32)
            && matches!(self.softmax, SoftmaxKind::Exact)
    }

    /// Short human-readable description, e.g. `"Posit(8,1) fwd / Posit(8,1)
    /// bwd, + Residual Fusion"`.
    pub fn describe(&self) -> String {
        format!(
            "{} fwd / {} bwd, {}",
            self.fwd.name(),
            self.bwd.name(),
            self.fusion.label()
        )
    }
}

impl Default for QuantScheme {
    fn default() -> Self {
        Self::bf16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(QuantScheme::fp32().is_identity());
        assert!(!QuantScheme::bf16().is_identity());
        let p = QuantScheme::posit8_approx();
        assert!(matches!(p.softmax, SoftmaxKind::PositApprox { .. }));
        assert_eq!(QuantScheme::posit8_es2().fwd, ElemFormat::P8E2);
    }

    #[test]
    fn builders_chain() {
        let s = QuantScheme::posit8()
            .with_fusion(FusionLevel::LayerNorm)
            .with_scaling(ScalingMode::LossScale(1024.0))
            .with_underflow(UnderflowPolicy::Standard);
        assert_eq!(s.fusion, FusionLevel::LayerNorm);
        assert_eq!(s.scaling, ScalingMode::LossScale(1024.0));
        assert_eq!(s.underflow, UnderflowPolicy::Standard);
    }

    #[test]
    fn describe_mentions_formats() {
        let d = QuantScheme::fp8().describe();
        assert!(d.contains("E4M3") && d.contains("E5M2"));
    }
}
