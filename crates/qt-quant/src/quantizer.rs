//! Fast tensor fake-quantization, plus the straight-through-estimator
//! autograd op used during quantized training.

use crate::format::ElemFormat;
use crate::guard::{NonFinitePolicy, QuantError, TensorHealth};
use qt_autograd::{Tape, Var};
use qt_posit::UnderflowPolicy;
use qt_tensor::Tensor;

/// A fake-quantizer: rounds values onto a format's representable grid.
///
/// For the 8-/9-bit formats the quantizer pre-computes the sorted value
/// table and the decision boundaries between adjacent values (including
/// tie direction), plus a 2^16-entry direct-index LUT keyed on the top 16
/// bits of the input (bf16-spaced cells): cells whose whole value range
/// rounds to one grid point answer in O(1); cells containing a decision
/// boundary (or inf/NaN) hold a sentinel and fall back to the binary
/// search. Results are bit-identical to [`ElemFormat::quantize_scalar_with`].
///
/// # Example
///
/// ```
/// use qt_quant::{ElemFormat, FakeQuant};
/// use qt_tensor::Tensor;
///
/// let q = FakeQuant::new(ElemFormat::E4M3);
/// let t = Tensor::from_vec(vec![0.3, 500.0, -1e-9], &[3]);
/// let r = q.quantize(&t);
/// assert_eq!(r.data()[1], 448.0); // saturated
/// assert_eq!(r.data()[2], 0.0);   // flushed
/// ```
#[derive(Debug, Clone)]
pub struct FakeQuant {
    format: ElemFormat,
    policy: UnderflowPolicy,
    nonfinite: NonFinitePolicy,
    /// Sorted representable values (empty → identity/wide format).
    values: Vec<f32>,
    /// `bounds[i]` is the threshold between `values[i]` and `values[i+1]`:
    /// inputs strictly below it map to index ≤ i, above to ≥ i+1; inputs
    /// equal to it map according to `tie_up[i]`.
    bounds: Vec<f32>,
    tie_up: Vec<bool>,
    /// Direct-index table: `lut[x.to_bits() >> 16]` is the value index for
    /// every f32 in that bf16-spaced cell, or [`LUT_SENTINEL`] when the
    /// cell straddles a decision boundary (binary-search fallback).
    /// Empty for the identity/wide formats.
    lut: Vec<u16>,
}

/// LUT cell marker: fall back to the binary search.
const LUT_SENTINEL: u16 = u16::MAX;

/// Binary search over decision boundaries: `b < x` puts an input exactly
/// on a boundary below it, so ties land on the lower value; bump when the
/// pre-computed tie direction says otherwise.
#[inline]
fn search_index(bounds: &[f32], tie_up: &[bool], n: usize, x: f32) -> usize {
    let mut i = bounds.partition_point(|&b| b < x).min(n - 1);
    if i < bounds.len() && x == bounds[i] && tie_up[i] {
        i += 1;
    }
    i.min(n - 1)
}

impl FakeQuant {
    /// Quantizer with the paper's default posit underflow policy.
    pub fn new(format: ElemFormat) -> Self {
        Self::with_policy(format, UnderflowPolicy::RoundTiesToZero)
    }

    /// Quantizer with an explicit posit underflow policy (no effect on
    /// float formats).
    pub fn with_policy(format: ElemFormat, policy: UnderflowPolicy) -> Self {
        Self::with_guard(format, policy, NonFinitePolicy::default())
    }

    /// Quantizer with explicit underflow and non-finite policies.
    pub fn with_guard(
        format: ElemFormat,
        policy: UnderflowPolicy,
        nonfinite: NonFinitePolicy,
    ) -> Self {
        let values = format.finite_values();
        let mut bounds = Vec::new();
        let mut tie_up = Vec::new();
        for w in values.windows(2) {
            let mid = 0.5 * (w[0] as f64 + w[1] as f64);
            bounds.push(mid as f32);
            // Resolve the tie exactly like the scalar path.
            let q = format.quantize_scalar_with(mid as f32, policy);
            tie_up.push(q == w[1]);
        }
        // Build the direct-index LUT. A cell covers the f32s sharing their
        // top 16 bits — a contiguous value interval (per sign), over which
        // the rounding index is monotone; if both cell endpoints search to
        // the same index the whole cell does, and the cell answers in O(1).
        let n = values.len();
        let mut lut = Vec::new();
        if n > 0 && n < LUT_SENTINEL as usize {
            lut = vec![LUT_SENTINEL; 1 << 16];
            for (cell, slot) in lut.iter_mut().enumerate() {
                if (cell >> 7) & 0xFF == 0xFF {
                    continue; // exponent 0xFF: inf/NaN, guard path handles it
                }
                let bits = (cell as u32) << 16;
                let ia = search_index(&bounds, &tie_up, n, f32::from_bits(bits));
                let ib = search_index(&bounds, &tie_up, n, f32::from_bits(bits | 0xFFFF));
                if ia == ib {
                    *slot = ia as u16;
                }
            }
        }
        Self {
            format,
            policy,
            nonfinite,
            values,
            bounds,
            tie_up,
            lut,
        }
    }

    /// The quantizer's format.
    pub fn format(&self) -> ElemFormat {
        self.format
    }

    /// The underflow policy in effect.
    pub fn policy(&self) -> UnderflowPolicy {
        self.policy
    }

    /// The non-finite input policy in effect.
    pub fn nonfinite_policy(&self) -> NonFinitePolicy {
        self.nonfinite
    }

    /// Resolve a non-finite input according to [`NonFinitePolicy`].
    /// Returns the value the quantizer should round instead, or `None`
    /// when the input should flow through the normal path.
    #[inline]
    fn guard_nonfinite(&self, x: f32) -> Option<f32> {
        if x.is_finite() {
            return None;
        }
        let max = self.format.max_value() as f32;
        match self.nonfinite {
            // NaN passes; ±∞ falls through and saturates naturally.
            NonFinitePolicy::Propagate => x.is_nan().then_some(f32::NAN),
            // Error is handled by the fallible paths; here it degrades to
            // Saturate so the infallible API stays total.
            NonFinitePolicy::Saturate | NonFinitePolicy::Error => {
                Some(if x == f32::NEG_INFINITY { -max } else { max })
            }
            NonFinitePolicy::Zero => Some(0.0),
        }
    }

    /// Resolve the value index for a finite input: O(1) LUT hit, or the
    /// binary search when the cell holds the sentinel (tie/boundary cells,
    /// or a format too wide for the table).
    #[inline]
    fn index_for(&self, x: f32) -> usize {
        if let Some(&i) = self.lut.get((x.to_bits() >> 16) as usize) {
            if i != LUT_SENTINEL {
                return i as usize;
            }
        }
        search_index(&self.bounds, &self.tie_up, self.values.len(), x)
    }

    /// Quantize a single value.
    #[inline]
    pub fn quantize_scalar(&self, x: f32) -> f32 {
        let x = match self.guard_nonfinite(x) {
            Some(r) if r.is_nan() => return f32::NAN,
            Some(r) => r,
            None => x,
        };
        if self.values.is_empty() {
            // Fp32 (identity) or Bf16 (cheap direct rounding).
            return self.format.quantize_scalar_with(x, self.policy);
        }
        let v = self.values[self.index_for(x)];
        // Standard posit policy: a non-zero input never rounds to zero.
        if v == 0.0
            && x != 0.0
            && self.format.is_posit()
            && self.policy == UnderflowPolicy::Standard
        {
            let minpos = self.format.min_positive() as f32;
            return if x > 0.0 { minpos } else { -minpos };
        }
        v
    }

    /// Quantize every element of a tensor.
    pub fn quantize(&self, t: &Tensor) -> Tensor {
        if matches!(self.format, ElemFormat::Fp32) {
            return t.clone();
        }
        t.map(|x| self.quantize_scalar(x))
    }

    /// Quantize with a scale factor: `Q(x * scale) / scale` — the
    /// per-tensor-scaled quantization of §5.1. `scale == 1.0` is plain
    /// quantization.
    pub fn quantize_scaled(&self, t: &Tensor, scale: f32) -> Tensor {
        if matches!(self.format, ElemFormat::Fp32) {
            return t.clone();
        }
        let inv = 1.0 / scale;
        t.map(|x| self.quantize_scalar(x * scale) * inv)
    }

    /// Consuming [`FakeQuant::quantize`]: rewrites the tensor in place,
    /// avoiding the output allocation when the caller hands ownership.
    pub fn quantize_owned(&self, t: Tensor) -> Tensor {
        if matches!(self.format, ElemFormat::Fp32) {
            return t;
        }
        t.mapv(|x| self.quantize_scalar(x))
    }

    /// Consuming [`FakeQuant::quantize_scaled`].
    pub fn quantize_scaled_owned(&self, t: Tensor, scale: f32) -> Tensor {
        if matches!(self.format, ElemFormat::Fp32) {
            return t;
        }
        let inv = 1.0 / scale;
        t.mapv(|x| self.quantize_scalar(x * scale) * inv)
    }

    /// Classify one (pre-quantization, post-quantization) pair into the
    /// health counters. `x` is the value actually rounded (after scaling).
    #[inline]
    fn classify(&self, x: f32, v: f32, health: &mut TensorHealth) {
        health.elements += 1;
        if !x.is_finite() {
            health.nonfinite_in += 1;
        } else if v == 0.0 && x != 0.0 {
            health.underflowed += 1;
        } else if (x.abs() as f64) > self.format.max_value() {
            health.saturated += 1;
        }
        if !v.is_finite() {
            health.nonfinite_out += 1;
        }
    }

    /// Quantize every element and report the tensor's numerical health
    /// (saturation / underflow / non-finite counters).
    pub fn quantize_with_health(&self, t: &Tensor) -> (Tensor, TensorHealth) {
        self.quantize_scaled_with_health(t, 1.0)
    }

    /// [`FakeQuant::quantize_scaled`] with health counters. Saturation and
    /// underflow are judged on the *scaled* value — the one that actually
    /// met the format's range.
    pub fn quantize_scaled_with_health(&self, t: &Tensor, scale: f32) -> (Tensor, TensorHealth) {
        /// Elements per parallel chunk — fixed, so the decomposition (and
        /// the in-order merge of health partials) is thread-count-invariant.
        const QUANT_CHUNK: usize = 8 * 1024;
        let inv = if scale == 1.0 { 1.0 } else { 1.0 / scale };
        let src = t.data();
        let quantize_span = |out: &mut [f32], xs_off: usize, health: &mut TensorHealth| {
            let end = xs_off + out.len();
            for (o, &x) in out.iter_mut().zip(&src[xs_off..end]) {
                let xs = x * scale;
                let v = self.quantize_scalar(xs);
                self.classify(xs, v, health);
                *o = v * inv;
            }
        };
        let mut data = vec![0.0f32; src.len()];
        let mut health = TensorHealth::default();
        if data.len() < QUANT_CHUNK {
            quantize_span(&mut data, 0, &mut health);
        } else {
            // Per-chunk health partials, merged in chunk order.
            let partials = qt_par::parallel_map_slices_mut(&mut data, QUANT_CHUNK, |_, off, out| {
                let mut h = TensorHealth::default();
                quantize_span(out, off, &mut h);
                h
            });
            for p in &partials {
                health.merge(p);
            }
        }
        (Tensor::from_vec(data, t.shape()), health)
    }

    /// Fallible quantization honouring [`NonFinitePolicy::Error`]: returns
    /// [`QuantError::NonFiniteInput`] for the first NaN/±∞ element instead
    /// of quantizing around it. Under every other policy this never fails.
    ///
    /// # Errors
    ///
    /// [`QuantError::NonFiniteInput`] when the policy is `Error` and the
    /// tensor contains a non-finite element.
    pub fn try_quantize(&self, t: &Tensor) -> Result<(Tensor, TensorHealth), QuantError> {
        if self.nonfinite == NonFinitePolicy::Error {
            if let Some((index, &value)) = t
                .data()
                .iter()
                .enumerate()
                .find(|(_, x)| !x.is_finite())
            {
                return Err(QuantError::NonFiniteInput { index, value });
            }
        }
        Ok(self.quantize_with_health(t))
    }

    /// Record a quantization on the tape with a straight-through estimator
    /// backward pass: the gradient flows through unchanged, but is zeroed
    /// where the input saturated (clipped STE), matching quantization-aware
    /// training practice.
    pub fn quantize_var(&self, tape: &mut Tape, x: Var) -> Var {
        self.quantize_var_scaled(tape, x, 1.0)
    }

    /// Scaled quantization on the tape (`Q(x·s)/s`) with clipped-STE
    /// backward.
    pub fn quantize_var_scaled(&self, tape: &mut Tape, x: Var, scale: f32) -> Var {
        if matches!(self.format, ElemFormat::Fp32) {
            return x;
        }
        let v = self.quantize_scaled(tape.value(x), scale);
        let max = (self.format.max_value() / scale as f64) as f32;
        tape.custom(
            vec![x],
            v,
            Box::new(move |g, parents, _| {
                vec![g.zip(&parents[0], |gv, xv| {
                    if xv.abs() > max {
                        0.0
                    } else {
                        gv
                    }
                })]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn lut_matches_scalar_path_exhaustively() {
        let mut rng = StdRng::seed_from_u64(42);
        for fmt in [
            ElemFormat::P8E0,
            ElemFormat::P8E1,
            ElemFormat::P8E2,
            ElemFormat::E4M3,
            ElemFormat::E5M2,
            ElemFormat::E5M3,
        ] {
            for policy in [UnderflowPolicy::RoundTiesToZero, UnderflowPolicy::Standard] {
                let q = FakeQuant::with_policy(fmt, policy);
                // Random magnitudes across the whole dynamic range.
                for _ in 0..2000 {
                    let e: f64 = rng.gen_range(-30.0..30.0);
                    let m: f64 = rng.gen_range(-2.0..2.0);
                    let x = (m * libm::exp2(e)) as f32;
                    let a = q.quantize_scalar(x);
                    let b = fmt.quantize_scalar_with(x, policy);
                    assert_eq!(a, b, "{fmt:?} {policy:?} x={x}");
                }
                // Exact representable values and midpoints.
                let vals = fmt.finite_values();
                for w in vals.windows(2) {
                    for x in [w[0], w[1], 0.5 * (w[0] + w[1])] {
                        assert_eq!(
                            q.quantize_scalar(x),
                            fmt.quantize_scalar_with(x, policy),
                            "{fmt:?} {policy:?} x={x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn quantize_tensor_shapes_preserved() {
        let q = FakeQuant::new(ElemFormat::P8E1);
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(q.quantize(&t).shape(), &[2, 3, 4]);
    }

    #[test]
    fn scaled_quantization_rescues_small_values() {
        // 1e-5 underflows Posit8 (min 2^-12 ≈ 2.4e-4) but survives with a
        // scale that maps amax to 64.
        let q = FakeQuant::new(ElemFormat::P8E1);
        let t = Tensor::from_vec(vec![1e-5, 2e-5], &[2]);
        assert_eq!(q.quantize(&t).data(), &[0.0, 0.0]);
        let scale = 64.0 / 2e-5;
        let s = q.quantize_scaled(&t, scale);
        assert!((s.data()[0] - 1e-5).abs() / 1e-5 < 0.05);
        assert!((s.data()[1] - 2e-5).abs() / 2e-5 < 0.05);
    }

    #[test]
    fn ste_backward_passes_and_clips() {
        let q = FakeQuant::new(ElemFormat::P8E1);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.3, 9999.0, -9999.0], &[3]), true);
        let y = q.quantize_var(&mut tape, x);
        assert_eq!(tape.value(y).data()[1], 4096.0);
        let l = tape.sum_all(y);
        let g = tape.backward(l);
        // in-range passes gradient; saturated entries are clipped
        assert_eq!(g.get(x).unwrap().data(), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn bf16_and_fp32_paths() {
        let qb = FakeQuant::new(ElemFormat::Bf16);
        assert_eq!(qb.quantize_scalar(1.0 + 1e-4), 1.0);
        let qf = FakeQuant::new(ElemFormat::Fp32);
        let t = Tensor::from_vec(vec![0.12345], &[1]);
        assert_eq!(qf.quantize(&t).data(), t.data());
    }

    #[test]
    fn nan_propagates() {
        let q = FakeQuant::new(ElemFormat::E4M3);
        assert!(q.quantize_scalar(f32::NAN).is_nan());
    }

    #[test]
    fn nonfinite_policy_saturate_and_zero() {
        let t = Tensor::from_vec(
            vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.0],
            &[4],
        );
        let sat = FakeQuant::with_guard(
            ElemFormat::E4M3,
            UnderflowPolicy::RoundTiesToZero,
            NonFinitePolicy::Saturate,
        );
        assert_eq!(sat.quantize(&t).data(), &[448.0, 448.0, -448.0, 1.0]);
        let zero = FakeQuant::with_guard(
            ElemFormat::E4M3,
            UnderflowPolicy::RoundTiesToZero,
            NonFinitePolicy::Zero,
        );
        assert_eq!(zero.quantize(&t).data(), &[0.0, 0.0, 0.0, 1.0]);
        // Default (Propagate): NaN passes, infinities saturate naturally.
        let prop = FakeQuant::new(ElemFormat::E4M3);
        let p = prop.quantize(&t);
        assert!(p.data()[0].is_nan());
        assert_eq!(&p.data()[1..], &[448.0, -448.0, 1.0]);
    }

    #[test]
    fn error_policy_rejects_first_nonfinite() {
        let q = FakeQuant::with_guard(
            ElemFormat::P8E1,
            UnderflowPolicy::RoundTiesToZero,
            NonFinitePolicy::Error,
        );
        let t = Tensor::from_vec(vec![1.0, f32::NAN, f32::INFINITY], &[3]);
        match q.try_quantize(&t) {
            Err(QuantError::NonFiniteInput { index, value }) => {
                assert_eq!(index, 1);
                assert!(value.is_nan());
            }
            other => panic!("expected NonFiniteInput, got {other:?}"),
        }
        // Clean tensors pass under Error policy.
        let ok = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let (_, h) = q.try_quantize(&ok).unwrap();
        assert!(h.is_clean());
    }

    #[test]
    fn all_nan_tensor_under_each_policy() {
        let t = Tensor::from_vec(vec![f32::NAN; 4], &[4]);
        for (policy, expect) in [
            (NonFinitePolicy::Saturate, Some(4096.0)),
            (NonFinitePolicy::Zero, Some(0.0)),
            (NonFinitePolicy::Propagate, None), // all NaN out
        ] {
            let q = FakeQuant::with_guard(
                ElemFormat::P8E1,
                UnderflowPolicy::RoundTiesToZero,
                policy,
            );
            let (out, h) = q.quantize_with_health(&t);
            assert_eq!(h.nonfinite_in, 4, "{policy:?}");
            assert_eq!(h.nonfinite_rate(), 1.0);
            match expect {
                Some(v) => {
                    assert!(out.data().iter().all(|&x| x == v), "{policy:?}");
                    assert_eq!(h.nonfinite_out, 0);
                }
                None => {
                    assert!(out.data().iter().all(|x| x.is_nan()), "{policy:?}");
                    assert_eq!(h.nonfinite_out, 4);
                }
            }
        }
        let err = FakeQuant::with_guard(
            ElemFormat::P8E1,
            UnderflowPolicy::RoundTiesToZero,
            NonFinitePolicy::Error,
        );
        assert!(err.try_quantize(&t).is_err());
    }

    #[test]
    fn health_counts_saturation_and_underflow() {
        let q = FakeQuant::new(ElemFormat::P8E1); // range [2^-12, 4096]
        let t = Tensor::from_vec(vec![1e9, -1e9, 1e-9, 0.0, 1.0, f32::NAN], &[6]);
        let (out, h) = q.quantize_with_health(&t);
        assert_eq!(h.elements, 6);
        assert_eq!(h.saturated, 2); // ±1e9 clamp to ±4096
        assert_eq!(h.underflowed, 1); // 1e-9 flushes; exact 0 does not count
        assert_eq!(h.nonfinite_in, 1);
        assert_eq!(h.nonfinite_out, 1);
        assert_eq!(out.data()[0], 4096.0);
        assert_eq!(out.data()[3], 0.0);
        assert!((h.saturation_rate() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_health_judges_scaled_values() {
        // 1e-5 underflows unscaled; with a rescuing scale nothing flushes.
        let q = FakeQuant::new(ElemFormat::P8E1);
        let t = Tensor::from_vec(vec![1e-5, 2e-5], &[2]);
        let (_, h0) = q.quantize_with_health(&t);
        assert_eq!(h0.underflowed, 2);
        let (_, h1) = q.quantize_scaled_with_health(&t, 64.0 / 2e-5);
        assert!(h1.is_clean(), "{h1}");
    }

    #[test]
    fn underflow_policy_at_exactly_half_minpos() {
        // minpos/2 is the tie point: RoundTiesToZero flushes it, Standard
        // never lets a non-zero input round to zero.
        let minpos = ElemFormat::P8E1.min_positive() as f32;
        let tie = 0.5 * minpos;
        let rtz = FakeQuant::with_policy(ElemFormat::P8E1, UnderflowPolicy::RoundTiesToZero);
        assert_eq!(rtz.quantize_scalar(tie), 0.0);
        assert_eq!(rtz.quantize_scalar(-tie), 0.0);
        let std = FakeQuant::with_policy(ElemFormat::P8E1, UnderflowPolicy::Standard);
        assert_eq!(std.quantize_scalar(tie), minpos);
        assert_eq!(std.quantize_scalar(-tie), -minpos);
        // Just above the tie rounds to minpos under both policies.
        let above = tie * 1.001;
        assert_eq!(rtz.quantize_scalar(above), minpos);
        assert_eq!(std.quantize_scalar(above), minpos);
    }
}
