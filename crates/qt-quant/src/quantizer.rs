//! Fast tensor fake-quantization, plus the straight-through-estimator
//! autograd op used during quantized training.

use crate::format::ElemFormat;
use qt_autograd::{Tape, Var};
use qt_posit::UnderflowPolicy;
use qt_tensor::Tensor;

/// A fake-quantizer: rounds values onto a format's representable grid.
///
/// For the 8-/9-bit formats the quantizer pre-computes the sorted value
/// table and the decision boundaries between adjacent values (including
/// tie direction), so per-element quantization is a binary search instead
/// of a full encode — the same trick a hardware LUT-based converter uses.
/// Results are bit-identical to [`ElemFormat::quantize_scalar_with`].
///
/// # Example
///
/// ```
/// use qt_quant::{ElemFormat, FakeQuant};
/// use qt_tensor::Tensor;
///
/// let q = FakeQuant::new(ElemFormat::E4M3);
/// let t = Tensor::from_vec(vec![0.3, 500.0, -1e-9], &[3]);
/// let r = q.quantize(&t);
/// assert_eq!(r.data()[1], 448.0); // saturated
/// assert_eq!(r.data()[2], 0.0);   // flushed
/// ```
#[derive(Debug, Clone)]
pub struct FakeQuant {
    format: ElemFormat,
    policy: UnderflowPolicy,
    /// Sorted representable values (empty → identity/wide format).
    values: Vec<f32>,
    /// `bounds[i]` is the threshold between `values[i]` and `values[i+1]`:
    /// inputs strictly below it map to index ≤ i, above to ≥ i+1; inputs
    /// equal to it map according to `tie_up[i]`.
    bounds: Vec<f32>,
    tie_up: Vec<bool>,
}

impl FakeQuant {
    /// Quantizer with the paper's default posit underflow policy.
    pub fn new(format: ElemFormat) -> Self {
        Self::with_policy(format, UnderflowPolicy::RoundTiesToZero)
    }

    /// Quantizer with an explicit posit underflow policy (no effect on
    /// float formats).
    pub fn with_policy(format: ElemFormat, policy: UnderflowPolicy) -> Self {
        let values = format.finite_values();
        let mut bounds = Vec::new();
        let mut tie_up = Vec::new();
        for w in values.windows(2) {
            let mid = 0.5 * (w[0] as f64 + w[1] as f64);
            bounds.push(mid as f32);
            // Resolve the tie exactly like the scalar path.
            let q = format.quantize_scalar_with(mid as f32, policy);
            tie_up.push(q == w[1]);
        }
        Self {
            format,
            policy,
            values,
            bounds,
            tie_up,
        }
    }

    /// The quantizer's format.
    pub fn format(&self) -> ElemFormat {
        self.format
    }

    /// The underflow policy in effect.
    pub fn policy(&self) -> UnderflowPolicy {
        self.policy
    }

    /// Quantize a single value.
    #[inline]
    pub fn quantize_scalar(&self, x: f32) -> f32 {
        if self.values.is_empty() {
            // Fp32 (identity) or Bf16 (cheap direct rounding).
            return self.format.quantize_scalar_with(x, self.policy);
        }
        if x.is_nan() {
            return f32::NAN;
        }
        let n = self.values.len();
        // Binary search over decision boundaries: `b < x` puts an input
        // exactly on a boundary below it, so ties land on the lower value;
        // bump when the pre-computed tie direction says otherwise.
        let mut i = self.bounds.partition_point(|&b| b < x).min(n - 1);
        if i < self.bounds.len() && x == self.bounds[i] && self.tie_up[i] {
            i += 1;
        }
        let v = self.values[i.min(n - 1)];
        // Standard posit policy: a non-zero input never rounds to zero.
        if v == 0.0
            && x != 0.0
            && self.format.is_posit()
            && self.policy == UnderflowPolicy::Standard
        {
            let minpos = self.format.min_positive() as f32;
            return if x > 0.0 { minpos } else { -minpos };
        }
        v
    }

    /// Quantize every element of a tensor.
    pub fn quantize(&self, t: &Tensor) -> Tensor {
        if matches!(self.format, ElemFormat::Fp32) {
            return t.clone();
        }
        t.map(|x| self.quantize_scalar(x))
    }

    /// Quantize with a scale factor: `Q(x * scale) / scale` — the
    /// per-tensor-scaled quantization of §5.1. `scale == 1.0` is plain
    /// quantization.
    pub fn quantize_scaled(&self, t: &Tensor, scale: f32) -> Tensor {
        if matches!(self.format, ElemFormat::Fp32) {
            return t.clone();
        }
        let inv = 1.0 / scale;
        t.map(|x| self.quantize_scalar(x * scale) * inv)
    }

    /// Record a quantization on the tape with a straight-through estimator
    /// backward pass: the gradient flows through unchanged, but is zeroed
    /// where the input saturated (clipped STE), matching quantization-aware
    /// training practice.
    pub fn quantize_var(&self, tape: &mut Tape, x: Var) -> Var {
        self.quantize_var_scaled(tape, x, 1.0)
    }

    /// Scaled quantization on the tape (`Q(x·s)/s`) with clipped-STE
    /// backward.
    pub fn quantize_var_scaled(&self, tape: &mut Tape, x: Var, scale: f32) -> Var {
        if matches!(self.format, ElemFormat::Fp32) {
            return x;
        }
        let v = self.quantize_scaled(tape.value(x), scale);
        let max = (self.format.max_value() / scale as f64) as f32;
        tape.custom(
            vec![x],
            v,
            Box::new(move |g, parents, _| {
                vec![g.zip(&parents[0], |gv, xv| {
                    if xv.abs() > max {
                        0.0
                    } else {
                        gv
                    }
                })]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn lut_matches_scalar_path_exhaustively() {
        let mut rng = StdRng::seed_from_u64(42);
        for fmt in [
            ElemFormat::P8E0,
            ElemFormat::P8E1,
            ElemFormat::P8E2,
            ElemFormat::E4M3,
            ElemFormat::E5M2,
            ElemFormat::E5M3,
        ] {
            for policy in [UnderflowPolicy::RoundTiesToZero, UnderflowPolicy::Standard] {
                let q = FakeQuant::with_policy(fmt, policy);
                // Random magnitudes across the whole dynamic range.
                for _ in 0..2000 {
                    let e: f64 = rng.gen_range(-30.0..30.0);
                    let m: f64 = rng.gen_range(-2.0..2.0);
                    let x = (m * libm::exp2(e)) as f32;
                    let a = q.quantize_scalar(x);
                    let b = fmt.quantize_scalar_with(x, policy);
                    assert_eq!(a, b, "{fmt:?} {policy:?} x={x}");
                }
                // Exact representable values and midpoints.
                let vals = fmt.finite_values();
                for w in vals.windows(2) {
                    for x in [w[0], w[1], 0.5 * (w[0] + w[1])] {
                        assert_eq!(
                            q.quantize_scalar(x),
                            fmt.quantize_scalar_with(x, policy),
                            "{fmt:?} {policy:?} x={x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn quantize_tensor_shapes_preserved() {
        let q = FakeQuant::new(ElemFormat::P8E1);
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(q.quantize(&t).shape(), &[2, 3, 4]);
    }

    #[test]
    fn scaled_quantization_rescues_small_values() {
        // 1e-5 underflows Posit8 (min 2^-12 ≈ 2.4e-4) but survives with a
        // scale that maps amax to 64.
        let q = FakeQuant::new(ElemFormat::P8E1);
        let t = Tensor::from_vec(vec![1e-5, 2e-5], &[2]);
        assert_eq!(q.quantize(&t).data(), &[0.0, 0.0]);
        let scale = 64.0 / 2e-5;
        let s = q.quantize_scaled(&t, scale);
        assert!((s.data()[0] - 1e-5).abs() / 1e-5 < 0.05);
        assert!((s.data()[1] - 2e-5).abs() / 2e-5 < 0.05);
    }

    #[test]
    fn ste_backward_passes_and_clips() {
        let q = FakeQuant::new(ElemFormat::P8E1);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.3, 9999.0, -9999.0], &[3]), true);
        let y = q.quantize_var(&mut tape, x);
        assert_eq!(tape.value(y).data()[1], 4096.0);
        let l = tape.sum_all(y);
        let g = tape.backward(l);
        // in-range passes gradient; saturated entries are clipped
        assert_eq!(g.get(x).unwrap().data(), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn bf16_and_fp32_paths() {
        let qb = FakeQuant::new(ElemFormat::Bf16);
        assert_eq!(qb.quantize_scalar(1.0 + 1e-4), 1.0);
        let qf = FakeQuant::new(ElemFormat::Fp32);
        let t = Tensor::from_vec(vec![0.12345], &[1]);
        assert_eq!(qf.quantize(&t).data(), t.data());
    }

    #[test]
    fn nan_propagates() {
        let q = FakeQuant::new(ElemFormat::E4M3);
        assert!(q.quantize_scalar(f32::NAN).is_nan());
    }
}
