//! The element formats evaluated by the paper.

use qt_posit::{Posit, UnderflowPolicy, P16E1, P8E0, P8E1, P8E2};
use qt_softfloat::{Bf16, E4M3, E5M2, E5M3};

/// A storage/compute element format.
///
/// Covers every format the paper evaluates: the BF16 baseline, the three
/// 8-bit posits, the two OCP FP8 formats, the hybrid E5M3 MAC format, and
/// `Fp32` (the unquantized carrier) for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemFormat {
    /// 32-bit IEEE float: no quantization (identity grid).
    Fp32,
    /// BFloat16 — the paper's high-precision baseline.
    Bf16,
    /// Posit(8, 0): range `2^±6`, most fraction bits near 1.
    P8E0,
    /// Posit(8, 1): the paper's primary "Posit8", range `2^±12`.
    P8E1,
    /// Posit(8, 2): range `2^±24`, for large models (§4.3).
    P8E2,
    /// Posit(16, 1): 16-bit posit for the hardware comparisons.
    P16E1,
    /// FP8 E4M3 (forward-pass FP8 format).
    E4M3,
    /// FP8 E5M2 (backward-pass FP8 format).
    E5M2,
    /// Hybrid E5M3 (superset MAC format of §7.1).
    E5M3,
}

impl ElemFormat {
    /// All formats, in a stable display order.
    pub const ALL: [ElemFormat; 9] = [
        ElemFormat::Fp32,
        ElemFormat::Bf16,
        ElemFormat::P8E0,
        ElemFormat::P8E1,
        ElemFormat::P8E2,
        ElemFormat::P16E1,
        ElemFormat::E4M3,
        ElemFormat::E5M2,
        ElemFormat::E5M3,
    ];

    /// Short name, e.g. `"Posit(8,1)"` or `"E4M3"`.
    pub fn name(self) -> &'static str {
        match self {
            ElemFormat::Fp32 => "FP32",
            ElemFormat::Bf16 => "BF16",
            ElemFormat::P8E0 => "Posit(8,0)",
            ElemFormat::P8E1 => "Posit(8,1)",
            ElemFormat::P8E2 => "Posit(8,2)",
            ElemFormat::P16E1 => "Posit(16,1)",
            ElemFormat::E4M3 => "E4M3",
            ElemFormat::E5M2 => "E5M2",
            ElemFormat::E5M3 => "E5M3",
        }
    }

    /// Storage width in bits.
    pub fn bits(self) -> u32 {
        match self {
            ElemFormat::Fp32 => 32,
            ElemFormat::Bf16 => 16,
            ElemFormat::P16E1 => 16,
            ElemFormat::E5M3 => 9,
            _ => 8,
        }
    }

    /// `true` for posit formats (they need encode/decode hardware).
    pub fn is_posit(self) -> bool {
        matches!(
            self,
            ElemFormat::P8E0 | ElemFormat::P8E1 | ElemFormat::P8E2 | ElemFormat::P16E1
        )
    }

    /// Largest representable finite magnitude.
    pub fn max_value(self) -> f64 {
        match self {
            ElemFormat::Fp32 => f32::MAX as f64,
            ElemFormat::Bf16 => Bf16::MAX.to_f64(),
            ElemFormat::P8E0 => P8E0::maxpos(),
            ElemFormat::P8E1 => P8E1::maxpos(),
            ElemFormat::P8E2 => P8E2::maxpos(),
            ElemFormat::P16E1 => P16E1::maxpos(),
            ElemFormat::E4M3 => qt_softfloat::E4M3::max().to_f64(),
            ElemFormat::E5M2 => qt_softfloat::E5M2::max().to_f64(),
            ElemFormat::E5M3 => qt_softfloat::E5M3::max().to_f64(),
        }
    }

    /// Smallest positive representable magnitude (subnormal / minpos).
    pub fn min_positive(self) -> f64 {
        match self {
            ElemFormat::Fp32 => f32::MIN_POSITIVE as f64,
            ElemFormat::Bf16 => Bf16::MIN_POSITIVE.to_f64(),
            ElemFormat::P8E0 => P8E0::minpos(),
            ElemFormat::P8E1 => P8E1::minpos(),
            ElemFormat::P8E2 => P8E2::minpos(),
            ElemFormat::P16E1 => P16E1::minpos(),
            ElemFormat::E4M3 => E4M3::min_positive().to_f64(),
            ElemFormat::E5M2 => E5M2::min_positive().to_f64(),
            ElemFormat::E5M3 => E5M3::min_positive().to_f64(),
        }
    }

    /// Binade range `[lo, hi]` such that magnitudes in `2^lo ..= 2^hi` are
    /// representable with non-zero precision (used for coverage plots,
    /// Figures 6 and 10).
    pub fn exp_range(self) -> (i32, i32) {
        let lo = libm::floor(libm::log2(self.min_positive())) as i32;
        let hi = libm::floor(libm::log2(self.max_value())) as i32;
        (lo, hi)
    }

    /// The amax the paper scales tensors toward for this format (§5.1):
    /// FP8 scales to the format maximum; Posit8 scales to **64**, because
    /// posit values near maxpos have no fraction bits.
    pub fn amax_target(self) -> f64 {
        match self {
            ElemFormat::P8E0 => 8.0,
            ElemFormat::P8E1 | ElemFormat::P8E2 | ElemFormat::P16E1 => 64.0,
            other => other.max_value(),
        }
    }

    /// Round one value to the nearest representable value (saturating),
    /// under the given posit underflow policy (ignored by float formats).
    pub fn quantize_scalar_with(self, x: f32, policy: UnderflowPolicy) -> f32 {
        let xd = x as f64;
        let q = match self {
            ElemFormat::Fp32 => return x,
            ElemFormat::Bf16 => return Bf16::quantize(x),
            ElemFormat::P8E0 => Posit::<8, 0>::quantize_with(xd, policy),
            ElemFormat::P8E1 => Posit::<8, 1>::quantize_with(xd, policy),
            ElemFormat::P8E2 => Posit::<8, 2>::quantize_with(xd, policy),
            ElemFormat::P16E1 => Posit::<16, 1>::quantize_with(xd, policy),
            ElemFormat::E4M3 => E4M3::quantize(xd),
            ElemFormat::E5M2 => E5M2::quantize(xd),
            ElemFormat::E5M3 => E5M3::quantize(xd),
        };
        q as f32
    }

    /// Round one value under the paper's default underflow policy.
    pub fn quantize_scalar(self, x: f32) -> f32 {
        self.quantize_scalar_with(x, UnderflowPolicy::RoundTiesToZero)
    }

    /// Every finite representable value, sorted ascending (empty for
    /// `Fp32`/`Bf16`, which are treated as continuous carriers).
    pub fn finite_values(self) -> Vec<f32> {
        let raw: Vec<f32> = match self {
            ElemFormat::Fp32 | ElemFormat::Bf16 => return Vec::new(),
            ElemFormat::P8E0 => Posit::<8, 0>::all_finite().map(|p| p.to_f32()).collect(),
            ElemFormat::P8E1 => Posit::<8, 1>::all_finite().map(|p| p.to_f32()).collect(),
            ElemFormat::P8E2 => Posit::<8, 2>::all_finite().map(|p| p.to_f32()).collect(),
            ElemFormat::P16E1 => Posit::<16, 1>::all_finite().map(|p| p.to_f32()).collect(),
            ElemFormat::E4M3 => (0u16..256).map(|b| E4M3::from_bits(b).to_f32()).collect(),
            ElemFormat::E5M2 => (0u16..256).map(|b| E5M2::from_bits(b).to_f32()).collect(),
            ElemFormat::E5M3 => (0u16..512).map(|b| E5M3::from_bits(b).to_f32()).collect(),
        };
        let mut v: Vec<f32> = raw.into_iter().filter(|x| x.is_finite()).collect();
        v.sort_by(f32::total_cmp);
        v.dedup();
        v
    }

    /// Round to the grid and return the stored bit code — the word an
    /// edge accelerator actually holds in SRAM (and what a checkpoint's
    /// compact `qparams` section stores). `None` for `Fp32`, which is a
    /// carrier, not a storage format.
    pub fn encode_code(self, x: f32) -> Option<u16> {
        Some(match self {
            ElemFormat::Fp32 => return None,
            ElemFormat::Bf16 => Bf16::from_f32(x).bits(),
            ElemFormat::P8E0 => Posit::<8, 0>::from_f32(x).bits(),
            ElemFormat::P8E1 => Posit::<8, 1>::from_f32(x).bits(),
            ElemFormat::P8E2 => Posit::<8, 2>::from_f32(x).bits(),
            ElemFormat::P16E1 => Posit::<16, 1>::from_f32(x).bits(),
            ElemFormat::E4M3 => E4M3::from_f32(x).bits(),
            ElemFormat::E5M2 => E5M2::from_f32(x).bits(),
            ElemFormat::E5M3 => E5M3::from_f32(x).bits(),
        })
    }

    /// Decode a stored bit code back to the value the datapath computes
    /// with. Exception codes decode to NaN (posit NaR, FP8 NaN) or ±∞
    /// (E5M2). `None` for `Fp32`.
    pub fn decode_code(self, code: u16) -> Option<f32> {
        Some(match self {
            ElemFormat::Fp32 => return None,
            ElemFormat::Bf16 => Bf16::from_bits(code).to_f32(),
            ElemFormat::P8E0 => Posit::<8, 0>::from_bits(code).to_f32(),
            ElemFormat::P8E1 => Posit::<8, 1>::from_bits(code).to_f32(),
            ElemFormat::P8E2 => Posit::<8, 2>::from_bits(code).to_f32(),
            ElemFormat::P16E1 => Posit::<16, 1>::from_bits(code).to_f32(),
            ElemFormat::E4M3 => E4M3::from_bits(code).to_f32(),
            ElemFormat::E5M2 => E5M2::from_bits(code).to_f32(),
            ElemFormat::E5M3 => E5M3::from_bits(code).to_f32(),
        })
    }

    /// Parse a name as printed by [`ElemFormat::name`] (case-insensitive;
    /// also accepts `posit8`, `fp8`, `bf16` style shorthands).
    pub fn parse(s: &str) -> Option<Self> {
        let t = s.to_ascii_lowercase();
        Some(match t.as_str() {
            "fp32" | "f32" => ElemFormat::Fp32,
            "bf16" | "bfloat16" => ElemFormat::Bf16,
            "posit(8,0)" | "p8e0" => ElemFormat::P8E0,
            "posit(8,1)" | "p8e1" | "posit8" => ElemFormat::P8E1,
            "posit(8,2)" | "p8e2" => ElemFormat::P8E2,
            "posit(16,1)" | "p16e1" | "posit16" => ElemFormat::P16E1,
            "e4m3" => ElemFormat::E4M3,
            "e5m2" => ElemFormat::E5M2,
            "e5m3" | "fp8-hybrid" => ElemFormat::E5M3,
            _ => return None,
        })
    }
}

impl core::fmt::Display for ElemFormat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        for f in ElemFormat::ALL {
            assert_eq!(ElemFormat::parse(f.name()), Some(f));
        }
        assert_eq!(ElemFormat::parse("posit8"), Some(ElemFormat::P8E1));
        assert_eq!(ElemFormat::parse("nope"), None);
    }

    #[test]
    fn ranges_match_paper() {
        assert_eq!(ElemFormat::P8E1.exp_range(), (-12, 12));
        assert_eq!(ElemFormat::P8E0.exp_range(), (-6, 6));
        assert_eq!(ElemFormat::P8E2.exp_range(), (-24, 24));
        assert_eq!(ElemFormat::E4M3.max_value(), 448.0);
        assert_eq!(ElemFormat::E5M2.max_value(), 57344.0);
    }

    #[test]
    fn amax_targets_section_5_1() {
        assert_eq!(ElemFormat::P8E1.amax_target(), 64.0);
        assert_eq!(ElemFormat::E5M2.amax_target(), 57344.0);
        assert_eq!(ElemFormat::E4M3.amax_target(), 448.0);
    }

    #[test]
    fn finite_value_counts() {
        // 255 posit values (all codes minus NaR).
        assert_eq!(ElemFormat::P8E1.finite_values().len(), 255);
        // E4M3: 256 codes − 2 NaN = 254, minus one duplicate (±0 both map
        // to 0.0) = 253.
        assert_eq!(ElemFormat::E4M3.finite_values().len(), 253);
        // E5M2: 256 − 2 inf − 6 NaN = 248 → 247 after ±0 dedup.
        assert_eq!(ElemFormat::E5M2.finite_values().len(), 247);
    }

    #[test]
    fn code_roundtrip_is_lossless_on_grid() {
        // encode_code∘decode_code must be the identity on every stored
        // code: this is what makes the checkpoint `qparams` section exact.
        for fmt in ElemFormat::ALL {
            if fmt == ElemFormat::Fp32 {
                assert!(fmt.encode_code(1.0).is_none());
                assert!(fmt.decode_code(0).is_none());
                continue;
            }
            let n_codes: u32 = 1 << fmt.bits().min(16);
            // Exhaustive for ≤ 9-bit formats, sampled for 16-bit ones.
            let stride = if fmt.bits() <= 9 { 1 } else { 257 };
            for code in (0..n_codes).step_by(stride) {
                let v = fmt.decode_code(code as u16).unwrap();
                if v.is_finite() {
                    assert_eq!(
                        fmt.encode_code(v),
                        Some(code as u16),
                        "{fmt:?} code {code:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn quantize_scalar_basics() {
        assert_eq!(ElemFormat::Fp32.quantize_scalar(0.1234), 0.1234);
        assert_eq!(ElemFormat::P8E1.quantize_scalar(1e9), 4096.0);
        assert_eq!(ElemFormat::E4M3.quantize_scalar(1e9), 448.0);
        assert_eq!(ElemFormat::Bf16.quantize_scalar(1.0 + 1e-4), 1.0);
    }
}
