//! Gradient scaling (paper §5.1): loss scaling and delayed per-tensor
//! scaling from amax history.
//!
//! Activation gradients are dominated by magnitudes far below what Posit8
//! or FP8 can represent (Figure 10), so they must be rescaled before
//! quantization. A single *loss scale* suffices for most tasks; harder
//! tasks need *per-tensor* factors. Because scaling is fused with the
//! producing operation, the factor must be known before the tensor is
//! materialised: the paper (following NVIDIA's FP8 recipe) predicts this
//! step's amax as the maximum over a short history of past amaxes.

use crate::format::ElemFormat;
use std::collections::HashMap;

/// How gradients are scaled before quantization during training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalingMode {
    /// No scaling: small gradients underflow (the failure §5.1 motivates).
    None,
    /// One global factor applied to the loss (and undone on weight grads).
    LossScale(f32),
    /// Delayed per-tensor scaling: each named gradient tensor gets its own
    /// factor from an amax history of the given length.
    PerTensorAmax {
        /// Number of past steps whose amax is remembered per tensor.
        history: usize,
    },
}

impl Default for ScalingMode {
    fn default() -> Self {
        ScalingMode::PerTensorAmax { history: 16 }
    }
}

/// Tracks per-tensor amax history and produces quantization scale factors
/// (delayed scaling).
///
/// # Example
///
/// ```
/// use qt_quant::{AmaxTracker, ElemFormat};
///
/// let mut tr = AmaxTracker::new(4);
/// // First step: no history yet → scale derived from a unit amax.
/// let s0 = tr.scale_for("layer0.grad", ElemFormat::P8E1);
/// tr.record("layer0.grad", 1.5e-4);
/// let s1 = tr.scale_for("layer0.grad", ElemFormat::P8E1);
/// // amax 1.5e-4 should be scaled up toward the posit amax target of 64.
/// assert!(s1 > s0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AmaxTracker {
    history_len: usize,
    history: HashMap<String, Vec<f32>>,
}

impl AmaxTracker {
    /// Tracker remembering `history_len` past amaxes per tensor.
    pub fn new(history_len: usize) -> Self {
        Self {
            history_len: history_len.max(1),
            history: HashMap::new(),
        }
    }

    /// Record the observed amax of tensor `name` for this step.
    /// Non-finite or zero amaxes are ignored (a dead gradient should not
    /// poison the scale prediction).
    pub fn record(&mut self, name: &str, amax: f32) {
        if !amax.is_finite() || amax <= 0.0 {
            return;
        }
        let h = self.history.entry(name.to_string()).or_default();
        h.push(amax);
        let len = h.len();
        if len > self.history_len {
            h.drain(..len - self.history_len);
        }
    }

    /// Predicted amax for this step: the maximum of the recorded history,
    /// or `None` with no history.
    pub fn predicted_amax(&self, name: &str) -> Option<f32> {
        self.history
            .get(name)?
            .iter()
            .copied()
            .reduce(f32::max)
    }

    /// Power-of-two scale factor mapping the predicted amax onto the
    /// format's amax target (§5.1). With no history the scale is derived
    /// from an assumed amax of 1.
    ///
    /// Powers of two keep the scaling exact (a pure exponent-bias shift in
    /// hardware, no precision loss in the carrier).
    pub fn scale_for(&self, name: &str, format: ElemFormat) -> f32 {
        let amax = self.predicted_amax(name).unwrap_or(1.0);
        Self::scale_from_amax(amax, format)
    }

    /// The scale used for a known amax (see [`AmaxTracker::scale_for`]).
    pub fn scale_from_amax(amax: f32, format: ElemFormat) -> f32 {
        let target = format.amax_target();
        let raw = target / amax.max(f32::MIN_POSITIVE) as f64;
        // round down to a power of two so amax never exceeds the target
        let e = libm::floor(libm::log2(raw)) as i32;
        libm::ldexp(1.0, e.clamp(-126, 126)) as f32
    }

    /// Forget one tensor's history (e.g. after a rollback invalidated it).
    pub fn flush(&mut self, name: &str) {
        self.history.remove(name);
    }

    /// Forget every tensor whose history window no longer predicts a
    /// usable scale. With [`AmaxTracker::record`] rejecting non-finite
    /// amaxes this is a belt-and-braces sweep used after a training
    /// rollback: any entry that somehow went non-finite or non-positive
    /// is dropped so the next scale is re-derived from scratch.
    pub fn flush_poisoned(&mut self) -> usize {
        let before = self.history.len();
        self.history
            .retain(|_, h| h.iter().all(|a| a.is_finite() && *a > 0.0));
        before - self.history.len()
    }

    /// Forget all history (e.g. between runs).
    pub fn reset(&mut self) {
        self.history.clear();
    }

    /// The history window length this tracker was built with.
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    /// Export every tensor's history, sorted by name — a deterministic
    /// form suitable for checkpointing.
    pub fn export_history(&self) -> Vec<(String, Vec<f32>)> {
        let mut v: Vec<(String, Vec<f32>)> = self
            .history
            .iter()
            .map(|(k, h)| (k.clone(), h.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Rebuild a tracker from exported state (the inverse of
    /// [`AmaxTracker::export_history`]).
    pub fn import_history(
        history_len: usize,
        entries: impl IntoIterator<Item = (String, Vec<f32>)>,
    ) -> Self {
        Self {
            history_len: history_len.max(1),
            history: entries.into_iter().collect(),
        }
    }

    /// Number of tensors currently tracked.
    pub fn tracked(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_is_bounded_and_max_wins() {
        let mut tr = AmaxTracker::new(3);
        for a in [1.0, 8.0, 2.0, 4.0] {
            tr.record("t", a);
        }
        // window is the last 3 entries: 8 was evicted? No: [8,2,4] after
        // drain → max 8 evicted when the 4th arrives: history [8,2,4]→len 4
        // exceeds 3 → drop the oldest (1.0 first, then 8 stays)...
        assert_eq!(tr.predicted_amax("t"), Some(8.0));
        tr.record("t", 0.5);
        // now window [2,4,0.5] → 8 has aged out
        assert_eq!(tr.predicted_amax("t"), Some(4.0));
    }

    #[test]
    fn zero_and_nan_amaxes_ignored() {
        let mut tr = AmaxTracker::new(4);
        tr.record("t", 0.0);
        tr.record("t", f32::NAN);
        assert_eq!(tr.predicted_amax("t"), None);
        tr.record("t", 2.0);
        assert_eq!(tr.predicted_amax("t"), Some(2.0));
    }

    #[test]
    fn scale_hits_target_window() {
        // amax * scale must land in (target/2, target].
        for fmt in [ElemFormat::P8E1, ElemFormat::E5M2, ElemFormat::E4M3] {
            for amax in [1e-7f32, 3e-4, 0.11, 5.0, 300.0] {
                let s = AmaxTracker::scale_from_amax(amax, fmt);
                let scaled = (amax as f64) * (s as f64);
                let target = fmt.amax_target();
                assert!(
                    scaled <= target && scaled > target / 2.0,
                    "{fmt:?} amax={amax} scale={s} scaled={scaled}"
                );
                // power of two
                assert_eq!(s.log2().fract(), 0.0);
            }
        }
    }

    #[test]
    fn posit_scales_to_64_not_maxpos() {
        let s = AmaxTracker::scale_from_amax(1.0, ElemFormat::P8E1);
        assert_eq!(s, 64.0); // not 4096
        let s = AmaxTracker::scale_from_amax(1.0, ElemFormat::E5M2);
        assert_eq!(s, 32768.0); // 57344 rounded down to 2^15
    }

    #[test]
    fn empty_history_uses_unit_amax() {
        let tr = AmaxTracker::new(4);
        assert_eq!(tr.predicted_amax("never-seen"), None);
        // No history → scale derived from amax = 1.
        assert_eq!(
            tr.scale_for("never-seen", ElemFormat::P8E1),
            AmaxTracker::scale_from_amax(1.0, ElemFormat::P8E1)
        );
    }

    #[test]
    fn flush_forgets_one_tensor() {
        let mut tr = AmaxTracker::new(4);
        tr.record("a", 2.0);
        tr.record("b", 4.0);
        tr.flush("a");
        assert_eq!(tr.predicted_amax("a"), None);
        assert_eq!(tr.predicted_amax("b"), Some(4.0));
    }

    #[test]
    fn flush_poisoned_drops_bad_entries() {
        let mut tr = AmaxTracker::new(4);
        tr.record("good", 2.0);
        // Poison the history behind record()'s guard to model corruption.
        tr.history.insert("bad".into(), vec![1.0, f32::NAN]);
        tr.history.insert("dead".into(), vec![0.0]);
        assert_eq!(tr.flush_poisoned(), 2);
        assert_eq!(tr.tracked(), 1);
        assert_eq!(tr.predicted_amax("good"), Some(2.0));
    }

    #[test]
    fn export_import_roundtrip_preserves_predictions() {
        let mut tr = AmaxTracker::new(3);
        tr.record("b", 4.0);
        tr.record("a", 1.0);
        tr.record("a", 2.0);
        let exported = tr.export_history();
        // Sorted by name, regardless of insertion order.
        assert_eq!(exported[0].0, "a");
        assert_eq!(exported[1].0, "b");
        let back = AmaxTracker::import_history(tr.history_len(), exported);
        assert_eq!(back.history_len(), 3);
        assert_eq!(back.predicted_amax("a"), tr.predicted_amax("a"));
        assert_eq!(back.predicted_amax("b"), tr.predicted_amax("b"));
        assert_eq!(back.tracked(), tr.tracked());
    }

    #[test]
    fn independent_tensors() {
        let mut tr = AmaxTracker::new(2);
        tr.record("a", 1.0);
        tr.record("b", 100.0);
        assert!(tr.scale_for("a", ElemFormat::P8E1) > tr.scale_for("b", ElemFormat::P8E1));
        assert_eq!(tr.tracked(), 2);
        tr.reset();
        assert_eq!(tr.tracked(), 0);
    }
}
