//! Numerical guards for quantization: what to do with non-finite inputs,
//! per-tensor health counters, and the typed error the guarded paths
//! return.
//!
//! Fake quantization silently converts "out of range" into "wrong": a
//! saturated activation or a flushed gradient looks like any other value
//! downstream. On an edge device there is no debugger attached, so the
//! quantizer itself has to keep the books — every cut counts how many
//! elements saturated, underflowed to zero, or arrived/left non-finite,
//! and [`NonFinitePolicy`] decides whether NaN/±∞ inputs propagate,
//! clamp, zero, or abort.

use std::fmt;

/// What [`crate::FakeQuant`] does with a non-finite input (NaN or ±∞).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NonFinitePolicy {
    /// Pass NaN through, saturate ±∞ (the seed behaviour; what real
    /// hardware without an exception checker does).
    #[default]
    Propagate,
    /// Clamp to the format's largest finite magnitude: ±∞ → ±max,
    /// NaN → +max. Keeps the datapath finite at the cost of silently
    /// injecting a large value.
    Saturate,
    /// Replace every non-finite input with 0 — the conservative choice
    /// when a poisoned element should contribute nothing downstream.
    Zero,
    /// Refuse: the fallible quantization paths return
    /// [`QuantError::NonFiniteInput`]. Infallible paths
    /// ([`crate::FakeQuant::quantize`]) fall back to `Saturate` and count
    /// the encounter, since they cannot report it.
    Error,
}

/// Per-tensor numerical health of one quantization pass.
///
/// Accumulated by [`crate::FakeQuant::quantize_with_health`] and merged
/// per cut site by the transformer's quantization context, so an
/// inference run can report, per layer, how hard each tensor pressed
/// against the format's range.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TensorHealth {
    /// Elements examined.
    pub elements: u64,
    /// Finite inputs whose magnitude exceeded the format's maximum and
    /// were clamped onto the grid edge.
    pub saturated: u64,
    /// Finite non-zero inputs that quantized to exactly zero (flushed).
    pub underflowed: u64,
    /// Inputs that were already NaN or ±∞ before quantization.
    pub nonfinite_in: u64,
    /// Outputs that left the quantizer non-finite (NaN/NaR propagated
    /// through, or ±∞ emitted by a float format).
    pub nonfinite_out: u64,
}

impl TensorHealth {
    /// Fold another pass's counters into this one.
    pub fn merge(&mut self, other: &TensorHealth) {
        self.elements += other.elements;
        self.saturated += other.saturated;
        self.underflowed += other.underflowed;
        self.nonfinite_in += other.nonfinite_in;
        self.nonfinite_out += other.nonfinite_out;
    }

    /// Fraction of elements clamped at the range edge.
    pub fn saturation_rate(&self) -> f64 {
        self.rate(self.saturated)
    }

    /// Fraction of elements flushed to zero.
    pub fn underflow_rate(&self) -> f64 {
        self.rate(self.underflowed)
    }

    /// Fraction of inputs that were non-finite.
    pub fn nonfinite_rate(&self) -> f64 {
        self.rate(self.nonfinite_in)
    }

    /// `true` when every element passed through without saturation,
    /// underflow, or a non-finite encounter.
    pub fn is_clean(&self) -> bool {
        self.saturated == 0
            && self.underflowed == 0
            && self.nonfinite_in == 0
            && self.nonfinite_out == 0
    }

    fn rate(&self, n: u64) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            n as f64 / self.elements as f64
        }
    }
}

impl fmt::Display for TensorHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} elems: {:.3}% sat, {:.3}% uflow, {} NaN-in, {} NaN-out",
            self.elements,
            100.0 * self.saturation_rate(),
            100.0 * self.underflow_rate(),
            self.nonfinite_in,
            self.nonfinite_out
        )
    }
}

/// Error from a guarded quantization path.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// A non-finite element reached a quantizer whose policy is
    /// [`NonFinitePolicy::Error`].
    NonFiniteInput {
        /// Flat index of the offending element.
        index: usize,
        /// The offending value (NaN or ±∞).
        value: f32,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::NonFiniteInput { index, value } => write!(
                f,
                "non-finite input {value} at flat index {index} (policy = Error)"
            ),
        }
    }
}

impl std::error::Error for QuantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = TensorHealth {
            elements: 10,
            saturated: 1,
            underflowed: 2,
            nonfinite_in: 3,
            nonfinite_out: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.elements, 20);
        assert_eq!(a.saturated, 2);
        assert_eq!(a.underflowed, 4);
        assert_eq!(a.nonfinite_in, 6);
        assert_eq!(a.nonfinite_out, 8);
        assert!(!a.is_clean());
    }

    #[test]
    fn rates_handle_empty() {
        let h = TensorHealth::default();
        assert_eq!(h.saturation_rate(), 0.0);
        assert_eq!(h.underflow_rate(), 0.0);
        assert_eq!(h.nonfinite_rate(), 0.0);
        assert!(h.is_clean());
    }

    #[test]
    fn error_displays_value_and_index() {
        let e = QuantError::NonFiniteInput {
            index: 7,
            value: f32::NAN,
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains("NaN"), "{s}");
    }
}
