//! Numerical guards for quantization: what to do with non-finite inputs,
//! per-tensor health counters, and the typed error the guarded paths
//! return.
//!
//! Fake quantization silently converts "out of range" into "wrong": a
//! saturated activation or a flushed gradient looks like any other value
//! downstream. On an edge device there is no debugger attached, so the
//! quantizer itself has to keep the books — every cut counts how many
//! elements saturated, underflowed to zero, or arrived/left non-finite,
//! and [`NonFinitePolicy`] decides whether NaN/±∞ inputs propagate,
//! clamp, zero, or abort.

use std::fmt;

/// What [`crate::FakeQuant`] does with a non-finite input (NaN or ±∞).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NonFinitePolicy {
    /// Pass NaN through, saturate ±∞ (the seed behaviour; what real
    /// hardware without an exception checker does).
    #[default]
    Propagate,
    /// Clamp to the format's largest finite magnitude: ±∞ → ±max,
    /// NaN → +max. Keeps the datapath finite at the cost of silently
    /// injecting a large value.
    Saturate,
    /// Replace every non-finite input with 0 — the conservative choice
    /// when a poisoned element should contribute nothing downstream.
    Zero,
    /// Refuse: the fallible quantization paths return
    /// [`QuantError::NonFiniteInput`]. Infallible paths
    /// ([`crate::FakeQuant::quantize`]) fall back to `Saturate` and count
    /// the encounter, since they cannot report it.
    Error,
}

/// Per-tensor numerical health of one quantization pass.
///
/// Accumulated by [`crate::FakeQuant::quantize_with_health`] and merged
/// per cut site by the transformer's quantization context, so an
/// inference run can report, per layer, how hard each tensor pressed
/// against the format's range.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TensorHealth {
    /// Elements examined.
    pub elements: u64,
    /// Finite inputs whose magnitude exceeded the format's maximum and
    /// were clamped onto the grid edge.
    pub saturated: u64,
    /// Finite non-zero inputs that quantized to exactly zero (flushed).
    pub underflowed: u64,
    /// Inputs that were already NaN or ±∞ before quantization.
    pub nonfinite_in: u64,
    /// Outputs that left the quantizer non-finite (NaN/NaR propagated
    /// through, or ±∞ emitted by a float format).
    pub nonfinite_out: u64,
}

impl TensorHealth {
    /// Fold another pass's counters into this one.
    pub fn merge(&mut self, other: &TensorHealth) {
        self.elements += other.elements;
        self.saturated += other.saturated;
        self.underflowed += other.underflowed;
        self.nonfinite_in += other.nonfinite_in;
        self.nonfinite_out += other.nonfinite_out;
    }

    /// Fraction of elements clamped at the range edge.
    pub fn saturation_rate(&self) -> f64 {
        self.rate(self.saturated)
    }

    /// Fraction of elements flushed to zero.
    pub fn underflow_rate(&self) -> f64 {
        self.rate(self.underflowed)
    }

    /// Fraction of inputs that were non-finite.
    pub fn nonfinite_rate(&self) -> f64 {
        self.rate(self.nonfinite_in)
    }

    /// `true` when every element passed through without saturation,
    /// underflow, or a non-finite encounter.
    pub fn is_clean(&self) -> bool {
        self.saturated == 0
            && self.underflowed == 0
            && self.nonfinite_in == 0
            && self.nonfinite_out == 0
    }

    fn rate(&self, n: u64) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            n as f64 / self.elements as f64
        }
    }
}

impl fmt::Display for TensorHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} elems: {:.3}% sat, {:.3}% uflow, {} NaN-in, {} NaN-out",
            self.elements,
            100.0 * self.saturation_rate(),
            100.0 * self.underflow_rate(),
            self.nonfinite_in,
            self.nonfinite_out
        )
    }
}

/// Sliding window over the last N per-request [`TensorHealth`] outcomes.
///
/// A single unhealthy forward pass says little — one NaN can be a stray
/// upset — but *rates* over a recent window are what a serving runtime's
/// circuit breaker needs: "did the non-finite rate of the posit8 path
/// exceed threshold over the last 32 requests?". The window is a fixed-
/// capacity ring; pushing the N+1-th outcome evicts the oldest, and the
/// aggregate counters always describe exactly the retained entries.
#[derive(Debug, Clone)]
pub struct HealthWindow {
    cap: usize,
    entries: std::collections::VecDeque<TensorHealth>,
    /// Retained entries with any non-finite traffic (in or out).
    unhealthy: usize,
}

impl HealthWindow {
    /// Window retaining the most recent `cap` outcomes (minimum 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            cap,
            entries: std::collections::VecDeque::with_capacity(cap),
            unhealthy: 0,
        }
    }

    /// `true` when `h` carries non-finite traffic — the outcome class the
    /// breaker counts against the 8-bit path.
    pub fn is_unhealthy(h: &TensorHealth) -> bool {
        h.nonfinite_in > 0 || h.nonfinite_out > 0
    }

    /// Record one request's aggregate health, evicting the oldest entry
    /// when full. Returns whether this outcome counted as unhealthy.
    pub fn push(&mut self, h: TensorHealth) -> bool {
        if self.entries.len() == self.cap {
            if let Some(old) = self.entries.pop_front() {
                if Self::is_unhealthy(&old) {
                    self.unhealthy -= 1;
                }
            }
        }
        let bad = Self::is_unhealthy(&h);
        if bad {
            self.unhealthy += 1;
        }
        self.entries.push_back(h);
        bad
    }

    /// Outcomes currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no outcome has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// `true` once the window holds `capacity` outcomes.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.cap
    }

    /// Retained outcomes with non-finite traffic.
    pub fn unhealthy_count(&self) -> usize {
        self.unhealthy
    }

    /// Fraction of retained outcomes that were unhealthy (0 when empty).
    pub fn unhealthy_rate(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.unhealthy as f64 / self.entries.len() as f64
        }
    }

    /// Element-level counters folded over the retained outcomes.
    pub fn total(&self) -> TensorHealth {
        let mut t = TensorHealth::default();
        for h in &self.entries {
            t.merge(h);
        }
        t
    }

    /// Drop every retained outcome (e.g. when a breaker closes again, so
    /// stale fault history cannot re-trip it).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.unhealthy = 0;
    }
}

/// Error from a guarded quantization path.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// A non-finite element reached a quantizer whose policy is
    /// [`NonFinitePolicy::Error`].
    NonFiniteInput {
        /// Flat index of the offending element.
        index: usize,
        /// The offending value (NaN or ±∞).
        value: f32,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::NonFiniteInput { index, value } => write!(
                f,
                "non-finite input {value} at flat index {index} (policy = Error)"
            ),
        }
    }
}

impl std::error::Error for QuantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = TensorHealth {
            elements: 10,
            saturated: 1,
            underflowed: 2,
            nonfinite_in: 3,
            nonfinite_out: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.elements, 20);
        assert_eq!(a.saturated, 2);
        assert_eq!(a.underflowed, 4);
        assert_eq!(a.nonfinite_in, 6);
        assert_eq!(a.nonfinite_out, 8);
        assert!(!a.is_clean());
    }

    #[test]
    fn rates_handle_empty() {
        let h = TensorHealth::default();
        assert_eq!(h.saturation_rate(), 0.0);
        assert_eq!(h.underflow_rate(), 0.0);
        assert_eq!(h.nonfinite_rate(), 0.0);
        assert!(h.is_clean());
    }

    #[test]
    fn health_window_evicts_and_tracks_rates() {
        let clean = TensorHealth {
            elements: 10,
            ..TensorHealth::default()
        };
        let bad = TensorHealth {
            elements: 10,
            nonfinite_out: 2,
            ..TensorHealth::default()
        };
        let mut w = HealthWindow::new(3);
        assert!(w.is_empty());
        assert_eq!(w.unhealthy_rate(), 0.0);
        assert!(!w.push(clean));
        assert!(w.push(bad));
        assert!(w.push(bad));
        assert!(w.is_full());
        assert_eq!(w.unhealthy_count(), 2);
        assert!((w.unhealthy_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(w.total().elements, 30);
        // Eviction drops the oldest (clean) entry: rate goes to 1.
        w.push(bad);
        assert_eq!(w.len(), 3);
        assert_eq!(w.unhealthy_count(), 3);
        assert_eq!(w.unhealthy_rate(), 1.0);
        // Evicting an unhealthy entry decrements the count.
        w.push(clean);
        assert_eq!(w.unhealthy_count(), 2);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.unhealthy_count(), 0);
    }

    #[test]
    fn health_window_capacity_floor_is_one() {
        let mut w = HealthWindow::new(0);
        assert_eq!(w.capacity(), 1);
        w.push(TensorHealth::default());
        w.push(TensorHealth::default());
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn error_displays_value_and_index() {
        let e = QuantError::NonFiniteInput {
            index: 7,
            value: f32::NAN,
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains("NaN"), "{s}");
    }
}
