//! Operation classes and the paper's incremental fusion schemes (§4).
//!
//! "Fusing" an element-wise operation with the preceding GEMM means its
//! input is consumed directly from the high-precision GEMM output instead
//! of being re-quantized to 8 bits first. The paper applies fusion
//! *incrementally*, in the order of each operation's measured accuracy
//! impact (Table 1): attention scaling first, then activation functions,
//! then layer normalisation, then residual additions.

/// The classes of Transformer operations whose inputs may be quantized
/// (Figure 5 / Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Matrix multiplications: always quantized in an 8-bit scheme (both
    /// operands), since they run on the 8-bit systolic array.
    Gemm,
    /// The `1/sqrt(d)` scaling of raw attention scores (the paper's most
    /// quantization-sensitive input: unscaled `QKᵀ` logits are wide).
    AttnScaling,
    /// Non-linear activations: softmax and GELU inputs.
    Activation,
    /// Layer-normalisation inputs.
    LayerNorm,
    /// Residual-addition inputs.
    Residual,
}

impl OpClass {
    /// All non-GEMM classes in the paper's fusion order.
    pub const FUSION_ORDER: [OpClass; 4] = [
        OpClass::AttnScaling,
        OpClass::Activation,
        OpClass::LayerNorm,
        OpClass::Residual,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Gemm => "GEMM",
            OpClass::AttnScaling => "Attn Scaling",
            OpClass::Activation => "Activation",
            OpClass::LayerNorm => "LayerNorm",
            OpClass::Residual => "Residual",
        }
    }
}

impl core::fmt::Display for OpClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cumulative fusion level: the columns of Tables 2, 5 and 6.
///
/// Each level fuses its own class *and* everything before it in
/// [`OpClass::FUSION_ORDER`]:
///
/// ```
/// use qt_quant::{FusionLevel, OpClass};
/// assert!(!FusionLevel::None.fuses(OpClass::AttnScaling));
/// assert!(FusionLevel::Activation.fuses(OpClass::AttnScaling));
/// assert!(FusionLevel::Residual.fuses(OpClass::LayerNorm)); // fuse-all
/// assert!(!FusionLevel::Residual.fuses(OpClass::Gemm));     // GEMMs stay 8-bit
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum FusionLevel {
    /// No fusion: every operation input is quantized.
    #[default]
    None,
    /// Fuse GEMM + attention scaling.
    AttnScaling,
    /// … + activation functions.
    Activation,
    /// … + layer normalisation.
    LayerNorm,
    /// … + residual additions (fuse all).
    Residual,
}

impl FusionLevel {
    /// All levels in table-column order.
    pub const ALL: [FusionLevel; 5] = [
        FusionLevel::None,
        FusionLevel::AttnScaling,
        FusionLevel::Activation,
        FusionLevel::LayerNorm,
        FusionLevel::Residual,
    ];

    /// Does this level fuse (skip re-quantization of) inputs to `op`?
    /// GEMM inputs are never fused — they are what the 8-bit MACs consume.
    pub fn fuses(self, op: OpClass) -> bool {
        let op_rank = match op {
            OpClass::Gemm => return false,
            OpClass::AttnScaling => 1,
            OpClass::Activation => 2,
            OpClass::LayerNorm => 3,
            OpClass::Residual => 4,
        };
        self.rank() >= op_rank
    }

    fn rank(self) -> u8 {
        match self {
            FusionLevel::None => 0,
            FusionLevel::AttnScaling => 1,
            FusionLevel::Activation => 2,
            FusionLevel::LayerNorm => 3,
            FusionLevel::Residual => 4,
        }
    }

    /// Column label as printed in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            FusionLevel::None => "No Fusion",
            FusionLevel::AttnScaling => "Fuse GEMM + Attn Scaling",
            FusionLevel::Activation => "+ Activation Fusion",
            FusionLevel::LayerNorm => "+ LayerNorm Fusion",
            FusionLevel::Residual => "+ Residual Fusion",
        }
    }
}

impl core::fmt::Display for FusionLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// An explicit set of operation classes whose inputs are quantized —
/// the ablation axis of Table 1 ("GEMM + Residual", "GEMM + Attn Scaling",
/// …), which cumulative [`FusionLevel`]s cannot express.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpSet {
    /// Quantize GEMM inputs.
    pub gemm: bool,
    /// Quantize attention-scaling inputs.
    pub attn_scaling: bool,
    /// Quantize activation-function inputs.
    pub activation: bool,
    /// Quantize layer-norm inputs.
    pub layernorm: bool,
    /// Quantize residual-addition inputs.
    pub residual: bool,
}

impl OpSet {
    /// Quantize nothing.
    pub const NONE: OpSet = OpSet {
        gemm: false,
        attn_scaling: false,
        activation: false,
        layernorm: false,
        residual: false,
    };

    /// Quantize GEMMs only (Table 1's first quantized row).
    pub const GEMM_ONLY: OpSet = OpSet {
        gemm: true,
        ..OpSet::NONE
    };

    /// GEMM plus exactly one other class (the Table 1 ablation rows).
    pub fn gemm_plus(op: OpClass) -> OpSet {
        let mut s = OpSet::GEMM_ONLY;
        match op {
            OpClass::Gemm => {}
            OpClass::AttnScaling => s.attn_scaling = true,
            OpClass::Activation => s.activation = true,
            OpClass::LayerNorm => s.layernorm = true,
            OpClass::Residual => s.residual = true,
        }
        s
    }

    /// The set corresponding to a cumulative fusion level (everything not
    /// fused is quantized).
    pub fn from_fusion(level: FusionLevel) -> OpSet {
        OpSet {
            gemm: true,
            attn_scaling: !level.fuses(OpClass::AttnScaling),
            activation: !level.fuses(OpClass::Activation),
            layernorm: !level.fuses(OpClass::LayerNorm),
            residual: !level.fuses(OpClass::Residual),
        }
    }

    /// Is `op`'s input quantized under this set?
    pub fn contains(self, op: OpClass) -> bool {
        match op {
            OpClass::Gemm => self.gemm,
            OpClass::AttnScaling => self.attn_scaling,
            OpClass::Activation => self.activation,
            OpClass::LayerNorm => self.layernorm,
            OpClass::Residual => self.residual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opset_from_fusion_is_consistent() {
        for lvl in FusionLevel::ALL {
            let set = OpSet::from_fusion(lvl);
            assert!(set.contains(OpClass::Gemm));
            for op in OpClass::FUSION_ORDER {
                assert_eq!(set.contains(op), !lvl.fuses(op), "{lvl:?} {op:?}");
            }
        }
    }

    #[test]
    fn opset_gemm_plus() {
        let s = OpSet::gemm_plus(OpClass::LayerNorm);
        assert!(s.gemm && s.layernorm);
        assert!(!s.attn_scaling && !s.activation && !s.residual);
    }

    #[test]
    fn levels_are_cumulative() {
        for (i, lvl) in FusionLevel::ALL.iter().enumerate() {
            for (j, op) in OpClass::FUSION_ORDER.iter().enumerate() {
                assert_eq!(lvl.fuses(*op), i > j, "{lvl:?} vs {op:?}");
            }
        }
    }

    #[test]
    fn gemm_never_fused() {
        for lvl in FusionLevel::ALL {
            assert!(!lvl.fuses(OpClass::Gemm));
        }
    }

    #[test]
    fn ordering_matches_table_columns() {
        assert!(FusionLevel::None < FusionLevel::AttnScaling);
        assert!(FusionLevel::LayerNorm < FusionLevel::Residual);
    }
}
