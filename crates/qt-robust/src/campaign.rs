//! Fault-injection campaigns: sweep flip rate × element format over a
//! model's stored weights, measuring accuracy degradation and how much
//! of the corruption the format's exception codes reveal for free.
//!
//! The campaign answers the Table 9 question: *which 8-bit format is the
//! most robust home for weights in edge SRAM?* Posit codes concentrate
//! precision near ±1 and have a single exception code (NaR), while FP8
//! dedicates whole exponent patterns to ±∞/NaN — so the same physical
//! upset has very different consequences, and very different odds of
//! being caught by a zero-cost non-finite check at read time.

use crate::inject::{BitFlipInjector, CodeFormat, FlipPos, InjectionReport};
use qt_accel::SramFaultModel;
use qt_quant::ElemFormat;
use qt_transformer::Model;

/// Configuration of one campaign sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Master seed; every cell derives its own stream from it, so the
    /// table is identical run-to-run and independent of sweep order.
    pub seed: u64,
    /// Storage formats to sweep.
    pub formats: Vec<ElemFormat>,
    /// Per-bit flip probabilities to sweep.
    pub flip_rates: Vec<f64>,
    /// Independent corruption trials averaged per cell.
    pub trials: usize,
}

impl CampaignConfig {
    /// The default Table 9 sweep: the paper's three Posit8 variants plus
    /// both FP8 formats, three flip rates, three trials.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            formats: vec![
                ElemFormat::P8E0,
                ElemFormat::P8E1,
                ElemFormat::P8E2,
                ElemFormat::E4M3,
                ElemFormat::E5M2,
            ],
            flip_rates: vec![1e-4, 1e-3, 1e-2],
            trials: 3,
        }
    }
}

/// One (format, rate) cell of the campaign table.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Storage format under test.
    pub format: ElemFormat,
    /// Per-bit flip probability injected.
    pub rate: f64,
    /// Trials averaged.
    pub trials: usize,
    /// Metric on the clean model (quantized to `format`, uncorrupted).
    pub baseline: f64,
    /// Mean metric over corrupted trials.
    pub corrupted: f64,
    /// Injection bookkeeping merged over all trials.
    pub report: InjectionReport,
}

impl CampaignCell {
    /// Accuracy lost to the injected faults (baseline − corrupted).
    pub fn degradation(&self) -> f64 {
        self.baseline - self.corrupted
    }

    /// Fraction of hit words whose corruption decodes to NaR/NaN/±∞ —
    /// caught by a free exception check at SRAM read time.
    pub fn detection_rate(&self) -> f64 {
        self.report.detection_rate()
    }
}

/// Derive a per-cell seed from the campaign seed and the cell's sweep
/// coordinates (SplitMix64-style mixing), so cells are independent and
/// sweep order is irrelevant.
pub fn cell_seed(master: u64, fmt_idx: usize, rate_idx: usize, trial: usize) -> u64 {
    let mut z = master
        .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul((fmt_idx as u64).wrapping_add(1)))
        .wrapping_add(0xBF58476D1CE4E5B9u64.wrapping_mul((rate_idx as u64).wrapping_add(1)))
        .wrapping_add(0x94D049BB133111EBu64.wrapping_mul((trial as u64).wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Shared sweep scaffolding for fault campaigns.
///
/// Every campaign in this crate walks the same grid — (format index ×
/// stress-level index) cells, `trials` independent trials per cell — and
/// owes the same two determinism guarantees: identical tables run-to-run,
/// and independence from sweep order. Both come from one discipline:
/// every trial's randomness is a fresh [`BitFlipInjector`] seeded from
/// [`cell_seed`] of the trial's grid coordinates, never from a shared
/// stream. The harness owns that discipline so the campaigns (and any
/// future sweep) cannot drift apart on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Harness {
    seed: u64,
    trials: usize,
}

impl Harness {
    /// Harness over `trials` independent trials per cell (minimum 1),
    /// all derived from `seed`.
    pub fn new(seed: u64, trials: usize) -> Self {
        Self {
            seed,
            trials: trials.max(1),
        }
    }

    /// Trials run per cell.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The seed a given trial's injector is built from — exposed for
    /// consumers (e.g. a serving fault source) that derive their own
    /// randomness but must stay on the same independence discipline.
    pub fn trial_seed(&self, fmt_idx: usize, level_idx: usize, trial: usize) -> u64 {
        cell_seed(self.seed, fmt_idx, level_idx, trial)
    }

    /// Injector for the baseline (zero-fault) evaluation of a format.
    /// Uses a reserved level coordinate so it can never collide with a
    /// real cell's stream.
    pub fn baseline_injector(&self, fmt_idx: usize) -> BitFlipInjector {
        BitFlipInjector::new(cell_seed(self.seed, fmt_idx, usize::MAX, 0))
    }

    /// Run every trial of cell (`fmt_idx`, `level_idx`), handing each one
    /// its own freshly-seeded injector, and collect the results.
    pub fn run_cell<T>(
        &self,
        fmt_idx: usize,
        level_idx: usize,
        mut trial: impl FnMut(usize, &mut BitFlipInjector) -> T,
    ) -> Vec<T> {
        (0..self.trials)
            .map(|t| {
                let mut inj = BitFlipInjector::new(cell_seed(self.seed, fmt_idx, level_idx, t));
                trial(t, &mut inj)
            })
            .collect()
    }
}

/// Corrupt every parameter tensor of a model through `codec`'s stored
/// codes at the given per-bit flip rate. Returns the corrupted copy and
/// the merged injection report.
pub fn corrupt_model(
    model: &Model,
    codec: CodeFormat,
    rate: f64,
    injector: &mut BitFlipInjector,
) -> (Model, InjectionReport) {
    let (m, r, _) = corrupt_model_logged(model, codec, rate, injector);
    (m, r)
}

/// [`corrupt_model`] with every flip's exact position logged as
/// `(tensor name, position)` in injection order. The RNG stream is
/// identical to the unlogged variant, so the same injector seed yields
/// the same corruption either way — integrity campaigns use this to
/// audit corrected-vs-injected bit by bit.
pub fn corrupt_model_logged(
    model: &Model,
    codec: CodeFormat,
    rate: f64,
    injector: &mut BitFlipInjector,
) -> (Model, InjectionReport, Vec<(String, FlipPos)>) {
    let mut corrupted = model.clone();
    let mut report = InjectionReport::default();
    let mut flips = Vec::new();
    for name in corrupted.params.names() {
        let (mut codes, shape) = {
            let t = corrupted.params.get(&name);
            let codes: Vec<u16> = t.data().iter().map(|&x| codec.encode(x)).collect();
            (codes, t.shape().to_vec())
        };
        let (r, pos) = injector.corrupt_codes_logged(&mut codes, codec, rate);
        report.merge(&r);
        flips.extend(pos.into_iter().map(|p| (name.clone(), p)));
        let data = codes.iter().map(|&c| codec.decode(c)).collect();
        corrupted
            .params
            .insert(name, qt_tensor::Tensor::from_vec(data, &shape));
    }
    (corrupted, report, flips)
}

/// [`corrupt_model`] with an exact total flip budget (e.g. derived from
/// simulated SRAM traffic via [`SramFaultModel`]), distributed over
/// tensors proportionally to their element counts.
pub fn corrupt_model_exact(
    model: &Model,
    codec: CodeFormat,
    n_flips: u64,
    injector: &mut BitFlipInjector,
) -> (Model, InjectionReport) {
    let mut corrupted = model.clone();
    let mut report = InjectionReport::default();
    let total = corrupted.params.num_elements().max(1) as u64;
    let names = corrupted.params.names();
    let mut spent = 0u64;
    for (i, name) in names.iter().enumerate() {
        let len = corrupted.params.get(name).len() as u64;
        let share = if i + 1 == names.len() {
            n_flips - spent // remainder goes to the last tensor
        } else {
            n_flips * len / total
        };
        spent += share;
        let (t, r) = injector.corrupt_tensor_exact(corrupted.params.get(name), codec, share);
        report.merge(&r);
        corrupted.params.insert(name.clone(), t);
    }
    (corrupted, report)
}

/// Flip budget for holding a model's parameters in SRAM, at `codec`'s
/// storage width, under the given soft-error model.
pub fn weight_traffic_budget(model: &Model, codec: CodeFormat, fault: &SramFaultModel) -> u64 {
    let bytes = model.params.num_elements() as u64 * u64::from(codec.bits().div_ceil(8));
    fault.flip_budget(bytes)
}

/// Run the sweep: for every format × rate, quantize-and-corrupt the
/// model's weights `trials` times and score each corrupted copy with
/// `eval` (which receives the model and the storage format so it can
/// build a matching inference context). Formats without a storage code
/// (`Fp32`) are skipped.
///
/// Deterministic: identical `cfg` (including seed) and model produce an
/// identical table.
pub fn run_campaign(
    cfg: &CampaignConfig,
    model: &Model,
    eval: impl Fn(&Model, ElemFormat) -> f64,
) -> Vec<CampaignCell> {
    let harness = Harness::new(cfg.seed, cfg.trials);
    let mut cells = Vec::new();
    for (fi, &format) in cfg.formats.iter().enumerate() {
        let codec = match CodeFormat::new(format) {
            Some(c) => c,
            None => continue,
        };
        // Baseline: weights rounded onto the storage grid, zero faults.
        let (clean, _) = corrupt_model(model, codec, 0.0, &mut harness.baseline_injector(fi));
        let baseline = eval(&clean, format);
        for (ri, &rate) in cfg.flip_rates.iter().enumerate() {
            let mut report = InjectionReport::default();
            let scores = harness.run_cell(fi, ri, |_, inj| {
                let (corrupted, r) = corrupt_model(model, codec, rate, inj);
                report.merge(&r);
                eval(&corrupted, format)
            });
            cells.push(CampaignCell {
                format,
                rate,
                trials: harness.trials(),
                baseline,
                corrupted: scores.iter().sum::<f64>() / harness.trials() as f64,
                report,
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_quant::QuantScheme;
    use qt_train::evaluate_classify;
    use qt_transformer::{QuantCtx, TaskHead, TransformerConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_model() -> Model {
        let mut rng = StdRng::seed_from_u64(11);
        let mut cfg = TransformerConfig::mobilebert_tiny_sim();
        cfg.layers = 1;
        Model::new(cfg, TaskHead::Classify(2), &mut rng)
    }

    #[test]
    fn campaign_is_deterministic() {
        let model = tiny_model();
        let cfg = CampaignConfig {
            seed: 42,
            formats: vec![ElemFormat::P8E1, ElemFormat::E4M3],
            flip_rates: vec![0.0, 5e-3],
            trials: 2,
        };
        // A cheap deterministic metric: mean absolute weight value — it
        // moves when corruption moves the weights, without needing a
        // forward pass per cell.
        let eval = |m: &Model, _f: ElemFormat| {
            let mut s = 0.0f64;
            let mut n = 0u64;
            for (_, t) in m.params.iter() {
                for &x in t.data() {
                    if x.is_finite() {
                        s += x.abs() as f64;
                        n += 1;
                    }
                }
            }
            s / n.max(1) as f64
        };
        let a = run_campaign(&cfg, &model, eval);
        let b = run_campaign(&cfg, &model, eval);
        assert_eq!(a, b, "identical seed must produce an identical table");
        assert_eq!(a.len(), 4);
        // Zero-rate cells are exactly the baseline with no flips.
        for cell in a.iter().filter(|c| c.rate == 0.0) {
            assert_eq!(cell.degradation(), 0.0);
            assert_eq!(cell.report.bits_flipped, 0);
        }
        // Non-zero-rate cells actually flipped bits.
        for cell in a.iter().filter(|c| c.rate > 0.0) {
            assert!(cell.report.bits_flipped > 0);
        }
        let different_seed = run_campaign(&CampaignConfig { seed: 43, ..cfg }, &model, eval);
        assert_ne!(a, different_seed);
    }

    #[test]
    fn campaign_with_real_accuracy_metric() {
        use qt_datagen::{ClassifyKind, ClassifyTask};
        let model = tiny_model();
        let task = ClassifyTask::new(ClassifyKind::Sst2, model.cfg.vocab, 16);
        let data = task.dataset(16, 3);
        let batches: Vec<_> = data.chunks(8).map(|c| task.batch(c)).collect();
        let cfg = CampaignConfig {
            seed: 7,
            formats: vec![ElemFormat::P8E1],
            flip_rates: vec![1e-3],
            trials: 1,
        };
        let cells = run_campaign(&cfg, &model, |m, fmt| {
            let ctx = QuantCtx::inference(QuantScheme::uniform(fmt));
            evaluate_classify(m, &ctx, &batches)
        });
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        assert!(c.baseline >= 0.0 && c.baseline <= 100.0);
        assert!(c.corrupted >= 0.0 && c.corrupted <= 100.0);
        assert!(c.report.elements > 0);
    }

    #[test]
    fn traffic_budget_drives_exact_corruption() {
        let model = tiny_model();
        let codec = CodeFormat::new(ElemFormat::P8E1).unwrap();
        // BER chosen so the whole parameter store yields a modest budget.
        let fault = SramFaultModel::new(1e-5);
        let budget = weight_traffic_budget(&model, codec, &fault);
        assert!(budget > 0, "tiny model × 1e-5 BER must still inject");
        let mut inj = BitFlipInjector::new(5);
        let (corrupted, report) = corrupt_model_exact(&model, codec, budget, &mut inj);
        assert_eq!(report.bits_flipped, budget);
        assert_eq!(
            corrupted.params.num_elements(),
            model.params.num_elements()
        );
    }
}
