//! Runtime fault sources: per-request weight corruption for a serving
//! loop.
//!
//! The campaigns in [`crate::campaign`] attack a model offline, cell by
//! cell. A serving runtime needs the same physics *online*: every request
//! reads the weights out of (simulated) edge SRAM, and each read is an
//! independent opportunity for an upset. A [`FaultSource`] answers "what
//! does request `r`, attempt `a` see?" — deterministically, from seeds
//! mixed per (request, attempt) with the same SplitMix64 discipline as
//! [`crate::campaign::cell_seed`], so a serving trace replays exactly and
//! is independent of the order requests are processed in.

use crate::campaign::{cell_seed, corrupt_model, corrupt_model_logged};
use crate::inject::{BitFlipInjector, CodeFormat, FlipPos, InjectionReport};
use qt_transformer::Model;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic source of per-request weight corruption.
///
/// Implementations derive all randomness from `(request_id, attempt)`,
/// never from shared mutable state, so the same request always sees the
/// same faults regardless of scheduling — the property the serving
/// chaos tests lean on.
pub trait FaultSource {
    /// The faulted view of `model` that attempt `attempt` of request
    /// `request_id` reads. `None` means the read was clean — serve the
    /// pristine model without paying for a copy.
    fn corrupt_for_request(
        &self,
        model: &Model,
        request_id: u64,
        attempt: u32,
    ) -> Option<(Model, InjectionReport)>;

    /// `true` when this source can never inject (lets a serving loop skip
    /// fault bookkeeping entirely).
    fn is_noop(&self) -> bool {
        false
    }
}

/// The healthy-hardware source: never injects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultSource for NoFaults {
    fn corrupt_for_request(
        &self,
        _model: &Model,
        _request_id: u64,
        _attempt: u32,
    ) -> Option<(Model, InjectionReport)> {
        None
    }

    fn is_noop(&self) -> bool {
        true
    }
}

/// Uniform bit-error-rate source: every attempt's weight read flips each
/// stored bit independently with probability `ber`, through the codes of
/// one storage format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerFaultSource {
    seed: u64,
    codec: CodeFormat,
    ber: f64,
}

impl BerFaultSource {
    /// Source injecting at per-bit probability `ber` into `codec`'s
    /// stored codes, all streams derived from `seed`.
    pub fn new(seed: u64, codec: CodeFormat, ber: f64) -> Self {
        Self {
            seed,
            codec,
            ber: ber.clamp(0.0, 1.0),
        }
    }

    /// The per-bit flip probability.
    pub fn ber(&self) -> f64 {
        self.ber
    }

    /// The storage format whose codes are attacked.
    pub fn codec(&self) -> CodeFormat {
        self.codec
    }

    /// Replay the faults `(request_id, attempt)` would see and return
    /// every flip's exact position as `(tensor name, position)` — the
    /// injected side of an integrity campaign's corrected-vs-injected
    /// audit. Identical stream to
    /// [`FaultSource::corrupt_for_request`]: same seed, same draws.
    pub fn positions_for_request(
        &self,
        model: &Model,
        request_id: u64,
        attempt: u32,
    ) -> Vec<(String, FlipPos)> {
        if self.ber <= 0.0 {
            return Vec::new();
        }
        let mut inj = BitFlipInjector::new(request_seed(self.seed, request_id, attempt));
        corrupt_model_logged(model, self.codec, self.ber, &mut inj).2
    }
}

impl FaultSource for BerFaultSource {
    fn corrupt_for_request(
        &self,
        model: &Model,
        request_id: u64,
        attempt: u32,
    ) -> Option<(Model, InjectionReport)> {
        if self.ber <= 0.0 {
            return None;
        }
        let mut inj = BitFlipInjector::new(request_seed(self.seed, request_id, attempt));
        let (m, r) = corrupt_model(model, self.codec, self.ber, &mut inj);
        if r.bits_flipped == 0 {
            return None; // clean read: the caller keeps the pristine model
        }
        Some((m, r))
    }

    fn is_noop(&self) -> bool {
        self.ber <= 0.0
    }
}

/// A [`BerFaultSource`] with a scripted burst: requests whose id falls in
/// `burst` are attacked at `burst_ber` instead of the base rate.
///
/// This is the deterministic stand-in for a transient environmental event
/// (voltage droop, radiation burst) and the tool the breaker tests use to
/// script trip → recover without wall-clock randomness.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstFaultSource {
    base: BerFaultSource,
    burst_ber: f64,
    burst: std::ops::Range<u64>,
}

impl BurstFaultSource {
    /// Source injecting at `burst_ber` for request ids in `burst`, and at
    /// `base`'s rate everywhere else.
    pub fn new(base: BerFaultSource, burst_ber: f64, burst: std::ops::Range<u64>) -> Self {
        Self {
            base,
            burst_ber: burst_ber.clamp(0.0, 1.0),
            burst,
        }
    }

    /// The request-id window under burst attack.
    pub fn burst_window(&self) -> std::ops::Range<u64> {
        self.burst.clone()
    }
}

impl FaultSource for BurstFaultSource {
    fn corrupt_for_request(
        &self,
        model: &Model,
        request_id: u64,
        attempt: u32,
    ) -> Option<(Model, InjectionReport)> {
        let ber = if self.burst.contains(&request_id) {
            self.burst_ber
        } else {
            self.base.ber
        };
        if ber <= 0.0 {
            return None;
        }
        let mut inj = BitFlipInjector::new(request_seed(self.base.seed, request_id, attempt));
        let (m, r) = corrupt_model(model, self.base.codec, ber, &mut inj);
        if r.bits_flipped == 0 {
            return None;
        }
        Some((m, r))
    }

    fn is_noop(&self) -> bool {
        self.base.ber <= 0.0 && (self.burst_ber <= 0.0 || self.burst.is_empty())
    }
}

/// Per-(request, attempt) seed, mixed with the same SplitMix64 recipe as
/// the campaign grid so streams are independent and processing order is
/// irrelevant.
fn request_seed(master: u64, request_id: u64, attempt: u32) -> u64 {
    cell_seed(master, request_id as usize, attempt as usize, 0)
}

/// Soft-error model for *persistent* protected storage.
///
/// The per-request sources above model transient read upsets: each
/// attempt sees its own faulted view and the damage vanishes with the
/// request. ECC-protected storage (qt-shield) needs the complementary
/// physics — upsets that *land and stay* in the resident code planes
/// until a scrubber or repair removes them. This model emits, per
/// (replica, scrub window), the global bit addresses hit across the
/// protected data **and** parity planes.
///
/// The expected hit count per window is `total_bits * ber`; fractional
/// remainders carry over so the long-run rate is exact even when a
/// window expects less than one flip. Each window's draws come from an
/// independent `cell_seed` stream, so campaigns replay bit-for-bit
/// regardless of scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageFaultModel {
    seed: u64,
    ber: f64,
    carry: f64,
}

impl StorageFaultModel {
    /// Model upsetting each stored bit with probability `ber` per scrub
    /// window, all streams derived from `seed`.
    pub fn new(seed: u64, ber: f64) -> Self {
        Self {
            seed,
            ber: ber.clamp(0.0, 1.0),
            carry: 0.0,
        }
    }

    /// The per-bit, per-window upset probability.
    pub fn ber(&self) -> f64 {
        self.ber
    }

    /// Bit addresses (in `0..total_bits`) upset during one scrub window.
    /// Draws are with replacement: a bit hit twice flips back, matching
    /// independent physical upsets.
    pub fn window_flips(&mut self, replica: usize, window: u64, total_bits: u64) -> Vec<u64> {
        if self.ber <= 0.0 || total_bits == 0 {
            return Vec::new();
        }
        self.carry += total_bits as f64 * self.ber;
        let n = self.carry as u64;
        self.carry -= n as f64;
        if n == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(cell_seed(self.seed, replica, window as usize, 1));
        (0..n).map(|_| rng.gen_range(0..total_bits)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_quant::ElemFormat;
    use qt_transformer::{TaskHead, TransformerConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_model() -> Model {
        let mut rng = StdRng::seed_from_u64(11);
        let mut cfg = TransformerConfig::mobilebert_tiny_sim();
        cfg.layers = 1;
        Model::new(cfg, TaskHead::Classify(2), &mut rng)
    }

    fn codec() -> CodeFormat {
        CodeFormat::new(ElemFormat::P8E1).unwrap()
    }

    #[test]
    fn per_request_streams_are_deterministic_and_independent() {
        let model = tiny_model();
        let src = BerFaultSource::new(7, codec(), 1e-2);
        let a = src.corrupt_for_request(&model, 3, 0).unwrap();
        let b = src.corrupt_for_request(&model, 3, 0).unwrap();
        assert_eq!(a.1, b.1, "same (request, attempt) must replay exactly");
        let name = &model.params.names()[0];
        assert_eq!(a.0.params.get(name).data(), b.0.params.get(name).data());
        // A retry of the same request is a fresh read with its own faults.
        let retry = src.corrupt_for_request(&model, 3, 1).unwrap();
        assert_ne!(a.1, retry.1);
        // A different request likewise.
        let other = src.corrupt_for_request(&model, 4, 0).unwrap();
        assert_ne!(a.1, other.1);
    }

    #[test]
    fn zero_ber_and_no_faults_are_noops() {
        let model = tiny_model();
        assert!(NoFaults.is_noop());
        assert!(NoFaults.corrupt_for_request(&model, 0, 0).is_none());
        let src = BerFaultSource::new(1, codec(), 0.0);
        assert!(src.is_noop());
        assert!(src.corrupt_for_request(&model, 0, 0).is_none());
    }

    #[test]
    fn positions_replay_the_request_stream_exactly() {
        let model = tiny_model();
        let src = BerFaultSource::new(7, codec(), 1e-2);
        let (corrupted, report) = src.corrupt_for_request(&model, 3, 0).unwrap();
        let flips = src.positions_for_request(&model, 3, 0);
        assert_eq!(flips.len() as u64, report.bits_flipped);
        // Undoing the logged flips in code space restores every tensor.
        for name in model.params.names() {
            let mut codes: Vec<u16> = corrupted
                .params
                .get(&name)
                .data()
                .iter()
                .map(|&x| src.codec().encode(x))
                .collect();
            for (n, p) in &flips {
                if *n == name {
                    codes[p.word] ^= 1 << p.bit;
                }
            }
            let pristine: Vec<u16> = model
                .params
                .get(&name)
                .data()
                .iter()
                .map(|&x| src.codec().encode(x))
                .collect();
            assert_eq!(codes, pristine, "{name}");
        }
    }

    #[test]
    fn storage_fault_model_is_deterministic_with_exact_rate() {
        let total_bits = 1_000_000u64;
        let mut a = StorageFaultModel::new(11, 2.5e-6);
        let mut b = StorageFaultModel::new(11, 2.5e-6);
        let mut total = 0usize;
        for w in 0..8 {
            let fa = a.window_flips(0, w, total_bits);
            assert_eq!(fa, b.window_flips(0, w, total_bits));
            assert!(fa.iter().all(|&p| p < total_bits));
            total += fa.len();
        }
        // 8 windows * 2.5 expected flips, carry makes the total exact.
        assert_eq!(total, 20);
        // Different replicas draw independent streams.
        let mut c = StorageFaultModel::new(11, 2.5e-6);
        assert_ne!(c.window_flips(1, 0, total_bits), {
            let mut d = StorageFaultModel::new(11, 2.5e-6);
            d.window_flips(0, 0, total_bits)
        });
        // Zero BER is silent.
        let mut z = StorageFaultModel::new(11, 0.0);
        assert!(z.window_flips(0, 0, total_bits).is_empty());
    }

    #[test]
    fn burst_window_escalates_then_subsides() {
        let model = tiny_model();
        // Base rate 0: outside the burst every read is clean.
        let base = BerFaultSource::new(9, codec(), 0.0);
        let src = BurstFaultSource::new(base, 5e-2, 10..20);
        assert!(!src.is_noop());
        assert!(src.corrupt_for_request(&model, 9, 0).is_none());
        assert!(src.corrupt_for_request(&model, 20, 0).is_none());
        let hit = src.corrupt_for_request(&model, 10, 0).unwrap();
        assert!(hit.1.bits_flipped > 0);
        // Inside the window the stream still replays exactly.
        let again = src.corrupt_for_request(&model, 10, 0).unwrap();
        assert_eq!(hit.1, again.1);
    }
}
