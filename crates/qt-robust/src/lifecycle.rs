//! Replica-lifecycle fault model: seeded crash/restart schedules.
//!
//! The injectors in [`crate::inject`] and the runtime sources in
//! [`crate::runtime`] corrupt *data*; this module corrupts
//! *availability*. A [`CrashSchedule`] is a deterministic list of
//! `[down_at, up_at)` outage windows for one replica — either written
//! out explicitly (the CI smoke job kills replica 2 at exactly 300 ms)
//! or drawn from seeded MTBF/MTTR distributions (a chaos campaign over a
//! whole fleet). Everything is denominated in virtual microseconds on
//! the discrete-event clock, so a fleet run that includes crashes still
//! replays byte-identically.
//!
//! The schedule is *passive*: it answers "is this replica up at time
//! `t`?" and "when does its next lifecycle transition happen?" — the
//! fleet simulation turns those answers into events (abort in-flight
//! work at `down_at`, reload the health snapshot and re-earn traffic at
//! `up_at`).

use rand::{rngs::StdRng, Rng, SeedableRng};

/// One outage: the replica is down for `[down_at_us, up_at_us)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// Instant the replica crashes (virtual µs).
    pub down_at_us: u64,
    /// Instant it has rebooted and rejoins (virtual µs, exclusive).
    pub up_at_us: u64,
}

impl CrashWindow {
    /// `true` while the replica is down.
    pub fn contains(&self, t_us: u64) -> bool {
        (self.down_at_us..self.up_at_us).contains(&t_us)
    }
}

/// A lifecycle transition the simulation must act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// The replica crashes: in-flight work fails over, queued work is
    /// re-routed, unsynced health state since the last snapshot is lost.
    Crash,
    /// The replica has rebooted: it reloads its durable health snapshot
    /// and must re-earn traffic through half-open probing.
    Recover,
}

/// Deterministic crash/restart schedule for one replica.
///
/// Windows are kept sorted and non-overlapping (overlaps are merged at
/// construction), so `is_up` and `next_event_after` are simple scans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashSchedule {
    windows: Vec<CrashWindow>,
}

impl CrashSchedule {
    /// A replica that never crashes.
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedule from explicit windows; sorts by start and merges any
    /// overlap or zero-length window away.
    pub fn from_windows(mut windows: Vec<CrashWindow>) -> Self {
        windows.retain(|w| w.up_at_us > w.down_at_us);
        windows.sort_by_key(|w| (w.down_at_us, w.up_at_us));
        let mut merged: Vec<CrashWindow> = Vec::with_capacity(windows.len());
        for w in windows {
            match merged.last_mut() {
                Some(last) if w.down_at_us <= last.up_at_us => {
                    last.up_at_us = last.up_at_us.max(w.up_at_us);
                }
                _ => merged.push(w),
            }
        }
        Self { windows: merged }
    }

    /// One outage of `down_for_us` starting at `down_at_us`.
    pub fn single(down_at_us: u64, down_for_us: u64) -> Self {
        Self::from_windows(vec![CrashWindow {
            down_at_us,
            up_at_us: down_at_us.saturating_add(down_for_us.max(1)),
        }])
    }

    /// Seeded random schedule over `[0, horizon_us)`: time-to-failure
    /// and time-to-repair are drawn uniformly from `[mtbf_us/2,
    /// 3·mtbf_us/2)` and `[mttr_us/2, 3·mttr_us/2)` (mean = the given
    /// MTBF/MTTR, bounded support so a pathological draw cannot swallow
    /// the whole run). `mtbf_us == 0` yields an empty schedule.
    pub fn seeded(seed: u64, horizon_us: u64, mtbf_us: u64, mttr_us: u64) -> Self {
        if mtbf_us == 0 {
            return Self::none();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut windows = Vec::new();
        let mut t = 0u64;
        loop {
            let ttf = rng.gen_range(mtbf_us / 2..mtbf_us.saturating_mul(3) / 2 + 1).max(1);
            let down_at = t.saturating_add(ttf);
            if down_at >= horizon_us {
                break;
            }
            let ttr = rng
                .gen_range(mttr_us.max(2) / 2..mttr_us.max(2).saturating_mul(3) / 2 + 1)
                .max(1);
            let up_at = down_at.saturating_add(ttr);
            windows.push(CrashWindow {
                down_at_us: down_at,
                up_at_us: up_at,
            });
            t = up_at;
        }
        Self::from_windows(windows)
    }

    /// The outage windows, sorted and disjoint.
    pub fn windows(&self) -> &[CrashWindow] {
        &self.windows
    }

    /// `true` when the schedule contains no outages.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Is the replica up at `t_us`?
    pub fn is_up(&self, t_us: u64) -> bool {
        !self.windows.iter().any(|w| w.contains(t_us))
    }

    /// The next lifecycle transition at or after `t_us`: `(when, what)`,
    /// or `None` when the schedule has run out of transitions.
    pub fn next_event_at_or_after(&self, t_us: u64) -> Option<(u64, LifecycleEvent)> {
        for w in &self.windows {
            if t_us < w.down_at_us {
                return Some((w.down_at_us, LifecycleEvent::Crash));
            }
            if t_us < w.up_at_us {
                return Some((w.up_at_us, LifecycleEvent::Recover));
            }
        }
        None
    }

    /// When the outage covering `t_us` ends, or `None` if the replica is
    /// up at `t_us`.
    pub fn up_at(&self, t_us: u64) -> Option<u64> {
        self.windows
            .iter()
            .find(|w| w.contains(t_us))
            .map(|w| w.up_at_us)
    }

    /// The start of the first outage in `(t_us, ∞)`, i.e. how long an
    /// attempt starting now can run before the replica dies under it.
    pub fn next_down_after(&self, t_us: u64) -> Option<u64> {
        self.windows
            .iter()
            .map(|w| w.down_at_us)
            .find(|&d| d > t_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_windows_sort_merge_and_answer_queries() {
        let s = CrashSchedule::from_windows(vec![
            CrashWindow {
                down_at_us: 500,
                up_at_us: 700,
            },
            CrashWindow {
                down_at_us: 100,
                up_at_us: 300,
            },
            // Overlaps the first: merges into [500, 800).
            CrashWindow {
                down_at_us: 650,
                up_at_us: 800,
            },
            // Zero-length: dropped.
            CrashWindow {
                down_at_us: 900,
                up_at_us: 900,
            },
        ]);
        assert_eq!(s.windows().len(), 2);
        assert!(s.is_up(0));
        assert!(!s.is_up(100));
        assert!(s.is_up(300), "up boundary is exclusive");
        assert!(!s.is_up(799));
        assert!(s.is_up(800));
        assert_eq!(s.up_at(600), Some(800));
        assert_eq!(s.up_at(50), None);
        assert_eq!(
            s.next_event_at_or_after(0),
            Some((100, LifecycleEvent::Crash))
        );
        assert_eq!(
            s.next_event_at_or_after(100),
            Some((300, LifecycleEvent::Recover))
        );
        assert_eq!(
            s.next_event_at_or_after(300),
            Some((500, LifecycleEvent::Crash))
        );
        assert_eq!(s.next_event_at_or_after(800), None);
        assert_eq!(s.next_down_after(100), Some(500));
        assert_eq!(s.next_down_after(500), None);
    }

    #[test]
    fn single_outage_helper() {
        let s = CrashSchedule::single(1_000, 500);
        assert_eq!(
            s.windows(),
            &[CrashWindow {
                down_at_us: 1_000,
                up_at_us: 1_500
            }]
        );
        assert!(CrashSchedule::none().is_up(u64::MAX - 1));
    }

    #[test]
    fn seeded_schedules_replay_and_respect_bounds() {
        let a = CrashSchedule::seeded(7, 10_000_000, 500_000, 100_000);
        let b = CrashSchedule::seeded(7, 10_000_000, 500_000, 100_000);
        assert_eq!(a, b, "same seed replays the same outages");
        assert!(!a.is_empty(), "10M horizon at 500k MTBF must crash");
        let c = CrashSchedule::seeded(8, 10_000_000, 500_000, 100_000);
        assert_ne!(a, c, "different seeds draw different outages");
        for w in a.windows() {
            assert!(w.down_at_us < 10_000_000, "crashes inside the horizon");
            assert!(w.up_at_us > w.down_at_us);
            // TTR bounded by 3·MTTR/2.
            assert!(w.up_at_us - w.down_at_us <= 150_000 + 1);
        }
        // Disjoint and sorted.
        for pair in a.windows().windows(2) {
            assert!(pair[0].up_at_us < pair[1].down_at_us);
        }
        assert!(CrashSchedule::seeded(1, 1_000_000, 0, 5).is_empty());
    }
}
