//! Fault injection for 8-bit inference (SRAM soft errors in edge silicon)
//! and the campaign machinery measuring how each element format degrades
//! and how much corruption the cheap numerical detectors catch.

#![warn(missing_docs)]

pub mod campaign;
pub mod ckpt_campaign;
pub mod inject;
pub mod lifecycle;
pub mod runtime;

pub use campaign::{
    cell_seed, corrupt_model, corrupt_model_exact, corrupt_model_logged, run_campaign,
    weight_traffic_budget, CampaignCell, CampaignConfig, Harness,
};
pub use ckpt_campaign::{
    checkpoint_state_for, run_ckpt_campaign, CkptCampaignCell, CkptCampaignConfig,
};
pub use inject::{BitFlipInjector, CodeFormat, FlipPos, InjectionReport};
pub use lifecycle::{CrashSchedule, CrashWindow, LifecycleEvent};
pub use runtime::{BerFaultSource, BurstFaultSource, FaultSource, NoFaults, StorageFaultModel};
