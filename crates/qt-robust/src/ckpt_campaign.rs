//! Checkpoint-corruption campaigns: flip bits in *serialized* training
//! checkpoints and measure whether the loader's integrity checks catch
//! the damage, and whether generation fallback recovers an intact state.
//!
//! This is the storage-medium counterpart of the SRAM campaigns in
//! [`crate::campaign`]: there an upset corrupts a live weight word and
//! the question is what the *datapath* computes; here an upset corrupts
//! the durable artifact and the question is whether the *loader* can
//! ever be fooled into resuming from corrupt state. The qt-ckpt envelope
//! claims detection probability 1 (per-section CRC32 + whole-file CRC);
//! the campaign verifies that claim empirically across formats × BERs,
//! and measures the fallback depth needed to find an intact generation.

use crate::campaign::Harness;
use qt_ckpt::{AmaxState, Counters, OptState, QuantBlob, TensorBlob, TrainState};
use qt_quant::{AmaxTracker, ElemFormat};
use qt_transformer::Model;

/// Configuration of one checkpoint-corruption sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CkptCampaignConfig {
    /// Master seed; each cell derives its own stream (sweep-order
    /// independent, identical table run-to-run).
    pub seed: u64,
    /// Storage formats for the checkpoint's compact `qparams` payload —
    /// varying the format changes the file's size and bit layout, which
    /// is exactly what the BER sweep exercises.
    pub formats: Vec<ElemFormat>,
    /// Per-bit corruption probabilities applied to the serialized file.
    pub bit_error_rates: Vec<f64>,
    /// Independent trials per cell.
    pub trials: usize,
    /// Generations in the simulated store (each corrupted independently);
    /// fallback walks newest → oldest.
    pub generations: usize,
}

impl CkptCampaignConfig {
    /// Default sweep: the three 8-bit storage formats, three BERs
    /// spanning "rare upset" to "failing medium", 8 trials, 3 generations
    /// (the store's default retention). Checkpoints for even tiny models
    /// run to ~10⁶ bits, so BERs above ~1e-5 corrupt essentially every
    /// generation and only measure detection, not recovery.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            formats: vec![ElemFormat::P8E1, ElemFormat::E4M3, ElemFormat::E5M2],
            bit_error_rates: vec![1e-7, 1e-6, 1e-5],
            trials: 8,
            generations: 3,
        }
    }
}

/// One (format, BER) cell of the checkpoint-corruption table.
#[derive(Debug, Clone, PartialEq)]
pub struct CkptCampaignCell {
    /// Storage format of the checkpoint's quantized payload.
    pub format: ElemFormat,
    /// Per-bit corruption probability applied to the file.
    pub ber: f64,
    /// Trials run.
    pub trials: usize,
    /// Serialized checkpoint size in bytes.
    pub bytes: u64,
    /// Generation files that actually received ≥ 1 flipped bit.
    pub corrupted_files: u64,
    /// Corrupted files the loader rejected (CRC/structure failure).
    pub detected: u64,
    /// Corrupted files that loaded without error — **must be 0**; any
    /// non-zero value is an integrity hole in the envelope.
    pub silent: u64,
    /// Trials where fallback found an intact generation to resume from.
    pub recovered: u64,
    /// Mean fallback depth over recovered trials (0 = newest was intact).
    pub mean_fallback_depth: f64,
}

impl CkptCampaignCell {
    /// Fraction of corrupted files the loader caught. The envelope's
    /// guarantee is that this is exactly 1 whenever any file was hit.
    pub fn detection_rate(&self) -> f64 {
        if self.corrupted_files == 0 {
            return 1.0;
        }
        self.detected as f64 / self.corrupted_files as f64
    }

    /// Fraction of trials that ended with an intact state to resume from.
    pub fn recovery_rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.recovered as f64 / self.trials as f64
    }
}

/// Build a representative checkpoint for `model` with its compact payload
/// stored in `fmt` codes — the file the corruption sweep attacks.
pub fn checkpoint_state_for(model: &Model, fmt: ElemFormat) -> TrainState {
    let params: Vec<TensorBlob> = model
        .params
        .iter()
        .map(|(name, t)| TensorBlob::from_f32(name, t.shape(), t.data()))
        .collect();
    let qparams: Vec<QuantBlob> = if fmt == ElemFormat::Fp32 {
        Vec::new()
    } else {
        model
            .params
            .iter()
            .map(|(name, t)| {
                let scale = AmaxTracker::scale_from_amax(t.amax(), fmt);
                QuantBlob {
                    name: name.to_string(),
                    shape: t.shape().iter().map(|&d| d as u32).collect(),
                    format: fmt.name().to_string(),
                    scale_bits: scale.to_bits(),
                    codes: t
                        .data()
                        .iter()
                        .map(|&x| fmt.encode_code(x * scale).expect("fmt is not Fp32"))
                        .collect(),
                }
            })
            .collect()
    };
    TrainState {
        meta: vec![("campaign".into(), "ckpt-corruption".into())],
        counters: Counters {
            steps: 100,
            data_seed: 1,
            ..Counters::default()
        },
        params,
        qparams,
        opt: OptState {
            kind: "sgd".into(),
            scalars: vec![("lr".into(), 1e-3f32.to_bits() as u64)],
            slots: vec![],
        },
        scaler: None,
        amax: AmaxState::default(),
        snapshot: None,
    }
}

/// Run the sweep: for each format × BER, serialize a checkpoint of the
/// model, corrupt `generations` independent copies per trial, and tally
/// loader detections, silent loads, and fallback recovery.
///
/// Deterministic: identical `cfg` and model produce an identical table.
pub fn run_ckpt_campaign(cfg: &CkptCampaignConfig, model: &Model) -> Vec<CkptCampaignCell> {
    let harness = Harness::new(cfg.seed, cfg.trials);
    let mut cells = Vec::new();
    let generations = cfg.generations.max(1);
    for (fi, &format) in cfg.formats.iter().enumerate() {
        let state = checkpoint_state_for(model, format);
        let baseline = state.to_bytes();
        debug_assert!(TrainState::from_bytes(&baseline).is_ok());
        for (ri, &ber) in cfg.bit_error_rates.iter().enumerate() {
            let mut cell = CkptCampaignCell {
                format,
                ber,
                trials: harness.trials(),
                bytes: baseline.len() as u64,
                corrupted_files: 0,
                detected: 0,
                silent: 0,
                recovered: 0,
                mean_fallback_depth: 0.0,
            };
            let mut depth_sum = 0u64;
            harness.run_cell(fi, ri, |_, inj| {
                // Newest → oldest walk over independently corrupted
                // generation files, exactly like CheckpointStore::load_latest.
                let mut fallback_depth = None;
                for depth in 0..generations {
                    let mut bytes = baseline.clone();
                    let flipped = inj.corrupt_bytes(&mut bytes, ber);
                    match TrainState::from_bytes(&bytes) {
                        Ok(_) if flipped == 0 => {
                            if fallback_depth.is_none() {
                                fallback_depth = Some(depth as u64);
                            }
                        }
                        Ok(_) => {
                            // Loaded despite flipped bits: integrity hole.
                            cell.corrupted_files += 1;
                            cell.silent += 1;
                            if fallback_depth.is_none() {
                                fallback_depth = Some(depth as u64);
                            }
                        }
                        Err(_) => {
                            cell.corrupted_files += 1;
                            cell.detected += 1;
                        }
                    }
                }
                if let Some(d) = fallback_depth {
                    cell.recovered += 1;
                    depth_sum += d;
                }
            });
            // 0.0 (not NaN) when nothing recovered: keeps cells
            // PartialEq-comparable and the JSON schema finite.
            cell.mean_fallback_depth = if cell.recovered > 0 {
                depth_sum as f64 / cell.recovered as f64
            } else {
                0.0
            };
            cells.push(cell);
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_transformer::{TaskHead, TransformerConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_model() -> Model {
        let mut rng = StdRng::seed_from_u64(11);
        let mut cfg = TransformerConfig::mobilebert_tiny_sim();
        cfg.layers = 1;
        Model::new(cfg, TaskHead::Classify(2), &mut rng)
    }

    #[test]
    fn campaign_is_deterministic_and_never_silent() {
        let model = tiny_model();
        let cfg = CkptCampaignConfig {
            seed: 9,
            formats: vec![ElemFormat::P8E1, ElemFormat::E5M2],
            bit_error_rates: vec![1e-7, 1e-5],
            trials: 4,
            generations: 3,
        };
        let a = run_ckpt_campaign(&cfg, &model);
        let b = run_ckpt_campaign(&cfg, &model);
        assert_eq!(a, b, "identical seed must produce an identical table");
        assert_eq!(a.len(), 4);
        for cell in &a {
            assert_eq!(cell.silent, 0, "corrupt checkpoint loaded silently");
            assert_eq!(
                cell.detected, cell.corrupted_files,
                "every corrupted file must be detected"
            );
            assert_eq!(cell.detection_rate(), 1.0);
            assert!(cell.bytes > 0);
        }
        // At ~10⁶ bits, 1e-5 hits essentially every generation (pure
        // detection) while 1e-7 leaves intact generations to fall back to.
        let heavy = a.iter().find(|c| c.ber == 1e-5).unwrap();
        assert!(heavy.corrupted_files > 0);
        let light = a.iter().find(|c| c.ber == 1e-7).unwrap();
        assert!(light.recovered > 0, "low BER must leave recovery paths");
    }

    #[test]
    fn format_changes_the_file_under_attack() {
        let model = tiny_model();
        let p8 = checkpoint_state_for(&model, ElemFormat::P8E1);
        let fp8 = checkpoint_state_for(&model, ElemFormat::E4M3);
        assert_ne!(p8.to_bytes(), fp8.to_bytes());
        assert_eq!(p8.qparams[0].format, "Posit(8,1)");
        assert_eq!(fp8.qparams[0].format, "E4M3");
        // Both serialize/deserialize losslessly.
        assert_eq!(TrainState::from_bytes(&p8.to_bytes()).unwrap(), p8);
    }

    #[test]
    fn zero_ber_always_recovers_at_depth_zero() {
        let model = tiny_model();
        let cfg = CkptCampaignConfig {
            seed: 1,
            formats: vec![ElemFormat::P8E1],
            bit_error_rates: vec![0.0],
            trials: 2,
            generations: 2,
        };
        let cells = run_ckpt_campaign(&cfg, &model);
        let c = &cells[0];
        assert_eq!(c.corrupted_files, 0);
        assert_eq!(c.recovered, c.trials as u64);
        assert_eq!(c.mean_fallback_depth, 0.0);
    }
}
