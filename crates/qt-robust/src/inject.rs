//! Deterministic, seeded bit-flip injection into 8-/16-bit element codes.
//!
//! Models SRAM soft errors in a deployed edge accelerator (paper §6's
//! 40 nm device): each stored weight/activation word is a short bit code
//! of the element format, and a single-event upset flips individual bits.
//! The injector operates on the *encoded* representation — a flip lands
//! in regime/exponent/fraction bits of a posit or the exponent/mantissa
//! of an FP8 value, with wildly format-dependent consequences (that
//! asymmetry is what the Table 9 campaign measures).

use qt_quant::ElemFormat;
use qt_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Encode/decode between `f32` and a format's stored bit code.
///
/// This is the storage view of [`ElemFormat`]: `encode` rounds onto the
/// grid and yields the word actually held in SRAM; `decode` is what the
/// datapath reads back after a (possibly corrupted) fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeFormat {
    format: ElemFormat,
}

impl CodeFormat {
    /// Storage codec for a format.
    ///
    /// Every 8-, 9- and 16-bit format is supported; `Fp32` is not a
    /// storage format in the accelerator and returns `None`.
    pub fn new(format: ElemFormat) -> Option<Self> {
        match format {
            ElemFormat::Fp32 => None,
            _ => Some(Self { format }),
        }
    }

    /// The underlying element format.
    pub fn format(self) -> ElemFormat {
        self.format
    }

    /// Width of the stored code in bits.
    pub fn bits(self) -> u32 {
        self.format.bits()
    }

    /// Round to the grid and return the stored code.
    ///
    /// Delegates to [`ElemFormat::encode_code`] — the same codec the
    /// checkpoint `qparams` section uses, so corruption campaigns exercise
    /// exactly the bits that reach persistent storage.
    pub fn encode(self, x: f32) -> u16 {
        self.format
            .encode_code(x)
            .expect("CodeFormat excludes Fp32")
    }

    /// Decode a stored code back to the value the datapath computes with.
    /// Exception codes decode to NaN (posit NaR, FP8 NaN) or ±∞ (E5M2).
    pub fn decode(self, code: u16) -> f32 {
        self.format
            .decode_code(code)
            .expect("CodeFormat excludes Fp32")
    }

    /// `true` when a decoded code is an exception value a cheap hardware
    /// checker flags for free (NaR / NaN / ±∞).
    pub fn is_detectable(self, code: u16) -> bool {
        !self.decode(code).is_finite()
    }
}

/// Exact position of one injected flip inside a code buffer.
///
/// Integrity campaigns log these alongside the [`InjectionReport`]
/// counters so corrected-vs-injected can be audited bit by bit (the
/// qt-shield scrubber reports the positions it fixed in the same shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlipPos {
    /// Index of the hit word (element) in the buffer.
    pub word: usize,
    /// Flipped bit within the stored code.
    pub bit: u8,
}

/// What one injection pass did to a buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionReport {
    /// Words (elements) in the buffer.
    pub elements: u64,
    /// Individual bits flipped.
    pub bits_flipped: u64,
    /// Distinct words that received at least one flip.
    pub words_hit: u64,
    /// Corrupted words that decode to NaR/NaN/±∞ — the corruption a
    /// zero-cost exception checker detects at read time.
    pub detectable: u64,
}

impl InjectionReport {
    /// Merge another report into this one.
    pub fn merge(&mut self, other: &InjectionReport) {
        self.elements += other.elements;
        self.bits_flipped += other.bits_flipped;
        self.words_hit += other.words_hit;
        self.detectable += other.detectable;
    }

    /// Fraction of hit words that decode to an exception value.
    pub fn detection_rate(&self) -> f64 {
        if self.words_hit == 0 {
            return 0.0;
        }
        self.detectable as f64 / self.words_hit as f64
    }
}

/// Seeded bit-flip injector over encoded tensors.
///
/// Deterministic: the same seed and call sequence produce identical
/// corruption, so campaigns are reproducible run-to-run.
#[derive(Debug, Clone)]
pub struct BitFlipInjector {
    rng: StdRng,
}

impl BitFlipInjector {
    /// Injector with an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Flip each bit of each code independently with probability `rate`.
    pub fn corrupt_codes(&mut self, codes: &mut [u16], codec: CodeFormat, rate: f64) -> InjectionReport {
        self.corrupt_codes_logged(codes, codec, rate).0
    }

    /// [`BitFlipInjector::corrupt_codes`], additionally returning the
    /// exact position of every flip in injection order. Consumes the RNG
    /// stream identically, so a given seed produces the same corruption
    /// whether or not positions are logged.
    pub fn corrupt_codes_logged(
        &mut self,
        codes: &mut [u16],
        codec: CodeFormat,
        rate: f64,
    ) -> (InjectionReport, Vec<FlipPos>) {
        let bits = codec.bits();
        let mut report = InjectionReport {
            elements: codes.len() as u64,
            ..Default::default()
        };
        let mut flips = Vec::new();
        for (i, code) in codes.iter_mut().enumerate() {
            let mut hit = false;
            for b in 0..bits {
                if self.rng.gen_bool(rate) {
                    *code ^= 1 << b;
                    report.bits_flipped += 1;
                    flips.push(FlipPos { word: i, bit: b as u8 });
                    hit = true;
                }
            }
            if hit {
                report.words_hit += 1;
                if codec.is_detectable(*code) {
                    report.detectable += 1;
                }
            }
        }
        (report, flips)
    }

    /// Flip exactly `n_flips` uniformly-chosen bits (with replacement
    /// across draws, so a bit can flip back — matching independent upsets).
    ///
    /// Use this to apply a flip budget derived from simulated SRAM
    /// traffic (see `qt_accel::SramFaultModel`).
    pub fn corrupt_codes_exact(
        &mut self,
        codes: &mut [u16],
        codec: CodeFormat,
        n_flips: u64,
    ) -> InjectionReport {
        self.corrupt_codes_exact_logged(codes, codec, n_flips).0
    }

    /// [`BitFlipInjector::corrupt_codes_exact`] with the exact flip
    /// positions logged in draw order (RNG stream unchanged).
    pub fn corrupt_codes_exact_logged(
        &mut self,
        codes: &mut [u16],
        codec: CodeFormat,
        n_flips: u64,
    ) -> (InjectionReport, Vec<FlipPos>) {
        let bits = codec.bits() as usize;
        let mut report = InjectionReport {
            elements: codes.len() as u64,
            bits_flipped: n_flips,
            ..Default::default()
        };
        if codes.is_empty() {
            report.bits_flipped = 0;
            return (report, Vec::new());
        }
        let mut flips = Vec::with_capacity(n_flips as usize);
        let mut hit = vec![false; codes.len()];
        for _ in 0..n_flips {
            let pos = self.rng.gen_range(0..codes.len() * bits);
            let (word, bit) = (pos / bits, pos % bits);
            codes[word] ^= 1 << bit;
            flips.push(FlipPos { word, bit: bit as u8 });
            hit[word] = true;
        }
        for (i, &h) in hit.iter().enumerate() {
            if h {
                report.words_hit += 1;
                if codec.is_detectable(codes[i]) {
                    report.detectable += 1;
                }
            }
        }
        (report, flips)
    }

    /// Flip each bit of a raw byte buffer independently with probability
    /// `rate`. Returns the number of bits flipped.
    ///
    /// This is the *storage-medium* corruption model for serialized
    /// checkpoints: upsets land anywhere in the file — header, section
    /// payloads, CRC trailers — and the loader's integrity checks, not an
    /// exception decoder, are what must catch them.
    pub fn corrupt_bytes(&mut self, bytes: &mut [u8], rate: f64) -> u64 {
        let mut flipped = 0;
        for byte in bytes.iter_mut() {
            for b in 0..8 {
                if self.rng.gen_bool(rate) {
                    *byte ^= 1 << b;
                    flipped += 1;
                }
            }
        }
        flipped
    }

    /// Flip exactly `n_flips` uniformly-chosen bits of a byte buffer
    /// (with replacement, matching independent upsets). Returns the
    /// number of draws actually applied (0 for an empty buffer).
    pub fn corrupt_bytes_exact(&mut self, bytes: &mut [u8], n_flips: u64) -> u64 {
        if bytes.is_empty() {
            return 0;
        }
        for _ in 0..n_flips {
            let pos = self.rng.gen_range(0..bytes.len() * 8);
            bytes[pos / 8] ^= 1 << (pos % 8);
        }
        n_flips
    }

    /// Encode a tensor into `codec`'s storage codes, flip bits at `rate`,
    /// decode back. Returns the corrupted tensor and the report.
    pub fn corrupt_tensor(
        &mut self,
        t: &Tensor,
        codec: CodeFormat,
        rate: f64,
    ) -> (Tensor, InjectionReport) {
        let mut codes: Vec<u16> = t.data().iter().map(|&x| codec.encode(x)).collect();
        let report = self.corrupt_codes(&mut codes, codec, rate);
        let data = codes.iter().map(|&c| codec.decode(c)).collect();
        (Tensor::from_vec(data, t.shape()), report)
    }

    /// [`BitFlipInjector::corrupt_tensor`] with an exact flip budget.
    pub fn corrupt_tensor_exact(
        &mut self,
        t: &Tensor,
        codec: CodeFormat,
        n_flips: u64,
    ) -> (Tensor, InjectionReport) {
        let mut codes: Vec<u16> = t.data().iter().map(|&x| codec.encode(x)).collect();
        let report = self.corrupt_codes_exact(&mut codes, codec, n_flips);
        let data = codes.iter().map(|&c| codec.decode(c)).collect();
        (Tensor::from_vec(data, t.shape()), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_without_faults() {
        for fmt in [ElemFormat::P8E1, ElemFormat::E4M3, ElemFormat::E5M2] {
            let codec = CodeFormat::new(fmt).unwrap();
            for x in [0.0f32, 1.0, -2.5, 0.00042, 300.0] {
                let grid = fmt.quantize_scalar(x);
                assert_eq!(codec.decode(codec.encode(x)), grid, "{fmt:?} {x}");
            }
        }
    }

    #[test]
    fn fp32_is_not_a_storage_format() {
        assert!(CodeFormat::new(ElemFormat::Fp32).is_none());
    }

    #[test]
    fn zero_rate_is_identity() {
        let codec = CodeFormat::new(ElemFormat::P8E1).unwrap();
        let t = Tensor::from_vec(vec![1.0, -0.5, 0.25], &[3]);
        let mut inj = BitFlipInjector::new(1);
        let (c, r) = inj.corrupt_tensor(&t, codec, 0.0);
        assert_eq!(c.data(), &[1.0, -0.5, 0.25]);
        assert_eq!(r.bits_flipped, 0);
        assert_eq!(r.words_hit, 0);
    }

    #[test]
    fn same_seed_same_corruption() {
        let codec = CodeFormat::new(ElemFormat::E4M3).unwrap();
        let t = Tensor::from_vec((0..256).map(|i| i as f32 * 0.1 - 12.0).collect(), &[256]);
        let run = || {
            let mut inj = BitFlipInjector::new(99);
            inj.corrupt_tensor(&t, codec, 0.05)
        };
        let (a, ra) = run();
        let (b, rb) = run();
        assert_eq!(a.data(), b.data());
        assert_eq!(ra, rb);
        assert!(ra.bits_flipped > 0);
    }

    #[test]
    fn exact_budget_counts() {
        let codec = CodeFormat::new(ElemFormat::P8E1).unwrap();
        let t = Tensor::ones(&[64]);
        let mut inj = BitFlipInjector::new(7);
        let (_, r) = inj.corrupt_tensor_exact(&t, codec, 10);
        assert_eq!(r.bits_flipped, 10);
        assert!(r.words_hit >= 1 && r.words_hit <= 10);
    }

    #[test]
    fn logged_positions_match_actual_flips() {
        let codec = CodeFormat::new(ElemFormat::E4M3).unwrap();
        let original: Vec<u16> = (0..512).map(|i| codec.encode(i as f32 * 0.03 - 7.0)).collect();
        let mut codes = original.clone();
        let mut inj = BitFlipInjector::new(42);
        let (report, flips) = inj.corrupt_codes_logged(&mut codes, codec, 0.01);
        assert_eq!(report.bits_flipped, flips.len() as u64);
        assert!(report.bits_flipped > 0);
        // Replaying the logged positions undoes the corruption exactly.
        for f in &flips {
            codes[f.word] ^= 1 << f.bit;
        }
        assert_eq!(codes, original);
        // And the unlogged variant consumes the identical RNG stream.
        let mut codes2 = original.clone();
        let r2 = BitFlipInjector::new(42).corrupt_codes(&mut codes2, codec, 0.01);
        assert_eq!(r2, report);
    }

    #[test]
    fn logged_exact_positions_match_actual_flips() {
        let codec = CodeFormat::new(ElemFormat::P8E1).unwrap();
        let original: Vec<u16> = (0..128).map(|i| codec.encode(i as f32 * 0.1)).collect();
        let mut codes = original.clone();
        let mut inj = BitFlipInjector::new(5);
        let (report, flips) = inj.corrupt_codes_exact_logged(&mut codes, codec, 9);
        assert_eq!(report.bits_flipped, 9);
        assert_eq!(flips.len(), 9);
        for f in &flips {
            codes[f.word] ^= 1 << f.bit;
        }
        assert_eq!(codes, original);
    }

    #[test]
    fn posit_sign_bit_flip_of_zero_is_nar() {
        // Flipping the MSB of the zero code (0x00) yields 0x80 = NaR: the
        // single most damaging posit upset is also the most detectable.
        let codec = CodeFormat::new(ElemFormat::P8E1).unwrap();
        let code = codec.encode(0.0) ^ 0x80;
        assert!(codec.is_detectable(code));
        assert!(codec.decode(code).is_nan());
    }

    #[test]
    fn e5m2_exponent_flip_can_reach_infinity() {
        // 57344 (maxpos) with its top exponent bit pattern corrupted to
        // all-ones exponent decodes to ±∞/NaN — detectable.
        let codec = CodeFormat::new(ElemFormat::E5M2).unwrap();
        let detectable = (0u16..256).any(|c| codec.is_detectable(c));
        assert!(detectable);
    }
}
