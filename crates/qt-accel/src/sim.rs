//! Cycle-level simulation of the systolic array and vector unit:
//! GEMM tiling, element-wise operation latencies, SRAM/DRAM traffic and
//! energy estimates.

use crate::accelerator::{Accelerator, Datapath};
use crate::cost::{SynthesisPoint, Tech40};
use qt_trace::{CycleModel, GemmCost, TraceHandle};

/// Statistics of one simulated GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GemmStats {
    /// Total cycles (including pipeline fill/drain and weight loads).
    pub cycles: u64,
    /// Multiply-accumulates performed.
    pub macs: u64,
    /// SRAM bytes read.
    pub sram_read_bytes: u64,
    /// SRAM bytes written.
    pub sram_write_bytes: u64,
    /// Utilisation numerator: cycles in which the array computed.
    pub active_cycles: u64,
}

impl GemmStats {
    /// Array utilisation in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.active_cycles as f64 / self.cycles as f64
    }
}

/// Element-wise operations the vector unit executes, with per-element
/// latencies that differ between the exact and posit-approximate designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VectorOp {
    /// Addition / residual accumulate.
    Add,
    /// Multiplication / scaling.
    Mul,
    /// Exponential.
    Exp,
    /// Reciprocal (for the softmax denominator).
    Recip,
    /// Max reduction step.
    Max,
}

impl VectorOp {
    /// Latency in cycles per element on the given datapath's vector unit.
    /// The exact float exponential is a multi-cycle pipeline and the
    /// divider is iterative; the posit bit tricks are single-cycle.
    pub fn latency(self, datapath: Datapath) -> u64 {
        let approx = datapath == Datapath::Posit8;
        match self {
            VectorOp::Add | VectorOp::Mul | VectorOp::Max => 1,
            VectorOp::Exp => {
                if approx {
                    1
                } else {
                    4
                }
            }
            VectorOp::Recip => {
                if approx {
                    1
                } else {
                    8
                }
            }
        }
    }
}

/// Statistics of vector-unit work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VectorStats {
    /// Total cycles.
    pub cycles: u64,
    /// Elements processed.
    pub elements: u64,
}

/// Soft-error model over simulated SRAM traffic.
///
/// Deployed edge silicon holds weights and activations in on-chip SRAM
/// for the lifetime of the model; single-event upsets flip stored bits
/// at a rate conventionally expressed as a bit-error rate (BER) per bit
/// accessed. This model converts the simulator's byte traffic into a
/// deterministic flip budget, which a fault injector (see `qt-robust`)
/// spends on the encoded tensors — tying the campaign's corruption level
/// to the dataflow the hardware actually performs instead of an
/// arbitrary knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramFaultModel {
    /// Upset probability per bit accessed.
    pub ber: f64,
}

impl SramFaultModel {
    /// Model with the given bit-error rate per accessed bit.
    pub fn new(ber: f64) -> Self {
        Self { ber: ber.max(0.0) }
    }

    /// Expected number of bit flips across `bytes` of SRAM traffic.
    pub fn expected_flips(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.ber
    }

    /// Deterministic integer flip budget for `bytes` of traffic
    /// (expectation rounded half-up, so a non-zero expectation ≥ 0.5
    /// always injects at least one flip).
    pub fn flip_budget(&self, bytes: u64) -> u64 {
        (self.expected_flips(bytes) + 0.5) as u64
    }

    /// Flip budget for one simulated GEMM: reads + writes.
    pub fn flip_budget_for_gemm(&self, stats: &GemmStats) -> u64 {
        self.flip_budget(stats.sram_read_bytes + stats.sram_write_bytes)
    }
}

/// Cycle-level simulator of an [`Accelerator`].
#[derive(Debug, Clone, Copy)]
pub struct SystolicSim {
    /// The hardware instance.
    pub accel: Accelerator,
}

impl SystolicSim {
    /// Simulator over an accelerator.
    pub fn new(accel: Accelerator) -> Self {
        Self { accel }
    }

    /// Weight-stationary tiled GEMM `[m, k] × [k, n]`.
    ///
    /// Tiles of `N×N` weights are loaded column-by-column (N cycles), then
    /// `m` activation rows stream through with a `2N` fill/drain bubble.
    pub fn gemm(&self, m: u64, k: u64, n: u64) -> GemmStats {
        let nn = self.accel.n as u64;
        let k_tiles = k.div_ceil(nn);
        let n_tiles = n.div_ceil(nn);
        let tiles = k_tiles * n_tiles;
        let per_tile = nn /* weight load */ + m + 2 * nn /* fill+drain */;
        let cycles = tiles * per_tile;
        let active = tiles * m;
        let op_bytes = self.accel.datapath.operand_bits().div_ceil(8);
        let acc_bytes = self.accel.datapath.acc_bits().div_ceil(8);
        GemmStats {
            cycles,
            macs: m * k * n,
            sram_read_bytes: tiles * nn * nn * op_bytes // weights
                + k_tiles * n_tiles * m * nn * op_bytes, // activations per tile pass
            sram_write_bytes: n_tiles * m * nn * acc_bytes,
            active_cycles: active,
        }
    }

    /// Vector-unit execution of `op` over `len` elements.
    pub fn vector(&self, op: VectorOp, len: u64) -> VectorStats {
        let lanes = self.accel.n as u64;
        let lat = op.latency(self.accel.datapath);
        let waves = len.div_ceil(lanes);
        VectorStats {
            cycles: waves * lat,
            elements: len,
        }
    }

    /// Cycles to compute a numerically-stable softmax over `rows` rows of
    /// `width` elements: max-reduce, exp, sum-reduce, reciprocal, scale.
    pub fn softmax_cycles(&self, rows: u64, width: u64) -> u64 {
        let n = rows * width;
        let max = self.vector(VectorOp::Max, n).cycles;
        let exp = self.vector(VectorOp::Exp, n).cycles;
        let sum = self.vector(VectorOp::Add, n).cycles;
        let recip = self.vector(VectorOp::Recip, rows).cycles;
        let scale = self.vector(VectorOp::Mul, n).cycles;
        max + exp + sum + recip + scale
    }

    /// [`SystolicSim::gemm`] that also records the GEMM as a span on a
    /// trace session, with its simulated cycle count as the duration.
    pub fn gemm_traced(
        &self,
        trace: &TraceHandle,
        site: &str,
        m: u64,
        k: u64,
        n: u64,
    ) -> GemmStats {
        let stats = self.gemm(m, k, n);
        trace.borrow_mut().gemm(
            site,
            [m, k, n],
            GemmCost {
                cycles: stats.cycles,
                macs: stats.macs,
                active_cycles: stats.active_cycles,
                sram_bytes: stats.sram_read_bytes + stats.sram_write_bytes,
            },
        );
        stats
    }

    /// [`SystolicSim::vector`] that also records the work as a
    /// vector-unit span on a trace session.
    pub fn vector_traced(
        &self,
        trace: &TraceHandle,
        site: &str,
        op: VectorOp,
        len: u64,
    ) -> VectorStats {
        let stats = self.vector(op, len);
        trace.borrow_mut().vector(site, stats.cycles, stats.elements);
        stats
    }

    /// Energy (nJ) of a GEMM at an operating point: cycles × array power,
    /// plus SRAM access energy.
    pub fn gemm_energy_nj(
        &self,
        stats: &GemmStats,
        tech: &Tech40,
        point: SynthesisPoint,
    ) -> f64 {
        let report = self.accel.synth(tech, point);
        let secs = stats.cycles as f64 / (point.freq_mhz * 1e6);
        let compute = report.array.power_mw * 1e-3 * secs * 1e9; // nJ
        // SRAM access energy proxy: 0.02 nJ per 8 bytes at 40 nm
        let traffic =
            (stats.sram_read_bytes + stats.sram_write_bytes) as f64 / 8.0 * 0.02;
        compute + traffic
    }
}

/// The simulator *is* the cycle-cost oracle the tracing layer consults:
/// attach one to a `QuantCtx` via `with_cycle_model` and every GEMM /
/// softmax span in the model carries this hardware's simulated cycles.
impl CycleModel for SystolicSim {
    fn gemm_cost(&self, m: u64, k: u64, n: u64) -> GemmCost {
        let s = self.gemm(m, k, n);
        GemmCost {
            cycles: s.cycles,
            macs: s.macs,
            active_cycles: s.active_cycles,
            sram_bytes: s.sram_read_bytes + s.sram_write_bytes,
        }
    }

    fn softmax_cycles(&self, rows: u64, width: u64) -> u64 {
        SystolicSim::softmax_cycles(self, rows, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(d: Datapath) -> SystolicSim {
        SystolicSim::new(Accelerator::new(8, d))
    }

    #[test]
    fn gemm_mac_count_exact() {
        let s = sim(Datapath::Posit8).gemm(16, 32, 24);
        assert_eq!(s.macs, 16 * 32 * 24);
    }

    #[test]
    fn gemm_cycles_scale_with_tiles() {
        let small = sim(Datapath::Posit8).gemm(16, 8, 8); // 1 tile
        let big = sim(Datapath::Posit8).gemm(16, 16, 16); // 4 tiles
        assert_eq!(small.cycles * 4, big.cycles);
        assert!(big.utilization() > 0.0 && big.utilization() < 1.0);
    }

    #[test]
    fn long_streams_amortise_fills() {
        // utilisation approaches 1 as m grows
        let u1 = sim(Datapath::Posit8).gemm(8, 8, 8).utilization();
        let u2 = sim(Datapath::Posit8).gemm(4096, 8, 8).utilization();
        assert!(u2 > u1 && u2 > 0.95, "{u1} vs {u2}");
    }

    #[test]
    fn bf16_moves_twice_the_bytes() {
        let p8 = sim(Datapath::Posit8).gemm(64, 64, 64);
        let bf = sim(Datapath::Bf16).gemm(64, 64, 64);
        assert_eq!(bf.sram_read_bytes, 2 * p8.sram_read_bytes);
        assert_eq!(bf.sram_write_bytes, 2 * p8.sram_write_bytes);
        assert_eq!(bf.cycles, p8.cycles); // same dataflow
    }

    #[test]
    fn approx_softmax_is_faster() {
        // The posit vector unit's single-cycle exp/recip beats the exact
        // multi-cycle units — the latency side of Table 8's savings.
        let fp8 = sim(Datapath::HybridFp8).softmax_cycles(64, 64);
        let p8 = sim(Datapath::Posit8).softmax_cycles(64, 64);
        assert!(p8 < fp8, "{p8} !< {fp8}");
        assert!(fp8 as f64 / p8 as f64 > 1.5);
    }

    #[test]
    fn vector_waves() {
        let v = sim(Datapath::Posit8).vector(VectorOp::Add, 20);
        // 20 elements over 8 lanes → 3 waves
        assert_eq!(v.cycles, 3);
    }

    #[test]
    fn fault_model_budget_tracks_traffic() {
        let m = SramFaultModel::new(1e-4);
        let s = sim(Datapath::Posit8);
        let small = s.gemm(16, 16, 16);
        let big = s.gemm(64, 64, 64);
        let b_small = m.flip_budget_for_gemm(&small);
        let b_big = m.flip_budget_for_gemm(&big);
        assert!(b_big > b_small);
        // Exact expectation: bytes × 8 × BER, rounded half-up.
        let bytes = big.sram_read_bytes + big.sram_write_bytes;
        assert_eq!(b_big, (bytes as f64 * 8.0 * 1e-4 + 0.5) as u64);
        // Zero BER → zero budget; BF16 moves more bytes → bigger budget.
        assert_eq!(SramFaultModel::new(0.0).flip_budget_for_gemm(&big), 0);
        let bf = sim(Datapath::Bf16).gemm(64, 64, 64);
        assert!(m.flip_budget_for_gemm(&bf) > b_big);
    }

    #[test]
    fn cycle_model_matches_inherent_sim() {
        let s = sim(Datapath::Posit8);
        let cm: &dyn CycleModel = &s;
        let cost = cm.gemm_cost(16, 32, 24);
        let stats = s.gemm(16, 32, 24);
        assert_eq!(cost.cycles, stats.cycles);
        assert_eq!(cost.macs, stats.macs);
        assert_eq!(cost.active_cycles, stats.active_cycles);
        assert_eq!(
            cost.sram_bytes,
            stats.sram_read_bytes + stats.sram_write_bytes
        );
        assert_eq!(cm.softmax_cycles(64, 64), s.softmax_cycles(64, 64));
    }

    #[test]
    fn traced_helpers_record_spans() {
        use qt_trace::TraceSession;
        let s = sim(Datapath::Posit8);
        let trace = TraceSession::new("sim").handle();
        let g = s.gemm_traced(&trace, "g", 16, 16, 16);
        let v = s.vector_traced(&trace, "v", VectorOp::Exp, 128);
        let sess = trace.borrow();
        assert_eq!(sess.gemm_sites()["g"].cycles, g.cycles);
        assert!((sess.gemm_sites()["g"].utilization() - g.utilization()).abs() < 1e-12);
        assert_eq!(sess.vector_sites()["v"].cycles, v.cycles);
        assert_eq!(sess.vector_sites()["v"].elements, 128);
    }

    #[test]
    fn gemm_energy_positive_and_scales() {
        let tech = Tech40::default();
        let pt = SynthesisPoint::nominal();
        let s = sim(Datapath::Posit8);
        let small = s.gemm(16, 16, 16);
        let big = s.gemm(64, 64, 64);
        let e1 = s.gemm_energy_nj(&small, &tech, pt);
        let e2 = s.gemm_energy_nj(&big, &tech, pt);
        assert!(e1 > 0.0 && e2 > 5.0 * e1);
    }
}
