//! Gate-level cost primitives and 40 nm technology constants.
//!
//! Everything is counted in NAND2-equivalent gates and converted to area
//! (mm²) and post-synthesis dynamic power (mW) at a given clock and 0.9 V.
//! The per-primitive gate counts are standard textbook estimates (a full
//! adder ≈ 6.5 NAND2, an `n×m` array multiplier ≈ 6 n·m, a flip-flop ≈ 5).
//! Synthesis-pressure scaling models the area/power growth the paper's
//! Figures 8–9 show as the target frequency approaches the design's limit.

/// Area (mm²) and power (mW) of a synthesized block.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaPower {
    /// Standard-cell (+ SRAM macro) area in mm².
    pub area_mm2: f64,
    /// Post-synthesis dynamic power in mW.
    pub power_mw: f64,
}

impl AreaPower {
    /// Component-wise sum.
    pub fn plus(self, other: AreaPower) -> AreaPower {
        AreaPower {
            area_mm2: self.area_mm2 + other.area_mm2,
            power_mw: self.power_mw + other.power_mw,
        }
    }

    /// Scale both metrics (e.g. lane count).
    pub fn times(self, k: f64) -> AreaPower {
        AreaPower {
            area_mm2: self.area_mm2 * k,
            power_mw: self.power_mw * k,
        }
    }
}

/// 40 nm, 0.9 V technology constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tech40 {
    /// Area of one NAND2-equivalent gate, μm².
    pub um2_per_gate: f64,
    /// Dynamic power per gate at 200 MHz with typical activity, μW.
    pub uw_per_gate_200mhz: f64,
    /// SRAM macro density, μm² per bit.
    pub sram_um2_per_bit: f64,
    /// SRAM read/write energy proxy, μW per bit at 200 MHz (leakage +
    /// amortised access).
    pub sram_uw_per_bit_200mhz: f64,
}

impl Default for Tech40 {
    fn default() -> Self {
        Self {
            um2_per_gate: 1.1,
            uw_per_gate_200mhz: 0.011,
            sram_um2_per_bit: 0.45,
            sram_uw_per_bit_200mhz: 0.0011,
        }
    }
}

/// A synthesis operating point: clock frequency and the design's maximum
/// achievable frequency, which sets how hard the synthesizer must work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisPoint {
    /// Target clock, MHz.
    pub freq_mhz: f64,
    /// The design's maximum achievable frequency, MHz.
    pub fmax_mhz: f64,
}

impl SynthesisPoint {
    /// Nominal 200 MHz point with comfortable slack.
    pub fn nominal() -> Self {
        Self {
            freq_mhz: 200.0,
            fmax_mhz: 800.0,
        }
    }

    /// Area inflation from timing pressure: upsizing and logic duplication
    /// grow area superlinearly as `f → fmax` (empirically ~1 + (f/fmax)²
    /// up to ~2× at the wall).
    pub fn area_factor(&self) -> f64 {
        let r = (self.freq_mhz / self.fmax_mhz).min(0.98);
        1.0 + r * r
    }

    /// Dynamic power ∝ f · C(f): the capacitance itself grows with the
    /// area factor.
    pub fn power_factor(&self) -> f64 {
        (self.freq_mhz / 200.0) * self.area_factor()
    }
}

/// Gate-count estimates for primitive datapath blocks (NAND2 equivalents).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gates;

impl Gates {
    /// Ripple/parallel-prefix adder of `n` bits.
    pub fn adder(n: u32) -> f64 {
        7.0 * n as f64
    }

    /// `n × m` array multiplier.
    pub fn multiplier(n: u32, m: u32) -> f64 {
        6.0 * (n as f64) * (m as f64)
    }

    /// Barrel shifter, `n` bits.
    pub fn shifter(n: u32) -> f64 {
        2.5 * n as f64 * (n as f64).log2().max(1.0)
    }

    /// Leading-zero/one counter, `n` bits.
    pub fn lzc(n: u32) -> f64 {
        3.0 * n as f64
    }

    /// Magnitude comparator, `n` bits.
    pub fn comparator(n: u32) -> f64 {
        3.0 * n as f64
    }

    /// 2:1 mux, `n` bits.
    pub fn mux(n: u32) -> f64 {
        2.5 * n as f64
    }

    /// Register (DFF bank), `n` bits.
    pub fn register(n: u32) -> f64 {
        5.0 * n as f64
    }

    /// Inverters, `n` bits (the posit reciprocal!).
    pub fn inverters(n: u32) -> f64 {
        0.5 * n as f64
    }

    /// Lookup table of `entries × width` bits as synthesized logic.
    pub fn lut(entries: u32, width: u32) -> f64 {
        0.4 * entries as f64 * width as f64
    }
}

/// Convert a gate count into area/power at an operating point.
pub fn synthesize(gates: f64, tech: &Tech40, point: SynthesisPoint) -> AreaPower {
    AreaPower {
        area_mm2: gates * tech.um2_per_gate * point.area_factor() / 1e6,
        power_mw: gates * tech.uw_per_gate_200mhz * point.power_factor() / 1e3,
    }
}

/// SRAM macro of `bits` capacity (macro area does not scale with timing
/// pressure; power scales with frequency).
pub fn sram(bits: u64, tech: &Tech40, point: SynthesisPoint) -> AreaPower {
    AreaPower {
        area_mm2: bits as f64 * tech.sram_um2_per_bit / 1e6,
        power_mw: bits as f64 * tech.sram_uw_per_bit_200mhz * (point.freq_mhz / 200.0) / 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_counts_scale_with_width() {
        assert!(Gates::multiplier(8, 8) > Gates::multiplier(4, 4));
        assert_eq!(Gates::multiplier(4, 8), Gates::multiplier(8, 4));
        assert!(Gates::adder(32) == 2.0 * Gates::adder(16));
        assert!(Gates::inverters(8) < Gates::adder(8));
    }

    #[test]
    fn synthesis_pressure_grows_area_and_power() {
        let tech = Tech40::default();
        let slow = synthesize(1000.0, &tech, SynthesisPoint { freq_mhz: 100.0, fmax_mhz: 800.0 });
        let fast = synthesize(1000.0, &tech, SynthesisPoint { freq_mhz: 600.0, fmax_mhz: 800.0 });
        assert!(fast.area_mm2 > slow.area_mm2);
        assert!(fast.power_mw > 5.0 * slow.power_mw); // ~6x freq + pressure
    }

    #[test]
    fn power_linear_in_frequency_with_slack() {
        let tech = Tech40::default();
        let p = |f: f64| {
            synthesize(
                1000.0,
                &tech,
                SynthesisPoint {
                    freq_mhz: f,
                    fmax_mhz: 10_000.0,
                },
            )
            .power_mw
        };
        let ratio = p(400.0) / p(200.0);
        assert!((ratio - 2.0).abs() < 0.1, "{ratio}");
    }

    #[test]
    fn sram_area_constant_over_frequency() {
        let tech = Tech40::default();
        let a = sram(1 << 20, &tech, SynthesisPoint { freq_mhz: 100.0, fmax_mhz: 800.0 });
        let b = sram(1 << 20, &tech, SynthesisPoint { freq_mhz: 400.0, fmax_mhz: 800.0 });
        assert_eq!(a.area_mm2, b.area_mm2);
        assert!(b.power_mw > a.power_mw);
        // 1 Mbit at 0.45 μm²/bit ≈ 0.47 mm²
        assert!((a.area_mm2 - 0.47).abs() < 0.02);
    }

    #[test]
    fn area_power_arithmetic() {
        let x = AreaPower { area_mm2: 1.0, power_mw: 2.0 };
        let y = AreaPower { area_mm2: 0.5, power_mw: 1.0 };
        let s = x.plus(y).times(2.0);
        assert_eq!(s.area_mm2, 3.0);
        assert_eq!(s.power_mw, 6.0);
    }
}
