//! Structural models of the paper's hardware units (§4.2, §7.1, §7.2):
//! MACs, posit codecs, exponential/reciprocal units, and vector units.

use crate::cost::{synthesize, AreaPower, Gates, SynthesisPoint, Tech40};

/// A multiply-accumulate unit: `(e, m)` operands accumulated into an
/// `(E, M)` accumulator (§7.1).
///
/// Decoded Posit8 is an E5M4 operand (≤ 4 fraction bits, 5-bit effective
/// exponent); hybrid FP8 is E5M3; BF16 accumulates in FP32, 8-bit formats
/// in BF16.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacUnit {
    /// Operand exponent bits.
    pub op_exp: u32,
    /// Operand mantissa (fraction) bits.
    pub op_man: u32,
    /// Accumulator exponent bits.
    pub acc_exp: u32,
    /// Accumulator mantissa bits.
    pub acc_man: u32,
}

impl MacUnit {
    /// BF16 MAC with FP32 accumulation.
    pub fn bf16() -> Self {
        Self { op_exp: 8, op_man: 7, acc_exp: 8, acc_man: 23 }
    }

    /// Posit8 MAC: decoded E5M4 operands, BF16 accumulation.
    pub fn posit8() -> Self {
        Self { op_exp: 5, op_man: 4, acc_exp: 8, acc_man: 7 }
    }

    /// Hybrid FP8 (E5M3 superset of E4M3/E5M2), BF16 accumulation.
    pub fn hybrid_fp8() -> Self {
        Self { op_exp: 5, op_man: 3, acc_exp: 8, acc_man: 7 }
    }

    /// E4M3-only MAC.
    pub fn e4m3() -> Self {
        Self { op_exp: 4, op_man: 3, acc_exp: 8, acc_man: 7 }
    }

    /// E5M2-only MAC.
    pub fn e5m2() -> Self {
        Self { op_exp: 5, op_man: 2, acc_exp: 8, acc_man: 7 }
    }

    /// NAND2-equivalent gate count.
    ///
    /// Models a 3-stage pipelined FMA: significand multiplier, product
    /// alignment into the accumulator width (the datapath carries the full
    /// double-width product), accumulate, normalise, plus pipeline
    /// registers. `IMPL_FACTOR` covers the logic a structural sketch
    /// omits (rounding, exceptions, retiming buffers) and is calibrated so
    /// one operand fraction bit moves the total by the margin the paper's
    /// Figure 12 shows between the Posit8 (E5M4) and hybrid FP8 (E5M3)
    /// MACs.
    pub fn gates(&self) -> f64 {
        const IMPL_FACTOR: f64 = 6.0;
        let prod = 2 * (self.op_man + 1);
        let w = self.acc_man + prod + 4;
        let core = Gates::multiplier(self.op_man + 1, self.op_man + 1)
            + Gates::adder(self.op_exp + 2)
            + Gates::shifter(w)
            + Gates::adder(w)
            + Gates::lzc(w)
            + Gates::mux(w)
            + Gates::register(1 + self.acc_exp + self.acc_man)
            + 3.0 * Gates::register(prod);
        IMPL_FACTOR * core
    }

    /// Synthesize at an operating point.
    pub fn synth(&self, tech: &Tech40, point: SynthesisPoint) -> AreaPower {
        synthesize(self.gates(), tech, point)
    }
}

/// Posit decode/encode hardware (§3.1, §7.2). Decoders sit at the array
/// and vector-unit inputs, encoders at the outputs (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PositCodec {
    /// Posit width.
    pub n: u32,
    /// Exponent-bit count.
    pub es: u32,
}

impl PositCodec {
    /// Posit(8,1) codec.
    pub fn p8() -> Self {
        Self { n: 8, es: 1 }
    }

    /// Decoder gates: two's-complement, leading-run count, field shift.
    pub fn decoder_gates(&self) -> f64 {
        Gates::adder(self.n)           // sign negate
            + Gates::lzc(self.n)       // regime run length
            + Gates::shifter(self.n)   // field extraction
            + Gates::adder(self.es + 4) // scale assembly
    }

    /// Encoder gates: regime construction, field packing, round-to-even.
    pub fn encoder_gates(&self) -> f64 {
        Gates::shifter(self.n + 4) + Gates::adder(self.n) + 2.0 * Gates::mux(self.n)
    }

    /// Synthesize the decoder.
    pub fn decoder(&self, tech: &Tech40, point: SynthesisPoint) -> AreaPower {
        synthesize(self.decoder_gates(), tech, point)
    }

    /// Synthesize the encoder.
    pub fn encoder(&self, tech: &Tech40, point: SynthesisPoint) -> AreaPower {
        synthesize(self.encoder_gates(), tech, point)
    }
}

/// Exponential-unit implementations (Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpUnitKind {
    /// Exact float exponential: range reduction + LUT + cubic polynomial.
    ExactFloat {
        /// Exponent bits.
        e: u32,
        /// Mantissa bits.
        m: u32,
    },
    /// Posit approximation (§4.1): es-conversion, sigmoid bit trick,
    /// reciprocal bit trick, threshold mask and shift subtraction.
    PositApprox {
        /// Posit width.
        n: u32,
        /// Exponent bits of the working format.
        es: u32,
    },
}

/// An exponential function unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpUnit {
    /// Implementation.
    pub kind: ExpUnitKind,
}

impl ExpUnit {
    /// Exact BF16 unit.
    pub fn bf16_exact() -> Self {
        Self { kind: ExpUnitKind::ExactFloat { e: 8, m: 7 } }
    }

    /// Exact FP16 unit.
    pub fn fp16_exact() -> Self {
        Self { kind: ExpUnitKind::ExactFloat { e: 5, m: 10 } }
    }

    /// Posit(8,1) approximate unit.
    pub fn posit8_approx() -> Self {
        Self { kind: ExpUnitKind::PositApprox { n: 8, es: 1 } }
    }

    /// Posit(16,1) approximate unit (the §4.2 comparison point).
    pub fn posit16_approx() -> Self {
        Self { kind: ExpUnitKind::PositApprox { n: 16, es: 1 } }
    }

    /// Gate count.
    pub fn gates(&self) -> f64 {
        match self.kind {
            ExpUnitKind::ExactFloat { e, m } => {
                // x·log2e split into integer + fraction, 256-entry LUT
                // seed, degree-4 polynomial refinement, normalisation.
                let range_red = Gates::multiplier(m + 1, m + 1) + Gates::adder(m + 2);
                let lut = Gates::lut(256, m + 2);
                let poly = 4.0 * Gates::multiplier(m + 1, m + 1) + 4.0 * Gates::adder(m + 2);
                let norm = Gates::shifter(m + 2) + Gates::adder(e + 1);
                range_red + lut + poly + norm
            }
            ExpUnitKind::PositApprox { n, es } => {
                let codec = PositCodec { n, es };
                // es→0 conversion (shift+adjust), sigmoid trick (XOR+shift),
                // reciprocal trick (inverters), posit subtraction of ε.
                codec.decoder_gates()
                    + codec.encoder_gates()
                    + Gates::shifter(n)
                    + Gates::inverters(n)
                    + Gates::adder(n + 2)   // ε subtraction datapath
                    + Gates::comparator(n)  // threshold mask
                    + Gates::mux(n)
            }
        }
    }

    /// Synthesize at an operating point.
    pub fn synth(&self, tech: &Tech40, point: SynthesisPoint) -> AreaPower {
        synthesize(self.gates(), tech, point)
    }
}

/// Reciprocal-unit implementations (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecipUnitKind {
    /// Float divider (Newton–Raphson: LUT seed + two refinement
    /// multiplies).
    FloatDivider {
        /// Exponent bits.
        e: u32,
        /// Mantissa bits.
        m: u32,
    },
    /// Posit bitwise reciprocal: NOT gates on the non-sign bits (§3.3).
    PositApprox {
        /// Posit width.
        n: u32,
    },
}

/// A reciprocal function unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecipUnit {
    /// Implementation.
    pub kind: RecipUnitKind,
}

impl RecipUnit {
    /// Exact BF16 divider.
    pub fn bf16_divider() -> Self {
        Self { kind: RecipUnitKind::FloatDivider { e: 8, m: 7 } }
    }

    /// Exact FP16 divider.
    pub fn fp16_divider() -> Self {
        Self { kind: RecipUnitKind::FloatDivider { e: 5, m: 10 } }
    }

    /// Posit(8,·) bitwise reciprocal.
    pub fn posit8_approx() -> Self {
        Self { kind: RecipUnitKind::PositApprox { n: 8 } }
    }

    /// Posit(16,·) bitwise reciprocal.
    pub fn posit16_approx() -> Self {
        Self { kind: RecipUnitKind::PositApprox { n: 16 } }
    }

    /// Gate count.
    pub fn gates(&self) -> f64 {
        match self.kind {
            RecipUnitKind::FloatDivider { e, m } => {
                let seed = Gates::lut(128, m + 2);
                let newton = 2.0 * (Gates::multiplier(m + 2, m + 2) + Gates::adder(m + 2));
                let norm = Gates::shifter(m + 2) + Gates::adder(e + 1);
                let ctl = Gates::register(2 * (m + 2));
                seed + newton + norm + ctl
            }
            RecipUnitKind::PositApprox { n } => {
                // NOT all bits but the sign, plus the increment already in
                // the negation path.
                Gates::inverters(n) + Gates::adder(n)
            }
        }
    }

    /// Synthesize at an operating point.
    pub fn synth(&self, tech: &Tech40, point: SynthesisPoint) -> AreaPower {
        synthesize(self.gates(), tech, point)
    }
}

/// Element-wise datapath flavours of a vector lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorKind {
    /// Exact float lane at `(e, m)` (BF16 for FP8 accelerators, FP32 for
    /// the BF16 accelerator).
    ExactFloat {
        /// Exponent bits.
        e: u32,
        /// Mantissa bits.
        m: u32,
    },
    /// Posit lane: BF16 add/mul (the accumulation type) with approximate
    /// posit exp/recip and the codecs they need.
    PositApprox,
}

/// An `N`-lane vector unit executing softmax, layer norm, GELU and other
/// element-wise operations (Figure 11, Table 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorUnit {
    /// Lane count.
    pub lanes: u32,
    /// Lane flavour.
    pub kind: VectorKind,
}

impl VectorUnit {
    /// Vector unit of the FP8 accelerators: exact BF16 lanes.
    pub fn fp8_style(lanes: u32) -> Self {
        Self { lanes, kind: VectorKind::ExactFloat { e: 8, m: 7 } }
    }

    /// Vector unit of the BF16 accelerator: exact FP32 lanes.
    pub fn bf16_style(lanes: u32) -> Self {
        Self { lanes, kind: VectorKind::ExactFloat { e: 8, m: 23 } }
    }

    /// Vector unit of the Posit8 accelerator: posit approximations.
    pub fn posit8_style(lanes: u32) -> Self {
        Self { lanes, kind: VectorKind::PositApprox }
    }

    /// Fixed per-lane infrastructure: a 32-entry 32-bit operand register
    /// file, bypass muxes and lane control. Shared by all flavours.
    fn lane_overhead_gates() -> f64 {
        Gates::register(32 * 32) + 4.0 * Gates::mux(32) + 600.0
    }

    /// Gate count of one lane.
    pub fn lane_gates(&self) -> f64 {
        let oh = Self::lane_overhead_gates();
        match self.kind {
            VectorKind::ExactFloat { e, m } => {
                let alu = Gates::multiplier(m + 1, m + 1)
                    + Gates::adder(m + 4)
                    + Gates::shifter(m + 4)
                    + Gates::lzc(m + 4);
                let exp = ExpUnit { kind: ExpUnitKind::ExactFloat { e, m } }.gates();
                let recip = RecipUnit { kind: RecipUnitKind::FloatDivider { e, m } }.gates();
                oh + alu + exp + recip + Gates::comparator(1 + e + m)
            }
            VectorKind::PositApprox => {
                // BF16 add/mul for reductions and scaling…
                let alu = Gates::multiplier(8, 8)
                    + Gates::adder(11)
                    + Gates::shifter(11)
                    + Gates::lzc(11);
                // …plus the posit approximate function units and codecs.
                let exp = ExpUnit::posit8_approx().gates();
                let recip = RecipUnit::posit8_approx().gates();
                let codec = PositCodec::p8();
                oh + alu
                    + exp
                    + recip
                    + codec.decoder_gates()
                    + codec.encoder_gates()
                    + Gates::comparator(8)
            }
        }
    }

    /// Total gate count.
    pub fn gates(&self) -> f64 {
        self.lanes as f64 * self.lane_gates()
    }

    /// Synthesize at an operating point.
    pub fn synth(&self, tech: &Tech40, point: SynthesisPoint) -> AreaPower {
        synthesize(self.gates(), tech, point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> (Tech40, SynthesisPoint) {
        (Tech40::default(), SynthesisPoint::nominal())
    }

    #[test]
    fn mac_ordering_matches_section_7_1() {
        // Posit8 MAC slightly larger than hybrid FP8 (one more fraction
        // bit); both far smaller than BF16.
        let p8 = MacUnit::posit8().gates();
        let hy = MacUnit::hybrid_fp8().gates();
        let bf = MacUnit::bf16().gates();
        assert!(p8 > hy, "{p8} vs {hy}");
        assert!(p8 < 1.25 * hy, "posit8 only slightly larger: {p8} vs {hy}");
        assert!(bf > 1.8 * p8, "bf16 much larger: {bf} vs {p8}");
        // E5M2 < E4M3 <= hybrid
        assert!(MacUnit::e5m2().gates() < MacUnit::e4m3().gates());
        assert!(MacUnit::e4m3().gates() <= hy);
    }

    #[test]
    fn exp_unit_savings_match_section_4_2() {
        // Paper: 16-bit posit approximate exponential 62% smaller and 44%
        // lower power than BF16 at 200 MHz. Accept a generous band.
        let (tech, pt) = nominal();
        let posit = ExpUnit::posit16_approx().synth(&tech, pt);
        let bf16 = ExpUnit::bf16_exact().synth(&tech, pt);
        let area_red = 1.0 - posit.area_mm2 / bf16.area_mm2;
        assert!(
            (0.45..=0.8).contains(&area_red),
            "exp area reduction {area_red}"
        );
        let power_red = 1.0 - posit.power_mw / bf16.power_mw;
        assert!(power_red > 0.3, "exp power reduction {power_red}");
    }

    #[test]
    fn recip_unit_savings_match_section_4_2() {
        // Paper: 85% smaller, 75% less power (posit16 approx vs BF16).
        let (tech, pt) = nominal();
        let posit = RecipUnit::posit16_approx().synth(&tech, pt);
        let bf16 = RecipUnit::bf16_divider().synth(&tech, pt);
        let area_red = 1.0 - posit.area_mm2 / bf16.area_mm2;
        assert!(area_red > 0.7, "recip area reduction {area_red}");
        let power_red = 1.0 - posit.power_mw / bf16.power_mw;
        assert!(power_red > 0.7, "recip power reduction {power_red}");
    }

    #[test]
    fn vector_unit_savings_match_table_8() {
        // Paper: Posit8 vector unit on average 33% smaller, 35% lower
        // power than the hybrid-FP8 one.
        let (tech, pt) = nominal();
        for lanes in [8, 16, 32] {
            let posit = VectorUnit::posit8_style(lanes).synth(&tech, pt);
            let fp8 = VectorUnit::fp8_style(lanes).synth(&tech, pt);
            let red = 1.0 - posit.area_mm2 / fp8.area_mm2;
            assert!((0.2..=0.5).contains(&red), "{lanes}-lane area red {red}");
        }
    }

    #[test]
    fn codec_is_small_relative_to_mac() {
        let c = PositCodec::p8();
        assert!(c.decoder_gates() + c.encoder_gates() < MacUnit::posit8().gates());
    }

    #[test]
    fn frequency_sweep_monotone() {
        // Figures 8/9: area and power grow with target frequency.
        let tech = Tech40::default();
        let mut prev = AreaPower::default();
        for f in [100.0, 200.0, 300.0, 400.0, 500.0] {
            let pt = SynthesisPoint { freq_mhz: f, fmax_mhz: 800.0 };
            let ap = ExpUnit::posit8_approx().synth(&tech, pt);
            assert!(ap.area_mm2 >= prev.area_mm2);
            assert!(ap.power_mw > prev.power_mw);
            prev = ap;
        }
    }
}
