//! Fine-tuning memory model (Figure 14): how LoRA and 8-bit quantization
//! shrink the training footprint.
//!
//! Training memory =
//! **parameters** + **weight gradients** (trainable only) +
//! **optimizer state** (trainable only) + **activations** (stored for the
//! backward pass, dominated by batch·seq) + **errors** (activation
//! gradients in flight).

use qt_transformer::{LoraConfig, TransformerConfig};

/// Byte widths of each tensor class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Precision {
    /// Bytes per weight element.
    pub weight: usize,
    /// Bytes per stored activation element.
    pub activation: usize,
    /// Bytes per weight-gradient element.
    pub weight_grad: usize,
    /// Bytes per activation-gradient (error) element.
    pub error: usize,
    /// Bytes of optimizer state per trainable element (AdamW: two f32
    /// moments = 8).
    pub optimizer: usize,
}

impl Precision {
    /// 16-bit training (the paper's baseline: BF16 everywhere, FP32 Adam
    /// moments).
    pub fn bf16() -> Self {
        Self {
            weight: 2,
            activation: 2,
            weight_grad: 2,
            error: 2,
            optimizer: 8,
        }
    }

    /// 8-bit training (§5): weights and activations stored in 8 bits;
    /// LoRA master factors and optimizer state stay 16/32-bit but are tiny.
    pub fn eight_bit() -> Self {
        Self {
            weight: 1,
            activation: 1,
            weight_grad: 2,
            error: 1,
            optimizer: 8,
        }
    }
}

/// Memory breakdown in bytes (the stacked bars of Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryBreakdown {
    /// All model parameters (backbone + adapters).
    pub parameters: u64,
    /// Gradients of trainable parameters.
    pub weight_grads: u64,
    /// Optimizer state of trainable parameters.
    pub optimizer: u64,
    /// Stored forward activations.
    pub activations: u64,
    /// Activation gradients in flight ("Error" in Figure 14).
    pub errors: u64,
}

impl MemoryBreakdown {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.parameters + self.weight_grads + self.optimizer + self.activations + self.errors
    }
}

/// Fine-tuning memory model for a Transformer config.
#[derive(Debug, Clone)]
pub struct FinetuneMemoryModel {
    /// Architecture.
    pub cfg: TransformerConfig,
    /// Batch size.
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// Tensor precisions.
    pub precision: Precision,
    /// LoRA adapters (None = full fine-tuning).
    pub lora: Option<LoraConfig>,
}

impl FinetuneMemoryModel {
    /// Model with the paper's Figure 14 setup: sequence 128, batch 16,
    /// AdamW.
    pub fn figure14(cfg: TransformerConfig, precision: Precision, lora: Option<LoraConfig>) -> Self {
        Self {
            cfg,
            batch: 16,
            seq: 128,
            precision,
            lora,
        }
    }

    /// Backbone parameter count.
    pub fn backbone_params(&self) -> u64 {
        self.cfg.param_count() as u64
    }

    /// LoRA parameter count (0 without adapters).
    pub fn lora_params(&self) -> u64 {
        let Some(lora) = self.lora else { return 0 };
        let h = self.cfg.hidden as u64;
        let f = self.cfg.ffn as u64;
        let r = lora.rank as u64;
        // dense weights per block and whether each is adapted
        let attn_adapted: u64 = match lora.targets {
            qt_transformer::lora::LoraTargets::QueryValue => 2,
            qt_transformer::lora::LoraTargets::AllDense => 4,
        };
        let attn = attn_adapted * (h * r + r * h);
        let ffn = match lora.targets {
            qt_transformer::lora::LoraTargets::QueryValue => 0,
            qt_transformer::lora::LoraTargets::AllDense => {
                self.cfg.stacked_ffn as u64 * ((h * r + r * f) + (f * r + r * h))
            }
        };
        self.cfg.layers as u64 * (attn + ffn)
    }

    /// Trainable parameter count.
    pub fn trainable_params(&self) -> u64 {
        if self.lora.is_some() {
            self.lora_params()
        } else {
            self.backbone_params()
        }
    }

    /// Stored activations per forward pass, in elements.
    pub fn activation_elements(&self) -> u64 {
        let (b, s) = (self.batch as u64, self.seq as u64);
        let h = self.cfg.hidden as u64;
        let f = self.cfg.ffn as u64;
        let nh = self.cfg.heads as u64;
        // per layer: q,k,v,ctx,attn_out,ln outputs ≈ 8h per token; each
        // stacked FFN stores its inner activation (f) and output (h);
        // attention probabilities are nh·s per query token.
        let per_token = 8 * h + self.cfg.stacked_ffn as u64 * (f + h);
        let per_layer = b * s * per_token + b * nh * s * s;
        self.cfg.layers as u64 * per_layer + b * s * h // embeddings
    }

    /// Compute the breakdown.
    pub fn breakdown(&self) -> MemoryBreakdown {
        let p = &self.precision;
        let backbone = self.backbone_params();
        let lora = self.lora_params();
        let trainable = self.trainable_params();
        // LoRA master factors stay 16-bit even in the 8-bit regime (§5.3).
        let parameters = backbone * p.weight as u64 + lora * 2;
        let acts = self.activation_elements();
        MemoryBreakdown {
            parameters,
            weight_grads: trainable * p.weight_grad as u64,
            optimizer: trainable * p.optimizer as u64,
            activations: acts * p.activation as u64,
            // errors: activation gradients in flight — the backward sweep
            // holds the token-level gradients of ~two layers at once
            // (attention-map gradients are consumed immediately)
            errors: 2
                * (self.batch * self.seq) as u64
                * (self.cfg.hidden + self.cfg.ffn) as u64
                * p.error as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_transformer::lora::LoraTargets;

    fn cfg() -> TransformerConfig {
        TransformerConfig::mobilebert_tiny_sim()
    }

    fn lora() -> LoraConfig {
        LoraConfig {
            rank: 4,
            alpha: 8.0,
            targets: LoraTargets::AllDense,
        }
    }

    #[test]
    fn lora_cuts_grads_and_optimizer() {
        let full = FinetuneMemoryModel::figure14(cfg(), Precision::bf16(), None).breakdown();
        let with_lora =
            FinetuneMemoryModel::figure14(cfg(), Precision::bf16(), Some(lora())).breakdown();
        assert!(with_lora.weight_grads < full.weight_grads / 5);
        assert!(with_lora.optimizer < full.optimizer / 5);
        // total parameters grow slightly (adapters added)
        assert!(with_lora.parameters > full.parameters);
        assert!(with_lora.parameters < full.parameters * 12 / 10);
    }

    #[test]
    fn eight_bit_halves_params_and_activations() {
        let l = Some(lora());
        let b16 = FinetuneMemoryModel::figure14(cfg(), Precision::bf16(), l).breakdown();
        let b8 = FinetuneMemoryModel::figure14(cfg(), Precision::eight_bit(), l).breakdown();
        let act_ratio = b8.activations as f64 / b16.activations as f64;
        assert!((act_ratio - 0.5).abs() < 0.01, "{act_ratio}");
        assert!(b8.parameters < b16.parameters * 6 / 10);
    }

    #[test]
    fn figure14_three_times_reduction() {
        // Paper: LoRA + 8-bit ≈ 3× total memory reduction vs 16-bit full
        // fine-tuning.
        let baseline = FinetuneMemoryModel::figure14(cfg(), Precision::bf16(), None)
            .breakdown()
            .total();
        let compressed =
            FinetuneMemoryModel::figure14(cfg(), Precision::eight_bit(), Some(lora()))
                .breakdown()
                .total();
        let factor = baseline as f64 / compressed as f64;
        assert!((2.0..=4.5).contains(&factor), "reduction factor {factor}");
    }

    #[test]
    fn activations_dominate_at_large_batch() {
        // "Transformer training memory is primarily dominated by
        // activations especially with larger batch sizes."
        let mut m = FinetuneMemoryModel::figure14(cfg(), Precision::bf16(), None);
        m.batch = 64;
        let b = m.breakdown();
        assert!(b.activations > b.parameters + b.weight_grads + b.optimizer);
    }

    #[test]
    fn qv_lora_smaller_than_all_dense() {
        let qv = LoraConfig {
            targets: LoraTargets::QueryValue,
            ..lora()
        };
        let a = FinetuneMemoryModel::figure14(cfg(), Precision::bf16(), Some(qv));
        let b = FinetuneMemoryModel::figure14(cfg(), Precision::bf16(), Some(lora()));
        assert!(a.lora_params() < b.lora_params());
        assert!(a.lora_params() > 0);
    }
}
