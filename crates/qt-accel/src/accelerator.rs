//! Full-accelerator composition (Figure 11 / Figure 13): an `N×N` systolic
//! array of MAC PEs, an `N`-lane vector unit, posit codecs at the array
//! boundary, and SRAM buffers.

use crate::cost::{sram, synthesize, AreaPower, Gates, SynthesisPoint, Tech40};
use crate::units::{MacUnit, PositCodec, VectorUnit};

/// The five datapaths compared in Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Datapath {
    /// BF16 operands, FP32 accumulation and vector unit (baseline).
    Bf16,
    /// Posit(8,1) operands (decoded E5M4), BF16 accumulation, posit
    /// approximate vector unit, boundary codecs.
    Posit8,
    /// Hybrid FP8 (E5M3 MAC supporting both E4M3 and E5M2), BF16
    /// accumulation, exact BF16 vector unit.
    HybridFp8,
    /// E4M3-only MAC.
    E4M3,
    /// E5M2-only MAC.
    E5M2,
}

impl Datapath {
    /// All five, in Figure 13's order.
    pub const ALL: [Datapath; 5] = [
        Datapath::Bf16,
        Datapath::Posit8,
        Datapath::HybridFp8,
        Datapath::E4M3,
        Datapath::E5M2,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Datapath::Bf16 => "BF16",
            Datapath::Posit8 => "Posit8",
            Datapath::HybridFp8 => "Hybrid FP8",
            Datapath::E4M3 => "E4M3",
            Datapath::E5M2 => "E5M2",
        }
    }

    /// Storage bits per operand element.
    pub fn operand_bits(self) -> u64 {
        match self {
            Datapath::Bf16 => 16,
            _ => 8,
        }
    }

    /// Accumulator width in bits.
    pub fn acc_bits(self) -> u64 {
        match self {
            Datapath::Bf16 => 32,
            _ => 16,
        }
    }

    /// The MAC of this datapath.
    pub fn mac(self) -> MacUnit {
        match self {
            Datapath::Bf16 => MacUnit::bf16(),
            Datapath::Posit8 => MacUnit::posit8(),
            Datapath::HybridFp8 => MacUnit::hybrid_fp8(),
            Datapath::E4M3 => MacUnit::e4m3(),
            Datapath::E5M2 => MacUnit::e5m2(),
        }
    }

    /// The vector unit of this datapath at `lanes` lanes.
    pub fn vector_unit(self, lanes: u32) -> VectorUnit {
        match self {
            Datapath::Bf16 => VectorUnit::bf16_style(lanes),
            Datapath::Posit8 => VectorUnit::posit8_style(lanes),
            _ => VectorUnit::fp8_style(lanes),
        }
    }
}

/// An `N×N` accelerator instance.
///
/// SRAM buffers have a fixed **byte** capacity per lane (the physical
/// macros are the same across datapaths); an 8-bit datapath therefore fits
/// twice the elements of the BF16 one, and its area savings come from the
/// logic, as in the paper's Figure 13.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accelerator {
    /// Array dimension (PEs per side; also vector lanes).
    pub n: u32,
    /// Datapath flavour.
    pub datapath: Datapath,
    /// Weight-buffer capacity in KiB.
    pub weight_buf_kib: u64,
    /// Activation-buffer capacity in KiB.
    pub act_buf_kib: u64,
    /// Accumulator-buffer capacity in KiB.
    pub acc_buf_kib: u64,
}

/// Area/power breakdown of a synthesized accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccelReport {
    /// Systolic MAC array (PEs incl. pipeline registers).
    pub array: AreaPower,
    /// Vector unit.
    pub vector: AreaPower,
    /// Posit boundary codecs (zero for float datapaths).
    pub codecs: AreaPower,
    /// SRAM macros.
    pub sram: AreaPower,
}

impl AccelReport {
    /// Sum of all components.
    pub fn total(&self) -> AreaPower {
        self.array
            .plus(self.vector)
            .plus(self.codecs)
            .plus(self.sram)
    }
}

impl Accelerator {
    /// Accelerator with edge-scale buffers: 16 KiB of weight and
    /// activation SRAM per lane and 4 KiB of accumulator SRAM per lane
    /// (n = 8 → 288 KiB total, n = 32 → 1.1 MiB, in line with edge
    /// accelerators like CHIMERA \[22\]).
    pub fn new(n: u32, datapath: Datapath) -> Self {
        Self {
            n,
            datapath,
            weight_buf_kib: 16 * n as u64,
            act_buf_kib: 16 * n as u64,
            acc_buf_kib: 4 * n as u64,
        }
    }

    /// Buffer capacity in *elements* of the operand format (8-bit
    /// datapaths fit twice as many elements in the same macros).
    pub fn operand_buf_elems(&self) -> u64 {
        (self.weight_buf_kib + self.act_buf_kib) * 1024 * 8 / self.datapath.operand_bits()
    }

    /// One PE: the MAC plus operand pass-through pipeline registers.
    fn pe_gates(&self) -> f64 {
        let mac = self.datapath.mac();
        let op_bits = 1 + mac.op_exp + mac.op_man;
        mac.gates() + 2.0 * Gates::register(op_bits) + Gates::mux(op_bits)
    }

    /// Synthesize the accelerator.
    pub fn synth(&self, tech: &Tech40, point: SynthesisPoint) -> AccelReport {
        let n = self.n as f64;
        let array = synthesize(n * n * self.pe_gates(), tech, point);
        let vector = self.datapath.vector_unit(self.n).synth(tech, point);
        let codecs = if self.datapath == Datapath::Posit8 {
            let c = PositCodec::p8();
            // decoders on both operand edges, encoders on the output edge
            let gates =
                2.0 * n * c.decoder_gates() + n * c.encoder_gates();
            synthesize(gates, tech, point)
        } else {
            AreaPower::default()
        };
        let sram_bits =
            (self.weight_buf_kib + self.act_buf_kib + self.acc_buf_kib) * 1024 * 8;
        let sram = sram(sram_bits, tech, point);
        // Shared infrastructure: sequencer, DMA, NoC — identical across
        // datapaths.
        let infra = synthesize(4000.0 * n + 30_000.0, tech, point);
        AccelReport {
            array: array.plus(infra),
            vector,
            codecs,
            sram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> (Tech40, SynthesisPoint) {
        (Tech40::default(), SynthesisPoint::nominal())
    }

    #[test]
    fn headline_reductions_match_abstract() {
        // Abstract: vs BF16, Posit8 reduces area ~30% / power ~26%; FP8
        // ~34% / ~32% (averaged over 8/16/32). Accept a generous band
        // around those averages from our structural model.
        let (tech, pt) = nominal();
        let mut p8_sum = 0.0;
        let mut fp8_sum = 0.0;
        for n in [8u32, 16, 32] {
            let bf = Accelerator::new(n, Datapath::Bf16).synth(&tech, pt).total();
            let p8 = Accelerator::new(n, Datapath::Posit8).synth(&tech, pt).total();
            let fp8 = Accelerator::new(n, Datapath::HybridFp8)
                .synth(&tech, pt)
                .total();
            let p8_area_red = 1.0 - p8.area_mm2 / bf.area_mm2;
            let fp8_area_red = 1.0 - fp8.area_mm2 / bf.area_mm2;
            assert!(
                (0.15..=0.55).contains(&p8_area_red),
                "n={n} posit8 area red {p8_area_red}"
            );
            assert!(
                (0.18..=0.58).contains(&fp8_area_red),
                "n={n} fp8 area red {fp8_area_red}"
            );
            p8_sum += p8_area_red;
            fp8_sum += fp8_area_red;
            // FP8 keeps an overall edge (smaller MAC, no codecs) despite
            // its larger vector unit — §7.3's conclusion.
            assert!(fp8.area_mm2 < p8.area_mm2, "n={n}");
            let p8_pow_red = 1.0 - p8.power_mw / bf.power_mw;
            assert!(p8_pow_red > 0.15, "n={n} posit8 power red {p8_pow_red}");
        }
        // averages near the paper's 30% / 34%
        assert!((0.22..=0.48).contains(&(p8_sum / 3.0)), "{}", p8_sum / 3.0);
        assert!(fp8_sum > p8_sum, "FP8 saves more on average");
    }

    #[test]
    fn posit_vector_unit_smaller_despite_codecs() {
        let (tech, pt) = nominal();
        let p8 = Accelerator::new(16, Datapath::Posit8).synth(&tech, pt);
        let fp8 = Accelerator::new(16, Datapath::HybridFp8).synth(&tech, pt);
        assert!(p8.vector.area_mm2 < fp8.vector.area_mm2);
        assert!(p8.codecs.area_mm2 > 0.0);
        assert_eq!(fp8.codecs.area_mm2, 0.0);
        // codecs must not eat the vector-unit savings
        assert!(
            p8.vector.area_mm2 + p8.codecs.area_mm2 < fp8.vector.area_mm2,
            "codecs ate the savings"
        );
    }

    #[test]
    fn e5m2_smallest_array() {
        let (tech, pt) = nominal();
        let areas: Vec<f64> = [Datapath::E5M2, Datapath::E4M3, Datapath::HybridFp8, Datapath::Posit8]
            .iter()
            .map(|&d| Accelerator::new(8, d).synth(&tech, pt).array.area_mm2)
            .collect();
        for w in areas.windows(2) {
            assert!(w[0] <= w[1], "{areas:?}");
        }
    }

    #[test]
    fn same_sram_macros_twice_the_elements() {
        let (tech, pt) = nominal();
        let bf = Accelerator::new(16, Datapath::Bf16);
        let p8 = Accelerator::new(16, Datapath::Posit8);
        // identical macros…
        assert_eq!(
            bf.synth(&tech, pt).sram.area_mm2,
            p8.synth(&tech, pt).sram.area_mm2
        );
        // …but the 8-bit datapath fits twice the elements
        assert_eq!(p8.operand_buf_elems(), 2 * bf.operand_buf_elems());
    }

    #[test]
    fn scales_with_array_size() {
        let (tech, pt) = nominal();
        let a8 = Accelerator::new(8, Datapath::Posit8).synth(&tech, pt).total();
        let a16 = Accelerator::new(16, Datapath::Posit8).synth(&tech, pt).total();
        let a32 = Accelerator::new(32, Datapath::Posit8).synth(&tech, pt).total();
        assert!(a16.area_mm2 > 1.8 * a8.area_mm2);
        assert!(a32.area_mm2 > 1.8 * a16.area_mm2);
    }
}
