//! Hardware evaluation substrate (paper §7): an analytic gate-level
//! area/power model of the paper's accelerator family, a cycle-level
//! systolic-array + vector-unit simulator, and the fine-tuning memory
//! model of Figure 14.
//!
//! The paper synthesises HLS designs with Design Compiler in a 40 nm
//! technology. We replace that proprietary flow with a **structural
//! gate-count model**: every unit (float/posit MACs, posit codecs,
//! exponential and reciprocal units, vector lanes, PEs, SRAM macros) is
//! composed from primitive blocks (adders, multipliers, shifters, leading-
//! zero counters, registers…) whose NAND2-equivalent gate counts follow
//! standard VLSI estimates, converted to mm²/mW with 40 nm constants.
//! Ratios between designs — the paper's actual claims — derive from the
//! datapath structure (bit widths, approximations) rather than curve
//! fitting; see `DESIGN.md` for the substitution argument.

#![warn(missing_docs)]

pub mod accelerator;
pub mod cost;
pub mod memory;
pub mod sim;
pub mod units;

pub use accelerator::{Accelerator, AccelReport, Datapath};
pub use cost::{AreaPower, SynthesisPoint, Tech40};
pub use memory::{FinetuneMemoryModel, MemoryBreakdown};
pub use sim::{GemmStats, SramFaultModel, SystolicSim, VectorOp, VectorStats};
pub use units::{ExpUnit, ExpUnitKind, MacUnit, PositCodec, RecipUnit, RecipUnitKind, VectorUnit};
