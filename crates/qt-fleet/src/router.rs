//! Routing policies over a fleet of replicas.
//!
//! The router is a pure decision function over immutable
//! [`ReplicaView`]s — it never touches a replica directly. That keeps
//! the eligibility invariant auditable in one place: a replica that is
//! down, whose breaker is Open, whose queue is full, or that the caller
//! excluded (it just failed this very request) is *never* selected, by
//! any policy. Within the eligible set the policies differ in what they
//! optimize; across the eligible set they share deterministic
//! tie-breaking by replica id, so a fleet run replays bit-exactly.

use qt_serve::BreakerState;

/// Which routing policy the fleet runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Rotate through eligible replicas in id order.
    RoundRobin,
    /// Pick the eligible replica with the smallest estimated backlog
    /// (outstanding work × per-pass cost — a slow BF16 replica with two
    /// queued requests is "fuller" than a fast posit8 one with three).
    LeastLoaded,
    /// [`RouterPolicy::LeastLoaded`] among *Closed*-breaker replicas,
    /// with a probe quota: every [`Router::PROBE_EVERY`]-th decision
    /// prefers a HalfOpen replica so recovering nodes actually receive
    /// the probe traffic they need to close their breakers. Without the
    /// quota a healthy majority starves recovering replicas forever.
    HealthAware,
}

impl RouterPolicy {
    /// Stable lowercase name (JSON, CLI flags, metrics labels).
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round_robin",
            RouterPolicy::LeastLoaded => "least_loaded",
            RouterPolicy::HealthAware => "health_aware",
        }
    }

    /// Parse a [`RouterPolicy::name`] back (CLI flags).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "round_robin" => Some(RouterPolicy::RoundRobin),
            "least_loaded" => Some(RouterPolicy::LeastLoaded),
            "health_aware" => Some(RouterPolicy::HealthAware),
            _ => None,
        }
    }
}

/// What the router is allowed to know about one replica at decision
/// time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaView {
    /// Replica id (index in the fleet).
    pub id: usize,
    /// Up per its crash schedule at this instant.
    pub up: bool,
    /// Breaker state at this instant.
    pub breaker: BreakerState,
    /// Requests waiting in the local queue.
    pub queued: usize,
    /// Requests currently in service.
    pub in_service: usize,
    /// Local queue capacity.
    pub queue_cap: usize,
    /// Virtual cost of one full forward pass here, µs (the
    /// heterogeneity knob: backlog is work × this).
    pub full_pass_us: u64,
}

impl ReplicaView {
    /// Estimated µs of work ahead of a new arrival here.
    pub fn backlog_us(&self) -> u64 {
        (self.queued + self.in_service) as u64 * self.full_pass_us
    }

    /// Room for one more request in the local queue?
    pub fn has_room(&self) -> bool {
        self.queued < self.queue_cap
    }

    /// The shared eligibility gate: up, breaker not Open, queue not
    /// full. (Exclusion is per-decision and handled by the router.)
    pub fn eligible(&self) -> bool {
        self.up && self.breaker != BreakerState::Open && self.has_room()
    }
}

/// The routing decision state: policy plus the cursors that make
/// round-robin and probe quotas deterministic.
#[derive(Debug, Clone)]
pub struct Router {
    policy: RouterPolicy,
    /// Next id round-robin would like to start scanning from.
    rr_cursor: usize,
    /// Decisions made so far (drives the HealthAware probe quota).
    decisions: u64,
}

impl Router {
    /// HealthAware sends every n-th decision to a HalfOpen replica when
    /// one exists. 8 keeps probe traffic ~12% of demand — enough to
    /// close a default breaker (3 consecutive clean probes) quickly,
    /// small enough that a flapping replica cannot drag down p99.
    pub const PROBE_EVERY: u64 = 8;

    /// A router running `policy`.
    pub fn new(policy: RouterPolicy) -> Self {
        Self {
            policy,
            rr_cursor: 0,
            decisions: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Pick a replica for one request, or `None` when no replica is
    /// eligible (the caller sheds). `exclude` lists replicas this
    /// request must not land on again — the one that just corrupted or
    /// crashed under it.
    ///
    /// Invariants, by construction, for every policy:
    /// - never returns a replica with `up == false`;
    /// - never returns a replica whose breaker is `Open`;
    /// - never returns a replica with a full queue;
    /// - never returns a member of `exclude`.
    pub fn pick(&mut self, views: &[ReplicaView], exclude: &[usize]) -> Option<usize> {
        self.decisions += 1;
        let ok = |v: &ReplicaView| v.eligible() && !exclude.contains(&v.id);
        let picked = match self.policy {
            RouterPolicy::RoundRobin => {
                let n = views.len().max(1);
                let found = (0..n)
                    .map(|k| (self.rr_cursor + k) % n)
                    .find(|&i| views.get(i).map(&ok).unwrap_or(false));
                if let Some(i) = found {
                    self.rr_cursor = (i + 1) % n;
                }
                found
            }
            RouterPolicy::LeastLoaded => Self::least_backlog(views.iter().filter(|v| ok(v))),
            RouterPolicy::HealthAware => {
                let probing = self.decisions.is_multiple_of(Self::PROBE_EVERY);
                let half_open = || {
                    Self::least_backlog(
                        views
                            .iter()
                            .filter(|v| ok(v) && v.breaker == BreakerState::HalfOpen),
                    )
                };
                let closed = || {
                    Self::least_backlog(
                        views
                            .iter()
                            .filter(|v| ok(v) && v.breaker == BreakerState::Closed),
                    )
                };
                if probing {
                    // Probe turn: a HalfOpen replica gets the request if
                    // any exists; otherwise fall through to Closed.
                    half_open().or_else(closed)
                } else {
                    // Normal turn: Closed replicas first; HalfOpen only
                    // when nothing Closed is eligible (better a probe
                    // than a shed).
                    closed().or_else(half_open)
                }
            }
        };
        picked
    }

    /// Smallest estimated backlog; ties broken by id (iteration is in id
    /// order, and strict `<` keeps the first).
    fn least_backlog<'a>(views: impl Iterator<Item = &'a ReplicaView>) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for v in views {
            let key = (v.backlog_us(), v.id);
            if best.map(|b| key < b).unwrap_or(true) {
                best = Some(key);
            }
        }
        best.map(|(_, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: usize, breaker: BreakerState, queued: usize) -> ReplicaView {
        ReplicaView {
            id,
            up: true,
            breaker,
            queued,
            in_service: 0,
            queue_cap: 4,
            full_pass_us: 6_000,
        }
    }

    #[test]
    fn no_policy_ever_picks_open_down_full_or_excluded() {
        let views = vec![
            ReplicaView {
                up: false,
                ..view(0, BreakerState::Closed, 0)
            },
            view(1, BreakerState::Open, 0),
            view(2, BreakerState::Closed, 4), // full
            view(3, BreakerState::Closed, 0), // excluded below
            view(4, BreakerState::Closed, 3),
        ];
        for policy in [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastLoaded,
            RouterPolicy::HealthAware,
        ] {
            let mut r = Router::new(policy);
            for _ in 0..32 {
                assert_eq!(r.pick(&views, &[3]), Some(4), "{policy:?}");
            }
            // And with 4 also excluded: nothing is eligible.
            assert_eq!(r.pick(&views, &[3, 4]), None, "{policy:?}");
        }
    }

    #[test]
    fn round_robin_rotates_over_eligible_only() {
        let views = vec![
            view(0, BreakerState::Closed, 0),
            view(1, BreakerState::Open, 0),
            view(2, BreakerState::Closed, 0),
        ];
        let mut r = Router::new(RouterPolicy::RoundRobin);
        let picks: Vec<_> = (0..6).map(|_| r.pick(&views, &[]).unwrap()).collect();
        assert_eq!(picks, vec![0, 2, 0, 2, 0, 2]);
    }

    #[test]
    fn least_loaded_weighs_backlog_by_replica_speed() {
        // Replica 0: 1 queued × 12ms pass = 12ms backlog.
        // Replica 1: 2 queued × 4ms pass = 8ms backlog → less loaded.
        let views = vec![
            ReplicaView {
                full_pass_us: 12_000,
                ..view(0, BreakerState::Closed, 1)
            },
            ReplicaView {
                full_pass_us: 4_000,
                ..view(1, BreakerState::Closed, 2)
            },
        ];
        let mut r = Router::new(RouterPolicy::LeastLoaded);
        assert_eq!(r.pick(&views, &[]), Some(1));
    }

    #[test]
    fn health_aware_prefers_closed_but_spends_probe_quota_on_halfopen() {
        let views = vec![
            view(0, BreakerState::Closed, 0),
            view(1, BreakerState::HalfOpen, 0),
        ];
        let mut r = Router::new(RouterPolicy::HealthAware);
        let picks: Vec<_> = (0..Router::PROBE_EVERY * 2)
            .map(|_| r.pick(&views, &[]).unwrap())
            .collect();
        let probes = picks.iter().filter(|&&p| p == 1).count();
        assert_eq!(probes, 2, "exactly the quota turns probe: {picks:?}");
        // With only HalfOpen replicas eligible, normal turns still route
        // there instead of shedding.
        let only_half = vec![view(1, BreakerState::HalfOpen, 0)];
        assert_eq!(r.pick(&only_half, &[]), Some(1));
    }
}
