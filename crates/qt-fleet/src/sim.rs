//! The deterministic multi-replica fleet simulation.
//!
//! One single-threaded discrete-event loop on a virtual microsecond
//! clock drives every replica: arrivals are routed by the fleet
//! [`Router`], service episodes run on the clock-free qt-serve
//! [`qt_serve::Engine`] attempt API, crashes truncate in-flight work at
//! the exact outage instant, and recovered replicas re-earn traffic
//! through half-open probing. The forward passes inside execute on the
//! real qt-par kernels, whose results are bitwise identical at any
//! `QT_THREADS` — so the whole [`FleetReport`] is too.
//!
//! Event ordering at equal timestamps is fixed by kind rank: completions
//! free workers first, then failed requests re-route, then lifecycle
//! transitions fire, then storage repairs land, then autoscale boots
//! complete, then new arrivals are admitted, then the adaptive control
//! plane evaluates, then scrub windows run, then snapshots are written.
//! Ties within a kind break by insertion sequence. This total order is what makes crash-instant races (a pass
//! finishing at exactly `down_at`, a failover leaving as the queue
//! drains) deterministic instead of racy.
//!
//! The adaptive control plane (qt-adapt) hangs off the same loop: a
//! periodic `AdaptTick` reads only sim-internal state (queue depths,
//! attempt durations) — never telemetry — so attaching an observer
//! still changes nothing about the run.
//!
//! Crash truncation is computed *synchronously* at pickup: an episode's
//! block budget is the minimum of its deadline budget and the blocks
//! that fit before the replica's next scheduled outage, so no completion
//! event ever lands on a dead replica and the simulation needs no event
//! cancellation machinery.

use crate::config::FleetConfig;
use crate::load::FleetRequest;
use crate::replica::{Replica, SnapStore};
use crate::report::{
    AdaptEvent, Dispatch, DispatchCause, FleetOutcome, FleetReport, FleetResponse, ReplicaReport,
};
use crate::router::{ReplicaView, Router};
use crate::tenant::TenantBook;
use qt_adapt::{
    AutoscalePolicy, Brownout, BrownoutLadder, CodelController, GrayDetector, GrayEvent,
    PriorityTier, ScaleDecision,
};
use qt_quant::HealthWindow;
use qt_robust::{cell_seed, FaultSource, LifecycleEvent, NoFaults};
use qt_serve::{integrity_health, pristine_codes_for_region, Backoff, BreakerState, Request};
use qt_telemetry::TelemetryHandle;
use qt_trace::{LogHist, TraceHandle};
use qt_transformer::Model;
use std::collections::{BinaryHeap, VecDeque};

/// Hard cap on forward attempts per request across the whole fleet, so
/// a deadline-less request in a pathological fault environment still
/// terminates.
const ATTEMPT_HARD_CAP: u32 = 16;

/// One request's mutable fleet-side state as it moves between replicas.
#[derive(Debug, Clone)]
struct Job {
    freq: FleetRequest,
    /// Forward attempts executed so far, across replicas.
    attempts: u32,
    /// Flagged attempts so far, across replicas.
    flagged: u32,
    /// Fleet-level failovers so far.
    failovers: u32,
    hedged: bool,
    /// Replicas this request must never land on again (each one failed
    /// it: corrupted its attempts or crashed under it).
    excluded: Vec<usize>,
    /// First service pickup already recorded in the queue-wait histogram.
    waited: bool,
    /// Brownout economy service: a single degraded-precision attempt,
    /// no retry/failover/hedge budget.
    economy: bool,
}

impl Job {
    fn new(freq: FleetRequest) -> Self {
        Self {
            freq,
            attempts: 0,
            flagged: 0,
            failovers: 0,
            hedged: false,
            excluded: Vec::new(),
            waited: false,
            economy: false,
        }
    }
}

/// Event kinds; rank fixes processing order at equal timestamps.
enum Ev {
    /// A worker on replica `.0` finished; `.1` releases that tenant's
    /// quota slot (set for final outcomes, not failovers).
    Done(usize, Option<u32>),
    /// A request leaves its failed replica and re-routes.
    Failover(Box<Job>, DispatchCause),
    /// A replica crashes or finishes rebooting.
    Lifecycle(usize, LifecycleEvent),
    /// A quarantined storage region's repair completes on replica `.0`,
    /// region index `.1`: the plane is rebuilt from the f32 masters.
    Repair(usize, usize),
    /// An autoscale boot completes: replica `.0` comes out of reserve
    /// through the snapshot-recovery path.
    Scale(usize),
    /// A request arrives at the fleet edge.
    Arrival(Box<FleetRequest>),
    /// Periodic adaptive-control evaluation.
    AdaptTick,
    /// Periodic background scrub window on replica `.0`.
    ScrubTick(usize),
    /// Periodic health-snapshot persistence.
    SnapshotTick,
}

impl Ev {
    fn rank(&self) -> u8 {
        match self {
            Ev::Done(..) => 0,
            Ev::Failover(..) => 1,
            Ev::Lifecycle(..) => 2,
            Ev::Repair(..) => 3,
            Ev::Scale(..) => 4,
            Ev::Arrival(..) => 5,
            Ev::AdaptTick => 6,
            Ev::ScrubTick(..) => 7,
            Ev::SnapshotTick => 8,
        }
    }
}

/// Heap entry: min-ordered by (time, kind rank, insertion sequence).
struct Entry {
    at: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.ev.rank(), self.seq) == (other.at, other.ev.rank(), other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.ev.rank(), other.seq).cmp(&(self.at, self.ev.rank(), self.seq))
    }
}

/// How one service episode on one replica ended.
enum EpisodeEnd {
    /// Clean response at `at` (primary or degraded path).
    Served {
        primary: bool,
        label: Option<usize>,
        at: u64,
    },
    /// Deadline block budget exhausted at `at`.
    Miss { at: u64 },
    /// Local flagged retries exhausted (or the breaker tripped under
    /// it): leave for another replica at `at`.
    FailoverCorrupt { at: u64 },
    /// The replica's scheduled outage landed mid-episode: leave at the
    /// crash instant.
    FailoverCrash { at: u64 },
}

/// One forward attempt's interval within an episode, kept so the
/// telemetry plane can hang an `attempt` span per engine pass under the
/// request's trace tree.
struct AttemptSpan {
    start_us: u64,
    end_us: u64,
    flagged: bool,
    completed: bool,
}

/// One episode's outputs, applied to counters by the caller.
struct Episode {
    end: EpisodeEnd,
    attempts: u32,
    flagged: u32,
    bits: u64,
    /// A forward pass was actually cancelled by the crash boundary.
    crash_interrupted: bool,
    /// One entry per forward attempt, in execution order.
    attempt_log: Vec<AttemptSpan>,
}

/// Run one service episode of `job` on `r` starting at `start_us`.
///
/// The episode retries flagged primary attempts locally (with seeded
/// backoff) up to the replica's retry budget, feeds every completed
/// primary outcome to the replica's breaker, and ends in one of the
/// four [`EpisodeEnd`]s. All time arithmetic is capped by both the
/// request deadline and the replica's next scheduled outage, so the
/// returned end time never lands inside a crash window.
fn run_episode(r: &Replica, job: &Job, start_us: u64, can_failover: bool, seed: u64) -> Episode {
    let mut per_block = r.spec.per_block_us.max(1);
    if let Some(g) = r.spec.gray_slowdown {
        if start_us >= g.from_us {
            // Gray failure: service runs slow, but every health gate
            // (routing, hedging) still sees the nominal full_pass_us.
            per_block *= g.factor.max(1);
        }
    }
    let max_local = r.spec.retry.max_attempts.max(1);
    let crash_at = r.spec.crashes.next_down_after(start_us.saturating_sub(1));
    let deadline = job.freq.req.deadline_us;
    let mut backoff = Backoff::new(
        r.spec.retry,
        cell_seed(seed, job.freq.req.id as usize, r.id, job.failovers as usize),
    );
    let mut t = start_us;
    let mut attempts = 0u32;
    let mut flagged_local = 0u32;
    let mut bits = 0u64;
    let mut force_degraded = job.economy;
    let mut attempt_log: Vec<AttemptSpan> = Vec::new();
    let done = |end, attempts, flagged_local, bits, ci, attempt_log| Episode {
        end,
        attempts,
        flagged: flagged_local,
        bits,
        crash_interrupted: ci,
        attempt_log,
    };
    loop {
        if let Some(c) = crash_at {
            if t >= c {
                // Backoff (or pickup) straddled the outage: the request
                // was on this replica when it died.
                return done(EpisodeEnd::FailoverCrash { at: c }, attempts, flagged_local, bits, false, attempt_log);
            }
        }
        if job.attempts + attempts >= ATTEMPT_HARD_CAP {
            return done(EpisodeEnd::Miss { at: t }, attempts, flagged_local, bits, false, attempt_log);
        }
        let deadline_blocks = if deadline == Request::NO_DEADLINE {
            u64::MAX
        } else if t >= deadline {
            return done(EpisodeEnd::Miss { at: t }, attempts, flagged_local, bits, false, attempt_log);
        } else {
            (deadline - t) / per_block
        };
        if deadline_blocks == 0 {
            return done(EpisodeEnd::Miss { at: t }, attempts, flagged_local, bits, false, attempt_log);
        }
        let crash_blocks = crash_at.map(|c| (c - t) / per_block).unwrap_or(u64::MAX);
        if crash_blocks == 0 {
            // Not even one block fits before the outage.
            let c = crash_at.unwrap_or(t);
            return done(EpisodeEnd::FailoverCrash { at: c }, attempts, flagged_local, bits, false, attempt_log);
        }
        let budget = deadline_blocks.min(crash_blocks);
        // A quarantined storage region forces the degraded path: the
        // quantized plane is known-bad until repair re-quantizes it, and
        // the BF16 path reads the untouched f32 masters.
        let primary = !force_degraded
            && !r.shield_quarantined()
            && r.breaker.borrow().state() != BreakerState::Open
            && flagged_local < max_local;
        let attempt_start = t;
        let a = r
            .engine()
            .attempt(&job.freq.req, job.attempts + attempts, primary, budget);
        attempts += 1;
        bits += a.bits_flipped;
        t += a.blocks * per_block;
        if primary && a.completed {
            r.breaker.borrow_mut().on_primary_outcome(&a.health, t);
        }
        let flagged_attempt = a.completed && HealthWindow::is_unhealthy(&a.health);
        attempt_log.push(AttemptSpan {
            start_us: attempt_start,
            end_us: t,
            flagged: flagged_attempt,
            completed: a.completed,
        });
        if !a.completed {
            if crash_blocks < deadline_blocks {
                // The crash boundary, not the deadline, cut this pass.
                let c = crash_at.unwrap_or(t);
                return done(EpisodeEnd::FailoverCrash { at: c }, attempts, flagged_local, bits, true, attempt_log);
            }
            return done(EpisodeEnd::Miss { at: t }, attempts, flagged_local, bits, false, attempt_log);
        }
        if flagged_attempt {
            // Flagged: this output never leaves the fleet.
            flagged_local += 1;
            let tripped = r.breaker.borrow().state() == BreakerState::Open;
            if flagged_local >= max_local || tripped {
                if can_failover {
                    return done(
                        EpisodeEnd::FailoverCorrupt { at: t },
                        attempts,
                        flagged_local,
                        bits,
                        false,
                        attempt_log,
                    );
                }
                // Nowhere to go: finish here on the degraded path.
                force_degraded = true;
            }
            t += backoff.next_delay_us();
            continue;
        }
        return done(
            EpisodeEnd::Served {
                primary,
                label: a.label,
                at: t,
            },
            attempts,
            flagged_local,
            bits,
            false,
            attempt_log,
        );
    }
}

/// Mutable run accumulators, turned into the [`FleetReport`] at the end.
#[derive(Default)]
struct Acc {
    served_primary: u64,
    served_degraded: u64,
    shed_queue_full: u64,
    shed_quota: u64,
    shed_no_replica: u64,
    shed_overload: u64,
    brownout_sheds: u64,
    economy_served: u64,
    deadline_miss: u64,
    failovers: u64,
    crash_failovers: u64,
    hedges: u64,
    requeued_on_crash: u64,
    flagged_attempts: u64,
    bits_flipped: u64,
    latency: LogHist,
    queue_wait: LogHist,
    end_us: u64,
    dispatches: Vec<Dispatch>,
    responses: Vec<FleetResponse>,
    /// Quarantine/repair decisions, in virtual-time order.
    integrity_events: Vec<AdaptEvent>,
}

/// The adaptive control plane's sim-side state: the qt-adapt decision
/// machines plus the fleet-owned signals and actuator state they drive.
/// Everything here is derived from the virtual clock and sim-internal
/// counters — never from telemetry — so observation stays inert.
struct AdaptState {
    every_us: u64,
    codel: Option<CodelController>,
    ladder: Option<BrownoutLadder>,
    gray: Option<GrayDetector>,
    autoscale: Option<AutoscalePolicy>,
    /// Administratively out of rotation (reserve capacity, or drained).
    admin_down: Vec<bool>,
    /// Draining toward admin-down: no new routing, queue finishes.
    draining: Vec<bool>,
    /// Boots in flight (scale-up decided, cold start not yet elapsed).
    pending_up: usize,
    /// Per-replica boot-in-flight flag, so concurrent scale-ups pick
    /// distinct reserve replicas.
    booting: Vec<bool>,
    /// Per-replica completed-attempt durations in the current window,
    /// the gray detector's signal. Cleared every tick.
    window_lat: Vec<Vec<u64>>,
    /// Decision audit trail, in virtual-time order.
    events: Vec<AdaptEvent>,
    /// Boots completed.
    scale_ups: u64,
    /// Drains started.
    scale_downs: u64,
}

impl AdaptState {
    fn new(cfg: &FleetConfig, n: usize) -> Option<Self> {
        if cfg.adapt_every_us == 0 {
            return None;
        }
        if cfg.codel.is_none()
            && cfg.brownout.is_none()
            && cfg.gray.is_none()
            && cfg.autoscale.is_none()
        {
            return None;
        }
        let mut admin_down = vec![false; n];
        if let Some(a) = cfg.autoscale {
            // Hold everything above the floor in reserve; pressure has
            // to earn the rest of the band.
            for slot in admin_down.iter_mut().skip(a.min_replicas.max(1)) {
                *slot = true;
            }
        }
        Some(Self {
            every_us: cfg.adapt_every_us,
            codel: cfg.codel.map(CodelController::new),
            ladder: cfg.brownout.map(BrownoutLadder::new),
            gray: cfg.gray.map(|g| GrayDetector::new(g, n)),
            autoscale: cfg.autoscale.map(AutoscalePolicy::new),
            admin_down,
            draining: vec![false; n],
            pending_up: 0,
            booting: vec![false; n],
            window_lat: vec![Vec::new(); n],
            events: Vec::new(),
            scale_ups: 0,
            scale_downs: 0,
        })
    }
}

/// The fleet: replicas, router, tenant book, snapshot store, and the
/// event loop state. Build one with [`Fleet::new`], run it once with
/// [`Fleet::run`].
pub struct Fleet {
    cfg: FleetConfig,
    replicas: Vec<Replica>,
    queues: Vec<VecDeque<Job>>,
    busy: Vec<usize>,
    router: Router,
    book: TenantBook,
    store: Box<dyn SnapStore>,
    heap: BinaryHeap<Entry>,
    seq: u64,
    acc: Acc,
    /// Optional telemetry plane; `None` costs nothing.
    telemetry: Option<TelemetryHandle>,
    /// Per-replica cursor into the breaker's transition log, so new
    /// transitions stream to telemetry exactly once.
    breaker_seen: Vec<usize>,
    /// Adaptive control plane (None when `adapt_every_us` is 0 or no
    /// sub-policy is configured).
    adapt: Option<AdaptState>,
}

impl Fleet {
    /// Build a fleet serving `model` on every replica in `cfg`.
    ///
    /// `faults` pairs with the replica list by index; missing entries
    /// get [`NoFaults`] (healthy hardware). `store` is where replicas
    /// persist and recover their health snapshots.
    pub fn new(
        model: &Model,
        cfg: FleetConfig,
        faults: Vec<Box<dyn FaultSource + Send + Sync>>,
        store: Box<dyn SnapStore>,
    ) -> Self {
        let cfg = cfg.normalized();
        let mut faults = faults;
        while faults.len() < cfg.replicas.len() {
            faults.push(Box::new(NoFaults));
        }
        faults.truncate(cfg.replicas.len());
        let mut replicas = Vec::with_capacity(cfg.replicas.len());
        for (id, (spec, fault)) in cfg.replicas.iter().cloned().zip(faults).enumerate() {
            let mut r = Replica::new(id, model.clone(), spec, fault, cfg.retry_seed);
            if let Some(sc) = &cfg.shield {
                r = r.with_shield(sc);
            }
            replicas.push(r);
        }
        let n = replicas.len();
        let adapt = AdaptState::new(&cfg, n);
        Self {
            router: Router::new(cfg.policy),
            book: TenantBook::new(cfg.tenant_quota),
            queues: vec![VecDeque::new(); n],
            busy: vec![0; n],
            replicas,
            store,
            heap: BinaryHeap::new(),
            seq: 0,
            acc: Acc::default(),
            cfg,
            telemetry: None,
            breaker_seen: vec![0; n],
            adapt,
        }
    }

    /// Attach a telemetry sink; every fleet event (arrival, dispatch,
    /// attempt, outcome, breaker transition, crash, recovery, snapshot)
    /// is reported into it as the run executes. The sink should be
    /// built for the same replica count as the fleet.
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Stream breaker transitions recorded since the last drain into
    /// the telemetry sink (state gauge, transition counters, flight
    /// ring — an Open transition freezes the replica's black box).
    fn drain_breaker_transitions(&mut self) {
        let Some(tel) = self.telemetry.clone() else {
            return;
        };
        let mut sink = tel.borrow_mut();
        for r in &self.replicas {
            let seen = &mut self.breaker_seen[r.id];
            let b = r.breaker.borrow();
            let trs = b.transitions();
            for tr in &trs[*seen..] {
                sink.breaker(
                    tr.at_us,
                    r.id,
                    tr.from.name(),
                    tr.to.name(),
                    tr.to.code() as f64,
                    tr.unhealthy_rate,
                );
            }
            *seen = trs.len();
        }
    }

    fn push_ev(&mut self, at: u64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, ev });
    }

    /// Count one Open-cooldown notch on every up-but-Open replica: the
    /// fleet equivalent of qt-serve's request-denominated cooldown. An
    /// Open replica receives no traffic, so its recovery clock is the
    /// demand it *would have seen* — one notch per routing decision.
    fn tick_open_breakers(&mut self, now: u64) {
        for r in &mut self.replicas {
            if r.is_up(now) && r.breaker_state() == BreakerState::Open {
                r.breaker.get_mut().tick_open(now);
            }
        }
    }

    fn views(&self, now: u64) -> Vec<ReplicaView> {
        self.replicas
            .iter()
            .map(|r| ReplicaView {
                id: r.id,
                // Autoscale overlay: reserve and draining replicas are
                // routing-invisible, though a draining one still
                // finishes its queue (`kick` only checks the crash
                // schedule).
                up: r.is_up(now)
                    && self
                        .adapt
                        .as_ref()
                        .is_none_or(|a| !a.admin_down[r.id] && !a.draining[r.id]),
                breaker: r.breaker_state(),
                queued: self.queues[r.id].len(),
                in_service: self.busy[r.id],
                queue_cap: r.spec.queue_cap,
                full_pass_us: r.full_pass_us(),
            })
            .collect()
    }

    /// Which shed outcome honestly describes "the router found nothing":
    /// if some replica was healthy but full, admission capacity was the
    /// binding constraint; otherwise there was no healthy replica at all.
    fn shed_kind(views: &[ReplicaView], excluded: &[usize]) -> FleetOutcome {
        let healthy_but_full = views.iter().any(|v| {
            v.up && v.breaker != BreakerState::Open && !excluded.contains(&v.id) && !v.has_room()
        });
        if healthy_but_full {
            FleetOutcome::ShedQueueFull
        } else {
            FleetOutcome::ShedNoReplica
        }
    }

    fn respond(&mut self, job: &Job, outcome: FleetOutcome, replica: Option<usize>, label: Option<usize>, finish_us: u64) {
        match outcome {
            FleetOutcome::ServedPrimary => self.acc.served_primary += 1,
            FleetOutcome::ServedDegraded => self.acc.served_degraded += 1,
            FleetOutcome::ShedQueueFull => self.acc.shed_queue_full += 1,
            FleetOutcome::ShedQuota => self.acc.shed_quota += 1,
            FleetOutcome::ShedNoReplica => self.acc.shed_no_replica += 1,
            FleetOutcome::ShedOverload => self.acc.shed_overload += 1,
            FleetOutcome::DeadlineMiss => self.acc.deadline_miss += 1,
        }
        if job.economy && outcome.is_served() {
            self.acc.economy_served += 1;
        }
        let latency_us = if outcome.is_shed() {
            0
        } else {
            finish_us.saturating_sub(job.freq.req.arrival_us)
        };
        if !outcome.is_shed() {
            self.acc.latency.observe(latency_us as f32);
        }
        self.acc.end_us = self.acc.end_us.max(finish_us);
        if let Some(tel) = self.telemetry.clone() {
            tel.borrow_mut().outcome(
                finish_us,
                job.freq.req.id,
                replica,
                outcome.name(),
                outcome.is_served(),
                outcome.is_shed(),
                latency_us,
            );
        }
        self.acc.responses.push(FleetResponse {
            id: job.freq.req.id,
            user: job.freq.user,
            tenant: job.freq.tenant,
            outcome,
            label,
            replica,
            attempts: job.attempts,
            flagged: job.flagged,
            failovers: job.failovers,
            hedged: job.hedged,
            finish_us,
            latency_us,
        });
    }

    /// Route `job` at `now` (logging the decision) and either start
    /// service or enqueue it; on no eligible replica, shed. Returns
    /// `true` when the job found a replica.
    fn dispatch_or_shed(&mut self, job: Job, now: u64, cause: DispatchCause) -> bool {
        self.tick_open_breakers(now);
        let views = self.views(now);
        match self.router.pick(&views, &job.excluded) {
            Some(target) => {
                self.acc.dispatches.push(Dispatch {
                    req_id: job.freq.req.id,
                    at_us: now,
                    replica: target,
                    breaker: views[target].breaker,
                    cause,
                    excluded: job.excluded.clone(),
                });
                if let Some(tel) = self.telemetry.clone() {
                    tel.borrow_mut()
                        .dispatch(now, job.freq.req.id, target, cause.name());
                }
                self.place(target, job, now);
                true
            }
            None => {
                let kind = Self::shed_kind(&views, &job.excluded);
                self.book.release(job.freq.tenant);
                self.respond(&job, kind, None, None, now);
                false
            }
        }
    }

    /// Hand `job` to `target`: start service if a worker is idle and no
    /// one is ahead of it, else queue it (the router only returns
    /// replicas with room) and drain.
    fn place(&mut self, target: usize, job: Job, now: u64) {
        if self.busy[target] < self.replicas[target].spec.workers
            && self.queues[target].is_empty()
        {
            self.start_service(target, job, now);
        } else {
            self.queues[target].push_back(job);
            let depth = self.queues[target].len() as u64;
            let stats = &mut self.replicas[target].stats;
            stats.max_queue_depth = stats.max_queue_depth.max(depth);
            if let Some(tel) = self.telemetry.clone() {
                tel.borrow_mut().queue_depth(now, target, depth as usize);
            }
            self.kick(target, now);
        }
    }

    /// Start queued work on every idle worker of `r`. A hedge can move a
    /// popped job to another replica *without* occupying the local
    /// worker, so one freed worker may drain several queue entries —
    /// hence a loop, not a single pop.
    fn kick(&mut self, r: usize, now: u64) {
        while self.busy[r] < self.replicas[r].spec.workers && self.replicas[r].is_up(now) {
            match self.queues[r].pop_front() {
                Some(job) => self.start_service(r, job, now),
                None => break,
            }
        }
    }

    /// Begin (or hedge away) one service episode on `r` at `now`.
    fn start_service(&mut self, r: usize, mut job: Job, now: u64) {
        let deadline = job.freq.req.deadline_us;
        // Hedge: the remaining budget cannot fit a pass here, but fits on
        // another eligible replica — re-route instead of burning the
        // budget on a doomed attempt.
        if self.cfg.hedge
            && !job.economy
            && deadline != Request::NO_DEADLINE
            && now + self.replicas[r].full_pass_us() > deadline
        {
            let mut views = self.views(now);
            for v in views.iter_mut() {
                // A hedge target must actually fit the remaining budget;
                // everything else (and the doomed home) drops out. A
                // fitting target never re-hedges at this instant, so
                // hedges cannot ping-pong.
                if v.id == r || now + v.full_pass_us > deadline {
                    v.up = false;
                }
            }
            if let Some(target) = self.router.pick(&views, &job.excluded) {
                self.acc.hedges += 1;
                job.hedged = true;
                self.acc.dispatches.push(Dispatch {
                    req_id: job.freq.req.id,
                    at_us: now,
                    replica: target,
                    breaker: views[target].breaker,
                    cause: DispatchCause::Hedge,
                    excluded: job.excluded.clone(),
                });
                if let Some(tel) = self.telemetry.clone() {
                    tel.borrow_mut().hedge(now, job.freq.req.id, target);
                }
                self.place(target, job, now);
                return;
            }
        }
        // CoDel admission: judge the first pickup by its sojourn time.
        // A head drop sheds without occupying the worker, so the kick
        // loop keeps draining — exactly the standing-queue cure.
        if !job.waited {
            let sojourn = now.saturating_sub(job.freq.req.arrival_us);
            let dropped = self
                .adapt
                .as_mut()
                .and_then(|a| a.codel.as_mut())
                .map(|c| c.on_pickup(now, sojourn).is_drop())
                .unwrap_or(false);
            if dropped {
                self.book.release(job.freq.tenant);
                self.respond(&job, FleetOutcome::ShedOverload, None, None, now);
                return;
            }
        }
        self.busy[r] += 1;
        if !job.waited {
            job.waited = true;
            let wait = now.saturating_sub(job.freq.req.arrival_us);
            self.acc.queue_wait.observe(wait as f32);
            if let Some(tel) = self.telemetry.clone() {
                tel.borrow_mut().queue_wait(now, r, wait);
            }
        }
        // Read-path integrity check before the engine fetches weights:
        // single-bit rot is corrected transiently (the scrubber owns the
        // in-place fix); a double-bit detection quarantines *now*, so
        // this very episode already routes down the degraded path.
        if self.replicas[r].shield.is_some() {
            let out = self.replicas[r].shield.as_mut().unwrap().shield.verify_reads();
            if out.corrected > 0 {
                self.replicas[r].stats.read_corrected += out.corrected;
                if let Some(tel) = self.telemetry.clone() {
                    tel.borrow_mut().read_corrected(now, r, out.corrected);
                }
            }
            for region in out.quarantined {
                self.on_quarantine(r, region, now);
            }
        }
        let can_failover =
            self.replicas.len() > 1 && job.failovers < self.cfg.max_failovers && !job.economy;
        let ep = run_episode(&self.replicas[r], &job, now, can_failover, self.cfg.retry_seed);
        if let Some(tel) = self.telemetry.clone() {
            let mut sink = tel.borrow_mut();
            for a in &ep.attempt_log {
                sink.attempt(
                    job.freq.req.id,
                    r,
                    a.start_us,
                    a.end_us,
                    a.flagged,
                    a.completed,
                );
            }
        }
        if let Some(a) = self.adapt.as_mut() {
            if a.gray.is_some() {
                // Gray signal: completed-attempt durations (pure service
                // time, backoff excluded) in this detector window.
                for sp in ep.attempt_log.iter().filter(|sp| sp.completed) {
                    a.window_lat[r].push(sp.end_us - sp.start_us);
                }
            }
        }
        // Ejection enforcement at the only point a breaker can close:
        // clean half-open probes on a still-ejected replica must not
        // let routine traffic back in before the *detector* clears it.
        let still_ejected = self
            .adapt
            .as_ref()
            .and_then(|a| a.gray.as_ref())
            .is_some_and(|g| g.is_ejected(r));
        if still_ejected && self.replicas[r].breaker_state() == BreakerState::Closed {
            let at = ep.attempt_log.last().map_or(now, |sp| sp.end_us);
            self.replicas[r].breaker.get_mut().force_open(at);
        }
        job.attempts += ep.attempts;
        job.flagged += ep.flagged;
        self.acc.flagged_attempts += ep.flagged as u64;
        self.acc.bits_flipped += ep.bits;
        {
            let stats = &mut self.replicas[r].stats;
            stats.flagged_attempts += ep.flagged as u64;
            stats.bits_flipped += ep.bits;
            if ep.crash_interrupted {
                stats.crash_interrupted += 1;
            }
        }
        match ep.end {
            EpisodeEnd::Served { primary, label, at } => {
                {
                    let recovered = self.replicas[r].last_recovery_us.is_some();
                    let stats = &mut self.replicas[r].stats;
                    if primary {
                        stats.served_primary += 1;
                    } else {
                        stats.served_degraded += 1;
                    }
                    if recovered {
                        stats.served_after_recovery += 1;
                    }
                }
                let outcome = if primary {
                    FleetOutcome::ServedPrimary
                } else {
                    FleetOutcome::ServedDegraded
                };
                let tenant = job.freq.tenant;
                self.respond(&job, outcome, Some(r), label, at);
                self.push_ev(at, Ev::Done(r, Some(tenant)));
            }
            EpisodeEnd::Miss { at } => {
                let tenant = job.freq.tenant;
                self.respond(&job, FleetOutcome::DeadlineMiss, Some(r), None, at);
                self.push_ev(at, Ev::Done(r, Some(tenant)));
            }
            EpisodeEnd::FailoverCorrupt { at } => {
                job.excluded.push(r);
                job.failovers += 1;
                self.acc.failovers += 1;
                if let Some(tel) = self.telemetry.clone() {
                    tel.borrow_mut().failover(at, job.freq.req.id, r, "corrupt");
                }
                // The worker frees when the request leaves.
                self.push_ev(at, Ev::Done(r, None));
                self.push_ev(at, Ev::Failover(Box::new(job), DispatchCause::FailoverCorrupt));
            }
            EpisodeEnd::FailoverCrash { at } => {
                job.excluded.push(r);
                job.failovers += 1;
                self.acc.failovers += 1;
                self.acc.crash_failovers += 1;
                if let Some(tel) = self.telemetry.clone() {
                    tel.borrow_mut().failover(at, job.freq.req.id, r, "crash");
                }
                // No Done: this worker dies with the replica; the crash
                // lifecycle event resets the whole replica's busy count.
                self.push_ev(at, Ev::Failover(Box::new(job), DispatchCause::FailoverCrash));
            }
        }
    }

    /// One adaptive-control evaluation at `now`: brownout ladder, gray
    /// detection, autoscale — all from sim-internal signals only.
    fn adapt_tick(&mut self, now: u64) {
        // Take/put-back so the adapt state and the fleet can be mutated
        // together without fighting the borrow checker.
        let Some(mut a) = self.adapt.take() else {
            return;
        };
        // Queue pressure over the replicas currently taking traffic.
        // With nothing routable, pressure saturates: that *is* overload.
        let mut cap = 0usize;
        let mut used = 0usize;
        for r in &self.replicas {
            if r.is_up(now) && !a.admin_down[r.id] && !a.draining[r.id] {
                cap += r.spec.queue_cap;
                used += self.queues[r.id].len();
            }
        }
        let pressure = if cap == 0 {
            1.0
        } else {
            used as f64 / cap as f64
        };

        // Disjoint borrows: the ladder is read while events are pushed.
        let (ladder, events) = (&mut a.ladder, &mut a.events);
        if let Some(l) = ladder.as_mut() {
            let seen = l.transitions().len();
            l.observe(now, pressure);
            for tr in &l.transitions()[seen..] {
                let kind = if tr.to > tr.from {
                    "brownout_up"
                } else {
                    "brownout_down"
                };
                events.push(AdaptEvent {
                    at_us: now,
                    kind,
                    replica: None,
                    detail: tr.to.severity() as f64,
                });
                if let Some(tel) = self.telemetry.clone() {
                    tel.borrow_mut()
                        .brownout(now, tr.from.name(), tr.to.name(), tr.to.severity());
                }
            }
        }

        if let Some(g) = a.gray.as_mut() {
            let min = g.config().min_samples;
            let p99s: Vec<Option<f64>> = a
                .window_lat
                .iter()
                .map(|w| {
                    if w.len() < min {
                        return None;
                    }
                    let mut s = w.clone();
                    s.sort_unstable();
                    // Exact sorted p99 (nearest-rank): bit-stable, unlike
                    // a binade histogram quantile.
                    Some(s[(s.len() - 1) * 99 / 100] as f64)
                })
                .collect();
            for ev in g.observe_window(now, &p99s) {
                match ev {
                    GrayEvent::Eject { replica, ratio, .. } => {
                        self.replicas[replica].breaker.get_mut().force_open(now);
                        self.replicas[replica].stats.gray_ejections += 1;
                        a.events.push(AdaptEvent {
                            at_us: now,
                            kind: "gray_eject",
                            replica: Some(replica),
                            detail: ratio,
                        });
                        if let Some(tel) = self.telemetry.clone() {
                            tel.borrow_mut().gray_eject(now, replica, ratio);
                        }
                    }
                    GrayEvent::Rejoin { replica, .. } => {
                        a.events.push(AdaptEvent {
                            at_us: now,
                            kind: "gray_rejoin",
                            replica: Some(replica),
                            detail: 0.0,
                        });
                        if let Some(tel) = self.telemetry.clone() {
                            tel.borrow_mut().gray_rejoin(now, replica);
                        }
                    }
                }
            }
            // Enforcement: a still-ejected replica that probed its way
            // back to Closed goes straight back Open — it only truly
            // rejoins once the *detector* clears it (healthy windows),
            // not once the breaker's probe quota is satisfied.
            for r in &mut self.replicas {
                if g.is_ejected(r.id) && r.is_up(now) && r.breaker_state() == BreakerState::Closed {
                    r.breaker.get_mut().force_open(now);
                }
            }
            for w in a.window_lat.iter_mut() {
                w.clear();
            }
        }

        if let Some(p) = a.autoscale.as_mut() {
            let active = (0..self.replicas.len())
                .filter(|&r| !a.admin_down[r] && !a.draining[r])
                .count();
            match p.observe(active, a.pending_up, pressure) {
                ScaleDecision::Up => {
                    // Boot the lowest-id reserve replica; the cold start
                    // is a virtual delay, then Ev::Scale lands it on the
                    // snapshot-recovery rejoin path.
                    if let Some(r) = (0..self.replicas.len())
                        .find(|&r| a.admin_down[r] && !a.booting[r])
                    {
                        a.booting[r] = true;
                        a.pending_up += 1;
                        a.events.push(AdaptEvent {
                            at_us: now,
                            kind: "scale_up_start",
                            replica: Some(r),
                            detail: (active + a.pending_up) as f64,
                        });
                        self.push_ev(now + p.config().cold_start_us, Ev::Scale(r));
                        if let Some(tel) = self.telemetry.clone() {
                            tel.borrow_mut().scale(now, r, "scale_up_start", active + a.pending_up);
                        }
                    }
                }
                ScaleDecision::Down => {
                    // Drain the highest-id active replica: stop routing
                    // to it, let its queue finish.
                    if let Some(r) = (0..self.replicas.len())
                        .rev()
                        .find(|&r| !a.admin_down[r] && !a.draining[r])
                    {
                        a.draining[r] = true;
                        a.scale_downs += 1;
                        a.events.push(AdaptEvent {
                            at_us: now,
                            kind: "scale_down_start",
                            replica: Some(r),
                            detail: (active - 1) as f64,
                        });
                        if let Some(tel) = self.telemetry.clone() {
                            tel.borrow_mut().scale(now, r, "scale_down_start", active - 1);
                        }
                        if self.busy[r] == 0 && self.queues[r].is_empty() {
                            a.draining[r] = false;
                            a.admin_down[r] = true;
                            a.events.push(AdaptEvent {
                                at_us: now,
                                kind: "scale_down_done",
                                replica: Some(r),
                                detail: (active - 1) as f64,
                            });
                            if let Some(tel) = self.telemetry.clone() {
                                tel.borrow_mut().scale(now, r, "scale_down_done", active - 1);
                            }
                        }
                    }
                }
                ScaleDecision::Hold => {}
            }
        }
        self.adapt = Some(a);
    }

    /// Record a newly quarantined region on `r`: counters, the breaker
    /// signal (uncorrectable storage is fed to the breaker as the
    /// non-finite read it would eventually become), telemetry, the audit
    /// trail, and the scheduled repair completion.
    fn on_quarantine(&mut self, r: usize, region: usize, now: u64) {
        let Some(sc) = self.cfg.shield else {
            return;
        };
        let (elements, words) = {
            let s = self.replicas[r].shield.as_ref().expect("quarantine without shield");
            let reg = &s.shield.regions()[region];
            (reg.codes_len() as u64, reg.words() as u64)
        };
        {
            let stats = &mut self.replicas[r].stats;
            stats.scrub_uncorrectable += 1;
            stats.quarantines += 1;
        }
        self.replicas[r]
            .breaker
            .get_mut()
            .on_primary_outcome(&integrity_health(elements, 1), now);
        self.acc.integrity_events.push(AdaptEvent {
            at_us: now,
            kind: "quarantine",
            replica: Some(r),
            detail: region as f64,
        });
        if let Some(tel) = self.telemetry.clone() {
            tel.borrow_mut().quarantine(now, r, region);
        }
        self.push_ev(now + words * sc.repair_us_per_word, Ev::Repair(r, region));
    }

    /// One background scrub window on `r`: decode under the bandwidth
    /// budget (correcting single-bit rot in place), quarantine double-bit
    /// detections, then — when another window follows — land the next
    /// window's storage faults, so every injected fault gets exactly one
    /// later pass to be caught by.
    fn scrub_tick(&mut self, r: usize, now: u64, inject_next: bool) {
        let Some(sc) = self.cfg.shield else {
            return;
        };
        // A down replica's storage is moot: the reboot reloads the plane
        // from the f32 masters anyway (see Replica::recover).
        if !self.replicas[r].is_up(now) || self.replicas[r].shield.is_none() {
            return;
        }
        let out = {
            let state = self.replicas[r].shield.as_mut().unwrap();
            state.shield.scrub(sc.scrub_budget_words)
        };
        let corrected = out.corrected.len() as u64;
        self.replicas[r].stats.scrub_corrected += corrected;
        if corrected > 0 || !out.quarantined.is_empty() {
            if let Some(tel) = self.telemetry.clone() {
                tel.borrow_mut()
                    .scrub(now, r, corrected, out.quarantined.len() as u64);
            }
        }
        for region in out.quarantined {
            self.on_quarantine(r, region, now);
        }
        if inject_next {
            let state = self.replicas[r].shield.as_mut().unwrap();
            let total_bits = state.shield.total_bits();
            let window = state.window;
            state.window += 1;
            let flips = state.faults.window_flips(r, window, total_bits);
            for &bit in &flips {
                state.shield.inject_global_bit(bit);
            }
            self.replicas[r].stats.storage_flips += flips.len() as u64;
        }
    }

    /// A quarantined region's repair completes: re-quantize the pristine
    /// f32 masters and swap the plane back in, bit-exact. A reboot in
    /// the interim already reloaded everything, so a stale repair
    /// no-ops; a repair landing while the replica is down is moot for
    /// the same reason.
    fn finish_repair(&mut self, r: usize, region: usize, now: u64) {
        let Some(sc) = self.cfg.shield else {
            return;
        };
        if !self.replicas[r].is_up(now) {
            return;
        }
        let quarantined = self.replicas[r].shield.as_ref().is_some_and(|s| {
            s.shield
                .regions()
                .get(region)
                .is_some_and(|g| g.is_quarantined())
        });
        if !quarantined {
            return;
        }
        let format = self.replicas[r].spec.format;
        let Some(codes) = pristine_codes_for_region(self.replicas[r].engine(), format, region)
        else {
            return;
        };
        let words = {
            let rep = &mut self.replicas[r];
            let state = rep.shield.as_mut().unwrap();
            state.shield.repair_region(region, &codes);
            rep.stats.repairs += 1;
            state.shield.regions()[region].words() as u64
        };
        self.acc.integrity_events.push(AdaptEvent {
            at_us: now,
            kind: "repair",
            replica: Some(r),
            detail: region as f64,
        });
        if let Some(tel) = self.telemetry.clone() {
            tel.borrow_mut()
                .repair(now, r, region, words * sc.repair_us_per_word);
        }
    }

    /// Run the fleet over `requests` (sorted by arrival). Consumes the
    /// fleet: one run per construction, so no state leaks between runs.
    pub fn run(mut self, requests: &[FleetRequest], trace: Option<&TraceHandle>) -> FleetReport {
        let span = trace.map(|t| t.borrow_mut().begin("fleet.sim", "fleet"));
        let last_arrival = requests.last().map(|r| r.req.arrival_us).unwrap_or(0);
        for fr in requests {
            self.push_ev(fr.req.arrival_us, Ev::Arrival(Box::new(fr.clone())));
        }
        for id in 0..self.replicas.len() {
            for w in self.replicas[id].spec.crashes.windows().to_vec() {
                self.push_ev(w.down_at_us, Ev::Lifecycle(id, LifecycleEvent::Crash));
                if w.up_at_us < u64::MAX {
                    self.push_ev(w.up_at_us, Ev::Lifecycle(id, LifecycleEvent::Recover));
                }
            }
        }
        if self.cfg.snapshot_every_us > 0 {
            self.push_ev(self.cfg.snapshot_every_us, Ev::SnapshotTick);
        }
        if let Some(every) = self.adapt.as_ref().map(|a| a.every_us) {
            self.push_ev(every, Ev::AdaptTick);
        }
        if let Some(sc) = self.cfg.shield {
            for r in 0..self.replicas.len() {
                self.push_ev(sc.scrub_every_us, Ev::ScrubTick(r));
            }
        }

        while let Some(Entry { at: now, ev, .. }) = self.heap.pop() {
            self.acc.end_us = self.acc.end_us.max(now);
            match ev {
                Ev::Arrival(freq) => {
                    if let Some(tel) = self.telemetry.clone() {
                        tel.borrow_mut().arrival(now, freq.req.id);
                    }
                    // Brownout gate, before the quota book: a rung that
                    // sheds this tier rejects at the door (no quota
                    // churn); a rung that degrades it marks the job for
                    // economy service.
                    let level = self
                        .adapt
                        .as_ref()
                        .and_then(|a| a.ladder.as_ref())
                        .map(|l| l.level())
                        .unwrap_or(Brownout::Normal);
                    let tier = PriorityTier::of_user(freq.user);
                    if level.sheds(tier) {
                        self.acc.brownout_sheds += 1;
                        let job = Job::new(*freq);
                        self.respond(&job, FleetOutcome::ShedOverload, None, None, now);
                        self.drain_breaker_transitions();
                        continue;
                    }
                    if !self.book.admit(freq.tenant) {
                        let job = Job::new(*freq);
                        self.respond(&job, FleetOutcome::ShedQuota, None, None, now);
                        self.drain_breaker_transitions();
                        continue;
                    }
                    let mut job = Job::new(*freq);
                    job.economy = level.economy(tier);
                    self.dispatch_or_shed(job, now, DispatchCause::Fresh);
                }
                Ev::Done(r, tenant) => {
                    if let Some(t) = tenant {
                        self.book.release(t);
                    }
                    self.busy[r] = self.busy[r].saturating_sub(1);
                    // At the exact crash instant the replica is already
                    // down; `kick` notices and the lifecycle event drains
                    // the queue instead.
                    self.kick(r, now);
                    // A draining replica whose last work just finished
                    // completes its scale-down.
                    if self.busy[r] == 0 && self.queues[r].is_empty() {
                        let done = self.adapt.as_mut().and_then(|a| {
                            if !a.draining[r] {
                                return None;
                            }
                            a.draining[r] = false;
                            a.admin_down[r] = true;
                            let active = a
                                .admin_down
                                .iter()
                                .zip(&a.draining)
                                .filter(|(&d, &dr)| !d && !dr)
                                .count();
                            a.events.push(AdaptEvent {
                                at_us: now,
                                kind: "scale_down_done",
                                replica: Some(r),
                                detail: active as f64,
                            });
                            Some(active)
                        });
                        if let Some(active) = done {
                            if let Some(tel) = self.telemetry.clone() {
                                tel.borrow_mut().scale(now, r, "scale_down_done", active);
                            }
                        }
                    }
                }
                Ev::Failover(job, cause) => {
                    self.dispatch_or_shed(*job, now, cause);
                }
                Ev::Lifecycle(r, LifecycleEvent::Crash) => {
                    self.replicas[r].stats.crashes += 1;
                    self.busy[r] = 0;
                    if let Some(tel) = self.telemetry.clone() {
                        tel.borrow_mut().crash(now, r);
                    }
                    let drained: Vec<Job> = self.queues[r].drain(..).collect();
                    if let Some(t) = trace {
                        t.borrow_mut().instant(
                            "fleet.crash",
                            "fleet",
                            vec![
                                ("replica".to_string(), r as f64),
                                ("at_us".to_string(), now as f64),
                                ("requeued".to_string(), drained.len() as f64),
                            ],
                        );
                    }
                    for mut job in drained {
                        job.excluded.push(r);
                        if self.dispatch_or_shed(job, now, DispatchCause::Requeue) {
                            self.acc.requeued_on_crash += 1;
                        }
                    }
                }
                Ev::Lifecycle(r, LifecycleEvent::Recover) => {
                    let loaded = self.store.load(r);
                    let corrupt = matches!(
                        &loaded,
                        Err(qt_serve::SnapshotError::Corrupt(_))
                    );
                    self.replicas[r].recover(loaded, now);
                    // recover() swaps in a fresh breaker with an empty
                    // transition log; restart the telemetry cursor so the
                    // new log streams from its beginning.
                    self.breaker_seen[r] = 0;
                    if let Some(tel) = self.telemetry.clone() {
                        tel.borrow_mut().recover(now, r, corrupt);
                    }
                    if let Some(t) = trace {
                        let mut s = t.borrow_mut();
                        s.instant(
                            "fleet.recover",
                            "fleet",
                            vec![
                                ("replica".to_string(), r as f64),
                                ("at_us".to_string(), now as f64),
                                ("snapshot_corrupt".to_string(), corrupt as u8 as f64),
                            ],
                        );
                        if corrupt {
                            s.metrics_mut().counter_add("fleet.snapshot_corrupt", &[], 1);
                        }
                    }
                }
                Ev::Scale(r) => {
                    // Cold start elapsed: the booted replica joins via
                    // the exact crash-recovery path — newest snapshot
                    // loaded, breaker forced Open, traffic re-earned
                    // through half-open probes.
                    let loaded = self.store.load(r);
                    let corrupt = matches!(&loaded, Err(qt_serve::SnapshotError::Corrupt(_)));
                    self.replicas[r].recover(loaded, now);
                    // Fresh breaker, fresh telemetry cursor (see the
                    // Lifecycle::Recover arm).
                    self.breaker_seen[r] = 0;
                    if let Some(tel) = self.telemetry.clone() {
                        tel.borrow_mut().recover(now, r, corrupt);
                    }
                    let active = self.adapt.as_mut().map(|a| {
                        a.pending_up = a.pending_up.saturating_sub(1);
                        a.booting[r] = false;
                        a.admin_down[r] = false;
                        a.scale_ups += 1;
                        let active = a
                            .admin_down
                            .iter()
                            .zip(&a.draining)
                            .filter(|(&d, &dr)| !d && !dr)
                            .count();
                        a.events.push(AdaptEvent {
                            at_us: now,
                            kind: "scale_up_done",
                            replica: Some(r),
                            detail: active as f64,
                        });
                        active
                    });
                    if let Some(active) = active {
                        if let Some(tel) = self.telemetry.clone() {
                            tel.borrow_mut().scale(now, r, "scale_up_done", active);
                        }
                    }
                }
                Ev::AdaptTick => {
                    self.adapt_tick(now);
                    let every = self.adapt.as_ref().map(|a| a.every_us).unwrap_or(0);
                    if every > 0 && now < last_arrival {
                        self.push_ev(now + every, Ev::AdaptTick);
                    }
                }
                Ev::Repair(r, region) => {
                    self.finish_repair(r, region, now);
                }
                Ev::ScrubTick(r) => {
                    let every = self.cfg.shield.map(|s| s.scrub_every_us).unwrap_or(0);
                    // The final window scrubs without injecting, so every
                    // injected fault sees at least one later pass.
                    let more = every > 0 && now < last_arrival;
                    self.scrub_tick(r, now, more);
                    if more {
                        self.push_ev(now + every, Ev::ScrubTick(r));
                    }
                }
                Ev::SnapshotTick => {
                    for id in 0..self.replicas.len() {
                        if self.replicas[id].is_up(now) {
                            let snap = self.replicas[id].snapshot();
                            if self.store.save(id, &snap).is_ok() {
                                self.replicas[id].stats.snapshot_saves += 1;
                                if let Some(tel) = self.telemetry.clone() {
                                    tel.borrow_mut().snapshot_save(now, id);
                                }
                            }
                        }
                    }
                    let next = now + self.cfg.snapshot_every_us;
                    if now < last_arrival {
                        self.push_ev(next, Ev::SnapshotTick);
                    }
                }
            }
            self.drain_breaker_transitions();
        }

        let mut acc = std::mem::take(&mut self.acc);
        acc.responses.sort_by_key(|r| r.id);
        let adapt = self.adapt.take();
        let (codel_drops, gray_ejections, scale_ups, scale_downs, brownout_peak, adapt_events) =
            match adapt {
                Some(a) => (
                    a.codel.as_ref().map(|c| c.drops()).unwrap_or(0),
                    a.gray.as_ref().map(|g| g.ejections()).unwrap_or(0),
                    a.scale_ups,
                    a.scale_downs,
                    a.ladder
                        .as_ref()
                        .map(|l| l.peak())
                        .unwrap_or(Brownout::Normal)
                        .name()
                        .to_string(),
                    a.events,
                ),
                None => (0, 0, 0, 0, Brownout::Normal.name().to_string(), Vec::new()),
            };
        let replicas: Vec<ReplicaReport> = self
            .replicas
            .iter()
            .map(|r| ReplicaReport {
                id: r.id,
                format: r.spec.format.name().to_string(),
                per_block_us: r.spec.per_block_us,
                stats: r.stats,
                breaker_trips: r.breaker.borrow().trips(),
                final_breaker: r.breaker_state(),
            })
            .collect();
        let sum = |f: fn(&crate::replica::ReplicaStats) -> u64| {
            self.replicas.iter().map(|r| f(&r.stats)).sum::<u64>()
        };
        let report = FleetReport {
            policy: self.cfg.policy.name().to_string(),
            storage_flips: sum(|s| s.storage_flips),
            scrub_corrected: sum(|s| s.scrub_corrected),
            read_corrected: sum(|s| s.read_corrected),
            scrub_uncorrectable: sum(|s| s.scrub_uncorrectable),
            quarantines: sum(|s| s.quarantines),
            repairs: sum(|s| s.repairs),
            integrity_events: acc.integrity_events,
            offered: requests.len() as u64,
            served_primary: acc.served_primary,
            served_degraded: acc.served_degraded,
            shed_queue_full: acc.shed_queue_full,
            shed_quota: acc.shed_quota,
            shed_no_replica: acc.shed_no_replica,
            shed_overload: acc.shed_overload,
            deadline_miss: acc.deadline_miss,
            failovers: acc.failovers,
            crash_failovers: acc.crash_failovers,
            hedges: acc.hedges,
            requeued_on_crash: acc.requeued_on_crash,
            flagged_attempts: acc.flagged_attempts,
            bits_flipped: acc.bits_flipped,
            tenant_denials: self.book.denials().collect(),
            latency: acc.latency,
            queue_wait: acc.queue_wait,
            replicas,
            end_us: acc.end_us,
            dispatches: acc.dispatches,
            responses: acc.responses,
            codel_drops,
            brownout_sheds: acc.brownout_sheds,
            economy_served: acc.economy_served,
            gray_ejections,
            scale_ups,
            scale_downs,
            brownout_peak,
            adapt_events,
        };

        if let Some(t) = trace {
            let mut s = t.borrow_mut();
            // Per-replica breaker history: one instant per transition, so
            // the trace timeline and the report agree by construction.
            for r in &self.replicas {
                for tr in r.breaker.borrow().transitions() {
                    s.instant(
                        "fleet.breaker",
                        "fleet",
                        vec![
                            ("replica".to_string(), r.id as f64),
                            ("at_us".to_string(), tr.at_us as f64),
                            ("to".to_string(), tr.to.code() as f64),
                            ("unhealthy_rate".to_string(), tr.unhealthy_rate),
                        ],
                    );
                }
            }
            let m = s.metrics_mut();
            for r in &self.replicas {
                let rid = r.id.to_string();
                for tr in r.breaker.borrow().transitions() {
                    m.counter_add(
                        "fleet.breaker_transitions",
                        &[("replica", &rid), ("to", tr.to.name())],
                        1,
                    );
                }
                if r.stats.snapshot_corrupt > 0 {
                    m.counter_add(
                        "fleet.snapshot_corrupt",
                        &[("replica", &rid)],
                        r.stats.snapshot_corrupt,
                    );
                }
            }
            m.counter_add("fleet.offered", &[], report.offered);
            m.counter_add("fleet.served_primary", &[], report.served_primary);
            m.counter_add("fleet.served_degraded", &[], report.served_degraded);
            m.counter_add("fleet.shed_queue_full", &[], report.shed_queue_full);
            m.counter_add("fleet.shed_quota", &[], report.shed_quota);
            m.counter_add("fleet.shed_no_replica", &[], report.shed_no_replica);
            m.counter_add("fleet.shed_overload", &[], report.shed_overload);
            m.counter_add("fleet.deadline_miss", &[], report.deadline_miss);
            m.counter_add("fleet.failovers", &[], report.failovers);
            m.counter_add("fleet.hedges", &[], report.hedges);
            m.counter_add("fleet.requeued_on_crash", &[], report.requeued_on_crash);
            m.counter_add("fleet.codel_drops", &[], report.codel_drops);
            m.counter_add("fleet.brownout_sheds", &[], report.brownout_sheds);
            m.counter_add("fleet.gray_ejections", &[], report.gray_ejections);
            m.counter_add("fleet.scale_ups", &[], report.scale_ups);
            m.counter_add("fleet.scale_downs", &[], report.scale_downs);
            m.counter_add("fleet.storage_flips", &[], report.storage_flips);
            m.counter_add("fleet.scrub_corrected", &[], report.scrub_corrected);
            m.counter_add("fleet.read_corrected", &[], report.read_corrected);
            m.counter_add("fleet.scrub_uncorrectable", &[], report.scrub_uncorrectable);
            m.counter_add("fleet.quarantines", &[], report.quarantines);
            m.counter_add("fleet.repairs", &[], report.repairs);
            for r in &report.responses {
                if !r.outcome.is_shed() {
                    m.observe("fleet.latency_us", &[], r.latency_us as f32);
                }
            }
            if let Some(span) = span {
                s.end(span);
            }
        }
        report
    }
}

/// Convenience one-shot: build a [`Fleet`] and run it.
pub fn run_fleet(
    model: &Model,
    cfg: &FleetConfig,
    requests: &[FleetRequest],
    faults: Vec<Box<dyn FaultSource + Send + Sync>>,
    store: Box<dyn SnapStore>,
    trace: Option<&TraceHandle>,
) -> FleetReport {
    Fleet::new(model, cfg.clone(), faults, store).run(requests, trace)
}

/// [`run_fleet`] with a telemetry plane attached: identical event loop
/// and report, plus live time-series, SLO burn-rate evaluation, request
/// span trees, and flight recorders accumulating in `telemetry`.
#[allow(clippy::too_many_arguments)]
pub fn run_fleet_observed(
    model: &Model,
    cfg: &FleetConfig,
    requests: &[FleetRequest],
    faults: Vec<Box<dyn FaultSource + Send + Sync>>,
    store: Box<dyn SnapStore>,
    trace: Option<&TraceHandle>,
    telemetry: Option<&TelemetryHandle>,
) -> FleetReport {
    let mut fleet = Fleet::new(model, cfg.clone(), faults, store);
    if let Some(tel) = telemetry {
        fleet = fleet.with_telemetry(tel.clone());
    }
    fleet.run(requests, trace)
}

/// Replay audit: re-execute the *final* attempt of every served-primary
/// response against a fresh copy of its replica's engine and fault
/// environment, and count responses whose replayed pass is unhealthy.
///
/// Fault draws are keyed by `(request id, attempt index)` alone, so the
/// replay reproduces exactly the weights the serving attempt saw. A
/// served-primary response whose replay trips the health gate would have
/// been a silently corrupt answer — the count must be zero, and the CI
/// smoke job asserts exactly that.
pub fn audit_unflagged_corruption(
    model: &Model,
    cfg: &FleetConfig,
    requests: &[FleetRequest],
    faults: Vec<Box<dyn FaultSource + Send + Sync>>,
    report: &FleetReport,
) -> u64 {
    let cfg = cfg.clone().normalized();
    let mut faults = faults;
    while faults.len() < cfg.replicas.len() {
        faults.push(Box::new(NoFaults));
    }
    faults.truncate(cfg.replicas.len());
    let replicas: Vec<Replica> = cfg
        .replicas
        .iter()
        .cloned()
        .zip(faults)
        .enumerate()
        .map(|(id, (spec, fault))| Replica::new(id, model.clone(), spec, fault, cfg.retry_seed))
        .collect();
    let by_id: std::collections::BTreeMap<u64, &FleetRequest> =
        requests.iter().map(|r| (r.req.id, r)).collect();
    let mut bad = 0u64;
    for resp in &report.responses {
        if resp.outcome != FleetOutcome::ServedPrimary || resp.attempts == 0 {
            continue;
        }
        let (Some(r), Some(req)) = (resp.replica, by_id.get(&resp.id)) else {
            continue;
        };
        let a = replicas[r]
            .engine()
            .attempt(&req.req, resp.attempts - 1, true, u64::MAX);
        if !a.completed || HealthWindow::is_unhealthy(&a.health) {
            bad += 1;
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplicaSpec;
    use crate::load::{ArrivalShape, FleetLoadSpec};
    use crate::replica::MemSnapStore;
    use crate::router::RouterPolicy;
    use qt_quant::ElemFormat;
    use qt_robust::{BerFaultSource, CodeFormat, CrashSchedule};
    use qt_transformer::{TaskHead, TransformerConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_model() -> Model {
        let mut rng = StdRng::seed_from_u64(11);
        Model::new(
            TransformerConfig::mobilebert_tiny_sim(),
            TaskHead::Classify(2),
            &mut rng,
        )
    }

    fn light_load(model: &Model, n_passes_apart: u64, count: usize) -> Vec<FleetRequest> {
        let pass = model.blocks_per_forward() * ReplicaSpec::BASE_BLOCK_US;
        FleetLoadSpec {
            rps: 1e6 / (n_passes_apart * pass) as f64,
            duration_us: count as u64 * n_passes_apart * pass,
            shape: ArrivalShape::Constant,
            deadline_us: 0,
            ..FleetLoadSpec::default()
        }
        .requests(model.cfg.vocab)
    }

    #[test]
    fn healthy_fleet_serves_everything_primary() {
        let model = tiny_model();
        let cfg = FleetConfig::default();
        let reqs = light_load(&model, 3, 20);
        let report = run_fleet(
            &model,
            &cfg,
            &reqs,
            Vec::new(),
            Box::new(MemSnapStore::new()),
            None,
        );
        assert!(report.reconciles(), "{report:?}");
        assert_eq!(report.served_primary, report.offered);
        assert_eq!(report.failovers, 0);
        assert_eq!(report.hedges, 0);
        // Every dispatch in the audit log respected the breaker gate.
        for d in &report.dispatches {
            assert_ne!(d.breaker, BreakerState::Open);
        }
    }

    #[test]
    fn crash_mid_run_fails_over_and_replica_rejoins() {
        let model = tiny_model();
        let pass = model.blocks_per_forward() * ReplicaSpec::BASE_BLOCK_US;
        let mut cfg = FleetConfig {
            replicas: vec![ReplicaSpec::new(ElemFormat::P8E1); 2],
            snapshot_every_us: 5 * pass,
            ..FleetConfig::default()
        };
        // Replica 1 dies mid-run, long enough for in-flight + queued work
        // to fail over, and comes back while load is still arriving.
        cfg.replicas[1] = ReplicaSpec::new(ElemFormat::P8E1)
            .with_crashes(CrashSchedule::single(10 * pass + pass / 2, 20 * pass));
        // Dense enough that both replicas hold work at the crash instant.
        let reqs = FleetLoadSpec {
            rps: 2.2 * 1e6 / pass as f64,
            duration_us: 120 * pass,
            shape: ArrivalShape::Constant,
            deadline_us: 0,
            ..FleetLoadSpec::default()
        }
        .requests(model.cfg.vocab);
        let report = run_fleet(
            &model,
            &cfg,
            &reqs,
            Vec::new(),
            Box::new(MemSnapStore::new()),
            None,
        );
        assert!(report.reconciles(), "{report:?}");
        assert!(report.crash_failovers >= 1, "in-flight work failed over");
        let r1 = &report.replicas[1];
        assert_eq!(r1.stats.crashes, 1);
        assert_eq!(r1.stats.recoveries, 1);
        assert!(r1.stats.snapshot_saves > 0, "snapshots written before death");
        assert_eq!(r1.stats.snapshot_resumes, 1, "recovered from its snapshot");
        assert!(
            r1.stats.served_after_recovery > 0,
            "replica re-earned traffic after rejoining: {r1:?}"
        );
        // The failed-over requests never went back to the dead replica.
        for d in &report.dispatches {
            if d.cause.is_failover() || d.cause == DispatchCause::Requeue {
                assert!(!d.excluded.contains(&d.replica));
            }
        }
    }

    #[test]
    fn corrupting_replica_fails_over_to_healthy_one() {
        let model = tiny_model();
        let cfg = FleetConfig {
            replicas: vec![ReplicaSpec::new(ElemFormat::P8E1); 2],
            ..FleetConfig::default()
        };
        // Replica 0: essentially every primary read flagged. Replica 1:
        // healthy.
        let codec = CodeFormat::new(ElemFormat::P8E1).unwrap();
        let faults: Vec<Box<dyn FaultSource + Send + Sync>> =
            vec![Box::new(BerFaultSource::new(5, codec, 0.05)), Box::new(NoFaults)];
        let reqs = light_load(&model, 4, 16);
        let report = run_fleet(
            &model,
            &cfg,
            &reqs,
            faults,
            Box::new(MemSnapStore::new()),
            None,
        );
        assert!(report.reconciles(), "{report:?}");
        assert!(report.failovers >= 1, "corrupt replica pushed work away");
        assert_eq!(
            report.served_primary + report.served_degraded,
            report.offered,
            "everything still served: {report:?}"
        );
        // A served response with flagged attempts must have ended on a
        // clean path — the flagged output itself never leaves the fleet.
        for r in &report.responses {
            if r.outcome.is_served() {
                assert!(r.label.is_some());
            }
        }
    }

    #[test]
    fn tenant_quota_sheds_only_the_bursting_tenant() {
        let model = tiny_model();
        let pass = model.blocks_per_forward() * ReplicaSpec::BASE_BLOCK_US;
        let cfg = FleetConfig {
            replicas: vec![ReplicaSpec::new(ElemFormat::P8E1)],
            tenants: 2,
            tenant_quota: 2,
            ..FleetConfig::default()
        };
        // Hand-built burst: tenant 0 fires 6 requests at t=0, tenant 1
        // sends one comfortably later.
        let mut reqs: Vec<FleetRequest> = (0..6)
            .map(|i| FleetRequest {
                req: Request::new(i, vec![1, 2, 3, 4]),
                user: 2 * i,
                tenant: 0,
            })
            .collect();
        reqs.push(FleetRequest {
            req: Request::new(6, vec![1, 2, 3, 4]).with_arrival(40 * pass),
            user: 1,
            tenant: 1,
        });
        let report = run_fleet(
            &model,
            &cfg,
            &reqs,
            Vec::new(),
            Box::new(MemSnapStore::new()),
            None,
        );
        assert!(report.reconciles(), "{report:?}");
        assert_eq!(report.shed_quota, 4, "6 offered, 2 outstanding allowed");
        assert_eq!(report.tenant_denials, vec![(0, 4)]);
        let t1: Vec<_> = report.responses.iter().filter(|r| r.tenant == 1).collect();
        assert_eq!(t1.len(), 1);
        assert!(t1[0].outcome.is_served(), "tenant 1 unaffected");
    }

    #[test]
    fn overload_climbs_ladder_boots_reserve_and_protects_paid() {
        let model = tiny_model();
        let pass = model.blocks_per_forward() * ReplicaSpec::BASE_BLOCK_US;
        let cfg = FleetConfig {
            replicas: vec![ReplicaSpec::new(ElemFormat::P8E1); 3],
            adapt_every_us: 2 * pass,
            brownout: Some(qt_adapt::BrownoutConfig::default()),
            autoscale: Some(qt_adapt::AutoscaleConfig {
                min_replicas: 1,
                max_replicas: 3,
                up_consecutive: 1,
                cold_start_us: pass,
                ..qt_adapt::AutoscaleConfig::default()
            }),
            ..FleetConfig::default()
        };
        // 4× the single active replica's capacity, sustained.
        let reqs = FleetLoadSpec {
            rps: 4.0 * 1e6 / pass as f64,
            duration_us: 60 * pass,
            shape: ArrivalShape::Constant,
            deadline_us: 0,
            ..FleetLoadSpec::default()
        }
        .requests(model.cfg.vocab);
        let report = run_fleet(
            &model,
            &cfg,
            &reqs,
            Vec::new(),
            Box::new(MemSnapStore::new()),
            None,
        );
        assert!(report.reconciles(), "{report:?}");
        assert!(report.brownout_sheds > 0, "ladder must shed: {report:?}");
        assert_ne!(report.brownout_peak, "normal");
        assert!(report.scale_ups >= 1, "pressure must boot the reserve");
        assert!(
            report.economy_served > 0,
            "degrade rungs serve on the economy path: {report:?}"
        );
        // The ladder walks one rung at a time, from Normal.
        let mut sev = 0i64;
        for e in report
            .adapt_events
            .iter()
            .filter(|e| e.kind.starts_with("brownout"))
        {
            let d = e.detail as i64;
            assert_eq!((d - sev).abs(), 1, "single-step walk: {:?}", report.adapt_events);
            sev = d;
        }
        // Brownout never rejects paid traffic (users 0,1 mod 4).
        for r in &report.responses {
            if r.outcome == FleetOutcome::ShedOverload {
                assert!(r.user % 4 >= 2, "paid user {} overload-shed", r.user);
            }
        }
        // Booted replicas joined through the recovery path: forced Open,
        // then re-earned traffic via half-open probes.
        for e in report.adapt_events.iter().filter(|e| e.kind == "scale_up_done") {
            let r = e.replica.unwrap();
            assert!(report.replicas[r].stats.recoveries >= 1);
        }
    }

    #[test]
    fn codel_sheds_standing_queue_from_the_head() {
        let model = tiny_model();
        let pass = model.blocks_per_forward() * ReplicaSpec::BASE_BLOCK_US;
        let cfg = FleetConfig {
            replicas: vec![ReplicaSpec::new(ElemFormat::P8E1)],
            adapt_every_us: pass,
            codel: Some(qt_adapt::CodelConfig {
                target_us: pass,
                interval_us: 2 * pass,
            }),
            ..FleetConfig::default()
        };
        let reqs = FleetLoadSpec {
            rps: 3.0 * 1e6 / pass as f64,
            duration_us: 40 * pass,
            shape: ArrivalShape::Constant,
            deadline_us: 0,
            ..FleetLoadSpec::default()
        }
        .requests(model.cfg.vocab);
        let report = run_fleet(
            &model,
            &cfg,
            &reqs,
            Vec::new(),
            Box::new(MemSnapStore::new()),
            None,
        );
        assert!(report.reconciles(), "{report:?}");
        assert!(report.codel_drops > 0, "standing queue must shed: {report:?}");
        // Without a brownout ladder every overload shed is a CoDel drop.
        assert_eq!(report.shed_overload, report.codel_drops);
        // Dropped requests were picked up, never served, zero attempts.
        for r in &report.responses {
            if r.outcome == FleetOutcome::ShedOverload {
                assert_eq!(r.attempts, 0);
            }
        }
    }

    #[test]
    fn autoscale_boots_on_pressure_and_drains_when_calm() {
        let model = tiny_model();
        let pass = model.blocks_per_forward() * ReplicaSpec::BASE_BLOCK_US;
        let cfg = FleetConfig {
            replicas: vec![ReplicaSpec::new(ElemFormat::P8E1); 2],
            adapt_every_us: 2 * pass,
            autoscale: Some(qt_adapt::AutoscaleConfig {
                min_replicas: 1,
                max_replicas: 2,
                up_consecutive: 1,
                down_consecutive: 2,
                cold_start_us: pass,
                ..qt_adapt::AutoscaleConfig::default()
            }),
            ..FleetConfig::default()
        };
        // A hot burst up front, then a long sparse tail: pressure boots
        // the reserve, calm drains it again.
        let reqs = FleetLoadSpec {
            rps: 0.4 * 1e6 / pass as f64,
            duration_us: 100 * pass,
            shape: ArrivalShape::Bursty {
                burst_len_us: 15 * pass,
                burst_mult: 10.0,
            },
            period_us: 200 * pass,
            deadline_us: 0,
            ..FleetLoadSpec::default()
        }
        .requests(model.cfg.vocab);
        let report = run_fleet(
            &model,
            &cfg,
            &reqs,
            Vec::new(),
            Box::new(MemSnapStore::new()),
            None,
        );
        assert!(report.reconciles(), "{report:?}");
        assert!(report.scale_ups >= 1, "burst must boot: {:?}", report.adapt_events);
        assert!(report.scale_downs >= 1, "calm must drain: {:?}", report.adapt_events);
        let kinds: Vec<&str> = report.adapt_events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"scale_up_done"));
        assert!(kinds.contains(&"scale_down_done"));
        // No dispatch ever lands on the drained replica while it is out
        // of rotation (between scale_down_done and any later boot).
        let down_at = report
            .adapt_events
            .iter()
            .find(|e| e.kind == "scale_down_done")
            .unwrap()
            .at_us;
        let rebooted_at = report
            .adapt_events
            .iter()
            .find(|e| e.kind == "scale_up_done" && e.at_us > down_at)
            .map(|e| e.at_us)
            .unwrap_or(u64::MAX);
        let drained = report
            .adapt_events
            .iter()
            .find(|e| e.kind == "scale_down_done")
            .unwrap()
            .replica
            .unwrap();
        for d in &report.dispatches {
            if d.replica == drained {
                assert!(
                    d.at_us <= down_at || d.at_us >= rebooted_at,
                    "dispatch to drained replica at {}",
                    d.at_us
                );
            }
        }
    }

    #[test]
    fn observed_run_agrees_with_report() {
        use qt_telemetry::{Scope, TelemetryConfig, TelemetrySink};
        let model = tiny_model();
        let pass = model.blocks_per_forward() * ReplicaSpec::BASE_BLOCK_US;
        let mut cfg = FleetConfig {
            replicas: vec![ReplicaSpec::new(ElemFormat::P8E1); 2],
            snapshot_every_us: 5 * pass,
            ..FleetConfig::default()
        };
        cfg.replicas[1] = ReplicaSpec::new(ElemFormat::P8E1)
            .with_crashes(CrashSchedule::single(10 * pass + pass / 2, 20 * pass));
        let reqs = FleetLoadSpec {
            rps: 2.2 * 1e6 / pass as f64,
            duration_us: 80 * pass,
            shape: ArrivalShape::Constant,
            deadline_us: 0,
            ..FleetLoadSpec::default()
        }
        .requests(model.cfg.vocab);
        let baseline = run_fleet(
            &model,
            &cfg,
            &reqs,
            Vec::new(),
            Box::new(MemSnapStore::new()),
            None,
        );
        let tel = TelemetrySink::handle(
            TelemetryConfig {
                interval_us: pass,
                seed: cfg.retry_seed,
                ..TelemetryConfig::default()
            },
            cfg.replicas.len(),
        );
        let observed = run_fleet_observed(
            &model,
            &cfg,
            &reqs,
            Vec::new(),
            Box::new(MemSnapStore::new()),
            None,
            Some(&tel),
        );
        // Observation changes nothing about the run itself.
        assert_eq!(baseline, observed);
        let sink = tel.borrow();
        // Counters reconcile with the report.
        assert_eq!(
            sink.series_get(Scope::Fleet, "arrivals")
                .unwrap()
                .counter_total(),
            observed.offered
        );
        assert_eq!(
            sink.series_get(Scope::Fleet, "responses")
                .unwrap()
                .counter_total(),
            observed.offered
        );
        assert_eq!(
            sink.series_get(Scope::Fleet, "served")
                .unwrap()
                .counter_total(),
            observed.served_primary + observed.served_degraded
        );
        assert_eq!(
            sink.series_get(Scope::Fleet, "crashes")
                .unwrap()
                .counter_total(),
            1
        );
        // The crash froze replica 1's flight ring.
        assert!(sink
            .dumps()
            .iter()
            .any(|d| d.replica == 1 && d.reason == "crash"));
        // Every request has a closed, structurally complete span tree,
        // and attempt spans reconcile with per-response attempt counts.
        assert_eq!(sink.book().len(), observed.offered as usize);
        assert_eq!(sink.book().complete_count(), sink.book().len());
        for resp in &observed.responses {
            let t = sink.book().get(resp.id).unwrap();
            assert_eq!(
                t.spans_named("attempt").count() as u32,
                resp.attempts,
                "req {}: {t:?}",
                resp.id
            );
            assert_eq!(t.outcome.as_deref(), Some(resp.outcome.name()));
        }
    }

    #[test]
    fn shielded_fleet_scrubs_storage_rot_without_losing_service() {
        use crate::config::ShieldConfig;
        let model = tiny_model();
        let pass = model.blocks_per_forward() * ReplicaSpec::BASE_BLOCK_US;
        let cfg = FleetConfig {
            replicas: vec![ReplicaSpec::new(ElemFormat::P8E1); 2],
            shield: Some(ShieldConfig {
                scrub_every_us: 2 * pass,
                scrub_budget_words: usize::MAX,
                storage_ber: 2e-5,
                storage_seed: 77,
                repair_us_per_word: 1,
            }),
            ..FleetConfig::default()
        };
        let reqs = light_load(&model, 2, 30);
        let mk = || {
            run_fleet(
                &model,
                &cfg,
                &reqs,
                Vec::new(),
                Box::new(MemSnapStore::new()),
                None,
            )
        };
        let a = mk();
        assert!(a.reconciles(), "{a:?}");
        assert!(a.storage_flips > 0, "fault model must land rot");
        assert!(a.scrub_corrected > 0, "scrubber must correct in place");
        // Every uncorrectable detection quarantined exactly one region.
        assert_eq!(a.quarantines, a.scrub_uncorrectable);
        // Storage rot never cost a response: everything still served.
        assert_eq!(a.served_primary + a.served_degraded, a.offered);
        // Deterministic replay, down to the JSON bytes.
        let b = mk();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a.to_json()).unwrap(),
            serde_json::to_string(&b.to_json()).unwrap()
        );
    }

    #[test]
    fn double_bit_rot_quarantines_degrades_then_repairs() {
        use crate::config::ShieldConfig;
        let model = tiny_model();
        let pass = model.blocks_per_forward() * ReplicaSpec::BASE_BLOCK_US;
        let cfg = FleetConfig {
            // One replica, no failover target: quarantine must force the
            // local degraded path, not a re-route.
            replicas: vec![ReplicaSpec::new(ElemFormat::P8E1)],
            shield: Some(ShieldConfig {
                scrub_every_us: 4 * pass,
                scrub_budget_words: usize::MAX,
                storage_ber: 0.0,
                storage_seed: 1,
                repair_us_per_word: 1,
            }),
            ..FleetConfig::default()
        };
        let reqs = light_load(&model, 3, 12);
        let mut fleet = Fleet::new(
            &model,
            cfg.clone(),
            Vec::new(),
            Box::new(MemSnapStore::new()),
        );
        // Scripted double-bit rot in region 0 before any service: the
        // first read-path verification must quarantine it.
        let st = fleet.replicas[0].shield.as_mut().unwrap();
        st.shield.inject(0, 1, 7);
        st.shield.inject(0, 1, 52);
        let report = fleet.run(&reqs, None);
        assert!(report.reconciles(), "{report:?}");
        assert_eq!(report.quarantines, 1, "{report:?}");
        assert_eq!(report.repairs, 1, "repair restored the region");
        assert!(
            report.served_degraded >= 1,
            "quarantine forced degraded service: {report:?}"
        );
        assert_eq!(report.served_primary + report.served_degraded, report.offered);
        // Audit trail: the quarantine precedes its repair, same region.
        let kinds: Vec<&str> = report.integrity_events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["quarantine", "repair"]);
        assert_eq!(report.integrity_events[0].detail, 0.0);
        assert_eq!(report.integrity_events[1].detail, 0.0);
        assert!(
            report.integrity_events[0].at_us <= report.integrity_events[1].at_us
        );
        // After the repair lands, later responses are primary again.
        let last = report.responses.iter().max_by_key(|r| r.finish_us).unwrap();
        assert_eq!(last.outcome, FleetOutcome::ServedPrimary, "{report:?}");
    }

    #[test]
    fn fleet_run_replays_byte_identically() {
        let model = tiny_model();
        let pass = model.blocks_per_forward() * ReplicaSpec::BASE_BLOCK_US;
        let mut cfg = FleetConfig {
            replicas: vec![
                ReplicaSpec::new(ElemFormat::P8E1),
                ReplicaSpec::new(ElemFormat::E4M3),
                ReplicaSpec::new(ElemFormat::Bf16),
            ],
            policy: RouterPolicy::HealthAware,
            tenant_quota: 8,
            snapshot_every_us: 7 * pass,
            ..FleetConfig::default()
        };
        cfg.replicas[0] = cfg.replicas[0]
            .clone()
            .with_crashes(CrashSchedule::single(9 * pass, 11 * pass));
        let reqs = FleetLoadSpec {
            rps: 2.0 * 1e6 / pass as f64,
            duration_us: 60 * pass,
            shape: ArrivalShape::Bursty {
                burst_len_us: 5 * pass,
                burst_mult: 3.0,
            },
            period_us: 20 * pass,
            deadline_us: 8 * pass,
            ..FleetLoadSpec::default()
        }
        .requests(model.cfg.vocab);
        let mk = || {
            let codec = CodeFormat::new(ElemFormat::P8E1).unwrap();
            let faults: Vec<Box<dyn FaultSource + Send + Sync>> =
                vec![Box::new(BerFaultSource::new(9, codec, 2e-3))];
            run_fleet(
                &model,
                &cfg,
                &reqs,
                faults,
                Box::new(MemSnapStore::new()),
                None,
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a.to_json()).unwrap(),
            serde_json::to_string(&b.to_json()).unwrap()
        );
        assert!(a.reconciles(), "{a:?}");
    }
}
