//! qt-fleet: a fault-tolerant multi-replica serving fleet over the
//! qt-serve engine.
//!
//! One replica with a circuit breaker degrades gracefully; a *fleet* of
//! them can do better — route around a corrupting replica entirely,
//! absorb a crash by failing in-flight work over to healthy peers, and
//! let the crashed node rejoin by re-earning traffic through half-open
//! probing. This crate is that layer:
//!
//! - **Replicas** ([`replica`]) — each with its own element format,
//!   service speed, admission queue, circuit breaker, fault environment,
//!   and crash/restart schedule ([`qt_robust::CrashSchedule`]). Health
//!   state persists through a [`SnapStore`] so a rebooted replica
//!   resumes its trip history — and a corrupt snapshot is surfaced,
//!   never silently replaced by a fresh boot.
//! - **Routing** ([`router`]) — pluggable policies (round-robin,
//!   least-loaded, health-aware with an explicit probe quota) over a
//!   shared eligibility gate: a replica that is down, breaker-Open,
//!   full, or that already failed this request is never selected.
//! - **Failover** ([`sim`]) — a request that exhausts its flagged-
//!   attempt retries on one replica, or whose replica crashes under it,
//!   moves to a different healthy replica; deadline-doomed pickups hedge
//!   to a replica that still fits the budget.
//! - **Tenancy** ([`tenant`]) — per-tenant outstanding-request quotas so
//!   one tenant's burst sheds its own overflow.
//! - **Load** ([`load`]) — synthetic diurnal/bursty open-loop arrivals
//!   over a million-user population.
//! - **Adaptation** ([`sim`] + [`qt_adapt`]) — an optional control
//!   plane ticking on the virtual clock: CoDel head-drop admission, a
//!   priority-tiered brownout ladder, windowed-p99 gray-failure
//!   ejection (with probe-gated rejoin), and queue-pressure autoscaling
//!   that boots reserves through the snapshot-recovery path. Every
//!   decision lands in the [`report::AdaptEvent`] audit trail.
//! - **Memory integrity** ([`config::ShieldConfig`] + [`qt_shield`]) —
//!   an optional SEC-DED parity plane over each replica's resident
//!   quantized codes: a background scrubber on the virtual clock
//!   corrects single-bit storage rot in place, double-bit detections
//!   quarantine the region (forcing the degraded path) and schedule a
//!   bit-exact repair from the f32 master weights, and every event flows
//!   into the report, trace counters, and telemetry.
//!
//! Everything runs in a single-threaded discrete-event simulation on a
//! virtual microsecond clock; the forward passes inside run on the real
//! qt-par kernels, which are bitwise deterministic at any `QT_THREADS` —
//! so a [`FleetReport`] (and its JSON) is byte-identical across thread
//! counts and replays.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod load;
pub mod replica;
pub mod report;
pub mod router;
pub mod sim;
pub mod tenant;

pub use config::{FleetConfig, GraySlowdown, ReplicaSpec, ShieldConfig};
pub use load::{ArrivalShape, FleetLoadSpec, FleetRequest};
pub use replica::{DirSnapStore, MemSnapStore, Replica, ReplicaStats, ShieldState, SnapStore};
pub use report::{
    AdaptEvent, Dispatch, DispatchCause, FleetOutcome, FleetReport, FleetResponse, ReplicaReport,
};
pub use router::{ReplicaView, Router, RouterPolicy};
pub use sim::{audit_unflagged_corruption, run_fleet, run_fleet_observed, Fleet};
pub use tenant::TenantBook;
