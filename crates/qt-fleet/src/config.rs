//! Fleet configuration: per-replica shape and fleet-wide policy.

use crate::router::RouterPolicy;
use qt_adapt::{AutoscaleConfig, BrownoutConfig, CodelConfig, GrayConfig};
use qt_quant::ElemFormat;
use qt_robust::CrashSchedule;
use qt_serve::{BreakerPolicy, RetryPolicy};

/// A scripted gray failure: from `from_us` on, every service attempt on
/// this replica runs `factor`× slow — while the replica keeps passing
/// every health gate (numerics fine, breaker closed, crash schedule
/// clean). Routing still uses the replica's *nominal* speed, exactly the
/// blind spot that makes gray failures dangerous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraySlowdown {
    /// Virtual onset time, µs.
    pub from_us: u64,
    /// Service-time multiplier (≥ 1).
    pub factor: u64,
}

/// Everything that makes one replica what it is: its storage format,
/// its speed, its local admission shape, and its failure schedule.
///
/// Heterogeneous fleets are the point — a BF16 replica is slower (wider
/// fetches) but immune to 8-bit code corruption, a posit8 replica is
/// fast but lives in the fault environment. Per-replica format is a
/// real capacity knob, and the router gets to exploit it.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    /// Element format of this replica's primary quantized path.
    pub format: ElemFormat,
    /// Virtual service cost of one transformer block on this replica,
    /// µs. Defaults scale with the format's storage width.
    pub per_block_us: u64,
    /// Simulated service workers on this replica.
    pub workers: usize,
    /// Local admission-queue capacity.
    pub queue_cap: usize,
    /// Retry limits for flagged attempts *on this replica* (exhausting
    /// them triggers fleet-level failover, not local degradation).
    pub retry: RetryPolicy,
    /// Circuit-breaker policy over this replica's primary-path health.
    pub breaker: BreakerPolicy,
    /// Crash/restart schedule (empty = never crashes).
    pub crashes: CrashSchedule,
    /// Scripted gray failure (None = always nominal speed).
    pub gray_slowdown: Option<GraySlowdown>,
}

impl ReplicaSpec {
    /// Base per-block cost of an 8-bit replica, µs.
    pub const BASE_BLOCK_US: u64 = 1_000;

    /// Spec for `format` with the default shape: one worker, an 8-deep
    /// queue, per-block cost scaled by storage width (a BF16 replica
    /// moves twice the bytes of a posit8 one).
    pub fn new(format: ElemFormat) -> Self {
        Self {
            format,
            per_block_us: Self::BASE_BLOCK_US * format.bits() as u64 / 8,
            workers: 1,
            queue_cap: 8,
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            crashes: CrashSchedule::none(),
            gray_slowdown: None,
        }
    }

    /// Attach a crash schedule.
    pub fn with_crashes(mut self, crashes: CrashSchedule) -> Self {
        self.crashes = crashes;
        self
    }

    /// Attach a scripted gray failure.
    pub fn with_gray_slowdown(mut self, from_us: u64, factor: u64) -> Self {
        self.gray_slowdown = Some(GraySlowdown {
            from_us,
            factor: factor.max(1),
        });
        self
    }

    /// Clamp structural knobs to their minimums.
    pub fn normalized(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.queue_cap = self.queue_cap.max(1);
        self.per_block_us = self.per_block_us.max(1);
        self
    }
}

/// Memory-integrity protection over each replica's resident quantized
/// code storage (DESIGN.md §16): a qt-shield SEC-DED parity plane, a
/// background scrubber on the virtual clock, and quarantine → repair
/// from the pristine f32 master weights when a double-bit detection
/// proves a region unrecoverable in place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShieldConfig {
    /// Scrub pass period per replica, virtual µs.
    pub scrub_every_us: u64,
    /// Scrubber bandwidth budget: ECC words decoded per pass.
    pub scrub_budget_words: usize,
    /// Persistent storage bit-error rate, flips per protected bit per
    /// scrub window (0 = pristine hardware, the control leg).
    pub storage_ber: f64,
    /// Seed for the per-replica, per-window storage fault streams.
    pub storage_seed: u64,
    /// Virtual repair cost per ECC word of the quarantined region, µs —
    /// the time to re-quantize that parameter from the f32 masters.
    pub repair_us_per_word: u64,
}

impl Default for ShieldConfig {
    fn default() -> Self {
        Self {
            scrub_every_us: 10_000,
            scrub_budget_words: usize::MAX,
            storage_ber: 0.0,
            storage_seed: 0x5_1e1d,
            repair_us_per_word: 1,
        }
    }
}

impl ShieldConfig {
    /// Clamp knobs to their minimums.
    pub fn normalized(mut self) -> Self {
        self.scrub_every_us = self.scrub_every_us.max(1);
        self.scrub_budget_words = self.scrub_budget_words.max(1);
        self.storage_ber = self.storage_ber.max(0.0);
        self
    }
}

/// Fleet-wide policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The replicas, in id order.
    pub replicas: Vec<ReplicaSpec>,
    /// Routing policy.
    pub policy: RouterPolicy,
    /// Tenant count (requests carry `user % tenants`).
    pub tenants: u32,
    /// Max outstanding (queued + in service) requests per tenant across
    /// the fleet; 0 = unlimited. The admission-side fairness knob: one
    /// tenant's burst sheds as [`crate::FleetOutcome::ShedQuota`]
    /// instead of starving everyone else's queue slots.
    pub tenant_quota: u64,
    /// Max fleet-level failovers per request before it is forced onto
    /// the degraded path of wherever it last ran.
    pub max_failovers: u32,
    /// Hedge deadline-risky dispatches: when a worker picks up a request
    /// whose remaining budget cannot fit a full pass *here* but fits on
    /// another eligible replica, re-route it there instead of burning
    /// the budget on a doomed attempt.
    pub hedge: bool,
    /// Write each up replica's health snapshot every this many virtual
    /// µs (0 = never). Crash recovery reloads the last written snapshot
    /// — state since it is lost, exactly like a real reboot.
    pub snapshot_every_us: u64,
    /// Master seed for retry-backoff jitter streams.
    pub retry_seed: u64,
    /// Adaptive control plane evaluation period, virtual µs (0 = the
    /// whole plane is off regardless of the knobs below).
    pub adapt_every_us: u64,
    /// CoDel admission control over queue sojourn time.
    pub codel: Option<CodelConfig>,
    /// Priority-tiered brownout ladder.
    pub brownout: Option<BrownoutConfig>,
    /// Gray-failure (latency outlier) ejection.
    pub gray: Option<GrayConfig>,
    /// Queue-driven autoscaling. When set, only
    /// [`AutoscaleConfig::min_replicas`] replicas start active; the rest
    /// are held in reserve until pressure boots them.
    pub autoscale: Option<AutoscaleConfig>,
    /// ECC protection + background scrubbing of each replica's quantized
    /// code storage (None = unprotected storage, the historical shape).
    pub shield: Option<ShieldConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            replicas: vec![ReplicaSpec::new(ElemFormat::P8E1); 2],
            policy: RouterPolicy::HealthAware,
            tenants: 4,
            tenant_quota: 0,
            max_failovers: 3,
            hedge: true,
            snapshot_every_us: 100_000,
            retry_seed: 0xf1ee7,
            adapt_every_us: 0,
            codel: None,
            brownout: None,
            gray: None,
            autoscale: None,
            shield: None,
        }
    }
}

impl FleetConfig {
    /// Normalize every replica and clamp fleet knobs.
    pub fn normalized(mut self) -> Self {
        if self.replicas.is_empty() {
            self.replicas.push(ReplicaSpec::new(ElemFormat::P8E1));
        }
        self.replicas = self.replicas.into_iter().map(ReplicaSpec::normalized).collect();
        self.tenants = self.tenants.max(1);
        self.shield = self.shield.map(ShieldConfig::normalized);
        self
    }
}
