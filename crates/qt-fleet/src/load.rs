//! Synthetic fleet load: open-loop arrivals with diurnal and bursty
//! shapes over a large simulated user population.
//!
//! Everything is generated from seeds on the virtual clock — floats
//! included, IEEE arithmetic is deterministic — so the same spec always
//! produces the same request stream, byte for byte, at any `QT_THREADS`.

use qt_robust::cell_seed;
use qt_serve::Request;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// How the arrival rate varies over the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalShape {
    /// Flat rate.
    Constant,
    /// Triangle-wave "day": the rate ramps linearly from
    /// `rps × trough_ratio` at the period edges to
    /// `rps × (2 − trough_ratio)` mid-period and back. The triangle
    /// averages to `rps` exactly, so mean load is shape-independent.
    Diurnal {
        /// Trough rate as a fraction of the mean, in `[0, 1]`.
        trough_ratio: f64,
    },
    /// Baseline rate with periodic bursts: for the first
    /// `burst_len_us` of every period the rate is `rps × burst_mult`.
    Bursty {
        /// Burst duration at the start of each period, µs.
        burst_len_us: u64,
        /// Rate multiplier during a burst.
        burst_mult: f64,
    },
}

impl ArrivalShape {
    /// Stable lowercase name (JSON, CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalShape::Constant => "constant",
            ArrivalShape::Diurnal { .. } => "diurnal",
            ArrivalShape::Bursty { .. } => "bursty",
        }
    }
}

/// One request as the fleet sees it: the serving request plus who sent
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetRequest {
    /// The underlying serving request (id, tokens, arrival, deadline).
    pub req: Request,
    /// Simulated user id, drawn from the whole population.
    pub user: u64,
    /// Tenant (`user % tenants`) — the quota-accounting key.
    pub tenant: u32,
}

/// Open-loop fleet load specification.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetLoadSpec {
    /// Mean offered requests per second (virtual time).
    pub rps: f64,
    /// Virtual duration arrivals are generated for, µs.
    pub duration_us: u64,
    /// Rate shape over the run.
    pub shape: ArrivalShape,
    /// Shape period (one simulated "day" or burst cycle), µs.
    pub period_us: u64,
    /// Simulated user population; each request draws a uniform user id
    /// in `[0, users)`.
    pub users: u64,
    /// Tenant count (requests carry `user % tenants`).
    pub tenants: u32,
    /// Per-request deadline budget after arrival, µs (0 = none).
    pub deadline_us: u64,
    /// Tokens per request.
    pub seq: usize,
    /// Seed for user draws and token streams.
    pub seed: u64,
}

impl Default for FleetLoadSpec {
    fn default() -> Self {
        Self {
            rps: 100.0,
            duration_us: 1_000_000,
            shape: ArrivalShape::Diurnal { trough_ratio: 0.3 },
            period_us: 500_000,
            users: 1_000_000,
            tenants: 4,
            deadline_us: 0,
            seq: 8,
            seed: 0xf1ee7,
        }
    }
}

impl FleetLoadSpec {
    /// Instantaneous arrival rate at virtual time `at_us`, requests/s.
    pub fn rate_at(&self, at_us: u64) -> f64 {
        let base = self.rps.max(1e-6);
        let period = self.period_us.max(1);
        let phase = (at_us % period) as f64 / period as f64;
        match self.shape {
            ArrivalShape::Constant => base,
            ArrivalShape::Diurnal { trough_ratio } => {
                let trough = trough_ratio.clamp(0.0, 1.0);
                // Triangle in [0, 1]: 0 at the period edges, 1 mid-period.
                let tri = 1.0 - (2.0 * phase - 1.0).abs();
                base * (trough + 2.0 * (1.0 - trough) * tri)
            }
            ArrivalShape::Bursty {
                burst_len_us,
                burst_mult,
            } => {
                if at_us % period < burst_len_us.min(period) {
                    base * burst_mult.max(0.0)
                } else {
                    base
                }
            }
        }
    }

    /// Generate the arrival stream: ids in arrival order, inter-arrival
    /// gaps tracking the instantaneous rate, users drawn uniformly from
    /// the population, token streams per request.
    pub fn requests(&self, vocab: usize) -> Vec<FleetRequest> {
        let tenants = self.tenants.max(1);
        let users = self.users.max(1);
        let mut out = Vec::new();
        let mut id = 0u64;
        let mut at = 0u64;
        while at < self.duration_us.max(1) {
            let mut rng = StdRng::seed_from_u64(cell_seed(self.seed, id as usize, 1, 0));
            let tokens = (0..self.seq.max(1))
                .map(|_| rng.gen_range(0..vocab.max(2)))
                .collect();
            let user = rng.gen_range(0..users);
            let mut req = Request::new(id, tokens).with_arrival(at);
            if self.deadline_us > 0 {
                req = req.with_deadline(self.deadline_us);
            }
            out.push(FleetRequest {
                req,
                user,
                tenant: (user % tenants as u64) as u32,
            });
            id += 1;
            at += ((1e6 / self.rate_at(at)) as u64).max(1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_ordered() {
        let spec = FleetLoadSpec::default();
        let a = spec.requests(96);
        let b = spec.requests(96);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].req.arrival_us <= w[1].req.arrival_us);
            assert_eq!(w[0].req.id + 1, w[1].req.id);
        }
        for r in &a {
            assert!(r.user < spec.users);
            assert_eq!(r.tenant, (r.user % spec.tenants as u64) as u32);
        }
    }

    #[test]
    fn diurnal_peak_is_denser_than_trough() {
        let spec = FleetLoadSpec {
            shape: ArrivalShape::Diurnal { trough_ratio: 0.2 },
            period_us: 1_000_000,
            duration_us: 1_000_000,
            rps: 200.0,
            ..FleetLoadSpec::default()
        };
        let reqs = spec.requests(96);
        // Quarter around the trough (period edge) vs around the peak.
        let trough = reqs
            .iter()
            .filter(|r| r.req.arrival_us < 250_000)
            .count();
        let peak = reqs
            .iter()
            .filter(|r| (375_000..625_000).contains(&r.req.arrival_us))
            .count();
        assert!(
            peak > trough * 2,
            "mid-period should be much denser: peak={peak} trough={trough}"
        );
    }

    #[test]
    fn bursty_bursts_are_denser_than_baseline() {
        let spec = FleetLoadSpec {
            shape: ArrivalShape::Bursty {
                burst_len_us: 100_000,
                burst_mult: 5.0,
            },
            period_us: 500_000,
            duration_us: 1_000_000,
            rps: 100.0,
            ..FleetLoadSpec::default()
        };
        let reqs = spec.requests(96);
        let in_burst = reqs
            .iter()
            .filter(|r| r.req.arrival_us % 500_000 < 100_000)
            .count();
        let outside = reqs.len() - in_burst;
        // Burst covers 1/5 of the time at 5× rate → about half the load.
        assert!(in_burst > outside / 2, "in={in_burst} out={outside}");
    }

    #[test]
    fn mean_rate_is_roughly_shape_independent() {
        let base = FleetLoadSpec {
            rps: 500.0,
            duration_us: 2_000_000,
            period_us: 250_000,
            ..FleetLoadSpec::default()
        };
        let flat = FleetLoadSpec {
            shape: ArrivalShape::Constant,
            ..base.clone()
        }
        .requests(96)
        .len() as f64;
        let diurnal = FleetLoadSpec {
            shape: ArrivalShape::Diurnal { trough_ratio: 0.3 },
            ..base
        }
        .requests(96)
        .len() as f64;
        // Harmonic-vs-arithmetic mean effects keep this approximate.
        assert!(
            (diurnal / flat - 1.0).abs() < 0.35,
            "flat={flat} diurnal={diurnal}"
        );
    }
}
