//! One replica: a qt-serve [`Engine`] plus its breaker, lifecycle
//! schedule, counters, and durable snapshot store.

use crate::config::{ReplicaSpec, ShieldConfig};
use qt_robust::{cell_seed, FaultSource, StorageFaultModel};
use qt_serve::{
    BreakerState, CircuitBreaker, Engine, HealthSnapshot, ServeConfig, SnapshotError,
};
use qt_shield::Shield;
use qt_transformer::Model;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Mutable per-replica counters the fleet report aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Served from this replica's quantized primary path.
    pub served_primary: u64,
    /// Served from this replica's degraded BF16 path.
    pub served_degraded: u64,
    /// Of the served totals, responses finished after this replica's
    /// most recent crash recovery — the "back in rotation" signal.
    pub served_after_recovery: u64,
    /// Attempts flagged unhealthy on this replica.
    pub flagged_attempts: u64,
    /// Bits flipped into weight reads on this replica.
    pub bits_flipped: u64,
    /// Lifecycle crashes.
    pub crashes: u64,
    /// Lifecycle recoveries.
    pub recoveries: u64,
    /// Attempts cut short by a crash landing mid-service.
    pub crash_interrupted: u64,
    /// Health snapshots written.
    pub snapshot_saves: u64,
    /// Recoveries that resumed from an intact snapshot.
    pub snapshot_resumes: u64,
    /// Recoveries that found a *corrupt* snapshot (always surfaced,
    /// never silently treated as a fresh boot).
    pub snapshot_corrupt: u64,
    /// High-water mark of the local admission queue.
    pub max_queue_depth: u64,
    /// Times the adaptive control plane ejected this replica as a gray
    /// (slow-but-alive) failure.
    pub gray_ejections: u64,
    /// Persistent storage bit flips landed on this replica's protected
    /// code plane by the shield fault model.
    pub storage_flips: u64,
    /// Single-bit storage errors the background scrubber corrected in
    /// place.
    pub scrub_corrected: u64,
    /// Single-bit storage errors corrected transiently on the request
    /// read path (the scrubber still owns the in-place fix).
    pub read_corrected: u64,
    /// Uncorrectable (double-bit) storage detections.
    pub scrub_uncorrectable: u64,
    /// Regions quarantined by an uncorrectable detection.
    pub quarantines: u64,
    /// Quarantined regions repaired bit-exactly from the f32 masters.
    pub repairs: u64,
}

/// Per-replica shield runtime: the parity plane over this replica's
/// resident quantized codes, the persistent storage-fault stream that
/// rots it, and the scrub-window cursor tying the two together.
pub struct ShieldState {
    /// Parity plane + scrub cursor + integrity counters.
    pub shield: Shield,
    /// Persistent storage fault stream (deterministic per replica/window).
    pub faults: StorageFaultModel,
    /// Next scrub window index — each window's faults are injected after
    /// the pass that would have corrected the previous window's.
    pub window: u64,
}

impl ShieldState {
    /// Protect `model`'s parameters as `spec.format` codes. `None` when
    /// the format has no code plane to protect (f32 carrier).
    pub fn build(model: &Model, spec: &ReplicaSpec, cfg: &ShieldConfig) -> Option<Self> {
        Some(Self {
            shield: qt_serve::shield_model(model, spec.format)?,
            faults: StorageFaultModel::new(cfg.storage_seed, cfg.storage_ber),
            window: 0,
        })
    }
}

/// One serving replica.
pub struct Replica {
    /// Fleet-assigned id (index in the fleet vec).
    pub id: usize,
    /// The spec it was built from.
    pub spec: ReplicaSpec,
    engine: Engine,
    /// Health breaker; `RefCell` because one engine call consults it
    /// from two closures — the sim is single-threaded by design.
    pub breaker: RefCell<CircuitBreaker>,
    /// Counters.
    pub stats: ReplicaStats,
    /// Virtual time of the most recent recovery, if any.
    pub last_recovery_us: Option<u64>,
    /// ECC shield over this replica's quantized storage (None =
    /// unprotected, the historical shape).
    pub shield: Option<ShieldState>,
}

impl Replica {
    /// Build replica `id` serving `model` through `fault`.
    pub fn new(
        id: usize,
        model: Model,
        spec: ReplicaSpec,
        fault: Box<dyn FaultSource + Send + Sync>,
        retry_seed: u64,
    ) -> Self {
        let spec = spec.normalized();
        let serve_cfg = ServeConfig {
            workers: spec.workers,
            queue_cap: spec.queue_cap,
            per_block_us: spec.per_block_us,
            primary: spec.format,
            retry: spec.retry,
            breaker: spec.breaker,
            // Per-replica jitter streams: a request that fails over must
            // not replay the same backoff schedule on its new home.
            retry_seed: cell_seed(retry_seed, id, 0, 0),
        };
        let engine = Engine::new(model, &serve_cfg, fault);
        Self {
            id,
            breaker: RefCell::new(CircuitBreaker::new(spec.breaker)),
            engine,
            spec,
            stats: ReplicaStats::default(),
            last_recovery_us: None,
            shield: None,
        }
    }

    /// Attach an ECC shield over this replica's quantized code storage.
    /// A no-op for formats without a code plane (f32 carrier).
    pub fn with_shield(mut self, cfg: &ShieldConfig) -> Self {
        self.shield = ShieldState::build(self.engine.model(), &self.spec, cfg);
        self
    }

    /// Whether any protected region is currently quarantined — primary
    /// serving must route down the degraded path until repair lands.
    pub fn shield_quarantined(&self) -> bool {
        self.shield.as_ref().is_some_and(|s| s.shield.has_quarantine())
    }

    /// The serving engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Virtual cost of one full forward pass here, µs.
    pub fn full_pass_us(&self) -> u64 {
        self.engine.full_pass_us()
    }

    /// Is this replica up at `t_us` (per its crash schedule)?
    pub fn is_up(&self, t_us: u64) -> bool {
        self.spec.crashes.is_up(t_us)
    }

    /// Durable health snapshot of this replica right now.
    pub fn snapshot(&self) -> HealthSnapshot {
        let b = self.breaker.borrow();
        HealthSnapshot {
            breaker_state: b.state(),
            breaker_trips: b.trips(),
            unhealthy_rate: b.unhealthy_rate(),
            offered: 0, // admission is fleet-level; replica counters below
            served_primary: self.stats.served_primary,
            served_degraded: self.stats.served_degraded,
            shed_queue_full: 0,
            deadline_miss: 0,
        }
    }

    /// Rebuild lifecycle state after a reboot at `now_us`.
    ///
    /// `loaded` is what the snapshot store found. An intact snapshot
    /// restores trip-history continuity; a missing one is a fresh boot;
    /// a corrupt one is *counted and surfaced* (never silently fresh).
    /// In every case the breaker is then forced Open: a replica that
    /// just crashed re-earns traffic through cooldown → HalfOpen
    /// probing, no matter how healthy it looked before it died.
    pub fn recover(&mut self, loaded: Result<HealthSnapshot, SnapshotError>, now_us: u64) {
        let trips = match loaded {
            Ok(snap) => {
                self.stats.snapshot_resumes += 1;
                snap.breaker_trips
            }
            Err(SnapshotError::Missing) => 0,
            Err(SnapshotError::Corrupt(_)) => {
                self.stats.snapshot_corrupt += 1;
                0
            }
        };
        let mut b = CircuitBreaker::with_initial_trips(self.spec.breaker, trips);
        b.force_open(now_us);
        self.breaker.replace(b);
        // A reboot reloads the quantized plane from the f32 masters:
        // pristine codes, fresh parity, quarantines gone. The storage
        // fault *stream* continues — rot is a property of the hardware,
        // not of the data it damaged.
        if let Some(s) = self.shield.as_mut() {
            if let Some(fresh) = qt_serve::shield_model(self.engine.model(), self.spec.format) {
                s.shield = fresh;
            }
        }
        self.stats.recoveries += 1;
        self.last_recovery_us = Some(now_us);
    }

    /// Current breaker state (convenience for router views).
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.borrow().state()
    }
}

/// Where replicas persist their health snapshots.
///
/// The disk-backed store is the deployment shape (qt-ckpt atomic
/// writes, real files a rebooted process can find); the in-memory store
/// keeps unit tests hermetic and lets them script corruption.
pub trait SnapStore {
    /// Persist `snap` for `replica`.
    fn save(&mut self, replica: usize, snap: &HealthSnapshot) -> std::io::Result<()>;
    /// Load the last snapshot persisted for `replica`.
    fn load(&self, replica: usize) -> Result<HealthSnapshot, SnapshotError>;
}

/// In-memory snapshot store (tests; scripted corruption).
#[derive(Debug, Default)]
pub struct MemSnapStore {
    snaps: BTreeMap<usize, HealthSnapshot>,
    corrupt: BTreeSet<usize>,
}

impl MemSnapStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark `replica`'s stored snapshot as corrupt: subsequent loads
    /// fail with [`SnapshotError::Corrupt`] (the bit-rot scenario).
    pub fn corrupt(&mut self, replica: usize) {
        self.corrupt.insert(replica);
    }

    /// Number of snapshots currently held.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// `true` when nothing has been saved yet.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }
}

impl SnapStore for MemSnapStore {
    fn save(&mut self, replica: usize, snap: &HealthSnapshot) -> std::io::Result<()> {
        self.corrupt.remove(&replica);
        self.snaps.insert(replica, snap.clone());
        Ok(())
    }

    fn load(&self, replica: usize) -> Result<HealthSnapshot, SnapshotError> {
        if self.corrupt.contains(&replica) {
            return Err(SnapshotError::Corrupt("scripted corruption".to_string()));
        }
        self.snaps.get(&replica).cloned().ok_or(SnapshotError::Missing)
    }
}

/// Disk-backed snapshot store: one `replica<id>.json` per replica under
/// a directory, written atomically through qt-ckpt.
#[derive(Debug, Clone)]
pub struct DirSnapStore {
    dir: PathBuf,
}

impl DirSnapStore {
    /// Store rooted at `dir` (created on first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The snapshot path for `replica`.
    pub fn path(&self, replica: usize) -> PathBuf {
        self.dir.join(format!("replica{replica}.json"))
    }

    /// The SEC-DED parity sidecar guarding `replica`'s snapshot bytes.
    pub fn ecc_path(&self, replica: usize) -> PathBuf {
        self.dir.join(format!("replica{replica}.json.ecc"))
    }
}

impl SnapStore for DirSnapStore {
    fn save(&mut self, replica: usize, snap: &HealthSnapshot) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path(replica);
        snap.save(&path)?;
        let bytes = std::fs::read(&path)?;
        qt_ckpt::atomic_write(&self.ecc_path(replica), &qt_ckpt::ecc_plane(&bytes))
    }

    fn load(&self, replica: usize) -> Result<HealthSnapshot, SnapshotError> {
        let path = self.path(replica);
        // Parity sidecar first: a single flipped storage bit is corrected
        // (and healed on disk) before the JSON parse would reject the
        // snapshot as corrupt. Anything worse still fails loudly below.
        if let (Ok(mut bytes), Ok(plane)) =
            (std::fs::read(&path), std::fs::read(self.ecc_path(replica)))
        {
            if let qt_ckpt::EccOutcome::Corrected(_) = qt_ckpt::ecc_verify(&mut bytes, &plane) {
                let _ = qt_ckpt::atomic_write(&path, &bytes);
            }
        }
        HealthSnapshot::load(&path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplicaSpec;
    use qt_quant::ElemFormat;
    use qt_robust::NoFaults;
    use qt_transformer::{TaskHead, TransformerConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_model() -> Model {
        let mut rng = StdRng::seed_from_u64(11);
        Model::new(
            TransformerConfig::mobilebert_tiny_sim(),
            TaskHead::Classify(2),
            &mut rng,
        )
    }

    fn snap_with_trips(trips: u64) -> HealthSnapshot {
        HealthSnapshot {
            breaker_state: BreakerState::Closed,
            breaker_trips: trips,
            unhealthy_rate: 0.0,
            offered: 0,
            served_primary: 0,
            served_degraded: 0,
            shed_queue_full: 0,
            deadline_miss: 0,
        }
    }

    #[test]
    fn recovery_forces_open_and_keeps_trip_continuity() {
        let spec = ReplicaSpec::new(ElemFormat::P8E1);
        let mut r = Replica::new(0, tiny_model(), spec, Box::new(NoFaults), 1);
        assert_eq!(r.breaker_state(), BreakerState::Closed);
        // Intact snapshot: trip history resumes, breaker forced Open.
        r.recover(Ok(snap_with_trips(4)), 50);
        assert_eq!(r.breaker_state(), BreakerState::Open);
        assert_eq!(r.breaker.borrow().trips(), 5, "4 resumed + forced trip");
        assert_eq!(r.stats.recoveries, 1);
        assert_eq!(r.stats.snapshot_resumes, 1);
        assert_eq!(r.last_recovery_us, Some(50));
        // Corrupt snapshot: counted loudly, fresh history, still Open.
        r.recover(Err(SnapshotError::Corrupt("bit rot".to_string())), 60);
        assert_eq!(r.stats.snapshot_corrupt, 1);
        assert_eq!(r.breaker.borrow().trips(), 1, "no silent resume from rot");
        assert_eq!(r.breaker_state(), BreakerState::Open);
        // Missing snapshot: silent fresh boot, still re-earns traffic.
        r.recover(Err(SnapshotError::Missing), 70);
        assert_eq!(r.stats.snapshot_corrupt, 1, "missing is not corrupt");
        assert_eq!(r.stats.recoveries, 3);
        assert_eq!(r.breaker_state(), BreakerState::Open);
    }

    #[test]
    fn mem_store_scripts_corruption_until_next_save() {
        let mut s = MemSnapStore::new();
        assert!(s.is_empty());
        assert_eq!(s.load(0), Err(SnapshotError::Missing));
        s.save(0, &snap_with_trips(2)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.load(0).unwrap().breaker_trips, 2);
        s.corrupt(0);
        assert!(matches!(s.load(0), Err(SnapshotError::Corrupt(_))));
        // A fresh save heals the scripted rot.
        s.save(0, &snap_with_trips(3)).unwrap();
        assert_eq!(s.load(0).unwrap().breaker_trips, 3);
    }

    #[test]
    fn dir_store_round_trips_real_files() {
        let dir = std::env::temp_dir().join("qt_fleet_dirsnap_test");
        std::fs::remove_dir_all(&dir).ok();
        let mut s = DirSnapStore::new(&dir);
        assert_eq!(s.load(1), Err(SnapshotError::Missing));
        s.save(1, &snap_with_trips(7)).unwrap();
        assert_eq!(s.load(1).unwrap().breaker_trips, 7);
        std::fs::write(s.path(1), "not json").unwrap();
        assert!(matches!(s.load(1), Err(SnapshotError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_store_sidecar_heals_single_bit_rot() {
        let dir = std::env::temp_dir().join("qt_fleet_dirsnap_ecc_test");
        std::fs::remove_dir_all(&dir).ok();
        let mut s = DirSnapStore::new(&dir);
        s.save(2, &snap_with_trips(9)).unwrap();
        assert!(s.ecc_path(2).exists(), "parity sidecar written");
        // Flip one storage bit mid-file: plain JSON+schema validation
        // would reject this as corrupt; the sidecar corrects it.
        let mut bytes = std::fs::read(s.path(2)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(s.path(2), &bytes).unwrap();
        assert_eq!(s.load(2).unwrap().breaker_trips, 9, "rot corrected");
        // And the correction was healed back onto disk.
        let healed = std::fs::read(s.path(2)).unwrap();
        assert_eq!(healed[mid], bytes[mid] ^ 0x10);
        // Two flipped bits in one 8-byte word exceed SEC-DED: loud corrupt
        // (byte 2 mangles the `schema` key, so the parse must reject).
        let mut bytes = std::fs::read(s.path(2)).unwrap();
        bytes[2] ^= 0x21;
        std::fs::write(s.path(2), &bytes).unwrap();
        assert!(matches!(s.load(2), Err(SnapshotError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shield_attaches_and_recovery_rebuilds_pristine() {
        use crate::config::ShieldConfig;
        let spec = ReplicaSpec::new(ElemFormat::P8E1);
        let mut r = Replica::new(0, tiny_model(), spec, Box::new(NoFaults), 1)
            .with_shield(&ShieldConfig::default());
        assert!(r.shield.is_some());
        assert!(!r.shield_quarantined());
        // Double-bit rot quarantines a region...
        let st = r.shield.as_mut().unwrap();
        st.shield.inject(0, 0, 2);
        st.shield.inject(0, 0, 44);
        st.shield.verify_reads();
        assert!(r.shield_quarantined());
        // ...and a reboot reloads the plane from the masters: pristine.
        r.recover(Err(SnapshotError::Missing), 10);
        assert!(!r.shield_quarantined());
        assert_eq!(r.shield.as_ref().unwrap().shield.stats().flips_injected, 0);
    }
}
