//! Per-tenant admission quotas.
//!
//! A fleet shared by many tenants needs admission-side fairness: one
//! tenant's burst must shed *its own* overflow instead of filling every
//! replica queue and starving everyone else. The book tracks outstanding
//! (admitted but not yet finished) requests per tenant and enforces a
//! flat cap; 0 disables the cap entirely.

use std::collections::BTreeMap;

/// Outstanding-request accounting per tenant.
#[derive(Debug, Clone, Default)]
pub struct TenantBook {
    /// Max outstanding per tenant (0 = unlimited).
    quota: u64,
    outstanding: BTreeMap<u32, u64>,
    /// Admissions denied by quota, per tenant (kept for the report).
    denied: BTreeMap<u32, u64>,
}

impl TenantBook {
    /// A book enforcing `quota` outstanding requests per tenant.
    pub fn new(quota: u64) -> Self {
        Self {
            quota,
            ..Self::default()
        }
    }

    /// The quota in force (0 = unlimited).
    pub fn quota(&self) -> u64 {
        self.quota
    }

    /// Try to admit one request for `tenant`: `true` increments the
    /// tenant's outstanding count, `false` records a quota denial.
    pub fn admit(&mut self, tenant: u32) -> bool {
        let n = self.outstanding.entry(tenant).or_insert(0);
        if self.quota > 0 && *n >= self.quota {
            *self.denied.entry(tenant).or_insert(0) += 1;
            return false;
        }
        *n += 1;
        true
    }

    /// One of `tenant`'s admitted requests finished (served, missed, or
    /// requeue-shed) — release its slot.
    pub fn release(&mut self, tenant: u32) {
        if let Some(n) = self.outstanding.get_mut(&tenant) {
            *n = n.saturating_sub(1);
        }
    }

    /// Outstanding requests for `tenant` right now.
    pub fn outstanding(&self, tenant: u32) -> u64 {
        self.outstanding.get(&tenant).copied().unwrap_or(0)
    }

    /// Quota denials for `tenant`.
    pub fn denied(&self, tenant: u32) -> u64 {
        self.denied.get(&tenant).copied().unwrap_or(0)
    }

    /// Total quota denials across tenants.
    pub fn total_denied(&self) -> u64 {
        self.denied.values().sum()
    }

    /// (tenant, denials) pairs in tenant order — deterministic for JSON.
    pub fn denials(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.denied.iter().map(|(&t, &n)| (t, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_denies_only_the_bursting_tenant() {
        let mut book = TenantBook::new(2);
        assert!(book.admit(0));
        assert!(book.admit(0));
        assert!(!book.admit(0), "tenant 0 at quota");
        assert!(book.admit(1), "tenant 1 unaffected");
        assert_eq!(book.outstanding(0), 2);
        assert_eq!(book.denied(0), 1);
        assert_eq!(book.denied(1), 0);
        book.release(0);
        assert!(book.admit(0), "slot freed on completion");
        assert_eq!(book.total_denied(), 1);
    }

    #[test]
    fn zero_quota_is_unlimited() {
        let mut book = TenantBook::new(0);
        for _ in 0..1000 {
            assert!(book.admit(7));
        }
        assert_eq!(book.outstanding(7), 1000);
        assert_eq!(book.total_denied(), 0);
    }

    #[test]
    fn release_without_admit_saturates() {
        let mut book = TenantBook::new(1);
        book.release(3);
        assert_eq!(book.outstanding(3), 0);
        assert!(book.admit(3));
    }
}
