//! Fleet outcomes, the routing audit log, and the run report.

use crate::replica::ReplicaStats;
use qt_serve::BreakerState;
use qt_trace::LogHist;
use serde_json::{json, Value};

/// How one fleet request's story ended.
///
/// The fleet adds two shed reasons qt-serve does not have: quota sheds
/// (per-tenant fairness) and no-replica sheds (every replica down, Open,
/// or full at arrival).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetOutcome {
    /// Served from some replica's quantized primary path, clean health.
    ServedPrimary,
    /// Served from some replica's degraded BF16 path.
    ServedDegraded,
    /// Shed: the selected replica's queue was full... and so was every
    /// alternative's (the router only returns replicas with room, so
    /// this means no eligible replica had a slot).
    ShedQueueFull,
    /// Shed at admission: the tenant was over its outstanding quota.
    ShedQuota,
    /// Shed at admission or re-route: no replica was eligible (down,
    /// breaker Open, or excluded).
    ShedNoReplica,
    /// Shed by the adaptive control plane: the brownout ladder rejected
    /// this tier at admission, or CoDel head-dropped it at pickup.
    ShedOverload,
    /// The deadline's block budget ran out before a clean response
    /// existed anywhere in the fleet.
    DeadlineMiss,
}

impl FleetOutcome {
    /// Stable lowercase name (metrics labels, JSON).
    pub fn name(self) -> &'static str {
        match self {
            FleetOutcome::ServedPrimary => "served_primary",
            FleetOutcome::ServedDegraded => "served_degraded",
            FleetOutcome::ShedQueueFull => "shed_queue_full",
            FleetOutcome::ShedQuota => "shed_quota",
            FleetOutcome::ShedNoReplica => "shed_no_replica",
            FleetOutcome::ShedOverload => "shed_overload",
            FleetOutcome::DeadlineMiss => "deadline_miss",
        }
    }

    /// `true` when the caller got a usable result.
    pub fn is_served(self) -> bool {
        matches!(
            self,
            FleetOutcome::ServedPrimary | FleetOutcome::ServedDegraded
        )
    }

    /// `true` for any of the shed variants.
    pub fn is_shed(self) -> bool {
        matches!(
            self,
            FleetOutcome::ShedQueueFull
                | FleetOutcome::ShedQuota
                | FleetOutcome::ShedNoReplica
                | FleetOutcome::ShedOverload
        )
    }
}

/// Why a request was (re-)routed at some instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchCause {
    /// First routing decision at admission.
    Fresh,
    /// Re-routed after exhausting flagged-attempt retries on a replica.
    FailoverCorrupt,
    /// Re-routed because its replica crashed under it.
    FailoverCrash,
    /// Re-queued at crash time while still waiting in the dead
    /// replica's queue.
    Requeue,
    /// Hedged away at pickup: the remaining deadline budget could not
    /// fit a pass on the assigned replica but fit elsewhere.
    Hedge,
}

impl DispatchCause {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DispatchCause::Fresh => "fresh",
            DispatchCause::FailoverCorrupt => "failover_corrupt",
            DispatchCause::FailoverCrash => "failover_crash",
            DispatchCause::Requeue => "requeue",
            DispatchCause::Hedge => "hedge",
        }
    }

    /// `true` for the two mid-flight failover causes.
    pub fn is_failover(self) -> bool {
        matches!(
            self,
            DispatchCause::FailoverCorrupt | DispatchCause::FailoverCrash
        )
    }
}

/// One routing decision, recorded at decision time — the audit trail the
/// fleet invariants are checked against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dispatch {
    /// The request routed.
    pub req_id: u64,
    /// Virtual time of the decision, µs.
    pub at_us: u64,
    /// Replica selected.
    pub replica: usize,
    /// That replica's breaker state *at selection* (never `Open`).
    pub breaker: BreakerState,
    /// Why this decision happened.
    pub cause: DispatchCause,
    /// Replicas this decision was required to avoid (prior failures of
    /// this request).
    pub excluded: Vec<usize>,
}

/// The fleet's answer for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetResponse {
    /// Request id.
    pub id: u64,
    /// Simulated user.
    pub user: u64,
    /// Tenant.
    pub tenant: u32,
    /// How it ended.
    pub outcome: FleetOutcome,
    /// Argmax label for served outcomes.
    pub label: Option<usize>,
    /// Replica that produced the final outcome (None for sheds).
    pub replica: Option<usize>,
    /// Forward attempts across all replicas.
    pub attempts: u32,
    /// Attempts flagged unhealthy (each retried, failed over, or
    /// degraded — never returned).
    pub flagged: u32,
    /// Fleet-level failovers (replica changes after a failure).
    pub failovers: u32,
    /// `true` when a hedge re-route happened.
    pub hedged: bool,
    /// Completion time on the virtual clock, µs.
    pub finish_us: u64,
    /// `finish_us − arrival_us` (0 for sheds).
    pub latency_us: u64,
}

/// One decision the adaptive control plane made during the run —
/// brownout rung changes, gray ejections/rejoins, and scale events, in
/// virtual-time order. The audit trail the adapt invariants (monotone
/// ladder walk, deterministic ejection) are checked against.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptEvent {
    /// Virtual time of the decision, µs.
    pub at_us: u64,
    /// Stable kind label: `brownout_up`, `brownout_down`, `gray_eject`,
    /// `gray_rejoin`, `scale_up_start`, `scale_up_done`,
    /// `scale_down_start`, `scale_down_done`.
    pub kind: &'static str,
    /// Replica the decision targeted (None for fleet-wide decisions).
    pub replica: Option<usize>,
    /// Kind-specific magnitude: destination rung severity for brownout
    /// moves, p99/median ratio for ejections, active-replica count after
    /// the move for scale events.
    pub detail: f64,
}

impl AdaptEvent {
    /// The event as JSON.
    pub fn to_json(&self) -> Value {
        json!({
            "at_us": self.at_us,
            "kind": self.kind,
            "replica": self.replica.map_or(Value::Null, |r| Value::from(r as u64)),
            "detail": self.detail,
        })
    }
}

/// Per-replica section of the fleet report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaReport {
    /// Replica id.
    pub id: usize,
    /// Element format name of its primary path.
    pub format: String,
    /// Per-block cost, µs.
    pub per_block_us: u64,
    /// Counters.
    pub stats: ReplicaStats,
    /// Breaker trips over the run.
    pub breaker_trips: u64,
    /// Breaker state at the end of the run.
    pub final_breaker: BreakerState,
}

impl ReplicaReport {
    /// The section as JSON.
    pub fn to_json(&self) -> Value {
        json!({
            "id": self.id,
            "format": self.format.clone(),
            "per_block_us": self.per_block_us,
            "served_primary": self.stats.served_primary,
            "served_degraded": self.stats.served_degraded,
            "served_after_recovery": self.stats.served_after_recovery,
            "flagged_attempts": self.stats.flagged_attempts,
            "bits_flipped": self.stats.bits_flipped,
            "crashes": self.stats.crashes,
            "recoveries": self.stats.recoveries,
            "crash_interrupted": self.stats.crash_interrupted,
            "snapshot_saves": self.stats.snapshot_saves,
            "snapshot_resumes": self.stats.snapshot_resumes,
            "snapshot_corrupt": self.stats.snapshot_corrupt,
            "max_queue_depth": self.stats.max_queue_depth,
            "gray_ejections": self.stats.gray_ejections,
            "storage_flips": self.stats.storage_flips,
            "scrub_corrected": self.stats.scrub_corrected,
            "read_corrected": self.stats.read_corrected,
            "scrub_uncorrectable": self.stats.scrub_uncorrectable,
            "quarantines": self.stats.quarantines,
            "repairs": self.stats.repairs,
            "breaker_trips": self.breaker_trips,
            "final_breaker": self.final_breaker.name(),
        })
    }
}

/// Everything one fleet run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Routing policy name.
    pub policy: String,
    /// Requests offered.
    pub offered: u64,
    /// Served on some primary path.
    pub served_primary: u64,
    /// Served degraded.
    pub served_degraded: u64,
    /// Shed: no queue slot anywhere eligible.
    pub shed_queue_full: u64,
    /// Shed: tenant over quota.
    pub shed_quota: u64,
    /// Shed: no eligible replica.
    pub shed_no_replica: u64,
    /// Shed by the adaptive control plane (brownout + CoDel).
    pub shed_overload: u64,
    /// Deadline misses.
    pub deadline_miss: u64,
    /// Fleet-level failovers (corrupt + crash).
    pub failovers: u64,
    /// Of those, failovers caused by replica crashes.
    pub crash_failovers: u64,
    /// Hedge re-routes.
    pub hedges: u64,
    /// Requests re-queued out of a crashing replica's queue.
    pub requeued_on_crash: u64,
    /// Attempts flagged unhealthy fleet-wide.
    pub flagged_attempts: u64,
    /// Bits flipped into weight reads fleet-wide.
    pub bits_flipped: u64,
    /// Tenant quota denials as (tenant, count), tenant order.
    pub tenant_denials: Vec<(u32, u64)>,
    /// End-to-end latency of non-shed requests, µs (log2 binades).
    pub latency: LogHist,
    /// Admission-to-first-service wait, µs.
    pub queue_wait: LogHist,
    /// Per-replica sections, id order.
    pub replicas: Vec<ReplicaReport>,
    /// Virtual end of run, µs.
    pub end_us: u64,
    /// Every routing decision, in decision order.
    pub dispatches: Vec<Dispatch>,
    /// Every response, sorted by request id.
    pub responses: Vec<FleetResponse>,
    /// Of `shed_overload`, sheds decided by CoDel head drops at pickup.
    pub codel_drops: u64,
    /// Of `shed_overload`, sheds decided by the brownout ladder at
    /// admission.
    pub brownout_sheds: u64,
    /// Requests served on the brownout economy path (single degraded
    /// attempt, no retry/failover budget).
    pub economy_served: u64,
    /// Gray-failure ejections fleet-wide.
    pub gray_ejections: u64,
    /// Autoscale boots completed.
    pub scale_ups: u64,
    /// Autoscale drains started.
    pub scale_downs: u64,
    /// Highest brownout rung reached ([`qt_adapt::Brownout::name`]).
    pub brownout_peak: String,
    /// Every adaptive-control decision, in virtual-time order.
    pub adapt_events: Vec<AdaptEvent>,
    /// Persistent storage bit flips landed on protected code planes.
    pub storage_flips: u64,
    /// Single-bit storage errors corrected in place by scrubbers.
    pub scrub_corrected: u64,
    /// Single-bit storage errors corrected transiently on read paths.
    pub read_corrected: u64,
    /// Uncorrectable (double-bit) storage detections fleet-wide.
    pub scrub_uncorrectable: u64,
    /// Storage regions quarantined.
    pub quarantines: u64,
    /// Quarantined regions repaired from the f32 masters.
    pub repairs: u64,
    /// Every quarantine/repair decision, in virtual-time order (kinds
    /// `quarantine` and `repair`, detail = region index).
    pub integrity_events: Vec<AdaptEvent>,
}

impl FleetReport {
    /// First invariant: every offered request ended in exactly one
    /// outcome counter.
    pub fn reconciles(&self) -> bool {
        self.offered
            == self.served_primary
                + self.served_degraded
                + self.shed_queue_full
                + self.shed_quota
                + self.shed_no_replica
                + self.shed_overload
                + self.deadline_miss
    }

    /// All sheds combined.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_quota + self.shed_no_replica + self.shed_overload
    }

    /// Served fraction of offered load.
    pub fn goodput(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.served_primary + self.served_degraded) as f64 / self.offered as f64
    }

    /// Shed fraction of offered load.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed_total() as f64 / self.offered as f64
    }

    /// Deadline-miss fraction of offered load.
    pub fn miss_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.deadline_miss as f64 / self.offered as f64
    }

    /// Latency percentile in µs (binade upper edge).
    pub fn latency_quantile_us(&self, q: f64) -> Option<f64> {
        self.latency.quantile(q)
    }

    /// The report as a deterministic JSON value — the `BENCH_fleet.json`
    /// per-policy schema. No wall-clock data, so identical runs
    /// serialize byte-identically.
    pub fn to_json(&self) -> Value {
        let denials: Vec<Value> = self
            .tenant_denials
            .iter()
            .map(|&(t, n)| json!({"tenant": t, "denied": n}))
            .collect();
        let replicas: Vec<Value> = self.replicas.iter().map(|r| r.to_json()).collect();
        json!({
            "schema": "qt-fleet/report/v1",
            "policy": self.policy.clone(),
            "offered": self.offered,
            "served_primary": self.served_primary,
            "served_degraded": self.served_degraded,
            "shed_queue_full": self.shed_queue_full,
            "shed_quota": self.shed_quota,
            "shed_no_replica": self.shed_no_replica,
            "shed_overload": self.shed_overload,
            "deadline_miss": self.deadline_miss,
            "reconciles": self.reconciles(),
            "goodput": self.goodput(),
            "shed_rate": self.shed_rate(),
            "miss_rate": self.miss_rate(),
            "failovers": self.failovers,
            "crash_failovers": self.crash_failovers,
            "hedges": self.hedges,
            "requeued_on_crash": self.requeued_on_crash,
            "flagged_attempts": self.flagged_attempts,
            "bits_flipped": self.bits_flipped,
            "dispatches": self.dispatches.len() as u64,
            "tenant_denials": denials,
            "latency_p50_us": self.latency_quantile_us(0.5).unwrap_or(0.0),
            "latency_p99_us": self.latency_quantile_us(0.99).unwrap_or(0.0),
            "queue_wait_p99_us": self.queue_wait.quantile(0.99).unwrap_or(0.0),
            "codel_drops": self.codel_drops,
            "brownout_sheds": self.brownout_sheds,
            "economy_served": self.economy_served,
            "gray_ejections": self.gray_ejections,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "brownout_peak": self.brownout_peak.clone(),
            "adapt_events": self.adapt_events.iter().map(|e| e.to_json()).collect::<Vec<_>>(),
            "storage_flips": self.storage_flips,
            "scrub_corrected": self.scrub_corrected,
            "read_corrected": self.read_corrected,
            "scrub_uncorrectable": self.scrub_uncorrectable,
            "quarantines": self.quarantines,
            "repairs": self.repairs,
            "integrity_events": self.integrity_events.iter().map(|e| e.to_json()).collect::<Vec<_>>(),
            "replicas": replicas,
            "end_us": self.end_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_names_are_stable_and_classified() {
        let all = [
            FleetOutcome::ServedPrimary,
            FleetOutcome::ServedDegraded,
            FleetOutcome::ShedQueueFull,
            FleetOutcome::ShedQuota,
            FleetOutcome::ShedNoReplica,
            FleetOutcome::ShedOverload,
            FleetOutcome::DeadlineMiss,
        ];
        let names: Vec<_> = all.iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            vec![
                "served_primary",
                "served_degraded",
                "shed_queue_full",
                "shed_quota",
                "shed_no_replica",
                "shed_overload",
                "deadline_miss"
            ]
        );
        assert!(FleetOutcome::ServedDegraded.is_served());
        assert!(FleetOutcome::ShedQuota.is_shed());
        assert!(FleetOutcome::ShedOverload.is_shed());
        assert!(!FleetOutcome::DeadlineMiss.is_shed());
        assert!(DispatchCause::FailoverCrash.is_failover());
        assert!(!DispatchCause::Hedge.is_failover());
    }

    #[test]
    fn reconciliation_counts_all_seven_outcomes() {
        let report = FleetReport {
            policy: "health_aware".to_string(),
            offered: 14,
            served_primary: 4,
            served_degraded: 2,
            shed_queue_full: 1,
            shed_quota: 2,
            shed_no_replica: 1,
            shed_overload: 2,
            deadline_miss: 2,
            failovers: 3,
            crash_failovers: 1,
            hedges: 0,
            requeued_on_crash: 1,
            flagged_attempts: 5,
            bits_flipped: 9,
            tenant_denials: vec![(0, 2)],
            latency: LogHist::default(),
            queue_wait: LogHist::default(),
            replicas: Vec::new(),
            end_us: 99,
            dispatches: Vec::new(),
            responses: Vec::new(),
            codel_drops: 1,
            brownout_sheds: 1,
            economy_served: 1,
            gray_ejections: 1,
            scale_ups: 1,
            scale_downs: 0,
            brownout_peak: "shed_batch".to_string(),
            adapt_events: vec![AdaptEvent {
                at_us: 10,
                kind: "brownout_up",
                replica: None,
                detail: 1.0,
            }],
            storage_flips: 3,
            scrub_corrected: 2,
            read_corrected: 1,
            scrub_uncorrectable: 1,
            quarantines: 1,
            repairs: 1,
            integrity_events: vec![AdaptEvent {
                at_us: 20,
                kind: "quarantine",
                replica: Some(0),
                detail: 4.0,
            }],
        };
        assert!(report.reconciles());
        assert_eq!(report.shed_total(), 6);
        let j = report.to_json();
        assert_eq!(j["schema"], "qt-fleet/report/v1");
        assert_eq!(j["reconciles"].as_bool(), Some(true));
        assert_eq!(j["failovers"].as_u64(), Some(3));
        assert_eq!(j["shed_overload"].as_u64(), Some(2));
        assert_eq!(j["brownout_peak"], "shed_batch");
        assert_eq!(j["adapt_events"][0]["kind"], "brownout_up");
        assert_eq!(j["scrub_corrected"].as_u64(), Some(2));
        assert_eq!(j["integrity_events"][0]["kind"], "quarantine");
        assert_eq!(j["integrity_events"][0]["detail"].as_f64(), Some(4.0));
    }
}
