//! The quantization-aware training loop.

use crate::optim::{clip_global_norm, Optimizer};
use qt_autograd::{Tape, Var};
use qt_quant::ScalingMode;
use qt_tensor::Tensor;
use qt_transformer::{Model, QuantCtx, TokenBatch, TrainMode};
use std::collections::BTreeMap;

/// Drives quantized fine-tuning of a [`Model`].
///
/// Owns the model and optimizer; each `step_*` builds a fresh tape,
/// applies the loss (with loss scaling if configured), clips, and updates.
/// Steps with non-finite gradients are skipped and counted — low-precision
/// training "can sometimes lead to numerical instability and non-finite
/// gradients" (paper artifact appendix), and skipping is the standard
/// mitigation.
pub struct Trainer<O: Optimizer> {
    /// The model being trained.
    pub model: Model,
    /// Quantization context (constructed with [`QuantCtx::training`]).
    pub qctx: QuantCtx,
    /// Which parameters are trainable.
    pub mode: TrainMode,
    /// The optimizer.
    pub opt: O,
    /// Optional global-norm gradient clipping.
    pub clip_norm: Option<f32>,
    skipped: usize,
    steps: usize,
}

impl<O: Optimizer> Trainer<O> {
    /// Create a trainer.
    pub fn new(model: Model, qctx: QuantCtx, mode: TrainMode, opt: O) -> Self {
        Self {
            model,
            qctx,
            mode,
            opt,
            clip_norm: Some(1.0),
            skipped: 0,
            steps: 0,
        }
    }

    /// Number of optimizer steps applied.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Number of steps skipped for non-finite gradients.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// One step on a classification batch. Returns the (unscaled) loss.
    pub fn step_classify(&mut self, batch: &TokenBatch, labels: &[usize]) -> f32 {
        let labels = labels.to_vec();
        self.step_with(batch, None, move |tape, logits| {
            tape.cross_entropy(logits, &labels)
        })
    }

    /// One step on a span-extraction batch: the `[B, S, 2]` logits are
    /// split into start/end rows and scored jointly.
    pub fn step_span(&mut self, batch: &TokenBatch, spans: &[(usize, usize)]) -> f32 {
        let seq = batch.seq;
        let b = batch.batch;
        let mut targets = Vec::with_capacity(2 * b);
        for &(s, e) in spans {
            targets.push(s);
            targets.push(e);
        }
        self.step_with(batch, None, move |tape, logits| {
            // [B, S, 2] -> [B, 2, S] -> [2B, S]
            let p = tape.permute(logits, &[0, 2, 1]);
            let r = tape.reshape(p, &[2 * b, seq]);
            tape.cross_entropy(r, &targets)
        })
    }

    /// One step of causal language modelling (`targets` length `B·S`,
    /// `usize::MAX` = ignore).
    pub fn step_lm(&mut self, batch: &TokenBatch, targets: &[usize]) -> f32 {
        let vocab = self.model.cfg.vocab;
        let rows = batch.batch * batch.seq;
        let targets = targets.to_vec();
        self.step_with(batch, None, move |tape, logits| {
            let r = tape.reshape(logits, &[rows, vocab]);
            tape.cross_entropy(r, &targets)
        })
    }

    /// One teacher-forced step of sequence-to-sequence transcription.
    pub fn step_seq2seq(
        &mut self,
        enc: &TokenBatch,
        dec: &TokenBatch,
        targets: &[usize],
    ) -> f32 {
        let vocab = self.model.cfg.vocab;
        let rows = dec.batch * dec.seq;
        let targets = targets.to_vec();
        self.step_with(enc, Some(dec), move |tape, logits| {
            let r = tape.reshape(logits, &[rows, vocab]);
            tape.cross_entropy(r, &targets)
        })
    }

    fn step_with(
        &mut self,
        batch: &TokenBatch,
        dec: Option<&TokenBatch>,
        build_loss: impl FnOnce(&mut Tape, Var) -> Var,
    ) -> f32 {
        let mut tape = Tape::new();
        let out = self
            .model
            .forward(&mut tape, &self.qctx, batch, dec, self.mode);
        let loss = build_loss(&mut tape, out.logits);
        let loss_value = tape.value(loss).data()[0];

        let scale = match self.qctx.scheme().scaling {
            ScalingMode::LossScale(s) => s,
            _ => 1.0,
        };
        let scaled = if scale != 1.0 {
            tape.mul_scalar(loss, scale)
        } else {
            loss
        };
        let grads = tape.backward(scaled);

        let mut named: BTreeMap<String, Tensor> = BTreeMap::new();
        let mut finite = true;
        for (name, var) in &out.param_vars {
            if let Some(g) = grads.get(*var) {
                let g = if scale != 1.0 {
                    g.mul_scalar(1.0 / scale)
                } else {
                    g.clone()
                };
                if g.data().iter().any(|x| !x.is_finite()) {
                    finite = false;
                    break;
                }
                named.insert(name.clone(), g);
            }
        }
        if !finite || !loss_value.is_finite() {
            self.skipped += 1;
            return loss_value;
        }
        if let Some(c) = self.clip_norm {
            clip_global_norm(&mut named, c);
        }
        self.opt.step(&mut self.model.params, &named);
        self.steps += 1;
        loss_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{AdamW, Sgd};
    use qt_datagen::{ClassifyKind, ClassifyTask};
    use qt_quant::QuantScheme;
    use qt_transformer::{TaskHead, TransformerConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_classify_trainer(scheme: QuantScheme) -> (Trainer<AdamW>, ClassifyTask) {
        let mut rng = StdRng::seed_from_u64(10);
        let mut cfg = TransformerConfig::mobilebert_tiny_sim();
        cfg.layers = 2;
        let task = ClassifyTask::new(ClassifyKind::Sst2, cfg.vocab, 16);
        let model = Model::new(cfg, TaskHead::Classify(2), &mut rng);
        let trainer = Trainer::new(
            model,
            QuantCtx::training(scheme),
            TrainMode::Full,
            AdamW::new(3e-3),
        );
        (trainer, task)
    }

    #[test]
    fn classify_loss_decreases_fp32() {
        let (mut tr, task) = tiny_classify_trainer(QuantScheme::fp32());
        let data = task.dataset(64, 1);
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..6 {
            for chunk in data.chunks(16) {
                let (batch, labels) = task.batch(chunk);
                let l = tr.step_classify(&batch, &labels);
                if epoch == 0 && first == 0.0 {
                    first = l;
                }
                last = l;
            }
        }
        assert!(last < first * 0.8, "loss {first} -> {last}");
        assert_eq!(tr.skipped(), 0);
    }

    #[test]
    fn classify_trains_under_posit8() {
        let (mut tr, task) = tiny_classify_trainer(QuantScheme::posit8());
        let data = task.dataset(64, 2);
        let mut last = f32::INFINITY;
        for _ in 0..6 {
            for chunk in data.chunks(16) {
                let (batch, labels) = task.batch(chunk);
                last = tr.step_classify(&batch, &labels);
            }
        }
        assert!(last.is_finite());
        assert!(tr.steps() > 0);
        assert!(last < 0.7, "posit8 training should make progress: {last}");
    }

    #[test]
    fn sgd_span_step_runs() {
        use qt_datagen::SpanTask;
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg = TransformerConfig::mobilebert_tiny_sim();
        cfg.layers = 1;
        let task = SpanTask::new(cfg.vocab, 16);
        let model = Model::new(cfg, TaskHead::Span, &mut rng);
        let mut tr = Trainer::new(
            model,
            QuantCtx::training(QuantScheme::bf16()),
            TrainMode::Full,
            Sgd::with_momentum(0.05, 0.9),
        );
        let data = task.dataset(8, 4);
        let (batch, spans) = task.batch(&data);
        let l1 = tr.step_span(&batch, &spans);
        for _ in 0..8 {
            tr.step_span(&batch, &spans);
        }
        let l2 = tr.step_span(&batch, &spans);
        assert!(l2 < l1, "{l1} -> {l2}");
    }

    #[test]
    fn loss_scaling_unscales_gradients() {
        // Same data, same seed: a huge loss scale must leave updates
        // (nearly) unchanged in FP32 where no underflow occurs.
        let run = |scheme: QuantScheme| {
            let (mut tr, task) = tiny_classify_trainer(scheme);
            let data = task.dataset(16, 5);
            let (batch, labels) = task.batch(&data);
            for _ in 0..3 {
                tr.step_classify(&batch, &labels);
            }
            tr.model.params.get("head.cls.w").clone()
        };
        let a = run(QuantScheme::fp32());
        let b = run(QuantScheme::fp32().with_scaling(ScalingMode::LossScale(4096.0)));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }
}
