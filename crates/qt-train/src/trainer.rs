//! The quantization-aware training loop.

use crate::error::TrainError;
use crate::optim::{clip_global_norm, CheckpointOptimizer, Optimizer};
use crate::scaler::LossScaler;
use qt_autograd::{Tape, Var};
use qt_ckpt::{
    AmaxState, CheckpointStore, CkptError, Counters, QuantBlob, RestoreInfo, SaveInfo,
    SnapshotState, TensorBlob, TrainState,
};
use qt_quant::{AmaxTracker, ElemFormat, ScalingMode};
use qt_tensor::Tensor;
use qt_transformer::{Model, ParamStore, QuantCtx, TokenBatch, TrainMode};
use std::collections::BTreeMap;

/// Consecutive skipped steps after which a checked step reports
/// [`TrainError::Diverged`] when no rollback threshold is configured.
const DEFAULT_DIVERGENCE_PATIENCE: usize = 16;

/// A restorable point-in-time copy of the training state.
struct Snapshot<O> {
    params: ParamStore,
    opt: O,
    tracker: AmaxTracker,
    steps: usize,
}

/// Durable-checkpoint wiring attached to a [`Trainer`] (see
/// [`Trainer::with_checkpointing`]).
struct CkptCfg {
    store: CheckpointStore,
    every: usize,
    data_seed: u64,
    meta: Vec<(String, String)>,
}

/// Drives quantized fine-tuning of a [`Model`].
///
/// Owns the model and optimizer; each `step_*` builds a fresh tape,
/// applies the loss (with loss scaling if configured), clips, and updates.
/// Steps with non-finite gradients are skipped and counted — low-precision
/// training "can sometimes lead to numerical instability and non-finite
/// gradients" (paper artifact appendix), and skipping is the standard
/// mitigation.
///
/// Two recovery mechanisms stack on top of skipping:
///
/// - [`Trainer::with_dynamic_scaling`] replaces the scheme's static loss
///   scale with an AMP-style [`LossScaler`] that backs off on overflow and
///   grows back after a window of clean steps;
/// - [`Trainer::with_snapshots`] takes periodic copies of the parameters,
///   optimizer state and amax history, and rolls back to the latest copy
///   after K consecutive skipped steps — recovering runs whose state
///   (not just whose gradients) has gone non-finite.
pub struct Trainer<O: Optimizer> {
    /// The model being trained.
    pub model: Model,
    /// Quantization context (constructed with [`QuantCtx::training`]).
    pub qctx: QuantCtx,
    /// Which parameters are trainable.
    pub mode: TrainMode,
    /// The optimizer.
    pub opt: O,
    /// Optional global-norm gradient clipping.
    pub clip_norm: Option<f32>,
    skipped: usize,
    steps: usize,
    scaler: Option<LossScaler>,
    snapshot_every: Option<usize>,
    rollback_after: Option<usize>,
    snapshot: Option<Snapshot<O>>,
    consecutive_skips: usize,
    rollbacks: usize,
    ckpt: Option<CkptCfg>,
}

impl<O: Optimizer + Clone + CheckpointOptimizer> Trainer<O> {
    /// Create a trainer.
    pub fn new(model: Model, qctx: QuantCtx, mode: TrainMode, opt: O) -> Self {
        Self {
            model,
            qctx,
            mode,
            opt,
            clip_norm: Some(1.0),
            skipped: 0,
            steps: 0,
            scaler: None,
            snapshot_every: None,
            rollback_after: None,
            snapshot: None,
            consecutive_skips: 0,
            rollbacks: 0,
            ckpt: None,
        }
    }

    /// Replace the scheme's static loss scale with a dynamic scaler.
    pub fn with_dynamic_scaling(mut self, scaler: LossScaler) -> Self {
        self.scaler = Some(scaler);
        self
    }

    /// Snapshot parameters + optimizer + amax history every `every`
    /// applied steps, and roll back to the latest snapshot after
    /// `rollback_after` consecutive skipped steps.
    pub fn with_snapshots(mut self, every: usize, rollback_after: usize) -> Self {
        self.snapshot_every = Some(every.max(1));
        self.rollback_after = Some(rollback_after.max(1));
        self
    }

    /// Persist the full training state to `store` every `every` global
    /// steps (applied + skipped). `data_seed` is recorded in each
    /// checkpoint so a resumed run can regenerate the identical data
    /// order and skip the batches already consumed
    /// ([`Trainer::global_step`] of them).
    pub fn with_checkpointing(mut self, store: CheckpointStore, every: usize, data_seed: u64) -> Self {
        self.ckpt = Some(CkptCfg {
            store,
            every: every.max(1),
            data_seed,
            meta: Vec::new(),
        });
        self
    }

    /// Annotate every subsequent checkpoint with `(key, value)` pairs
    /// (run name, scheme, task — anything useful at inspection time).
    /// No-op unless [`Trainer::with_checkpointing`] was called first.
    pub fn with_checkpoint_meta(mut self, meta: Vec<(String, String)>) -> Self {
        if let Some(cfg) = &mut self.ckpt {
            cfg.meta = meta;
        }
        self
    }

    /// The attached checkpoint store, if checkpointing is configured.
    pub fn checkpoint_store(&self) -> Option<&CheckpointStore> {
        self.ckpt.as_ref().map(|c| &c.store)
    }

    /// Number of optimizer steps applied.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Global step count: applied + skipped — equal to the number of
    /// batches the data iterator has consumed.
    pub fn global_step(&self) -> usize {
        self.steps + self.skipped
    }

    /// Number of steps skipped for non-finite gradients.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Consecutive skipped steps since the last applied step or rollback.
    pub fn consecutive_skips(&self) -> usize {
        self.consecutive_skips
    }

    /// Number of snapshot rollbacks performed.
    pub fn rollbacks(&self) -> usize {
        self.rollbacks
    }

    /// The dynamic scaler, if one is attached.
    pub fn scaler(&self) -> Option<&LossScaler> {
        self.scaler.as_ref()
    }

    /// The loss scale the next step will apply (dynamic scaler if
    /// attached, otherwise the scheme's static scale).
    pub fn loss_scale(&self) -> f32 {
        match &self.scaler {
            Some(s) => s.scale(),
            None => match self.qctx.scheme().scaling {
                ScalingMode::LossScale(s) => s,
                _ => 1.0,
            },
        }
    }

    /// One step on a classification batch. Returns the (unscaled) loss.
    pub fn step_classify(&mut self, batch: &TokenBatch, labels: &[usize]) -> f32 {
        let labels = labels.to_vec();
        self.step_with(batch, None, move |tape, logits| {
            tape.cross_entropy(logits, &labels)
        })
    }

    /// [`Trainer::step_classify`] that reports divergence: returns
    /// [`TrainError::Diverged`] once the run has skipped too many
    /// consecutive steps with no snapshot available to roll back to.
    ///
    /// # Errors
    ///
    /// [`TrainError::Diverged`] when consecutive skips reach the rollback
    /// threshold (or a default patience of 16 when none is configured)
    /// and no snapshot exists.
    pub fn step_classify_checked(
        &mut self,
        batch: &TokenBatch,
        labels: &[usize],
    ) -> Result<f32, TrainError> {
        let loss = self.step_classify(batch, labels);
        let patience = self.rollback_after.unwrap_or(DEFAULT_DIVERGENCE_PATIENCE);
        if self.consecutive_skips >= patience && self.snapshot.is_none() {
            return Err(TrainError::Diverged {
                consecutive_skips: self.consecutive_skips,
                loss,
            });
        }
        Ok(loss)
    }

    /// One step on a span-extraction batch: the `[B, S, 2]` logits are
    /// split into start/end rows and scored jointly.
    pub fn step_span(&mut self, batch: &TokenBatch, spans: &[(usize, usize)]) -> f32 {
        let seq = batch.seq;
        let b = batch.batch;
        let mut targets = Vec::with_capacity(2 * b);
        for &(s, e) in spans {
            targets.push(s);
            targets.push(e);
        }
        self.step_with(batch, None, move |tape, logits| {
            // [B, S, 2] -> [B, 2, S] -> [2B, S]
            let p = tape.permute(logits, &[0, 2, 1]);
            let r = tape.reshape(p, &[2 * b, seq]);
            tape.cross_entropy(r, &targets)
        })
    }

    /// One step of causal language modelling (`targets` length `B·S`,
    /// `usize::MAX` = ignore).
    pub fn step_lm(&mut self, batch: &TokenBatch, targets: &[usize]) -> f32 {
        let vocab = self.model.cfg.vocab;
        let rows = batch.batch * batch.seq;
        let targets = targets.to_vec();
        self.step_with(batch, None, move |tape, logits| {
            let r = tape.reshape(logits, &[rows, vocab]);
            tape.cross_entropy(r, &targets)
        })
    }

    /// One teacher-forced step of sequence-to-sequence transcription.
    pub fn step_seq2seq(
        &mut self,
        enc: &TokenBatch,
        dec: &TokenBatch,
        targets: &[usize],
    ) -> f32 {
        let vocab = self.model.cfg.vocab;
        let rows = dec.batch * dec.seq;
        let targets = targets.to_vec();
        self.step_with(enc, Some(dec), move |tape, logits| {
            let r = tape.reshape(logits, &[rows, vocab]);
            tape.cross_entropy(r, &targets)
        })
    }

    fn step_with(
        &mut self,
        batch: &TokenBatch,
        dec: Option<&TokenBatch>,
        build_loss: impl FnOnce(&mut Tape, Var) -> Var,
    ) -> f32 {
        // Telemetry rides on the QuantCtx's session (one channel for the
        // whole stack); absent a session every emit below is a no-op.
        let step_span = self.qctx.span_begin("train.step", "train");
        let mut tape = Tape::new();
        let out = self
            .model
            .forward(&mut tape, &self.qctx, batch, dec, self.mode);
        let loss = build_loss(&mut tape, out.logits);
        let loss_value = tape.value(loss).data()[0];

        let scale = self.loss_scale();
        let scaled = if scale != 1.0 {
            tape.mul_scalar(loss, scale)
        } else {
            loss
        };
        let grads = tape.backward(scaled);

        let mut named: BTreeMap<String, Tensor> = BTreeMap::new();
        let mut finite = true;
        for (name, var) in &out.param_vars {
            if let Some(g) = grads.get(*var) {
                let g = if scale != 1.0 {
                    g.mul_scalar(1.0 / scale)
                } else {
                    g.clone()
                };
                if g.data().iter().any(|x| !x.is_finite()) {
                    finite = false;
                    break;
                }
                named.insert(name.clone(), g);
            }
        }
        if !finite || !loss_value.is_finite() {
            self.on_skipped_step();
            self.emit_step_telemetry(loss_value, false);
            self.maybe_checkpoint_and_crash();
            self.qctx.span_end(step_span);
            return loss_value;
        }
        if let Some(c) = self.clip_norm {
            clip_global_norm(&mut named, c);
        }
        self.opt.step(&mut self.model.params, &named);
        self.steps += 1;
        self.consecutive_skips = 0;
        if let Some(sc) = &mut self.scaler {
            sc.on_clean_step();
        }
        if let Some(every) = self.snapshot_every {
            if self.steps.is_multiple_of(every) {
                self.snapshot = Some(Snapshot {
                    params: self.model.params.clone(),
                    opt: self.opt.clone(),
                    tracker: self.qctx.tracker().borrow().clone(),
                    steps: self.steps,
                });
            }
        }
        self.emit_step_telemetry(loss_value, true);
        self.maybe_checkpoint_and_crash();
        self.qctx.span_end(step_span);
        loss_value
    }

    /// Auto-checkpoint on the configured cadence, then honor the
    /// `QT_CRASH_AT_STEP` kill hook (used by the crash-recovery CI job).
    /// Both count *global* steps so skipped steps keep the data iterator
    /// and the checkpoint cadence aligned.
    fn maybe_checkpoint_and_crash(&mut self) {
        let Some(cfg) = &self.ckpt else {
            return;
        };
        let step = self.global_step();
        if step > 0 && step.is_multiple_of(cfg.every) {
            if let Err(e) = self.save_checkpoint() {
                // A failed periodic save must not kill the training run;
                // it is surfaced on the trace and stderr instead.
                eprintln!("warning: periodic checkpoint failed: {e}");
                if let Some(t) = self.qctx.trace() {
                    t.borrow_mut()
                        .metrics_mut()
                        .counter_add("ckpt.save_failed", &[], 1);
                }
            }
        }
        // The crash hook only fires on checkpoint-enabled runs, so
        // pretraining phases sharing the process are unaffected.
        if let Ok(v) = std::env::var("QT_CRASH_AT_STEP") {
            if v.parse::<usize>() == Ok(step) {
                eprintln!("QT_CRASH_AT_STEP: simulating crash at global step {step}");
                std::process::exit(42);
            }
        }
    }

    /// Capture the complete training state: exact `f32` bit patterns of
    /// every parameter (plus a compact 8-bit codes+scales export when the
    /// scheme stores sub-32-bit weights), optimizer moments, scaler and
    /// amax state, counters, and the in-memory rollback snapshot.
    pub fn capture_state(&self) -> TrainState {
        let opt = self.opt.export_state();
        let mut meta = vec![("optimizer".to_string(), opt.kind.clone())];
        if let Some(cfg) = &self.ckpt {
            meta.extend(cfg.meta.iter().cloned());
        }
        let tracker = self.qctx.tracker().borrow().clone();
        TrainState {
            meta,
            counters: Counters {
                steps: self.steps as u64,
                skipped: self.skipped as u64,
                consecutive_skips: self.consecutive_skips as u64,
                rollbacks: self.rollbacks as u64,
                data_seed: self.ckpt.as_ref().map_or(0, |c| c.data_seed),
            },
            params: params_to_blobs(&self.model.params),
            qparams: qparams_for(&self.model.params, self.qctx.scheme().fwd),
            opt,
            scaler: self.scaler.as_ref().map(LossScaler::to_ckpt),
            amax: AmaxState {
                history_len: tracker.history_len() as u64,
                entries: tracker.export_history(),
            },
            snapshot: self.snapshot.as_ref().map(|s| SnapshotState {
                params: params_to_blobs(&s.params),
                opt: s.opt.export_state(),
                amax: AmaxState {
                    history_len: s.tracker.history_len() as u64,
                    entries: s.tracker.export_history(),
                },
                steps: s.steps as u64,
            }),
        }
    }

    /// Persist the current state as a new generation in the attached
    /// store, emitting `ckpt.save` on the trace.
    ///
    /// # Errors
    ///
    /// [`TrainError::Ckpt`] when no store is attached or the write fails.
    pub fn save_checkpoint(&self) -> Result<SaveInfo, TrainError> {
        let Some(cfg) = &self.ckpt else {
            return Err(CkptError::Malformed(
                "checkpointing not configured (call with_checkpointing)".into(),
            )
            .into());
        };
        let state = self.capture_state();
        let info = cfg.store.save(&state)?;
        if let Some(t) = self.qctx.trace() {
            let mut t = t.borrow_mut();
            t.instant(
                "ckpt.save",
                "ckpt",
                vec![
                    ("generation".to_string(), info.generation as f64),
                    ("bytes".to_string(), info.bytes as f64),
                    ("global_step".to_string(), self.global_step() as f64),
                ],
            );
            t.metrics_mut().counter_add("ckpt.saves", &[], 1);
        }
        Ok(info)
    }

    /// Overwrite the trainer's state from a validated checkpoint. The
    /// trainer must have been constructed with the same model
    /// architecture and optimizer type the checkpoint was captured from.
    ///
    /// # Errors
    ///
    /// [`TrainError::Ckpt`] when the checkpoint's parameter set or the
    /// optimizer kind does not match this trainer.
    pub fn restore_state(&mut self, state: &TrainState) -> Result<(), TrainError> {
        restore_params(&mut self.model.params, &state.params)?;
        self.opt = O::import_state(&state.opt)?;
        self.steps = state.counters.steps as usize;
        self.skipped = state.counters.skipped as usize;
        self.consecutive_skips = state.counters.consecutive_skips as usize;
        self.rollbacks = state.counters.rollbacks as usize;
        self.scaler = state.scaler.as_ref().map(LossScaler::from_ckpt);
        *self.qctx.tracker().borrow_mut() = AmaxTracker::import_history(
            state.amax.history_len as usize,
            state.amax.entries.iter().cloned(),
        );
        self.snapshot = match &state.snapshot {
            None => None,
            Some(snap) => {
                let mut params = ParamStore::new();
                for b in &snap.params {
                    params.insert(b.name.clone(), Tensor::from_vec(b.to_f32(), &b.shape_usize()));
                }
                Some(Snapshot {
                    params,
                    opt: O::import_state(&snap.opt)?,
                    tracker: AmaxTracker::import_history(
                        snap.amax.history_len as usize,
                        snap.amax.entries.iter().cloned(),
                    ),
                    steps: snap.steps as usize,
                })
            }
        };
        Ok(())
    }

    /// Resume from the newest intact generation in `store`, falling back
    /// through corrupted generations. Emits `ckpt.restore`,
    /// `ckpt.corrupt_detected` and `ckpt.fallback_depth` on the trace.
    ///
    /// Returns `Ok(None)` when the store holds no checkpoints at all
    /// (a fresh run). When checkpoints exist but *every* generation is
    /// corrupt, this is an error — silently restarting from scratch would
    /// discard the fact that durable state existed.
    ///
    /// # Errors
    ///
    /// [`TrainError::Ckpt`] on total corruption or a state mismatch.
    pub fn resume_from(&mut self, store: &CheckpointStore) -> Result<Option<RestoreInfo>, TrainError> {
        match store.load_latest() {
            Ok((state, info)) => {
                if let Some(t) = self.qctx.trace() {
                    let mut t = t.borrow_mut();
                    for (generation, _) in &info.rejected {
                        t.instant(
                            "ckpt.corrupt_detected",
                            "ckpt",
                            vec![("generation".to_string(), *generation as f64)],
                        );
                        t.metrics_mut().counter_add("ckpt.corrupt_detected", &[], 1);
                    }
                }
                self.restore_state(&state)?;
                if let Some(t) = self.qctx.trace() {
                    let mut t = t.borrow_mut();
                    t.instant(
                        "ckpt.restore",
                        "ckpt",
                        vec![
                            ("generation".to_string(), info.generation as f64),
                            ("fallback_depth".to_string(), info.fallback_depth as f64),
                            ("global_step".to_string(), state.global_step() as f64),
                        ],
                    );
                    t.metrics_mut()
                        .gauge_set("ckpt.fallback_depth", &[], info.fallback_depth as f64);
                }
                Ok(Some(info))
            }
            Err(CkptError::NoCheckpoint) if store.generations().is_empty() => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// [`Trainer::resume_from`] on the store attached via
    /// [`Trainer::with_checkpointing`].
    ///
    /// # Errors
    ///
    /// [`TrainError::Ckpt`] when no store is attached, on total
    /// corruption, or on a state mismatch.
    pub fn resume_latest(&mut self) -> Result<Option<RestoreInfo>, TrainError> {
        let Some(cfg) = &self.ckpt else {
            return Err(CkptError::Malformed(
                "checkpointing not configured (call with_checkpointing)".into(),
            )
            .into());
        };
        let store = cfg.store.clone();
        self.resume_from(&store)
    }

    /// Per-step metrics and scaler transitions, onto the session attached
    /// to the QuantCtx. No-op when untraced.
    fn emit_step_telemetry(&mut self, loss_value: f32, applied: bool) {
        let Some(trace) = self.qctx.trace().cloned() else {
            return;
        };
        // Global step index: applied + skipped, counting this one.
        let step = (self.steps + self.skipped) as u64;
        let (events, events_dropped) = match &mut self.scaler {
            Some(sc) => {
                let (ev, _) = sc.drain_events();
                (ev, Some(sc.events_dropped()))
            }
            None => (Vec::new(), None),
        };
        let scale = self.loss_scale();
        let mut t = trace.borrow_mut();
        for ev in events {
            match ev {
                crate::scaler::ScalerEvent::Grow { from, to } => {
                    t.scaler_event(step, "grow", from, to)
                }
                crate::scaler::ScalerEvent::Backoff { from, to } => {
                    t.scaler_event(step, "backoff", from, to)
                }
            }
        }
        let m = t.metrics_mut();
        if let Some(dropped) = events_dropped {
            m.gauge_set("scaler.events_dropped", &[], dropped as f64);
        }
        if applied {
            m.counter_add("train.steps", &[], 1);
            m.gauge_set("train.loss", &[], loss_value as f64);
        } else {
            m.counter_add("train.skipped", &[], 1);
        }
        m.gauge_set("train.loss_scale", &[], scale as f64);
        if !applied {
            t.instant(
                "train.skip",
                "train",
                vec![("loss".to_string(), loss_value as f64)],
            );
        }
    }

    /// Bookkeeping for a skipped (non-finite) step: back the dynamic
    /// scale off, and roll back to the latest snapshot once the skip
    /// streak reaches the configured threshold.
    fn on_skipped_step(&mut self) {
        self.skipped += 1;
        self.consecutive_skips += 1;
        if let Some(sc) = &mut self.scaler {
            sc.on_overflow();
        }
        let threshold = match self.rollback_after {
            Some(k) => k,
            None => return,
        };
        if self.consecutive_skips < threshold {
            return;
        }
        if let Some(snap) = &self.snapshot {
            self.model.params = snap.params.clone();
            self.opt = snap.opt.clone();
            // Restore the amax history as of the snapshot and sweep out
            // anything non-finite that slipped in before the guard.
            let tracker = self.qctx.tracker();
            *tracker.borrow_mut() = snap.tracker.clone();
            tracker.borrow_mut().flush_poisoned();
            self.steps = snap.steps;
            self.consecutive_skips = 0;
            self.rollbacks += 1;
            if let Some(t) = self.qctx.trace() {
                let mut t = t.borrow_mut();
                t.instant(
                    "train.rollback",
                    "train",
                    vec![("to_step".to_string(), snap.steps as f64)],
                );
                t.metrics_mut().counter_add("train.rollbacks", &[], 1);
            }
        }
    }
}

/// Exact capture of every parameter, in `ParamStore`'s sorted order.
fn params_to_blobs(params: &ParamStore) -> Vec<TensorBlob> {
    params
        .iter()
        .map(|(name, t)| TensorBlob::from_f32(name, t.shape(), t.data()))
        .collect()
}

/// The deployable export: stored codes + per-tensor power-of-two scale in
/// the scheme's forward (storage) format. Empty for `Fp32` schemes, where
/// the `params` section already *is* the storage representation.
fn qparams_for(params: &ParamStore, fmt: ElemFormat) -> Vec<QuantBlob> {
    if fmt == ElemFormat::Fp32 {
        return Vec::new();
    }
    params
        .iter()
        .map(|(name, t)| {
            let scale = AmaxTracker::scale_from_amax(t.amax(), fmt);
            let codes = t
                .data()
                .iter()
                .map(|&x| fmt.encode_code(x * scale).expect("fmt is not Fp32"))
                .collect();
            QuantBlob {
                name: name.to_string(),
                shape: t.shape().iter().map(|&d| d as u32).collect(),
                format: fmt.name().to_string(),
                scale_bits: scale.to_bits(),
                codes,
            }
        })
        .collect()
}

/// Overwrite `dst` from checkpointed blobs, refusing any mismatch in the
/// parameter set or shapes — a checkpoint from a different architecture
/// must never be partially applied.
fn restore_params(dst: &mut ParamStore, blobs: &[TensorBlob]) -> Result<(), CkptError> {
    let names = dst.names();
    if blobs.len() != names.len() {
        return Err(CkptError::Malformed(format!(
            "checkpoint has {} parameters, model has {}",
            blobs.len(),
            names.len()
        )));
    }
    for b in blobs {
        if !dst.contains(&b.name) {
            return Err(CkptError::Malformed(format!(
                "checkpoint parameter {:?} not in model",
                b.name
            )));
        }
        let expect = dst.get(&b.name).shape().to_vec();
        if b.shape_usize() != expect {
            return Err(CkptError::Malformed(format!(
                "checkpoint parameter {:?} has shape {:?}, model expects {:?}",
                b.name,
                b.shape_usize(),
                expect
            )));
        }
    }
    for b in blobs {
        dst.insert(b.name.clone(), Tensor::from_vec(b.to_f32(), &b.shape_usize()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{AdamW, Sgd};
    use qt_datagen::{ClassifyKind, ClassifyTask};
    use qt_quant::QuantScheme;
    use qt_transformer::{TaskHead, TransformerConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_classify_trainer(scheme: QuantScheme) -> (Trainer<AdamW>, ClassifyTask) {
        let mut rng = StdRng::seed_from_u64(10);
        let mut cfg = TransformerConfig::mobilebert_tiny_sim();
        cfg.layers = 2;
        let task = ClassifyTask::new(ClassifyKind::Sst2, cfg.vocab, 16);
        let model = Model::new(cfg, TaskHead::Classify(2), &mut rng);
        let trainer = Trainer::new(
            model,
            QuantCtx::training(scheme),
            TrainMode::Full,
            AdamW::new(3e-3),
        );
        (trainer, task)
    }

    #[test]
    fn classify_loss_decreases_fp32() {
        let (mut tr, task) = tiny_classify_trainer(QuantScheme::fp32());
        let data = task.dataset(64, 1);
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..6 {
            for chunk in data.chunks(16) {
                let (batch, labels) = task.batch(chunk);
                let l = tr.step_classify(&batch, &labels);
                if epoch == 0 && first == 0.0 {
                    first = l;
                }
                last = l;
            }
        }
        assert!(last < first * 0.8, "loss {first} -> {last}");
        assert_eq!(tr.skipped(), 0);
    }

    #[test]
    fn classify_trains_under_posit8() {
        let (mut tr, task) = tiny_classify_trainer(QuantScheme::posit8());
        let data = task.dataset(64, 2);
        let mut last = f32::INFINITY;
        for _ in 0..6 {
            for chunk in data.chunks(16) {
                let (batch, labels) = task.batch(chunk);
                last = tr.step_classify(&batch, &labels);
            }
        }
        assert!(last.is_finite());
        assert!(tr.steps() > 0);
        assert!(last < 0.7, "posit8 training should make progress: {last}");
    }

    #[test]
    fn sgd_span_step_runs() {
        use qt_datagen::SpanTask;
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg = TransformerConfig::mobilebert_tiny_sim();
        cfg.layers = 1;
        let task = SpanTask::new(cfg.vocab, 16);
        let model = Model::new(cfg, TaskHead::Span, &mut rng);
        let mut tr = Trainer::new(
            model,
            QuantCtx::training(QuantScheme::bf16()),
            TrainMode::Full,
            Sgd::with_momentum(0.05, 0.9),
        );
        let data = task.dataset(8, 4);
        let (batch, spans) = task.batch(&data);
        let l1 = tr.step_span(&batch, &spans);
        for _ in 0..8 {
            tr.step_span(&batch, &spans);
        }
        let l2 = tr.step_span(&batch, &spans);
        assert!(l2 < l1, "{l1} -> {l2}");
    }

    #[test]
    fn dynamic_scaling_recovers_where_static_scale_diverges() {
        // Inject gradient overflow via an infinite loss scale: the
        // backward pass seeds every gradient with ±∞/NaN and the step is
        // skipped, deterministically.
        let data_seed = 1;
        let huge = f32::INFINITY;

        // Regression baseline: with the static scale the run "diverges" —
        // not a single optimizer step is ever applied.
        let scheme = QuantScheme::fp32().with_scaling(ScalingMode::LossScale(huge));
        let (mut tr, task) = tiny_classify_trainer(scheme);
        let data = task.dataset(32, data_seed);
        for chunk in data.chunks(16) {
            let (batch, labels) = task.batch(chunk);
            tr.step_classify(&batch, &labels);
        }
        assert_eq!(tr.steps(), 0, "static huge scale must skip everything");
        assert!(tr.skipped() > 0);

        // Same injected overflow, but with dynamic scaling: the scaler
        // backs off until gradients are finite and the run completes.
        let (tr2, task) = tiny_classify_trainer(QuantScheme::fp32());
        let mut tr2 = tr2.with_dynamic_scaling(
            LossScaler::new(huge).with_backoff(1.0 / 65536.0).with_growth(2.0, 8),
        );
        let data = task.dataset(32, data_seed);
        let mut last = f32::NAN;
        for _ in 0..4 {
            for chunk in data.chunks(16) {
                let (batch, labels) = task.batch(chunk);
                last = tr2.step_classify(&batch, &labels);
            }
        }
        assert!(tr2.skipped() > 0, "the overflow must actually trigger");
        assert!(tr2.steps() > 0, "dynamic scaling must recover");
        assert!(last.is_finite(), "run completes with a finite loss: {last}");
        assert!(
            tr2.scaler().unwrap().scale() < huge,
            "scale backed off from the injected overflow"
        );
    }

    #[test]
    fn rollback_recovers_from_poisoned_parameters() {
        let (tr, task) = tiny_classify_trainer(QuantScheme::fp32());
        let mut tr = tr.with_snapshots(1, 3);
        let data = task.dataset(16, 7);
        let (batch, labels) = task.batch(&data);
        for _ in 0..2 {
            tr.step_classify(&batch, &labels);
        }
        assert_eq!(tr.steps(), 2);

        // Simulate corrupted state (e.g. an undetected SRAM upset in the
        // weight buffer): skipping alone can never heal NaN parameters.
        tr.model.params.get_mut("head.cls.w").map_inplace(|_| f32::NAN);
        for _ in 0..3 {
            let l = tr.step_classify(&batch, &labels);
            assert!(!l.is_finite());
        }
        assert_eq!(tr.rollbacks(), 1, "third consecutive skip rolls back");
        assert!(
            tr.model
                .params
                .get("head.cls.w")
                .data()
                .iter()
                .all(|x| x.is_finite()),
            "parameters restored from snapshot"
        );
        // Training proceeds normally after the rollback.
        let before = tr.steps();
        let l = tr.step_classify(&batch, &labels);
        assert!(l.is_finite());
        assert_eq!(tr.steps(), before + 1);
        assert_eq!(tr.consecutive_skips(), 0);
    }

    #[test]
    fn checked_step_reports_divergence_without_snapshots() {
        let (mut tr, task) = tiny_classify_trainer(QuantScheme::fp32());
        let data = task.dataset(16, 9);
        let (batch, labels) = task.batch(&data);
        tr.model.params.get_mut("head.cls.w").map_inplace(|_| f32::NAN);
        let mut saw_diverged = false;
        for _ in 0..20 {
            match tr.step_classify_checked(&batch, &labels) {
                Ok(l) => assert!(!l.is_finite()),
                Err(TrainError::Diverged {
                    consecutive_skips, ..
                }) => {
                    assert!(consecutive_skips >= 16);
                    saw_diverged = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(saw_diverged, "divergence must be reported");
        assert_eq!(tr.steps(), 0);
    }

    #[test]
    fn traced_trainer_emits_step_metrics_and_scaler_history() {
        use qt_trace::TraceSession;
        use std::rc::Rc;

        let mut rng = StdRng::seed_from_u64(10);
        let mut cfg = TransformerConfig::mobilebert_tiny_sim();
        cfg.layers = 1;
        let task = ClassifyTask::new(ClassifyKind::Sst2, cfg.vocab, 16);
        let model = Model::new(cfg, TaskHead::Classify(2), &mut rng);
        let session = TraceSession::new("train").handle();
        let qctx = QuantCtx::training(QuantScheme::fp32()).with_trace(Rc::clone(&session));
        // Infinite initial scale: the first step overflows (backoff),
        // later clean steps grow the scale back.
        let mut tr = Trainer::new(model, qctx, TrainMode::Full, AdamW::new(3e-3))
            .with_dynamic_scaling(
                LossScaler::new(f32::INFINITY)
                    .with_backoff(1.0 / 65536.0)
                    .with_growth(2.0, 2),
            );
        let data = task.dataset(16, 3);
        let (batch, labels) = task.batch(&data);
        for _ in 0..6 {
            tr.step_classify(&batch, &labels);
        }
        assert!(tr.skipped() > 0 && tr.steps() > 0);

        let sess = session.borrow();
        let m = sess.metrics();
        assert_eq!(m.counter_value("train.steps", &[]), tr.steps() as u64);
        assert_eq!(m.counter_value("train.skipped", &[]), tr.skipped() as u64);
        assert!(m.gauge_value("train.loss", &[]).unwrap().is_finite());
        assert_eq!(
            m.gauge_value("train.loss_scale", &[]),
            Some(tr.loss_scale() as f64)
        );
        // Scaler history replays the backoff-then-grow trajectory, and
        // the scaler's own log was drained into the session.
        let hist = sess.scaler_history();
        assert_eq!(hist[0].event, "backoff");
        assert!(hist.iter().any(|r| r.event == "grow"));
        assert!(tr.scaler().unwrap().events().is_empty());
        // One span per step, all closed; skips appear as instants.
        let steps = sess
            .records()
            .iter()
            .filter(|r| r.name == "train.step")
            .count();
        assert_eq!(steps, 6);
        assert_eq!(sess.open_spans(), 0);
        assert!(sess.records().iter().any(|r| r.name == "train.skip"));
    }

    #[test]
    fn checkpoint_resume_continues_bitwise_identically() {
        use qt_ckpt::CheckpointStore;

        let dir = std::env::temp_dir().join(format!(
            "qt-train-ckpt-resume-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir);
        let data_seed = 11u64;
        let total_steps = 8;

        // Reference: 8 uninterrupted steps under a quantized scheme.
        let (mut reference, task) = tiny_classify_trainer(QuantScheme::posit8());
        let data = task.dataset(64, data_seed);
        let chunks: Vec<_> = data.chunks(16).collect();
        let mut ref_losses = Vec::new();
        for chunk in chunks.iter().cycle().take(total_steps) {
            let (batch, labels) = task.batch(chunk);
            ref_losses.push(reference.step_classify(&batch, &labels));
        }

        // Interrupted run: checkpoint every 2 steps, "crash" after step 5.
        let (tr_a, _) = tiny_classify_trainer(QuantScheme::posit8());
        let mut tr_a = tr_a.with_checkpointing(store.clone(), 2, data_seed);
        for chunk in chunks.iter().cycle().take(5) {
            let (batch, labels) = task.batch(chunk);
            tr_a.step_classify(&batch, &labels);
        }
        drop(tr_a); // steps 1–5 ran; generations exist for steps 2 and 4

        // Fresh process stand-in: new trainer, resume, replay the tail.
        let (tr_b, _) = tiny_classify_trainer(QuantScheme::posit8());
        let mut tr_b = tr_b.with_checkpointing(store, 2, data_seed);
        let info = tr_b.resume_latest().unwrap().expect("checkpoints exist");
        assert_eq!(info.fallback_depth, 0);
        let resumed_at = tr_b.global_step();
        assert_eq!(resumed_at, 4, "newest generation is the step-4 save");
        let mut resumed_losses = Vec::new();
        for chunk in chunks.iter().cycle().skip(resumed_at).take(total_steps - resumed_at) {
            let (batch, labels) = task.batch(chunk);
            resumed_losses.push(tr_b.step_classify(&batch, &labels));
        }

        // The resumed trajectory is bitwise-identical to the reference:
        // same losses, same final parameters, bit for bit.
        for (i, (r, c)) in ref_losses[resumed_at..].iter().zip(&resumed_losses).enumerate() {
            assert_eq!(r.to_bits(), c.to_bits(), "loss diverged at tail step {i}");
        }
        for name in reference.model.params.names() {
            let a = reference.model.params.get(&name);
            let b = tr_b.model.params.get(&name);
            for (x, y) in a.data().iter().zip(b.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "param {name} diverged");
            }
        }
        // The quantized export rides along for non-FP32 schemes.
        let state = tr_b.capture_state();
        assert!(!state.qparams.is_empty());
        assert_eq!(state.qparams[0].format, "Posit(8,1)");
        let _ = std::fs::remove_dir_all(tr_b.checkpoint_store().unwrap().dir());
    }

    #[test]
    fn loss_scaling_unscales_gradients() {
        // Same data, same seed: a huge loss scale must leave updates
        // (nearly) unchanged in FP32 where no underflow occurs.
        let run = |scheme: QuantScheme| {
            let (mut tr, task) = tiny_classify_trainer(scheme);
            let data = task.dataset(16, 5);
            let (batch, labels) = task.batch(&data);
            for _ in 0..3 {
                tr.step_classify(&batch, &labels);
            }
            tr.model.params.get("head.cls.w").clone()
        };
        let a = run(QuantScheme::fp32());
        let b = run(QuantScheme::fp32().with_scaling(ScalingMode::LossScale(4096.0)));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }
}
