//! Evaluation metrics: token-overlap F1 (SQuAD), accuracy (GLUE), word
//! error rate (ASR) and perplexity (LM).

/// Token-overlap F1 between a predicted span and the gold span (both
/// inclusive), the SQuAD metric.
///
/// ```
/// use qt_train::span_f1;
/// assert_eq!(span_f1((3, 5), (3, 5)), 1.0);
/// assert_eq!(span_f1((0, 1), (4, 5)), 0.0);
/// // half-overlapping spans
/// let f1 = span_f1((2, 3), (3, 4));
/// assert!((f1 - 0.5).abs() < 1e-9);
/// ```
pub fn span_f1(pred: (usize, usize), gold: (usize, usize)) -> f64 {
    let (ps, pe) = pred;
    let (gs, ge) = gold;
    if ps > pe || gs > ge {
        return 0.0;
    }
    let overlap = (pe.min(ge) + 1).saturating_sub(ps.max(gs));
    if overlap == 0 {
        return 0.0;
    }
    let p_len = pe - ps + 1;
    let g_len = ge - gs + 1;
    let precision = overlap as f64 / p_len as f64;
    let recall = overlap as f64 / g_len as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Exact-match: 1.0 if the spans are identical.
pub fn exact_match(pred: (usize, usize), gold: (usize, usize)) -> f64 {
    if pred == gold {
        1.0
    } else {
        0.0
    }
}

/// Classification accuracy (fraction of matching labels, in `[0, 1]`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(pred: &[usize], gold: &[usize]) -> f64 {
    assert_eq!(pred.len(), gold.len(), "accuracy length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred.iter().zip(gold).filter(|(a, b)| a == b).count();
    hits as f64 / pred.len() as f64
}

/// Word error rate: Levenshtein distance between hypothesis and reference
/// divided by the reference length (may exceed 1).
///
/// ```
/// use qt_train::wer;
/// assert_eq!(wer(&[1, 2, 3], &[1, 2, 3]), 0.0);
/// assert_eq!(wer(&[1, 9, 3], &[1, 2, 3]), 1.0 / 3.0);
/// assert_eq!(wer(&[], &[1, 2]), 1.0); // two deletions / len 2
/// ```
pub fn wer(hypothesis: &[usize], reference: &[usize]) -> f64 {
    if reference.is_empty() {
        return if hypothesis.is_empty() { 0.0 } else { 1.0 };
    }
    let d = levenshtein(hypothesis, reference);
    d as f64 / reference.len() as f64
}

fn levenshtein(a: &[usize], b: &[usize]) -> usize {
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ai) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &bj) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ai != bj);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        core::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Accumulates negative log-likelihoods into a perplexity.
#[derive(Debug, Clone, Copy, Default)]
pub struct Perplexity {
    nll_sum: f64,
    tokens: u64,
}

impl Perplexity {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add the summed NLL of `tokens` positions.
    pub fn add(&mut self, nll_sum: f64, tokens: u64) {
        self.nll_sum += nll_sum;
        self.tokens += tokens;
    }

    /// `exp(mean NLL)`, or infinity with no tokens.
    pub fn value(&self) -> f64 {
        if self.tokens == 0 {
            return f64::INFINITY;
        }
        libm::exp(self.nll_sum / self.tokens as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_symmetry_and_bounds() {
        for &(a, b) in &[((0usize, 3usize), (1usize, 2usize)), ((2, 5), (4, 9))] {
            let f = span_f1(a, b);
            assert_eq!(f, span_f1(b, a));
            assert!((0.0..=1.0).contains(&f));
        }
        // containment: pred inside gold
        let f = span_f1((1, 2), (0, 3));
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn wer_cases() {
        assert_eq!(wer(&[1, 2, 3, 4], &[1, 2, 3]), 1.0 / 3.0); // insertion
        assert_eq!(wer(&[1, 3], &[1, 2, 3]), 1.0 / 3.0); // deletion
        assert!(wer(&[9, 9, 9, 9, 9, 9], &[1, 2]) > 1.0); // worse than empty
    }

    #[test]
    fn perplexity_uniform() {
        let mut p = Perplexity::new();
        // uniform over 8 classes → NLL = ln 8 per token → ppl 8
        p.add((8.0f64).ln() * 10.0, 10);
        assert!((p.value() - 8.0).abs() < 1e-9);
        assert_eq!(Perplexity::new().value(), f64::INFINITY);
    }
}
