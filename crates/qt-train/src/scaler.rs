//! AMP-style dynamic loss scaling.
//!
//! A static loss scale (§5.1) has to be guessed, and a wrong guess is
//! fatal in both directions: too small and activation gradients underflow
//! the 8-bit format, too large and the backward pass overflows to ±∞ and
//! every step is skipped. The dynamic scaler starts high and lets the run
//! find the ceiling itself: each overflow backs the scale off, and after
//! a window of clean steps it grows back, tracking the largest scale the
//! current loss landscape tolerates.

/// A scale adjustment the scaler made, kept in an internal log so
/// telemetry (the `Trainer`, a trace session) can replay exactly when
/// and how the scale moved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalerEvent {
    /// The scale grew after a clean-step window.
    Grow {
        /// Scale before growing.
        from: f32,
        /// Scale after growing.
        to: f32,
    },
    /// The scale backed off on overflow.
    Backoff {
        /// Scale before backoff.
        from: f32,
        /// Scale after backoff.
        to: f32,
    },
}

/// Default bound on the retained event log (see
/// [`LossScaler::with_event_capacity`]).
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// Dynamic loss-scale state machine (the GradScaler recipe).
#[derive(Debug, Clone)]
pub struct LossScaler {
    scale: f32,
    growth_factor: f32,
    backoff_factor: f32,
    growth_interval: usize,
    min_scale: f32,
    max_scale: f32,
    good_steps: usize,
    overflows: usize,
    events: Vec<ScalerEvent>,
    event_capacity: usize,
    events_dropped: u64,
    dropped_since_drain: u64,
}

impl LossScaler {
    /// Scaler starting at `initial`, growing 2× after 64 clean steps and
    /// halving on every overflow, bounded to `[1, 2^24]` by default.
    pub fn new(initial: f32) -> Self {
        Self {
            scale: initial,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 64,
            min_scale: 1.0,
            max_scale: f32::MAX,
            good_steps: 0,
            overflows: 0,
            events: Vec::new(),
            event_capacity: DEFAULT_EVENT_CAPACITY,
            events_dropped: 0,
            dropped_since_drain: 0,
        }
    }

    /// Override the growth factor and the number of consecutive clean
    /// steps required before growing.
    pub fn with_growth(mut self, factor: f32, interval: usize) -> Self {
        self.growth_factor = factor.max(1.0);
        self.growth_interval = interval.max(1);
        self
    }

    /// Override the backoff factor applied on overflow (must be `< 1`).
    pub fn with_backoff(mut self, factor: f32) -> Self {
        self.backoff_factor = factor.clamp(f32::MIN_POSITIVE, 0.999_999);
        self
    }

    /// Bound the retained event log to `capacity` entries (minimum 1).
    ///
    /// The log is a ring: when a new event would exceed the capacity the
    /// oldest entry is dropped and counted in
    /// [`LossScaler::events_dropped`]. An unconsumed log can otherwise
    /// grow without bound over a long run — a scaler oscillating at its
    /// backoff floor emits an event *every step*, and a run that never
    /// attaches telemetry would leak them all.
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity.max(1);
        let len = self.events.len();
        if len > self.event_capacity {
            self.events.drain(..len - self.event_capacity);
            self.events_dropped += (len - self.event_capacity) as u64;
            self.dropped_since_drain += (len - self.event_capacity) as u64;
        }
        self
    }

    /// Clamp every subsequent scale adjustment to `[min, max]`.
    ///
    /// The *initial* scale is deliberately left unclamped: the standard
    /// warm-start is an initial scale far above the ceiling, which
    /// overflows once and is pulled into range by the first backoff.
    pub fn with_bounds(mut self, min: f32, max: f32) -> Self {
        self.min_scale = min;
        self.max_scale = max;
        self
    }

    /// The scale to apply to the next step's loss.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Overflow events seen so far.
    pub fn overflows(&self) -> usize {
        self.overflows
    }

    /// Scale adjustments made so far, in order.
    pub fn events(&self) -> &[ScalerEvent] {
        &self.events
    }

    /// Events evicted from the bounded log before being consumed.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Drain the event log (telemetry consumers call this each step so
    /// every adjustment is reported exactly once). Discards the
    /// dropped-since-last-drain count; use [`LossScaler::drain_events`]
    /// when the consumer wants to report evictions too.
    pub fn take_events(&mut self) -> Vec<ScalerEvent> {
        self.drain_events().0
    }

    /// Drain the event log along with the number of events evicted from
    /// the ring *since the previous drain* — the count a telemetry
    /// consumer must surface so ring overflow between two drains is
    /// visible rather than silent. The cumulative
    /// [`LossScaler::events_dropped`] counter is unaffected.
    pub fn drain_events(&mut self) -> (Vec<ScalerEvent>, u64) {
        (
            std::mem::take(&mut self.events),
            std::mem::take(&mut self.dropped_since_drain),
        )
    }

    fn push_event(&mut self, ev: ScalerEvent) {
        if self.events.len() >= self.event_capacity {
            let excess = self.events.len() + 1 - self.event_capacity;
            self.events.drain(..excess);
            self.events_dropped += excess as u64;
            self.dropped_since_drain += excess as u64;
        }
        self.events.push(ev);
    }

    /// Record a step whose gradients were finite. Grows the scale after
    /// `growth_interval` consecutive clean steps.
    pub fn on_clean_step(&mut self) {
        self.good_steps += 1;
        if self.good_steps >= self.growth_interval {
            let from = self.scale;
            self.scale = (self.scale * self.growth_factor).min(self.max_scale);
            self.good_steps = 0;
            if self.scale != from {
                self.push_event(ScalerEvent::Grow {
                    from,
                    to: self.scale,
                });
            }
        }
    }

    /// Record an overflow (non-finite loss or gradients): back the scale
    /// off and restart the clean-step count. A non-finite scale (a
    /// mis-specified `initial`, or state corrupted by fault injection) is
    /// first pulled back to the finite ceiling so backoff can make
    /// progress.
    pub fn on_overflow(&mut self) {
        let from = self.scale;
        let base = if self.scale.is_finite() {
            self.scale
        } else {
            f32::MAX
        };
        self.scale = (base * self.backoff_factor).clamp(self.min_scale, self.max_scale);
        self.good_steps = 0;
        self.overflows += 1;
        self.push_event(ScalerEvent::Backoff {
            from,
            to: self.scale,
        });
    }

    /// Capture the full state machine for checkpointing, exact to the bit.
    ///
    /// Pending log entries are *not* part of the state: the `Trainer`
    /// drains them into the trace at every step boundary, so at a
    /// checkpoint the log is empty in the steady state — and the log never
    /// influences the scale trajectory anyway.
    pub fn to_ckpt(&self) -> qt_ckpt::ScalerState {
        qt_ckpt::ScalerState {
            scale_bits: self.scale.to_bits(),
            growth_bits: self.growth_factor.to_bits(),
            backoff_bits: self.backoff_factor.to_bits(),
            growth_interval: self.growth_interval as u64,
            min_bits: self.min_scale.to_bits(),
            max_bits: self.max_scale.to_bits(),
            good_steps: self.good_steps as u64,
            overflows: self.overflows as u64,
            event_capacity: self.event_capacity as u64,
            events_dropped: self.events_dropped,
        }
    }

    /// Rebuild a scaler from checkpointed state (inverse of
    /// [`LossScaler::to_ckpt`]; the event log restarts empty).
    pub fn from_ckpt(s: &qt_ckpt::ScalerState) -> Self {
        Self {
            scale: f32::from_bits(s.scale_bits),
            growth_factor: f32::from_bits(s.growth_bits),
            backoff_factor: f32::from_bits(s.backoff_bits),
            growth_interval: s.growth_interval.max(1) as usize,
            min_scale: f32::from_bits(s.min_bits),
            max_scale: f32::from_bits(s.max_bits),
            good_steps: s.good_steps as usize,
            overflows: s.overflows as usize,
            events: Vec::new(),
            event_capacity: (s.event_capacity as usize).max(1),
            events_dropped: s.events_dropped,
            dropped_since_drain: 0,
        }
    }
}

impl Default for LossScaler {
    fn default() -> Self {
        Self::new(65536.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_after_interval_of_clean_steps() {
        let mut s = LossScaler::new(1024.0).with_growth(2.0, 4);
        for _ in 0..3 {
            s.on_clean_step();
        }
        assert_eq!(s.scale(), 1024.0);
        s.on_clean_step();
        assert_eq!(s.scale(), 2048.0);
    }

    #[test]
    fn overflow_backs_off_and_resets_streak() {
        let mut s = LossScaler::new(1024.0).with_growth(2.0, 2);
        s.on_clean_step();
        s.on_overflow();
        assert_eq!(s.scale(), 512.0);
        assert_eq!(s.overflows(), 1);
        // The streak restarted: one clean step must not grow.
        s.on_clean_step();
        assert_eq!(s.scale(), 512.0);
        s.on_clean_step();
        assert_eq!(s.scale(), 1024.0);
    }

    #[test]
    fn infinite_scale_recovers_on_first_overflow() {
        let mut s = LossScaler::new(f32::INFINITY);
        assert!(!s.scale().is_finite());
        s.on_overflow();
        assert!(s.scale().is_finite());
        assert!(s.scale() > 0.0);
    }

    #[test]
    fn scripted_overflow_pattern_yields_exact_event_sequence() {
        // Script: 2 clean (grow), overflow (backoff), 1 clean (no event:
        // streak restarted), 1 clean (grow), overflow at the min bound
        // (backoff event still emitted, clamped in place).
        let mut s = LossScaler::new(1024.0)
            .with_growth(2.0, 2)
            .with_bounds(512.0, 4096.0);
        s.on_clean_step();
        s.on_clean_step();
        s.on_overflow();
        s.on_clean_step();
        s.on_clean_step();
        s.on_overflow();
        s.on_overflow();
        assert_eq!(
            s.events(),
            [
                ScalerEvent::Grow {
                    from: 1024.0,
                    to: 2048.0
                },
                ScalerEvent::Backoff {
                    from: 2048.0,
                    to: 1024.0
                },
                ScalerEvent::Grow {
                    from: 1024.0,
                    to: 2048.0
                },
                ScalerEvent::Backoff {
                    from: 2048.0,
                    to: 1024.0
                },
                ScalerEvent::Backoff {
                    from: 1024.0,
                    to: 512.0
                },
            ]
        );
        // Draining reports each event exactly once.
        assert_eq!(s.take_events().len(), 5);
        assert!(s.events().is_empty());
        s.on_overflow(); // clamped at min: from == to, still logged
        assert_eq!(
            s.events(),
            [ScalerEvent::Backoff {
                from: 512.0,
                to: 512.0
            }]
        );
    }

    #[test]
    fn growth_at_max_bound_emits_no_event() {
        let mut s = LossScaler::new(8.0).with_bounds(1.0, 8.0).with_growth(2.0, 1);
        s.on_clean_step();
        assert_eq!(s.scale(), 8.0);
        assert!(s.events().is_empty(), "no-op growth is not an event");
    }

    #[test]
    fn event_log_is_a_bounded_ring() {
        // Pinned at the min bound, every overflow emits a Backoff event;
        // with capacity 4 only the newest 4 survive.
        let mut s = LossScaler::new(2.0)
            .with_bounds(2.0, 4.0)
            .with_event_capacity(4);
        for _ in 0..10 {
            s.on_overflow();
        }
        assert_eq!(s.events().len(), 4);
        assert_eq!(s.events_dropped(), 6);
        assert_eq!(s.overflows(), 10, "the counter is not capped, only the log");
        // Draining resets the log but not the dropped count.
        assert_eq!(s.take_events().len(), 4);
        assert_eq!(s.events_dropped(), 6);
    }

    #[test]
    fn drain_reports_drops_since_previous_drain() {
        let mut s = LossScaler::new(2.0)
            .with_bounds(2.0, 4.0)
            .with_event_capacity(4);
        for _ in 0..10 {
            s.on_overflow();
        }
        let (events, dropped) = s.drain_events();
        assert_eq!(events.len(), 4);
        assert_eq!(dropped, 6);
        // A clean second interval drains empty with zero drops…
        assert_eq!(s.drain_events(), (Vec::new(), 0));
        // …while the cumulative counter keeps the full history.
        assert_eq!(s.events_dropped(), 6);
        for _ in 0..5 {
            s.on_overflow();
        }
        let (events, dropped) = s.drain_events();
        assert_eq!(events.len(), 4);
        assert_eq!(dropped, 1, "only the new interval's evictions");
        assert_eq!(s.events_dropped(), 7);
    }

    #[test]
    fn ckpt_roundtrip_restores_exact_state_machine() {
        let mut s = LossScaler::new(4096.0)
            .with_growth(2.0, 3)
            .with_backoff(0.5)
            .with_bounds(1.0, 65536.0)
            .with_event_capacity(8);
        s.on_clean_step();
        s.on_overflow();
        s.on_clean_step();
        let mut r = LossScaler::from_ckpt(&s.to_ckpt());
        assert_eq!(r.scale().to_bits(), s.scale().to_bits());
        assert_eq!(r.overflows(), s.overflows());
        assert!(r.events().is_empty(), "the log itself is not state");
        // The state machines continue identically from here.
        for _ in 0..5 {
            s.on_clean_step();
            r.on_clean_step();
            assert_eq!(r.scale().to_bits(), s.scale().to_bits());
        }
        s.on_overflow();
        r.on_overflow();
        assert_eq!(r.scale().to_bits(), s.scale().to_bits());
    }

    #[test]
    fn bounds_are_respected() {
        let mut s = LossScaler::new(4.0).with_bounds(2.0, 8.0).with_growth(2.0, 1);
        s.on_overflow();
        assert_eq!(s.scale(), 2.0);
        s.on_overflow();
        assert_eq!(s.scale(), 2.0); // clamped at min
        for _ in 0..4 {
            s.on_clean_step();
        }
        assert_eq!(s.scale(), 8.0); // clamped at max
    }
}
