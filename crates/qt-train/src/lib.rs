//! Training and evaluation machinery: optimizers (SGD, AdamW), a
//! quantization-aware [`Trainer`], loss scaling, greedy decoding, and the
//! paper's metrics (token-overlap F1, accuracy, word error rate,
//! perplexity).

#![warn(missing_docs)]

pub mod error;
pub mod eval;
pub mod metrics;
pub mod optim;
pub mod scaler;
pub mod trainer;

pub use error::TrainError;
pub use eval::{
    evaluate_asr_wer, evaluate_classify, evaluate_lm_perplexity, evaluate_span_f1, greedy_decode,
};
pub use metrics::{accuracy, exact_match, span_f1, wer};
pub use optim::{AdamW, CheckpointOptimizer, Optimizer, Sgd};
pub use scaler::{LossScaler, ScalerEvent};
pub use trainer::Trainer;
