//! Optimizers over named parameters.

use qt_tensor::Tensor;
use qt_transformer::ParamStore;
use std::collections::BTreeMap;

/// An optimizer applying named gradients to a [`ParamStore`].
pub trait Optimizer {
    /// Apply one update step. Parameters without a gradient are untouched.
    fn step(&mut self, params: &mut ParamStore, grads: &BTreeMap<String, Tensor>);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Set the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);

    /// Bytes of optimizer state per trainable parameter element
    /// (used by the fine-tuning memory model, Figure 14).
    fn state_bytes_per_param(&self) -> usize;
}

/// Stochastic gradient descent with optional momentum.
///
/// The paper falls back to SGD for MobileBERT on SQuAD, where AdamW's
/// second-moment statistics diverge under 8-bit gradients (§6.3).
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: BTreeMap<String, Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: BTreeMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &BTreeMap<String, Tensor>) {
        for (name, g) in grads {
            if !params.contains(name) {
                continue;
            }
            let update = if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(name.clone())
                    .or_insert_with(|| Tensor::zeros(g.shape()));
                *v = v.mul_scalar(self.momentum).add(g);
                v.clone()
            } else {
                g.clone()
            };
            let lr = self.lr;
            params.get_mut(name).zip_inplace(&update, |p, u| p - lr * u);
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn state_bytes_per_param(&self) -> usize {
        if self.momentum > 0.0 {
            4
        } else {
            0
        }
    }
}

/// AdamW (decoupled weight decay), the paper's default fine-tuning
/// optimizer.
#[derive(Debug, Clone)]
pub struct AdamW {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: BTreeMap<String, Tensor>,
    v: BTreeMap<String, Tensor>,
}

impl AdamW {
    /// AdamW with standard betas (0.9, 0.999) and weight decay 0.01.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            t: 0,
            m: BTreeMap::new(),
            v: BTreeMap::new(),
        }
    }

    /// Override weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, params: &mut ParamStore, grads: &BTreeMap<String, Tensor>) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (name, g) in grads {
            if !params.contains(name) {
                continue;
            }
            let m = self
                .m
                .entry(name.clone())
                .or_insert_with(|| Tensor::zeros(g.shape()));
            *m = m.mul_scalar(self.beta1).add(&g.mul_scalar(1.0 - self.beta1));
            let v = self
                .v
                .entry(name.clone())
                .or_insert_with(|| Tensor::zeros(g.shape()));
            *v = v
                .mul_scalar(self.beta2)
                .add(&g.mul(g).mul_scalar(1.0 - self.beta2));
            let mhat = m.mul_scalar(1.0 / bc1);
            let vhat = v.mul_scalar(1.0 / bc2);
            let (lr, eps, wd) = (self.lr, self.eps, self.weight_decay);
            let update = mhat.zip(&vhat, |mm, vv| mm / (vv.sqrt() + eps));
            let p = params.get_mut(name);
            // decoupled weight decay
            if wd > 0.0 {
                p.map_inplace(|x| x * (1.0 - lr * wd));
            }
            p.zip_inplace(&update, |x, u| x - lr * u);
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn state_bytes_per_param(&self) -> usize {
        8 // two f32 moments
    }
}

/// Clip gradients to a global L2 norm; returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut BTreeMap<String, Tensor>, max_norm: f32) -> f32 {
    let mut sq = 0.0f64;
    for g in grads.values() {
        sq += g.data().iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
    }
    let norm = sq.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let s = max_norm / norm;
        for g in grads.values_mut() {
            g.map_inplace(|x| x * s);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_setup() -> (ParamStore, Tensor) {
        let mut p = ParamStore::new();
        p.insert("x", Tensor::from_vec(vec![5.0, -3.0], &[2]));
        (p, Tensor::zeros(&[2]))
    }

    fn grad_of(p: &ParamStore) -> BTreeMap<String, Tensor> {
        // f = x², grad = 2x
        let mut g = BTreeMap::new();
        g.insert("x".to_string(), p.get("x").mul_scalar(2.0));
        g
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let (mut p, _) = quadratic_setup();
        let mut opt = Sgd::new(0.1);
        for _ in 0..50 {
            let g = grad_of(&p);
            opt.step(&mut p, &g);
        }
        assert!(p.get("x").amax() < 1e-3);
        assert_eq!(opt.state_bytes_per_param(), 0);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |mom: f32| {
            let (mut p, _) = quadratic_setup();
            let mut opt = Sgd::with_momentum(0.02, mom);
            for _ in 0..30 {
                let g = grad_of(&p);
                opt.step(&mut p, &g);
            }
            p.get("x").amax()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adamw_converges_on_quadratic() {
        let (mut p, _) = quadratic_setup();
        let mut opt = AdamW::new(0.3).with_weight_decay(0.0);
        for _ in 0..200 {
            let g = grad_of(&p);
            opt.step(&mut p, &g);
        }
        assert!(p.get("x").amax() < 1e-2, "{}", p.get("x").amax());
        assert_eq!(opt.state_bytes_per_param(), 8);
    }

    #[test]
    fn weight_decay_shrinks_unused_params() {
        let mut p = ParamStore::new();
        p.insert("w", Tensor::from_vec(vec![1.0], &[1]));
        let mut opt = AdamW::new(0.1);
        let mut g = BTreeMap::new();
        g.insert("w".to_string(), Tensor::zeros(&[1]));
        for _ in 0..10 {
            opt.step(&mut p, &g);
        }
        assert!(p.get("w").data()[0] < 1.0);
    }

    #[test]
    fn unknown_grads_ignored() {
        let (mut p, _) = quadratic_setup();
        let mut g = BTreeMap::new();
        g.insert("ghost".to_string(), Tensor::ones(&[2]));
        Sgd::new(0.1).step(&mut p, &g);
        assert_eq!(p.get("x").data(), &[5.0, -3.0]);
    }

    #[test]
    fn clipping() {
        let mut g = BTreeMap::new();
        g.insert("a".to_string(), Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let norm = clip_global_norm(&mut g, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let clipped: f32 = g["a"].data().iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((clipped - 1.0).abs() < 1e-5);
        // under the limit: untouched
        let norm2 = clip_global_norm(&mut g, 10.0);
        assert!((norm2 - 1.0).abs() < 1e-5);
    }
}
