//! Optimizers over named parameters.

use qt_ckpt::{CkptError, OptState, TensorBlob};
use qt_tensor::Tensor;
use qt_transformer::ParamStore;
use std::collections::BTreeMap;

/// An optimizer applying named gradients to a [`ParamStore`].
pub trait Optimizer {
    /// Apply one update step. Parameters without a gradient are untouched.
    fn step(&mut self, params: &mut ParamStore, grads: &BTreeMap<String, Tensor>);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Set the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);

    /// Bytes of optimizer state per trainable parameter element
    /// (used by the fine-tuning memory model, Figure 14).
    fn state_bytes_per_param(&self) -> usize;
}

/// Conversion between an optimizer and its serializable checkpoint form.
///
/// `export` and `import` must be exact inverses on the bit level: a
/// resumed run steps with the same moments (and the same `t`) as the
/// uninterrupted one, which is what makes resumption bitwise-identical.
pub trait CheckpointOptimizer: Optimizer + Sized {
    /// Export hyperparameters and moment tensors.
    fn export_state(&self) -> OptState;

    /// Rebuild an optimizer from exported state.
    ///
    /// # Errors
    ///
    /// [`CkptError::Malformed`] when the state's `kind` does not match
    /// this optimizer or a required field is missing.
    fn import_state(state: &OptState) -> Result<Self, CkptError>;
}

fn export_slot(map: &BTreeMap<String, Tensor>) -> Vec<TensorBlob> {
    // BTreeMap iterates in key order: the export is deterministic.
    map.iter()
        .map(|(name, t)| TensorBlob::from_f32(name.clone(), t.shape(), t.data()))
        .collect()
}

fn import_slot(blobs: &[TensorBlob]) -> BTreeMap<String, Tensor> {
    blobs
        .iter()
        .map(|b| {
            (
                b.name.clone(),
                Tensor::from_vec(b.to_f32(), &b.shape_usize()),
            )
        })
        .collect()
}

fn require_scalar(state: &OptState, name: &str) -> Result<u64, CkptError> {
    state.scalar(name).ok_or_else(|| {
        CkptError::Malformed(format!("optimizer state missing scalar {name:?}"))
    })
}

fn require_scalar_f32(state: &OptState, name: &str) -> Result<f32, CkptError> {
    require_scalar(state, name).map(|v| f32::from_bits(v as u32))
}

/// Stochastic gradient descent with optional momentum.
///
/// The paper falls back to SGD for MobileBERT on SQuAD, where AdamW's
/// second-moment statistics diverge under 8-bit gradients (§6.3).
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: BTreeMap<String, Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: BTreeMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &BTreeMap<String, Tensor>) {
        for (name, g) in grads {
            if !params.contains(name) {
                continue;
            }
            let update = if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(name.clone())
                    .or_insert_with(|| Tensor::zeros(g.shape()));
                *v = v.mul_scalar(self.momentum).add(g);
                v.clone()
            } else {
                g.clone()
            };
            let lr = self.lr;
            params.get_mut(name).zip_inplace(&update, |p, u| p - lr * u);
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn state_bytes_per_param(&self) -> usize {
        if self.momentum > 0.0 {
            4
        } else {
            0
        }
    }
}

impl CheckpointOptimizer for Sgd {
    fn export_state(&self) -> OptState {
        OptState {
            kind: "sgd".into(),
            scalars: vec![
                ("lr".into(), self.lr.to_bits() as u64),
                ("momentum".into(), self.momentum.to_bits() as u64),
            ],
            slots: vec![("velocity".into(), export_slot(&self.velocity))],
        }
    }

    fn import_state(state: &OptState) -> Result<Self, CkptError> {
        if state.kind != "sgd" {
            return Err(CkptError::Malformed(format!(
                "expected sgd optimizer state, found {:?}",
                state.kind
            )));
        }
        Ok(Self {
            lr: require_scalar_f32(state, "lr")?,
            momentum: require_scalar_f32(state, "momentum")?,
            velocity: import_slot(state.slot("velocity").unwrap_or(&[])),
        })
    }
}

/// AdamW (decoupled weight decay), the paper's default fine-tuning
/// optimizer.
#[derive(Debug, Clone)]
pub struct AdamW {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: BTreeMap<String, Tensor>,
    v: BTreeMap<String, Tensor>,
}

impl AdamW {
    /// AdamW with standard betas (0.9, 0.999) and weight decay 0.01.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            t: 0,
            m: BTreeMap::new(),
            v: BTreeMap::new(),
        }
    }

    /// Override weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, params: &mut ParamStore, grads: &BTreeMap<String, Tensor>) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (name, g) in grads {
            if !params.contains(name) {
                continue;
            }
            let m = self
                .m
                .entry(name.clone())
                .or_insert_with(|| Tensor::zeros(g.shape()));
            *m = m.mul_scalar(self.beta1).add(&g.mul_scalar(1.0 - self.beta1));
            let v = self
                .v
                .entry(name.clone())
                .or_insert_with(|| Tensor::zeros(g.shape()));
            *v = v
                .mul_scalar(self.beta2)
                .add(&g.mul(g).mul_scalar(1.0 - self.beta2));
            let mhat = m.mul_scalar(1.0 / bc1);
            let vhat = v.mul_scalar(1.0 / bc2);
            let (lr, eps, wd) = (self.lr, self.eps, self.weight_decay);
            let update = mhat.zip(&vhat, |mm, vv| mm / (vv.sqrt() + eps));
            let p = params.get_mut(name);
            // decoupled weight decay
            if wd > 0.0 {
                p.map_inplace(|x| x * (1.0 - lr * wd));
            }
            p.zip_inplace(&update, |x, u| x - lr * u);
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn state_bytes_per_param(&self) -> usize {
        8 // two f32 moments
    }
}

impl CheckpointOptimizer for AdamW {
    fn export_state(&self) -> OptState {
        OptState {
            kind: "adamw".into(),
            scalars: vec![
                ("lr".into(), self.lr.to_bits() as u64),
                ("beta1".into(), self.beta1.to_bits() as u64),
                ("beta2".into(), self.beta2.to_bits() as u64),
                ("eps".into(), self.eps.to_bits() as u64),
                ("weight_decay".into(), self.weight_decay.to_bits() as u64),
                ("t".into(), self.t),
            ],
            slots: vec![
                ("m".into(), export_slot(&self.m)),
                ("v".into(), export_slot(&self.v)),
            ],
        }
    }

    fn import_state(state: &OptState) -> Result<Self, CkptError> {
        if state.kind != "adamw" {
            return Err(CkptError::Malformed(format!(
                "expected adamw optimizer state, found {:?}",
                state.kind
            )));
        }
        Ok(Self {
            lr: require_scalar_f32(state, "lr")?,
            beta1: require_scalar_f32(state, "beta1")?,
            beta2: require_scalar_f32(state, "beta2")?,
            eps: require_scalar_f32(state, "eps")?,
            weight_decay: require_scalar_f32(state, "weight_decay")?,
            t: require_scalar(state, "t")?,
            m: import_slot(state.slot("m").unwrap_or(&[])),
            v: import_slot(state.slot("v").unwrap_or(&[])),
        })
    }
}

/// Clip gradients to a global L2 norm; returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut BTreeMap<String, Tensor>, max_norm: f32) -> f32 {
    let mut sq = 0.0f64;
    for g in grads.values() {
        sq += g.data().iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
    }
    let norm = sq.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let s = max_norm / norm;
        for g in grads.values_mut() {
            g.map_inplace(|x| x * s);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_setup() -> (ParamStore, Tensor) {
        let mut p = ParamStore::new();
        p.insert("x", Tensor::from_vec(vec![5.0, -3.0], &[2]));
        (p, Tensor::zeros(&[2]))
    }

    fn grad_of(p: &ParamStore) -> BTreeMap<String, Tensor> {
        // f = x², grad = 2x
        let mut g = BTreeMap::new();
        g.insert("x".to_string(), p.get("x").mul_scalar(2.0));
        g
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let (mut p, _) = quadratic_setup();
        let mut opt = Sgd::new(0.1);
        for _ in 0..50 {
            let g = grad_of(&p);
            opt.step(&mut p, &g);
        }
        assert!(p.get("x").amax() < 1e-3);
        assert_eq!(opt.state_bytes_per_param(), 0);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |mom: f32| {
            let (mut p, _) = quadratic_setup();
            let mut opt = Sgd::with_momentum(0.02, mom);
            for _ in 0..30 {
                let g = grad_of(&p);
                opt.step(&mut p, &g);
            }
            p.get("x").amax()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adamw_converges_on_quadratic() {
        let (mut p, _) = quadratic_setup();
        let mut opt = AdamW::new(0.3).with_weight_decay(0.0);
        for _ in 0..200 {
            let g = grad_of(&p);
            opt.step(&mut p, &g);
        }
        assert!(p.get("x").amax() < 1e-2, "{}", p.get("x").amax());
        assert_eq!(opt.state_bytes_per_param(), 8);
    }

    #[test]
    fn weight_decay_shrinks_unused_params() {
        let mut p = ParamStore::new();
        p.insert("w", Tensor::from_vec(vec![1.0], &[1]));
        let mut opt = AdamW::new(0.1);
        let mut g = BTreeMap::new();
        g.insert("w".to_string(), Tensor::zeros(&[1]));
        for _ in 0..10 {
            opt.step(&mut p, &g);
        }
        assert!(p.get("w").data()[0] < 1.0);
    }

    #[test]
    fn unknown_grads_ignored() {
        let (mut p, _) = quadratic_setup();
        let mut g = BTreeMap::new();
        g.insert("ghost".to_string(), Tensor::ones(&[2]));
        Sgd::new(0.1).step(&mut p, &g);
        assert_eq!(p.get("x").data(), &[5.0, -3.0]);
    }

    #[test]
    fn optimizer_ckpt_roundtrip_continues_bitwise() {
        // Train a few steps, export/import, and verify both copies apply
        // bit-identical updates from there on.
        let (mut p, _) = quadratic_setup();
        let mut opt = AdamW::new(0.1);
        for _ in 0..5 {
            let g = grad_of(&p);
            opt.step(&mut p, &g);
        }
        let mut restored = AdamW::import_state(&opt.export_state()).unwrap();
        let mut p2 = p.clone();
        for _ in 0..5 {
            let g = grad_of(&p);
            opt.step(&mut p, &g);
            let g2 = grad_of(&p2);
            restored.step(&mut p2, &g2);
        }
        let (a, b) = (p.get("x").data(), p2.get("x").data());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        let mut sgd = Sgd::with_momentum(0.05, 0.9);
        let (mut q, _) = quadratic_setup();
        for _ in 0..3 {
            let g = grad_of(&q);
            sgd.step(&mut q, &g);
        }
        let back = Sgd::import_state(&sgd.export_state()).unwrap();
        assert_eq!(back.lr(), sgd.lr());
        assert_eq!(
            back.export_state(),
            sgd.export_state(),
            "export is a fixed point"
        );
    }

    #[test]
    fn optimizer_kind_mismatch_rejected() {
        let state = AdamW::new(0.1).export_state();
        assert!(Sgd::import_state(&state).is_err());
        let state = Sgd::new(0.1).export_state();
        assert!(AdamW::import_state(&state).is_err());
    }

    #[test]
    fn clipping() {
        let mut g = BTreeMap::new();
        g.insert("a".to_string(), Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let norm = clip_global_norm(&mut g, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let clipped: f32 = g["a"].data().iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((clipped - 1.0).abs() < 1e-5);
        // under the limit: untouched
        let norm2 = clip_global_norm(&mut g, 10.0);
        assert!((norm2 - 1.0).abs() < 1e-5);
    }
}
