//! Typed errors for the training loop.

use std::fmt;

/// Error from a checked training step.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// Too many consecutive steps were skipped for non-finite gradients
    /// and no snapshot exists to roll back to — the run cannot make
    /// progress.
    Diverged {
        /// Consecutive skipped steps at the time of the report.
        consecutive_skips: usize,
        /// The (unscaled) loss of the last step.
        loss: f32,
    },
    /// Saving or restoring a checkpoint failed.
    Ckpt(qt_ckpt::CkptError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Diverged {
                consecutive_skips,
                loss,
            } => write!(
                f,
                "training diverged: {consecutive_skips} consecutive non-finite steps \
                 (last loss {loss}) and no snapshot to roll back to"
            ),
            TrainError::Ckpt(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<qt_ckpt::CkptError> for TrainError {
    fn from(e: qt_ckpt::CkptError) -> Self {
        TrainError::Ckpt(e)
    }
}
