//! Evaluation loops: span F1, classification accuracy, teacher-forced
//! perplexity, and greedy-decoded WER.

use crate::metrics::{accuracy, span_f1, wer, Perplexity};
use qt_autograd::Tape;
use qt_datagen::{tokens, AsrExample, AsrTask, SpanExample, SpanTask};
use qt_transformer::{Model, QuantCtx, TokenBatch, TrainMode};

/// Evaluate span-extraction F1 (in percent, like the paper's tables).
pub fn evaluate_span_f1(
    model: &Model,
    qctx: &QuantCtx,
    task: &SpanTask,
    examples: &[SpanExample],
    batch_size: usize,
) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for chunk in examples.chunks(batch_size.max(1)) {
        let (batch, gold) = task.batch(chunk);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, qctx, &batch, None, TrainMode::Frozen);
        let logits = tape.value(out.logits); // [B, S, 2]
        for (b, &(gs, ge)) in gold.iter().enumerate() {
            let pred = best_span(logits, &batch, b, task.answer_len);
            total += span_f1(pred, (gs, ge));
            n += 1;
        }
    }
    100.0 * total / n.max(1) as f64
}

/// Argmax start over valid positions, then best end in
/// `[start, start + max_len)`.
fn best_span(
    logits: &qt_tensor::Tensor,
    batch: &TokenBatch,
    b: usize,
    max_len: usize,
) -> (usize, usize) {
    let s = batch.seq;
    let at = |pos: usize, which: usize| logits.at(&[b, pos, which]);
    let mut best_start = 0;
    let mut best = f32::NEG_INFINITY;
    for pos in 0..s {
        if batch.valid[b * s + pos] && at(pos, 0) > best {
            best = at(pos, 0);
            best_start = pos;
        }
    }
    let mut best_end = best_start;
    let mut beste = f32::NEG_INFINITY;
    for pos in best_start..(best_start + max_len.max(1) + 2).min(s) {
        if batch.valid[b * s + pos] && at(pos, 1) > beste {
            beste = at(pos, 1);
            best_end = pos;
        }
    }
    (best_start, best_end)
}

/// Evaluate classification accuracy (percent).
pub fn evaluate_classify(
    model: &Model,
    qctx: &QuantCtx,
    batches: &[(TokenBatch, Vec<usize>)],
) -> f64 {
    let mut preds = Vec::new();
    let mut golds = Vec::new();
    for (batch, labels) in batches {
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, qctx, batch, None, TrainMode::Frozen);
        preds.extend(tape.value(out.logits).argmax_lastdim());
        golds.extend_from_slice(labels);
    }
    100.0 * accuracy(&preds, &golds)
}

/// Teacher-forced perplexity of a causal LM over `(batch, targets)` pairs
/// (`usize::MAX` targets ignored).
pub fn evaluate_lm_perplexity(
    model: &Model,
    qctx: &QuantCtx,
    batches: &[(TokenBatch, Vec<usize>)],
) -> f64 {
    let mut ppl = Perplexity::new();
    for (batch, targets) in batches {
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, qctx, batch, None, TrainMode::Frozen);
        let logits = tape.value(out.logits); // [B, S, V]
        let v = model.cfg.vocab;
        let ls = logits.log_softmax_lastdim();
        for (row, &t) in targets.iter().enumerate() {
            if t == usize::MAX {
                continue;
            }
            let nll = -(ls.data()[row * v + t] as f64);
            ppl.add(nll, 1);
        }
    }
    ppl.value()
}

/// Greedy autoregressive decode of an encoder-decoder model: returns the
/// generated token sequence (without BOS/EOS) for each encoder row.
pub fn greedy_decode(
    model: &Model,
    qctx: &QuantCtx,
    enc: &TokenBatch,
    max_len: usize,
) -> Vec<Vec<usize>> {
    let b = enc.batch;
    let dec_len = max_len + 2;
    let mut generated: Vec<Vec<usize>> = vec![Vec::new(); b];
    let mut done = vec![false; b];
    for step in 0..max_len + 1 {
        // build the current decoder batch: BOS + generated (padded)
        let mut ids = Vec::with_capacity(b * dec_len);
        let mut valid = Vec::with_capacity(b * dec_len);
        for g in &generated {
            ids.push(tokens::BOS);
            ids.extend_from_slice(g);
            ids.resize(ids.len() + dec_len - 1 - g.len(), tokens::PAD);
            let mut v = vec![true; 1 + g.len()];
            v.resize(dec_len, false);
            valid.extend_from_slice(&v);
        }
        let dec = TokenBatch::with_mask(ids, b, dec_len, valid);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, qctx, enc, Some(&dec), TrainMode::Frozen);
        let logits = tape.value(out.logits); // [B, dec_len, V]
        let v = model.cfg.vocab;
        let mut all_done = true;
        for bi in 0..b {
            if done[bi] {
                continue;
            }
            let pos = step; // predict from the last valid position
            let row = &logits.data()[(bi * dec_len + pos) * v..(bi * dec_len + pos + 1) * v];
            let (tok, _) = row
                .iter()
                .enumerate()
                .fold((0usize, f32::NEG_INFINITY), |acc, (i, &x)| {
                    if x > acc.1 {
                        (i, x)
                    } else {
                        acc
                    }
                });
            if tok == tokens::EOS || generated[bi].len() >= max_len {
                done[bi] = true;
            } else {
                generated[bi].push(tok);
                all_done = false;
            }
        }
        if all_done && done.iter().all(|&d| d) {
            break;
        }
    }
    generated
}

/// Evaluate WER (percent) of an encoder-decoder model on ASR examples.
pub fn evaluate_asr_wer(
    model: &Model,
    qctx: &QuantCtx,
    task: &AsrTask,
    examples: &[AsrExample],
    batch_size: usize,
) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for chunk in examples.chunks(batch_size.max(1)) {
        let (enc, _, _) = task.batch(chunk);
        let hyps = greedy_decode(model, qctx, &enc, task.max_words);
        for (hyp, ex) in hyps.iter().zip(chunk) {
            total += wer(hyp, &ex.transcript);
            n += 1;
        }
    }
    100.0 * total / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_datagen::{ClassifyKind, ClassifyTask, LmTask};
    use qt_quant::QuantScheme;
    use qt_transformer::{TaskHead, TransformerConfig};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn span_eval_runs_and_is_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cfg = TransformerConfig::mobilebert_tiny_sim();
        cfg.layers = 1;
        let task = SpanTask::new(cfg.vocab, 16);
        let model = Model::new(cfg, TaskHead::Span, &mut rng);
        let qctx = QuantCtx::inference(QuantScheme::fp32());
        let data = task.dataset(8, 2);
        let f1 = evaluate_span_f1(&model, &qctx, &task, &data, 4);
        assert!((0.0..=100.0).contains(&f1));
    }

    #[test]
    fn classify_eval_untrained_near_chance() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut cfg = TransformerConfig::bert_base_sim();
        cfg.layers = 1;
        let task = ClassifyTask::new(ClassifyKind::Sst2, cfg.vocab, 16);
        let model = Model::new(cfg, TaskHead::Classify(2), &mut rng);
        let qctx = QuantCtx::inference(QuantScheme::fp32());
        let data = task.dataset(64, 3);
        let batches: Vec<_> = data.chunks(16).map(|c| task.batch(c)).collect();
        let acc = evaluate_classify(&model, &qctx, &batches);
        assert!((20.0..=80.0).contains(&acc), "untrained acc {acc}");
    }

    #[test]
    fn lm_perplexity_untrained_near_vocab() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg = TransformerConfig::gpt2_large_sim();
        cfg.layers = 1;
        let lm = LmTask::new(cfg.vocab, 16, 0);
        let model = Model::new(cfg.clone(), TaskHead::LmTied, &mut rng);
        let qctx = QuantCtx::inference(QuantScheme::fp32());
        let rows = lm.dataset(8, 1);
        let batches: Vec<_> = rows.chunks(4).map(|c| lm.batch(c)).collect();
        let ppl = evaluate_lm_perplexity(&model, &qctx, &batches);
        // untrained with tied embeddings: confidently wrong is possible,
        // so just require "far from solved" and finite
        assert!(ppl > 20.0 && ppl.is_finite(), "{ppl}");
        let _ = &cfg;
    }

    #[test]
    fn greedy_decode_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut cfg = TransformerConfig::whisper_tiny_sim();
        cfg.layers = 1;
        let task = AsrTask::new(cfg.vocab, 16, 4);
        let model = Model::new(cfg, TaskHead::LmTied, &mut rng);
        let qctx = QuantCtx::inference(QuantScheme::fp32());
        let data = task.dataset(3, 5);
        let (enc, _, _) = task.batch(&data);
        let out = greedy_decode(&model, &qctx, &enc, task.max_words);
        assert_eq!(out.len(), 3);
        for hyp in &out {
            assert!(hyp.len() <= task.max_words);
        }
        let w = evaluate_asr_wer(&model, &qctx, &task, &data, 3);
        assert!(w >= 0.0);
    }
}
