//! The [`Tensor`] type: construction and elementwise operations.

use crate::shape::{broadcast_shapes, broadcast_strides, strides_of};
use rand::Rng;

/// A dense, contiguous, row-major `f32` tensor.
///
/// See the [crate docs](crate) for semantics; construction examples:
///
/// ```
/// use qt_tensor::Tensor;
/// let z = Tensor::zeros(&[2, 3]);
/// assert_eq!(z.shape(), &[2, 3]);
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
/// assert_eq!(x.add(&z).shape(), &[2, 3]); // broadcast over rows
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    // ---------- construction ----------

    /// Tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            shape: shape.to_vec(),
            data: vec![value; shape.iter().product()],
        }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: vec![],
            data: vec![value],
        }
    }

    /// Build from a flat vector and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.iter().product()`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length {} does not match shape {shape:?}",
            data.len()
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Identity matrix of size `n x n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// `[0, 1, …, n-1]` as a 1-D tensor.
    pub fn arange(n: usize) -> Self {
        Self::from_vec((0..n).map(|i| i as f32).collect(), &[n])
    }

    /// Standard-normal random tensor (Box–Muller over the given RNG, for
    /// bit-reproducible initialisation independent of `rand` internals).
    pub fn randn(shape: &[usize], rng: &mut impl Rng) -> Self {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * libm::log(u1)).sqrt();
            let th = 2.0 * core::f64::consts::PI * u2;
            data.push((r * libm::cos(th)) as f32);
            if data.len() < n {
                data.push((r * libm::sin(th)) as f32);
            }
        }
        Self::from_vec(data, shape)
    }

    /// Uniform random tensor in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Self::from_vec(data, shape)
    }

    // ---------- accessors ----------

    /// The shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat data slice (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index.len() != ndim` or any coordinate is out of range.
    pub fn at(&self, index: &[usize]) -> f32 {
        assert_eq!(index.len(), self.ndim(), "index rank mismatch");
        let strides = strides_of(&self.shape);
        let mut off = 0;
        for (i, (&ix, &d)) in index.iter().zip(&self.shape).enumerate() {
            assert!(ix < d, "index {ix} out of range for axis {i} (len {d})");
            off += ix * strides[i];
        }
        self.data[off]
    }

    /// Set the element at a multi-index. Panics like [`Tensor::at`].
    pub fn set(&mut self, index: &[usize], value: f32) {
        assert_eq!(index.len(), self.ndim(), "index rank mismatch");
        let strides = strides_of(&self.shape);
        let mut off = 0;
        for (i, (&ix, &d)) in index.iter().zip(&self.shape).enumerate() {
            assert!(ix < d, "index {ix} out of range for axis {i} (len {d})");
            off += ix * strides[i];
        }
        self.data[off] = value;
    }

    /// Reinterpret with a new shape of the same element count.
    ///
    /// One axis may be `usize::MAX` ("infer"). `reshape` is a metadata
    /// operation; data is shared by clone-on-write semantics (here: moved).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, new_shape: &[usize]) -> Self {
        let mut shape = new_shape.to_vec();
        if let Some(pos) = shape.iter().position(|&d| d == usize::MAX) {
            let known: usize = shape.iter().filter(|&&d| d != usize::MAX).product();
            assert!(known > 0 && self.len().is_multiple_of(known), "cannot infer axis");
            shape[pos] = self.len() / known;
        }
        assert_eq!(
            shape.iter().product::<usize>(),
            self.len(),
            "reshape {:?} -> {new_shape:?} changes element count",
            self.shape
        );
        self.shape = shape;
        self
    }

    // ---------- elementwise ----------

    /// Apply `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Self {
        let mut data = vec![0.0f32; self.data.len()];
        if data.len() < ELEM_CHUNK {
            for (o, &x) in data.iter_mut().zip(&self.data) {
                *o = f(x);
            }
        } else {
            let src = &self.data;
            qt_par::parallel_for_slices_mut(&mut data, ELEM_CHUNK, |_, off, out| {
                let end = off + out.len();
                for (o, &x) in out.iter_mut().zip(&src[off..end]) {
                    *o = f(x);
                }
            });
        }
        Self {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Apply `f` in place to every element.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        if self.data.len() < ELEM_CHUNK {
            for x in &mut self.data {
                *x = f(*x);
            }
        } else {
            qt_par::parallel_for_slices_mut(&mut self.data, ELEM_CHUNK, |_, _, chunk| {
                for x in chunk {
                    *x = f(*x);
                }
            });
        }
    }

    /// Consuming [`Tensor::map`]: reuses the allocation when the caller
    /// hands over ownership.
    pub fn mapv(mut self, f: impl Fn(f32) -> f32 + Sync) -> Self {
        self.map_inplace(f);
        self
    }

    /// Combine with another tensor elementwise under broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32 + Sync) -> Self {
        if self.shape == other.shape {
            // fast path
            let mut data = vec![0.0f32; self.data.len()];
            if data.len() < ELEM_CHUNK {
                for ((o, &a), &b) in data.iter_mut().zip(&self.data).zip(&other.data) {
                    *o = f(a, b);
                }
            } else {
                let (sa, sb) = (&self.data, &other.data);
                qt_par::parallel_for_slices_mut(&mut data, ELEM_CHUNK, |_, off, out| {
                    let end = off + out.len();
                    for ((o, &a), &b) in out.iter_mut().zip(&sa[off..end]).zip(&sb[off..end]) {
                        *o = f(a, b);
                    }
                });
            }
            return Self {
                shape: self.shape.clone(),
                data,
            };
        }
        let out_shape = broadcast_shapes(&self.shape, &other.shape);
        let sa = broadcast_strides(&self.shape, &out_shape);
        let sb = broadcast_strides(&other.shape, &out_shape);
        let mut out = Self::zeros(&out_shape);
        // Two passes of the broadcast walker, fused manually.
        let total = out.len();
        let nd = out_shape.len();
        let mut idx = vec![0usize; nd];
        let (mut oa, mut ob) = (0usize, 0usize);
        for o in 0..total {
            out.data[o] = f(self.data[oa], other.data[ob]);
            for ax in (0..nd).rev() {
                idx[ax] += 1;
                oa += sa[ax];
                ob += sb[ax];
                if idx[ax] < out_shape[ax] {
                    break;
                }
                oa -= sa[ax] * out_shape[ax];
                ob -= sb[ax] * out_shape[ax];
                idx[ax] = 0;
            }
        }
        out
    }

    /// Elementwise sum (broadcasting).
    pub fn add(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference (broadcasting).
    pub fn sub(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise product (broadcasting).
    pub fn mul(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise quotient (broadcasting).
    pub fn div(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a / b)
    }

    /// Negate every element.
    pub fn neg(&self) -> Self {
        self.map(|x| -x)
    }

    /// Add a scalar.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|x| x + s)
    }

    /// Multiply by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Elementwise maximum (broadcasting).
    pub fn maximum(&self, other: &Self) -> Self {
        self.zip(other, f32::max)
    }

    /// Elementwise `exp`.
    pub fn exp(&self) -> Self {
        self.map(libm::expf)
    }

    /// Elementwise natural log.
    pub fn ln(&self) -> Self {
        self.map(libm::logf)
    }

    /// Elementwise `tanh`.
    pub fn tanh(&self) -> Self {
        self.map(libm::tanhf)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Self {
        self.map(libm::sqrtf)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Self {
        self.map(f32::abs)
    }

    /// GELU activation (tanh approximation, as used by BERT-family models).
    pub fn gelu(&self) -> Self {
        self.map(gelu_scalar)
    }

    /// Derivative of [`Tensor::gelu`] with respect to its input.
    pub fn gelu_grad(&self) -> Self {
        self.map(gelu_grad_scalar)
    }

    /// ReLU activation.
    pub fn relu(&self) -> Self {
        self.map(|x| x.max(0.0))
    }

    /// Embedding lookup: `self` is a `[V, H]` table, `ids` are row indices
    /// (any shape); returns shape `ids.shape() ++ [H]`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or any id is out of range / non-integral.
    pub fn gather_rows(&self, ids: &[usize], ids_shape: &[usize]) -> Self {
        assert_eq!(self.ndim(), 2, "gather_rows table must be 2-D");
        let (v, h) = (self.shape[0], self.shape[1]);
        let mut out_shape = ids_shape.to_vec();
        out_shape.push(h);
        let mut data = Vec::with_capacity(ids.len() * h);
        for &id in ids {
            assert!(id < v, "embedding id {id} out of range (vocab {v})");
            data.extend_from_slice(&self.data[id * h..(id + 1) * h]);
        }
        Self::from_vec(data, &out_shape)
    }

    /// Scatter-add rows: the transpose of [`Tensor::gather_rows`], used for
    /// embedding gradients. `grads` has shape `[..., H]` flattened to match
    /// `ids`; accumulates into `self` (a `[V, H]` table).
    pub fn scatter_add_rows(&mut self, ids: &[usize], grads: &Self) {
        assert_eq!(self.ndim(), 2, "scatter target must be 2-D");
        let h = self.shape[1];
        assert_eq!(grads.len(), ids.len() * h, "scatter grad size mismatch");
        for (i, &id) in ids.iter().enumerate() {
            for j in 0..h {
                self.data[id * h + j] += grads.data[i * h + j];
            }
        }
    }

    /// Concatenate along the last axis.
    ///
    /// # Panics
    ///
    /// Panics if tensors disagree on any other axis or `parts` is empty.
    pub fn concat_lastdim(parts: &[&Self]) -> Self {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let lead = &parts[0].shape[..parts[0].ndim() - 1];
        let rows: usize = lead.iter().product();
        let total_last: usize = parts
            .iter()
            .map(|p| {
                assert_eq!(
                    &p.shape[..p.ndim() - 1],
                    lead,
                    "concat leading-shape mismatch"
                );
                p.shape[p.ndim() - 1]
            })
            .sum();
        let mut shape = lead.to_vec();
        shape.push(total_last);
        let mut data = Vec::with_capacity(rows * total_last);
        for r in 0..rows {
            for p in parts {
                let last = p.shape[p.ndim() - 1];
                data.extend_from_slice(&p.data[r * last..(r + 1) * last]);
            }
        }
        Self::from_vec(data, &shape)
    }

    /// Evaluate elementwise against a broadcast companion, writing into self
    /// (used by optimizers). Shapes must match exactly.
    pub fn zip_inplace(&mut self, other: &Self, f: impl Fn(f32, f32) -> f32 + Sync) {
        assert_eq!(self.shape, other.shape, "zip_inplace shape mismatch");
        if self.data.len() < ELEM_CHUNK {
            for (a, &b) in self.data.iter_mut().zip(&other.data) {
                *a = f(*a, b);
            }
        } else {
            let src = &other.data;
            qt_par::parallel_for_slices_mut(&mut self.data, ELEM_CHUNK, |_, off, chunk| {
                let end = off + chunk.len();
                for (a, &b) in chunk.iter_mut().zip(&src[off..end]) {
                    *a = f(*a, b);
                }
            });
        }
    }
}

/// Elementwise-op chunk length. Fixed (never thread-count-dependent) so
/// chunk boundaries — and therefore the work decomposition — are identical
/// at every `QT_THREADS`.
const ELEM_CHUNK: usize = 16 * 1024;

/// GELU (tanh approximation).
fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + libm::tanhf(C * (x + 0.044715 * x * x * x)))
}

/// d/dx GELU (tanh approximation).
fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044715 * x * x * x);
    let t = libm::tanhf(u);
    let du = C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

impl core::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{} elements, first={:?}…]",
                self.len(),
                &self.data[..4.min(self.len())]
            )
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Self::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(Tensor::ones(&[3]).data(), &[1.0, 1.0, 1.0]);
        assert_eq!(Tensor::scalar(5.0).ndim(), 0);
        assert_eq!(Tensor::arange(3).data(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_shape() {
        Tensor::from_vec(vec![1.0], &[2]);
    }

    #[test]
    fn indexing() {
        let mut t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
        assert_eq!(t.at(&[0, 1, 0]), 4.0);
        t.set(&[1, 0, 0], -1.0);
        assert_eq!(t.at(&[1, 0, 0]), -1.0);
    }

    #[test]
    fn broadcasting_add() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let row = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        let col = Tensor::from_vec(vec![100.0, 200.0], &[2, 1]);
        assert_eq!(a.add(&row).data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        assert_eq!(
            a.add(&col).data(),
            &[101.0, 102.0, 103.0, 204.0, 205.0, 206.0]
        );
        // scalar broadcast
        assert_eq!(a.add(&Tensor::scalar(1.0)).data()[5], 7.0);
    }

    #[test]
    fn reshape_with_inference() {
        let t = Tensor::arange(12).reshape(&[3, usize::MAX]);
        assert_eq!(t.shape(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_bad() {
        Tensor::arange(5).reshape(&[2, 3]);
    }

    #[test]
    fn gelu_reference_values() {
        // Reference values from the tanh-approximation formula.
        let x = Tensor::from_vec(vec![-2.0, 0.0, 1.0, 3.0], &[4]);
        let g = x.gelu();
        assert!((g.data()[0] + 0.0454).abs() < 1e-3);
        assert_eq!(g.data()[1], 0.0);
        assert!((g.data()[2] - 0.8412).abs() < 1e-3);
        assert!((g.data()[3] - 2.9964).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -0.5, 0.0, 0.7, 2.5] {
            let t = Tensor::scalar(x);
            let g = t.gelu_grad().data()[0];
            let eps = 1e-3;
            let fd = (gelu_scalar(x + eps) - gelu_scalar(x - eps)) / (2.0 * eps);
            assert!((g - fd).abs() < 1e-3, "x={x} grad={g} fd={fd}");
        }
    }

    #[test]
    fn gather_and_scatter_roundtrip() {
        let table = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[4, 3]);
        let ids = [3usize, 0, 3];
        let g = table.gather_rows(&ids, &[3]);
        assert_eq!(g.shape(), &[3, 3]);
        assert_eq!(&g.data()[0..3], &[9.0, 10.0, 11.0]);
        let mut grad = Tensor::zeros(&[4, 3]);
        grad.scatter_add_rows(&ids, &Tensor::ones(&[3, 3]));
        assert_eq!(grad.at(&[3, 0]), 2.0); // id 3 hit twice
        assert_eq!(grad.at(&[0, 0]), 1.0);
        assert_eq!(grad.at(&[1, 0]), 0.0);
    }

    #[test]
    fn concat() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0], &[2, 1]);
        let c = Tensor::concat_lastdim(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
    }

    #[test]
    fn randn_statistics() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[10_000], &mut rng);
        let mean: f32 = t.data().iter().sum::<f32>() / 10_000.0;
        let var: f32 = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
