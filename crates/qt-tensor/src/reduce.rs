//! Reductions, softmax, layer normalisation.

use crate::tensor::Tensor;

/// Run `body` over every `last`-length row of `data`, parallelized over
/// row-aligned chunks. Chunk boundaries depend only on `last` and the
/// element count (never the thread count), and each row is processed
/// independently, so output is bitwise-identical at any `QT_THREADS`.
fn for_each_row(data: &mut [f32], last: usize, body: impl Fn(&mut [f32]) + Sync) {
    /// Target elements per chunk before rounding up to whole rows.
    const ROW_CHUNK: usize = 4 * 1024;
    let rows = data.len() / last;
    if rows <= 1 || data.len() < ROW_CHUNK {
        for row in data.chunks_mut(last) {
            body(row);
        }
    } else {
        let rows_per = (ROW_CHUNK / last).max(1);
        qt_par::parallel_for_slices_mut(data, rows_per * last, |_, _, chunk| {
            for row in chunk.chunks_mut(last) {
                body(row);
            }
        });
    }
}

impl Tensor {
    /// Sum of all elements.
    pub fn sum_all(&self) -> f32 {
        // Kahan summation: the carrier precision should not be the noise
        // floor of quantization experiments.
        let mut s = 0.0f32;
        let mut c = 0.0f32;
        for &x in self.data() {
            let y = x - c;
            let t = s + y;
            c = (t - s) - y;
            s = t;
        }
        s
    }

    /// Mean of all elements. Returns 0 for an empty tensor.
    pub fn mean_all(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum_all() / self.len() as f32
        }
    }

    /// Maximum absolute value (`amax`), the statistic per-tensor scaling
    /// tracks (paper §5.1). Returns 0 for an empty tensor.
    pub fn amax(&self) -> f32 {
        self.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Reduce an axis by summation, removing it.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= ndim`.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        self.reduce_axis(axis, 0.0, |a, b| a + b)
    }

    /// Reduce an axis by maximum, removing it.
    pub fn max_axis(&self, axis: usize) -> Tensor {
        self.reduce_axis(axis, f32::NEG_INFINITY, f32::max)
    }

    /// Mean over an axis, removing it.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let n = self.shape()[axis] as f32;
        self.sum_axis(axis).mul_scalar(1.0 / n)
    }

    fn reduce_axis(&self, axis: usize, init: f32, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert!(axis < self.ndim(), "axis {axis} out of range");
        let shape = self.shape();
        let out_shape: Vec<usize> = shape
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != axis)
            .map(|(_, &d)| d)
            .collect();
        let outer: usize = shape[..axis].iter().product();
        let alen = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        let mut out = Tensor::full(&out_shape, init);
        let odata = out.data_mut();
        for o in 0..outer {
            for a in 0..alen {
                for i in 0..inner {
                    let src = o * alen * inner + a * inner + i;
                    let dst = o * inner + i;
                    odata[dst] = f(odata[dst], self.data()[src]);
                }
            }
        }
        out
    }

    /// Index of the maximum element along the last axis.
    pub fn argmax_lastdim(&self) -> Vec<usize> {
        let last = *self.shape().last().expect("argmax of a scalar");
        let rows = self.len() / last;
        (0..rows)
            .map(|r| {
                let row = &self.data()[r * last..(r + 1) * last];
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Numerically-stable softmax over the last axis.
    pub fn softmax_lastdim(&self) -> Tensor {
        let last = *self.shape().last().expect("softmax of a scalar");
        let mut out = self.clone();
        for_each_row(out.data_mut(), last, |row| {
            let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = libm::expf(*x - m);
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        });
        out
    }

    /// Log-softmax over the last axis (stable).
    pub fn log_softmax_lastdim(&self) -> Tensor {
        let last = *self.shape().last().expect("log_softmax of a scalar");
        let mut out = self.clone();
        for_each_row(out.data_mut(), last, |row| {
            let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let lse = m + libm::logf(row.iter().map(|&x| libm::expf(x - m)).sum::<f32>());
            for x in row.iter_mut() {
                *x -= lse;
            }
        });
        out
    }

    /// Layer normalisation over the last axis with learned `gamma`/`beta`
    /// (shape `[H]`): `(x - mean) / sqrt(var + eps) * gamma + beta`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma`/`beta` do not match the last axis.
    pub fn layernorm_lastdim(&self, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
        let h = *self.shape().last().expect("layernorm of a scalar");
        assert_eq!(gamma.len(), h, "gamma size mismatch");
        assert_eq!(beta.len(), h, "beta size mismatch");
        let mut out = self.clone();
        let (g, b) = (gamma.data(), beta.data());
        for_each_row(out.data_mut(), h, |row| {
            let mean = row.iter().sum::<f32>() / h as f32;
            let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / h as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (j, x) in row.iter_mut().enumerate() {
                *x = (*x - mean) * inv * g[j] + b[j];
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums() {
        let t = Tensor::from_vec((1..=6).map(|i| i as f32).collect(), &[2, 3]);
        assert_eq!(t.sum_all(), 21.0);
        assert_eq!(t.mean_all(), 3.5);
        assert_eq!(t.sum_axis(0).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(t.sum_axis(1).data(), &[6.0, 15.0]);
        assert_eq!(t.mean_axis(1).data(), &[2.0, 5.0]);
    }

    #[test]
    fn sum_axis_middle() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        let s = t.sum_axis(1);
        assert_eq!(s.shape(), &[2, 4]);
        assert_eq!(s.at(&[0, 0]), 0.0 + 4.0 + 8.0);
        assert_eq!(s.at(&[1, 3]), 15.0 + 19.0 + 23.0);
    }

    #[test]
    fn max_and_argmax() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 3.0, -2.0, 0.0, -1.0], &[2, 3]);
        assert_eq!(t.max_axis(1).data(), &[5.0, 0.0]);
        assert_eq!(t.argmax_lastdim(), vec![1, 1]);
        assert_eq!(t.amax(), 5.0);
    }

    #[test]
    fn softmax_properties() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1001.0, 1002.0], &[2, 3]);
        let s = t.softmax_lastdim();
        // rows sum to 1 and large offsets don't overflow
        for r in 0..2 {
            let sum: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // shift invariance
        for i in 0..3 {
            assert!((s.data()[i] - s.data()[3 + i]).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_consistent() {
        let t = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[1, 3]);
        let ls = t.log_softmax_lastdim();
        let s = t.softmax_lastdim();
        for i in 0..3 {
            assert!((ls.data()[i] - s.data()[i].ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn layernorm_normalises() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let g = Tensor::ones(&[4]);
        let b = Tensor::zeros(&[4]);
        let n = t.layernorm_lastdim(&g, &b, 1e-5);
        let mean: f32 = n.data().iter().sum::<f32>() / 4.0;
        let var: f32 = n.data().iter().map(|x| x * x).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-3);
        // gamma/beta applied
        let g2 = Tensor::full(&[4], 2.0);
        let b2 = Tensor::full(&[4], 1.0);
        let n2 = t.layernorm_lastdim(&g2, &b2, 1e-5);
        for i in 0..4 {
            assert!((n2.data()[i] - (2.0 * n.data()[i] + 1.0)).abs() < 1e-6);
        }
    }

    #[test]
    fn kahan_sum_precision() {
        // 1 + 1e-8 * 10^6 accumulated naively in f32 loses the tail.
        let mut v = vec![1.0f32];
        v.extend(std::iter::repeat_n(1e-8, 1_000_000));
        let t = Tensor::from_vec(v, &[1_000_001]);
        assert!((t.sum_all() - 1.01).abs() < 1e-4, "{}", t.sum_all());
    }
}
