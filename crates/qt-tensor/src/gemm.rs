//! The blocked GEMM engine: packing, tiling, and the parallel driver.
//!
//! [`Tensor::matmul`](crate::Tensor::matmul) and the code-domain GEMM in
//! `qt-quant` both run on this module: a cache-blocked, B-panel-packed
//! kernel (`MC × KC × NR` tiling, f32 accumulate) whose inner loop is a
//! runtime-dispatched [`MicroKernel`] — see
//! [`crate::kernels`] for the backend story.
//!
//! # Determinism contract
//!
//! Every output element accumulates its `k` terms in ascending order
//! regardless of blocking, backend, or thread count; chunk boundaries are
//! shape-based only. Results are bitwise-identical for any `QT_THREADS`
//! and any `QT_BACKEND`.

use crate::kernels::MicroKernel;

/// Rows of `A`/`O` per parallel unit.
pub const MC: usize = 32;
/// Contraction-panel depth: one packed `KC × NR` B tile is ~32 KiB.
pub const KC: usize = 128;
/// Output-column tile width (the microkernel's register block).
pub const NR: usize = 64;
/// Below this many MACs the whole GEMM runs on the calling thread without
/// spawning. Threshold rationale: at ~1 MAC/cycle/core the smallest
/// parallel-worthy GEMM must amortize one scoped-thread spawn+join
/// (~10 µs ≈ 30–50 K cycles on CI-class hardware), so 64 Ki MACs is the
/// break-even point with ~2× headroom; measured in perf_kernels, shapes
/// below it (e.g. 64×64×16 attention fragments) lose time to spawning at
/// every pool size > 1. The decision is shape-based, so it — and the
/// `par.chunk_tasks` counter — is identical at every thread count.
pub const PAR_MIN_MACS: usize = 64 * 1024;

/// Start offsets of the packed `(panel, jb)` tiles for a `k × n` matrix
/// in the standard layout (per KC-panel, per NR-column tile, a contiguous
/// `[kc][nr]` block), plus the tile count per panel (`njb`). Index the
/// result as `offsets[panel * njb + jb]`. Shared by [`PackedB`] and the
/// code-tile pack in `qt-quant` so both sides tile identically.
pub fn tile_offsets(k: usize, n: usize) -> (Vec<usize>, usize) {
    let npanels = k.div_ceil(KC);
    let njb = n.div_ceil(NR);
    let mut tile_off = Vec::with_capacity(npanels * njb);
    let mut off = 0usize;
    for k0 in (0..k).step_by(KC) {
        let kc = KC.min(k - k0);
        for j0 in (0..n).step_by(NR) {
            let nr = NR.min(n - j0);
            tile_off.push(off);
            off += kc * nr;
        }
    }
    debug_assert_eq!(off, k * n);
    (tile_off, njb)
}

/// A right-hand side repacked for the microkernel: per KC-panel, per
/// NR-column tile, a contiguous `[kc][nr]` block, plus a per-`k`-row
/// all-finite flag that gates the `a == 0` skip (skipping a row holding
/// NaN/±∞ would hide the IEEE `0 × ∞ = NaN`).
pub struct PackedB {
    data: Vec<f32>,
    /// Start of tile `(panel, jb)` in `data`, indexed `panel * njb + jb`.
    tile_off: Vec<usize>,
    /// `finite[kk]`: every element of B row `kk` is finite.
    row_finite: Vec<bool>,
    njb: usize,
    k: usize,
    n: usize,
}

impl PackedB {
    /// Pack the `k × n` matrix starting at flat offset `bb` of `b`.
    pub fn pack(b: &[f32], bb: usize, k: usize, n: usize) -> Self {
        Self::pack_with(k, n, |kk, row| {
            row.copy_from_slice(&b[bb + kk * n..bb + (kk + 1) * n])
        })
    }

    /// Pack a `k × n` matrix produced row-by-row: `fill(kk, row)` must
    /// write B row `kk` into the `n`-long scratch `row`. This is the
    /// code-domain entry point — `qt-quant` decodes quantized codes
    /// straight into the pack without ever materializing the full f32
    /// matrix. Row-finite flags are computed from the filled rows.
    pub fn pack_with(k: usize, n: usize, mut fill: impl FnMut(usize, &mut [f32])) -> Self {
        let (tile_off, njb) = tile_offsets(k, n);
        let mut data = vec![0.0f32; k * n];
        let mut row_finite = vec![false; k];
        let mut scratch = vec![0.0f32; n];
        for (kk, finite) in row_finite.iter_mut().enumerate() {
            fill(kk, &mut scratch);
            *finite = scratch.iter().all(|v| v.is_finite());
            let panel = kk / KC;
            let kloc = kk - panel * KC;
            for (jb, j0) in (0..n).step_by(NR).enumerate() {
                let nr = NR.min(n - j0);
                let dst = tile_off[panel * njb + jb] + kloc * nr;
                data[dst..dst + nr].copy_from_slice(&scratch[j0..j0 + nr]);
            }
        }
        Self {
            data,
            tile_off,
            row_finite,
            njb,
            k,
            n,
        }
    }

    /// Contraction depth this pack was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width this pack was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Packed bytes held (pack-cache accounting).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
            + self.tile_off.len() * std::mem::size_of::<usize>()
            + self.row_finite.len()
    }

    #[inline]
    fn tile(&self, panel: usize, jb: usize, kc: usize, nr: usize) -> &[f32] {
        let off = self.tile_off[panel * self.njb + jb];
        &self.data[off..off + kc * nr]
    }
}

/// Accumulate `rows` rows of `A × pack` into `o` (shape `[rows, n]`,
/// covering A rows `i0..i0+rows`) with the given microkernel. For each
/// output element the `k` terms are added in ascending order — panels and
/// column tiles only re-tile the loop nest, never the accumulation order.
#[allow(clippy::too_many_arguments)]
pub fn gemm_block(
    a: &[f32],
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
    pack: &PackedB,
    o: &mut [f32],
    kernel: MicroKernel,
) {
    for (panel, k0) in (0..k).step_by(KC).enumerate() {
        let kc = KC.min(k - k0);
        for (jb, j0) in (0..n).step_by(NR).enumerate() {
            let nr = NR.min(n - j0);
            let tile = pack.tile(panel, jb, kc, nr);
            let finite = &pack.row_finite[k0..k0 + kc];
            for r in 0..rows {
                let arow = &a[(i0 + r) * k + k0..(i0 + r) * k + k0 + kc];
                let orow = &mut o[r * n + j0..r * n + j0 + nr];
                let mut acc = [0.0f32; NR];
                acc[..nr].copy_from_slice(orow);
                kernel(arow, tile, finite, &mut acc, nr);
                orow.copy_from_slice(&acc[..nr]);
            }
        }
    }
}

/// Run `unit(u, part)` over the disjoint parts of `o` described by
/// `part_lens` (which must sum to `o.len()`), serially on the calling
/// thread when the GEMM is below [`PAR_MIN_MACS`] MACs and through the
/// `qt_par` pool otherwise. Both paths go through
/// `qt_par::parallel_for_parts_mut` (the serial one at pool size 1), so
/// there is exactly one part-walking loop and the `par.chunk_tasks`
/// counter advances identically either way.
pub fn run_parts(
    o: &mut [f32],
    part_lens: &[usize],
    macs: usize,
    unit: impl Fn(usize, &mut [f32]) + Sync,
) {
    let body = |u: usize, _off: usize, opart: &mut [f32]| unit(u, opart);
    if macs < PAR_MIN_MACS {
        qt_par::serial(|| {
            qt_par::parallel_for_parts_mut(o, part_lens, body);
        });
    } else {
        qt_par::parallel_for_parts_mut(o, part_lens, body);
    }
}

/// Multiply `a` (`m × k`, row-major) by a pre-packed B, accumulating into
/// `o` (`m × n`, row-major; typically zero-initialized). Resolves the
/// active backend once, then parallelizes over MC-row blocks with the
/// standard determinism contract. This is the entry the code-domain GEMM
/// drives after decoding codes into the pack.
///
/// # Panics
///
/// Panics if `a` or `o` are shorter than the shapes imply.
pub fn gemm_prepacked(a: &[f32], m: usize, k: usize, n: usize, pack: &PackedB, o: &mut [f32]) {
    assert_eq!(pack.k(), k, "pack depth mismatch");
    assert_eq!(pack.n(), n, "pack width mismatch");
    assert!(a.len() >= m * k, "lhs shorter than m*k");
    assert!(o.len() >= m * n, "out shorter than m*n");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let kernel = crate::kernels::active().kernel();
    let row_blocks = m.div_ceil(MC);
    let part_lens: Vec<usize> = (0..row_blocks)
        .map(|rb| MC.min(m - rb * MC) * n)
        .collect();
    run_parts(&mut o[..m * n], &part_lens, m * k * n, |rb, opart| {
        let i0 = rb * MC;
        let rows = MC.min(m - i0);
        gemm_block(a, i0, rows, k, n, pack, opart, kernel);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_with_matches_pack() {
        let k = 200;
        let n = 70;
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.5 - 100.0).collect();
        let p1 = PackedB::pack(&b, 0, k, n);
        let p2 = PackedB::pack_with(k, n, |kk, row| row.copy_from_slice(&b[kk * n..(kk + 1) * n]));
        assert_eq!(p1.data, p2.data);
        assert_eq!(p1.tile_off, p2.tile_off);
        assert_eq!(p1.row_finite, p2.row_finite);
        assert_eq!(p1.njb, p2.njb);
    }

    #[test]
    fn gemm_prepacked_matches_reference() {
        let (m, k, n) = (5, 7, 9);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.25 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| i as f32 * 0.125 - 3.0).collect();
        let pack = PackedB::pack(&b, 0, k, n);
        let mut o = vec![0.0f32; m * n];
        gemm_prepacked(&a, m, k, n, &pack, &mut o);
        for i in 0..m {
            for j in 0..n {
                let mut want = 0.0f32;
                for kk in 0..k {
                    want += a[i * k + kk] * b[kk * n + j];
                }
                assert_eq!(want.to_bits(), o[i * n + j].to_bits());
            }
        }
    }

    #[test]
    fn gemm_prepacked_empty_dims_are_noops() {
        let pack = PackedB::pack(&[], 0, 0, 4);
        let mut o = vec![1.0f32; 8];
        gemm_prepacked(&[], 2, 0, 4, &pack, &mut o);
        assert_eq!(o, vec![1.0f32; 8]);
    }
}
