//! Tensor statistics used by the paper's distribution plots (Figures 6
//! and 10): min/max/mean/std, amax, and log2-magnitude histograms.

use crate::tensor::Tensor;

/// Summary statistics of a tensor's value distribution.
///
/// The `log2_hist` buckets count non-zero elements by
/// `floor(log2(|x|))`, clamped to `[-32, 31]`; this is the histogram the
/// paper plots to show which value ranges a format covers.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorStats {
    /// Minimum element.
    pub min: f32,
    /// Maximum element.
    pub max: f32,
    /// Mean element.
    pub mean: f32,
    /// Population standard deviation.
    pub std: f32,
    /// Maximum absolute value.
    pub amax: f32,
    /// Fraction of exactly-zero elements.
    pub zero_frac: f32,
    /// Histogram over `floor(log2(|x|))` in `[-32, 31]` (64 buckets).
    pub log2_hist: Vec<u64>,
}

impl TensorStats {
    /// Lowest binade tracked by `log2_hist`.
    pub const LOG2_LO: i32 = -32;
    /// Number of histogram buckets.
    pub const BUCKETS: usize = 64;

    /// Compute statistics of `t`.
    pub fn of(t: &Tensor) -> Self {
        let n = t.len().max(1) as f32;
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        let mut zeros = 0u64;
        let mut hist = vec![0u64; Self::BUCKETS];
        for &x in t.data() {
            min = min.min(x);
            max = max.max(x);
            sum += x as f64;
            if x == 0.0 {
                zeros += 1;
            } else {
                let b = libm::floorf(libm::log2f(x.abs())) as i32;
                let i = (b - Self::LOG2_LO).clamp(0, Self::BUCKETS as i32 - 1) as usize;
                hist[i] += 1;
            }
        }
        let mean = (sum / n as f64) as f32;
        let var = t
            .data()
            .iter()
            .map(|&x| {
                let d = (x - mean) as f64;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        Self {
            min: if t.is_empty() { 0.0 } else { min },
            max: if t.is_empty() { 0.0 } else { max },
            mean,
            std: libm::sqrt(var) as f32,
            amax: t.amax(),
            zero_frac: zeros as f32 / n,
            log2_hist: hist,
        }
    }

    /// Fraction of non-zero elements whose binade lies in
    /// `[lo_exp, hi_exp]` — e.g. the coverage of a format whose
    /// representable magnitudes span `2^lo_exp ..= 2^hi_exp`.
    pub fn coverage(&self, lo_exp: i32, hi_exp: i32) -> f64 {
        let total: u64 = self.log2_hist.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let lo = ((lo_exp - Self::LOG2_LO).clamp(0, Self::BUCKETS as i32 - 1)) as usize;
        let hi = ((hi_exp - Self::LOG2_LO).clamp(0, Self::BUCKETS as i32 - 1)) as usize;
        let inside: u64 = self.log2_hist[lo..=hi].iter().sum();
        inside as f64 / total as f64
    }

    /// Binade (power-of-two exponent) at a cumulative quantile `q` of the
    /// non-zero magnitude distribution, or `None` if the tensor is all zero.
    pub fn log2_quantile(&self, q: f64) -> Option<i32> {
        let total: u64 = self.log2_hist.iter().sum();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.log2_hist.iter().enumerate() {
            acc += c;
            if acc >= target.max(1) {
                return Some(i as i32 + Self::LOG2_LO);
            }
        }
        Some(31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let t = Tensor::from_vec(vec![-2.0, 0.0, 1.0, 4.0], &[4]);
        let s = TensorStats::of(&t);
        assert_eq!(s.min, -2.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.amax, 4.0);
        assert_eq!(s.mean, 0.75);
        assert_eq!(s.zero_frac, 0.25);
    }

    #[test]
    fn histogram_binades() {
        let t = Tensor::from_vec(vec![0.5, 1.0, 1.9, 4.0, -4.0], &[5]);
        let s = TensorStats::of(&t);
        let idx = |e: i32| (e - TensorStats::LOG2_LO) as usize;
        assert_eq!(s.log2_hist[idx(-1)], 1); // 0.5
        assert_eq!(s.log2_hist[idx(0)], 2); // 1.0, 1.9
        assert_eq!(s.log2_hist[idx(2)], 2); // ±4.0
    }

    #[test]
    fn coverage_of_posit8_range() {
        // All values within 2^-12..2^12 → full coverage; a tiny value
        // escapes below.
        let t = Tensor::from_vec(vec![0.001, 1.0, 100.0], &[3]);
        let s = TensorStats::of(&t);
        assert_eq!(s.coverage(-12, 12), 1.0);
        let t2 = Tensor::from_vec(vec![1e-6, 1.0], &[2]);
        let s2 = TensorStats::of(&t2);
        assert_eq!(s2.coverage(-12, 12), 0.5);
    }

    #[test]
    fn quantiles() {
        let t = Tensor::from_vec(vec![0.25, 0.5, 1.0, 2.0], &[4]);
        let s = TensorStats::of(&t);
        assert_eq!(s.log2_quantile(0.0), Some(-2));
        assert_eq!(s.log2_quantile(1.0), Some(1));
        assert_eq!(TensorStats::of(&Tensor::zeros(&[3])).log2_quantile(0.5), None);
    }
}
