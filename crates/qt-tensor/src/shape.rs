//! Shape and broadcasting utilities.

/// Compute the broadcast shape of two shapes under NumPy rules: align
/// trailing axes; each pair of dims must be equal or one of them 1.
///
/// # Panics
///
/// Panics if the shapes are not broadcast-compatible.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Vec<usize> {
    let nd = a.len().max(b.len());
    let mut out = vec![0usize; nd];
    for i in 0..nd {
        let da = if i < nd - a.len() { 1 } else { a[i - (nd - a.len())] };
        let db = if i < nd - b.len() { 1 } else { b[i - (nd - b.len())] };
        out[i] = match (da, db) {
            (x, y) if x == y => x,
            (1, y) => y,
            (x, 1) => x,
            _ => panic!("shapes {a:?} and {b:?} are not broadcast-compatible"),
        };
    }
    out
}

/// Row-major strides of a shape (in elements).
pub(crate) fn strides_of(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Strides for reading a tensor of `shape` as if broadcast to `out_shape`:
/// broadcast axes get stride 0. `shape` is right-aligned against
/// `out_shape`.
pub(crate) fn broadcast_strides(shape: &[usize], out_shape: &[usize]) -> Vec<usize> {
    let nd = out_shape.len();
    let own = strides_of(shape);
    let mut out = vec![0usize; nd];
    let offset = nd - shape.len();
    for i in 0..shape.len() {
        out[offset + i] = if shape[i] == 1 { 0 } else { own[i] };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[3], &[2, 3]), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[], &[4]), vec![4]);
        assert_eq!(broadcast_shapes(&[5, 1, 7], &[4, 7]), vec![5, 4, 7]);
    }

    #[test]
    #[should_panic(expected = "broadcast-compatible")]
    fn broadcast_incompatible() {
        broadcast_shapes(&[2, 3], &[4, 3]);
    }

    #[test]
    fn strides() {
        assert_eq!(strides_of(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_of(&[5]), vec![1]);
        assert_eq!(strides_of(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_stride_zeroing() {
        assert_eq!(broadcast_strides(&[2, 1], &[2, 3]), vec![1, 0]);
        assert_eq!(broadcast_strides(&[3], &[2, 3]), vec![0, 1]);
    }
}
