//! A small dense-tensor library: the numerical substrate under the
//! quantized-transformers reproduction.
//!
//! [`Tensor`] is a contiguous row-major `f32` array with a shape. The API
//! follows NumPy semantics: elementwise ops broadcast over trailing axes,
//! [`Tensor::matmul`] batches over leading axes, reductions take an axis.
//! `f32` is the *carrier* precision — the paper's GPU experiments likewise
//! simulate 8-bit formats by clipping values held in a wider type.
//!
//! # Panics
//!
//! Like `ndarray`, shape-sensitive operations panic on incompatible shapes
//! with a descriptive message; these are programmer errors, not runtime
//! conditions. Each method documents its requirements.
//!
//! # Example
//!
//! ```
//! use qt_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! let s = a.softmax_lastdim();
//! assert!((s.data()[0] + s.data()[1] - 1.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod gemm;
pub mod kernels;
mod linalg;
mod reduce;
mod shape;
mod stats;
mod tensor;

pub use kernels::GemmBackend;
pub use shape::broadcast_shapes;
pub use stats::TensorStats;
pub use tensor::Tensor;
