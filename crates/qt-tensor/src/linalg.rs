//! Matrix multiplication, transposition, permutation.
//!
//! The GEMM engine itself — packing, tiling, microkernel dispatch, and
//! the parallel driver — lives in [`crate::gemm`] (with the per-backend
//! inner loops in [`crate::kernels`]); this module provides the
//! batched/broadcasting [`Tensor::matmul`] front end on top of it.
//! Results are bitwise-deterministic at any thread count and identical
//! across all kernel backends.

use std::collections::BTreeMap;

use crate::gemm::{gemm_block, run_parts, PackedB, MC};
use crate::shape::strides_of;
use crate::tensor::Tensor;

impl Tensor {
    /// Batched matrix multiplication.
    ///
    /// `self` has shape `[..., m, k]`, `rhs` has shape `[..., k, n]`; the
    /// leading (batch) axes broadcast against each other; the result has
    /// shape `[broadcast_batch..., m, n]`.
    ///
    /// Runs the blocked parallel kernel described in the module docs;
    /// results are bitwise-identical for any `QT_THREADS`.
    ///
    /// # Panics
    ///
    /// Panics if either operand has fewer than 2 axes, the contraction dims
    /// disagree, or batch axes are not broadcast-compatible.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert!(
            self.ndim() >= 2 && rhs.ndim() >= 2,
            "matmul operands must be at least 2-D (got {:?} x {:?})",
            self.shape(),
            rhs.shape()
        );
        let (m, ka) = (
            self.shape()[self.ndim() - 2],
            self.shape()[self.ndim() - 1],
        );
        let (kb, n) = (rhs.shape()[rhs.ndim() - 2], rhs.shape()[rhs.ndim() - 1]);
        assert_eq!(
            ka, kb,
            "matmul contraction mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let batch_a = &self.shape()[..self.ndim() - 2];
        let batch_b = &rhs.shape()[..rhs.ndim() - 2];
        let batch = crate::shape::broadcast_shapes(batch_a, batch_b);
        let batch_count: usize = batch.iter().product();

        let mut out_shape = batch.clone();
        out_shape.extend_from_slice(&[m, n]);
        let mut out = Tensor::zeros(&out_shape);
        if m == 0 || n == 0 || ka == 0 || batch_count == 0 {
            return out;
        }

        // Flat batch offsets for each operand (0-stride on broadcast axes).
        let offs_a = batch_offsets(batch_a, &batch, m * ka);
        let offs_b = batch_offsets(batch_b, &batch, kb * n);

        let a = self.data();
        let b = rhs.data();

        // Pack B once per distinct batch offset (broadcast batches share
        // one pack), outside the parallel region. Offset → pack index via
        // a BTreeMap: O(B log B) over the batch instead of the former
        // O(B²) linear rescan, and iteration order (hence pack order)
        // stays deterministic.
        let mut pack_of = vec![0usize; batch_count];
        let mut packs: Vec<PackedB> = Vec::new();
        let mut seen: BTreeMap<usize, usize> = BTreeMap::new(); // offset → pack idx
        for (bi, &bb) in offs_b.iter().enumerate() {
            let idx = *seen.entry(bb).or_insert_with(|| {
                packs.push(PackedB::pack(b, bb, kb, n));
                packs.len() - 1
            });
            pack_of[bi] = idx;
        }

        // One parallel unit per (batch, MC-row block); units tile the
        // output contiguously, in order. The backend (and so the kernel
        // pointer) is resolved once per matmul on the issuing thread.
        let kernel = crate::kernels::active().kernel();
        let row_blocks = m.div_ceil(MC);
        let mut part_lens = Vec::with_capacity(batch_count * row_blocks);
        for _ in 0..batch_count {
            for rb in 0..row_blocks {
                part_lens.push((MC.min(m - rb * MC)) * n);
            }
        }
        let unit = |u: usize, opart: &mut [f32]| {
            let bi = u / row_blocks;
            let rb = u % row_blocks;
            let i0 = rb * MC;
            let rows = MC.min(m - i0);
            gemm_block(
                &a[offs_a[bi]..],
                i0,
                rows,
                ka,
                n,
                &packs[pack_of[bi]],
                opart,
                kernel,
            );
        };

        run_parts(out.data_mut(), &part_lens, batch_count * m * ka * n, unit);
        out
    }

    /// Swap the last two axes.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has fewer than 2 axes.
    pub fn transpose_last2(&self) -> Tensor {
        assert!(self.ndim() >= 2, "transpose needs >= 2 axes");
        let nd = self.ndim();
        let mut perm: Vec<usize> = (0..nd).collect();
        perm.swap(nd - 2, nd - 1);
        self.permute(&perm)
    }

    /// Permute the axes: `out.shape[i] = self.shape[perm[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..ndim`.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let nd = self.ndim();
        assert_eq!(perm.len(), nd, "permutation rank mismatch");
        let mut seen = vec![false; nd];
        for &p in perm {
            assert!(p < nd && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let in_strides = strides_of(self.shape());
        let out_shape: Vec<usize> = perm.iter().map(|&p| self.shape()[p]).collect();
        let mut out = Tensor::zeros(&out_shape);
        // Walk output in order; map each output index to the input offset.
        let mut idx = vec![0usize; nd];
        let odata = out.data_mut();
        for slot in odata.iter_mut() {
            let mut in_off = 0;
            for (oax, &p) in perm.iter().enumerate() {
                in_off += idx[oax] * in_strides[p];
            }
            *slot = self.data()[in_off];
            for ax in (0..nd).rev() {
                idx[ax] += 1;
                if idx[ax] < out_shape[ax] {
                    break;
                }
                idx[ax] = 0;
            }
        }
        out
    }

    /// Slice along the first axis: rows `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or the tensor is 0-D.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert!(self.ndim() >= 1, "cannot slice a scalar");
        assert!(
            start <= end && end <= self.shape()[0],
            "row slice {start}..{end} out of bounds for {:?}",
            self.shape()
        );
        let row: usize = self.shape()[1..].iter().product();
        let mut shape = self.shape().to_vec();
        shape[0] = end - start;
        Tensor::from_vec(self.data()[start * row..end * row].to_vec(), &shape)
    }
}

/// Per-batch flat element offsets for an operand whose batch shape is
/// `own` broadcast to `full`, with `inner` elements per matrix.
fn batch_offsets(own: &[usize], full: &[usize], inner: usize) -> Vec<usize> {
    if full.is_empty() {
        return vec![0];
    }
    let count: usize = full.iter().product();
    // Strides here count whole matrices; scale to elements when emitting.
    let strides = crate::shape::broadcast_strides(own, full);
    let nd = full.len();
    let mut offs = Vec::with_capacity(count);
    let mut idx = vec![0usize; nd];
    let mut off = 0usize;
    for _ in 0..count {
        offs.push(off * inner);
        for ax in (0..nd).rev() {
            idx[ax] += 1;
            off += strides[ax];
            if idx[ax] < full[ax] {
                break;
            }
            off -= strides[ax] * full[ax];
            idx[ax] = 0;
        }
    }
    offs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2d() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_propagates_nonfinite_rhs_through_zero_lhs() {
        // IEEE: 0 × NaN = NaN and 0 × ∞ = NaN. The zero-skip fast path
        // must not hide a poisoned B row behind a zero A element.
        let a = Tensor::zeros(&[1, 2]);
        let mut b = Tensor::zeros(&[2, 2]);
        b.set(&[0, 0], f32::NAN);
        b.set(&[1, 1], f32::INFINITY);
        let c = a.matmul(&b);
        assert!(c.data()[0].is_nan(), "0×NaN must propagate");
        assert!(c.data()[1].is_nan(), "0×∞ must propagate");
        // Finite B rows still take the skip: zeros stay exactly zero.
        let bf = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.matmul(&bf).data(), &[0.0, 0.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)).data(), a.data());
        assert_eq!(Tensor::eye(2).matmul(&a).data(), a.data());
    }

    #[test]
    fn matmul_batched() {
        // [2, 2, 3] x [2, 3, 1]
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[2, 2, 3]);
        let b = Tensor::ones(&[2, 3, 1]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2, 1]);
        assert_eq!(c.data(), &[3.0, 12.0, 21.0, 30.0]);
    }

    #[test]
    fn matmul_broadcast_batch() {
        // [2, 2] broadcast against batch [3, ...]
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2]);
        let b = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[3, 2, 2]);
        // each batch: diag(1,2) * b
        assert_eq!(&c.data()[0..4], &[0.0, 1.0, 4.0, 6.0]);
        assert_eq!(&c.data()[8..12], &[8.0, 9.0, 20.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "contraction mismatch")]
    fn matmul_bad_dims() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn transpose() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose_last2();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        // double transpose is identity
        assert_eq!(t.transpose_last2().data(), a.data());
    }

    #[test]
    fn permute_heads_pattern() {
        // [B=1, S=2, H=2, D=2] -> [B, H, S, D]
        let x = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[1, 2, 2, 2]);
        let y = x.permute(&[0, 2, 1, 3]);
        assert_eq!(y.shape(), &[1, 2, 2, 2]);
        assert_eq!(y.data(), &[0.0, 1.0, 4.0, 5.0, 2.0, 3.0, 6.0, 7.0]);
        // inverse permutation restores
        assert_eq!(y.permute(&[0, 2, 1, 3]).data(), x.data());
    }

    #[test]
    fn slice_rows_basic() {
        let x = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[4, 3]);
        let s = x.slice_rows(1, 3);
        assert_eq!(s.shape(), &[2, 3]);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn matmul_transpose_identity_property() {
        // (A B)^T == B^T A^T
        let a = Tensor::from_vec((0..6).map(|i| i as f32 * 0.5).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|i| i as f32 * 0.25 - 1.0).collect(), &[3, 4]);
        let lhs = a.matmul(&b).transpose_last2();
        let rhs = b.transpose_last2().matmul(&a.transpose_last2());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}
