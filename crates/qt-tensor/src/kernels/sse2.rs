//! 4-lane SSE2 microkernel.
//!
//! Vectorizes the column (`j`) loop only; the `k` loop stays scalar so
//! each output element still accumulates in ascending-`k` order, and
//! `mulps` + `addps` keep the two separate roundings of the scalar
//! kernel (no FMA contraction). Bitwise-identical to [`super::scalar`].

#![cfg(target_arch = "x86_64")]

use crate::gemm::NR;

/// See [`super::MicroKernel`] for the contract.
///
/// Safe wrapper: the dispatcher only hands this kernel out when SSE2 is
/// available (guaranteed on x86-64, but checked anyway).
pub fn kernel(arow: &[f32], tile: &[f32], finite: &[bool], acc: &mut [f32; NR], nr: usize) {
    debug_assert!(is_x86_feature_detected!("sse2"));
    // SAFETY: SSE2 is a baseline x86-64 feature; slices are bounds-checked
    // by the contract (tile is [kc][nr], finite is [kc], nr <= NR).
    unsafe { kernel_impl(arow, tile, finite, acc, nr) }
}

#[target_feature(enable = "sse2")]
unsafe fn kernel_impl(arow: &[f32], tile: &[f32], finite: &[bool], acc: &mut [f32; NR], nr: usize) {
    use std::arch::x86_64::*;
    let nv = nr / 4;
    for (kk, &av) in arow.iter().enumerate() {
        if av == 0.0 && finite[kk] {
            continue;
        }
        let a = _mm_set1_ps(av);
        let brow = tile.as_ptr().add(kk * nr);
        let arow_out = acc.as_mut_ptr();
        for i in 0..nv {
            let p = arow_out.add(i * 4);
            let b = _mm_loadu_ps(brow.add(i * 4));
            // mul then add: two roundings, identical to the scalar loop.
            _mm_storeu_ps(p, _mm_add_ps(_mm_loadu_ps(p), _mm_mul_ps(a, b)));
        }
        for (j, aj) in acc[nv * 4..nr].iter_mut().enumerate() {
            *aj += av * *brow.add(nv * 4 + j);
        }
    }
}
