//! Runtime-dispatched GEMM microkernels.
//!
//! The blocked GEMM in [`crate::gemm`] funnels every inner loop through a
//! single [`MicroKernel`] function pointer: accumulate one A row segment
//! times one packed `kc × nr` B tile into an `NR`-wide accumulator. This
//! module provides three implementations —
//!
//! - `scalar`: the portable reference loop (the bitwise ground truth);
//! - `sse2`: 4-lane `std::arch` x86-64 kernel;
//! - `avx2`: 8-lane `std::arch` kernel with the full `NR`-column tile
//!   register-blocked across the `k` loop;
//!
//! — and picks one at startup with `is_x86_feature_detected!`,
//! overridable via the `QT_BACKEND` environment variable
//! (`scalar|sse2|avx2`) or per-thread via [`with_backend`].
//!
//! # Bitwise-identity contract
//!
//! All kernels produce **bit-identical** results, asserted (not assumed)
//! by unit tests here and proptests in `tests/`. This holds because:
//!
//! - every kernel adds the `k` terms of each output element in ascending
//!   `k` order (SIMD vectorizes across *columns*, never across `k`);
//! - multiplication and addition are separate IEEE-754 single roundings
//!   in every kernel: the SIMD paths use `mul_ps` + `add_ps`, never an
//!   FMA intrinsic, and Rust never contracts `a * b + c` on its own;
//! - the `a == 0 && row-finite` skip is a scalar per-`k` decision applied
//!   uniformly to all columns in every kernel.

use std::cell::Cell;
use std::sync::OnceLock;

use crate::gemm::NR;

#[cfg(target_arch = "x86_64")]
mod avx2;
mod scalar;
#[cfg(target_arch = "x86_64")]
mod sse2;

/// The microkernel contract: `kernel(arow, tile, finite, acc, nr)`
/// performs, for each `kk` in `0..arow.len()`:
///
/// ```text
/// if arow[kk] == 0.0 && finite[kk] { skip }   // row-finite-gated skip
/// else for j in 0..nr { acc[j] += arow[kk] * tile[kk * nr + j] }
/// ```
///
/// with mul-then-add as two separate roundings (no FMA) and `k` ascending
/// per element. `tile` is a packed `[arow.len()][nr]` block; `nr <= NR`;
/// `finite.len() == arow.len()`.
pub type MicroKernel = fn(arow: &[f32], tile: &[f32], finite: &[bool], acc: &mut [f32; NR], nr: usize);

/// Which GEMM inner-loop implementation to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum GemmBackend {
    /// Portable reference loop; always available, bitwise ground truth.
    Scalar,
    /// 4-lane `std::arch` x86-64 kernel (baseline feature on x86-64).
    Sse2,
    /// 8-lane `std::arch` kernel; requires AVX2 at runtime.
    Avx2,
}

/// All backend values, in preference order (weakest first).
pub const ALL_BACKENDS: [GemmBackend; 3] =
    [GemmBackend::Scalar, GemmBackend::Sse2, GemmBackend::Avx2];

impl GemmBackend {
    /// Stable lowercase name (matches the `QT_BACKEND` spelling).
    pub fn name(self) -> &'static str {
        match self {
            GemmBackend::Scalar => "scalar",
            GemmBackend::Sse2 => "sse2",
            GemmBackend::Avx2 => "avx2",
        }
    }

    /// Parse a `QT_BACKEND` spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(GemmBackend::Scalar),
            "sse2" => Some(GemmBackend::Sse2),
            "avx2" => Some(GemmBackend::Avx2),
            _ => None,
        }
    }

    /// Whether this backend can run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            GemmBackend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            GemmBackend::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            GemmBackend::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The strongest backend the current CPU supports.
    pub fn detect_best() -> Self {
        ALL_BACKENDS
            .into_iter()
            .rev()
            .find(|b| b.available())
            .unwrap_or(GemmBackend::Scalar)
    }

    /// The microkernel for this backend. Unavailable backends resolve to
    /// the scalar kernel (results are bitwise-identical either way).
    pub fn kernel(self) -> MicroKernel {
        match self {
            GemmBackend::Scalar => scalar::kernel,
            #[cfg(target_arch = "x86_64")]
            GemmBackend::Sse2 if self.available() => sse2::kernel,
            #[cfg(target_arch = "x86_64")]
            GemmBackend::Avx2 if self.available() => avx2::kernel,
            _ => scalar::kernel,
        }
    }
}

/// Process-global backend, resolved from `QT_BACKEND` exactly once.
static CONFIGURED: OnceLock<GemmBackend> = OnceLock::new();

thread_local! {
    /// Per-thread override installed by [`with_backend`].
    static OVERRIDE: Cell<Option<GemmBackend>> = const { Cell::new(None) };
}

/// The `QT_BACKEND` value this process was configured with, if set.
pub fn qt_backend_env() -> Option<String> {
    std::env::var("QT_BACKEND").ok()
}

fn configured() -> GemmBackend {
    *CONFIGURED.get_or_init(|| match qt_backend_env() {
        Some(raw) => match GemmBackend::parse(&raw) {
            Some(b) if b.available() => b,
            Some(b) => {
                let best = GemmBackend::detect_best();
                eprintln!(
                    "qt-tensor: QT_BACKEND={} not supported by this CPU; using {}",
                    b.name(),
                    best.name()
                );
                best
            }
            None => {
                let best = GemmBackend::detect_best();
                eprintln!(
                    "qt-tensor: unknown QT_BACKEND={raw:?} (expected scalar|sse2|avx2); using {}",
                    best.name()
                );
                best
            }
        },
        None => GemmBackend::detect_best(),
    })
}

/// The backend GEMMs issued from the current thread will use: the
/// [`with_backend`] override if one is active (clamped to what the CPU
/// supports), else the process-global `QT_BACKEND` configuration, else
/// the strongest detected backend.
pub fn active() -> GemmBackend {
    let b = OVERRIDE.with(|o| o.get()).unwrap_or_else(configured);
    if b.available() {
        b
    } else {
        GemmBackend::detect_best()
    }
}

/// Run `f` with the GEMM backend pinned to `b` on the current thread.
///
/// Scoped and re-entrant: the previous override (if any) is restored on
/// exit, including on panic — the same discipline as
/// `qt_par::with_threads`. This is how benches and the determinism tests
/// sweep backends within one process. Note the pin applies to the thread
/// that *issues* the GEMM (worker threads inherit the kernel pointer the
/// issuing thread resolved, not the thread-local).
pub fn with_backend<R>(b: GemmBackend, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<GemmBackend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            OVERRIDE.with(|o| o.set(prev));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(b))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kernel: MicroKernel, arow: &[f32], tile: &[f32], finite: &[bool], nr: usize) -> [f32; NR] {
        let mut acc = [0.0f32; NR];
        // Non-zero initial accumulator: kernels must accumulate, not assign.
        for (j, a) in acc.iter_mut().enumerate() {
            *a = (j as f32) * 0.125 - 2.0;
        }
        kernel(arow, tile, finite, &mut acc, nr);
        acc
    }

    /// Deterministic ugly test values: denormals-adjacent, sign flips,
    /// magnitudes spread over many exponents, exact zeros.
    fn messy(i: usize) -> f32 {
        let m = ((i * 2654435761) >> 7) & 0xffff;
        if m.is_multiple_of(11) {
            0.0
        } else {
            let v = (m as f32 - 32768.0) * (1.5f32.powi((m % 13) as i32 - 6));
            if m.is_multiple_of(3) {
                -v
            } else {
                v
            }
        }
    }

    #[test]
    fn simd_kernels_bitwise_match_scalar() {
        for &kc in &[1usize, 2, 7, 128] {
            for &nr in &[1usize, 3, 8, 9, 31, 64] {
                let arow: Vec<f32> = (0..kc).map(messy).collect();
                let tile: Vec<f32> = (0..kc * nr).map(|i| messy(i + 977)).collect();
                let finite = vec![true; kc];
                let want = run(scalar::kernel, &arow, &tile, &finite, nr);
                for b in ALL_BACKENDS {
                    if !b.available() {
                        continue;
                    }
                    let got = run(b.kernel(), &arow, &tile, &finite, nr);
                    for j in 0..NR {
                        assert_eq!(
                            want[j].to_bits(),
                            got[j].to_bits(),
                            "{} kernel diverges at kc={kc} nr={nr} j={j}",
                            b.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn kernels_respect_finite_gated_zero_skip() {
        // Row 0: a==0, B row non-finite → must multiply (0×∞ = NaN).
        // Row 1: a==0, B row finite → must skip (acc keeps exact bits).
        let kc = 2;
        let nr = 9;
        let arow = vec![0.0f32, 0.0];
        let mut tile = vec![1.0f32; kc * nr];
        tile[3] = f32::INFINITY;
        let finite = vec![false, true];
        for b in ALL_BACKENDS {
            if !b.available() {
                continue;
            }
            let acc = run(b.kernel(), &arow, &tile, &finite, nr);
            assert!(acc[3].is_nan(), "{}: 0×∞ must poison", b.name());
            // Finite columns of the non-finite row still add exact 0×1.
            assert_eq!(acc[0], -2.0, "{}: finite column perturbed", b.name());
        }
    }

    #[test]
    fn env_parse_round_trips() {
        for b in ALL_BACKENDS {
            assert_eq!(GemmBackend::parse(b.name()), Some(b));
        }
        assert_eq!(GemmBackend::parse(" AVX2 "), Some(GemmBackend::Avx2));
        assert_eq!(GemmBackend::parse("neon"), None);
    }

    #[test]
    fn with_backend_restores_on_exit() {
        let outer = active();
        with_backend(GemmBackend::Scalar, || {
            assert_eq!(active(), GemmBackend::Scalar);
            with_backend(GemmBackend::Sse2, || {
                if GemmBackend::Sse2.available() {
                    assert_eq!(active(), GemmBackend::Sse2);
                }
            });
            assert_eq!(active(), GemmBackend::Scalar);
        });
        assert_eq!(active(), outer);
    }

    #[test]
    fn detect_best_is_available() {
        assert!(GemmBackend::detect_best().available());
    }
}
