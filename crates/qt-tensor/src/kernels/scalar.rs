//! Portable reference microkernel: the bitwise ground truth every SIMD
//! backend is asserted against. This is the exact inner loop the blocked
//! GEMM shipped with before the backend split.

use crate::gemm::NR;

/// See [`super::MicroKernel`] for the contract.
pub fn kernel(arow: &[f32], tile: &[f32], finite: &[bool], acc: &mut [f32; NR], nr: usize) {
    for (kk, &av) in arow.iter().enumerate() {
        // Skipping is only sound when the B row is all-finite: IEEE says
        // 0 × ∞ and 0 × NaN are NaN, and hiding that would mask poisoned
        // weights behind sparse activations.
        if av == 0.0 && finite[kk] {
            continue;
        }
        let brow = &tile[kk * nr..(kk + 1) * nr];
        for (ov, &bv) in acc[..nr].iter_mut().zip(brow) {
            *ov += av * bv;
        }
    }
}
