//! 8-lane AVX2 microkernel.
//!
//! For the common full tile (`nr == NR == 64`) the whole output row lives
//! in eight `ymm` accumulators across the entire `k` loop — one load and
//! one store per output element per *tile*, not per `k` step. Partial
//! tiles fall back to a load/add/store sweep per `k` plus a scalar tail.
//!
//! Both paths vectorize columns only and use `vmulps` + `vaddps` (two
//! separate IEEE roundings, never FMA), so each output element sees the
//! same ascending-`k` mul-then-add sequence as the scalar kernel:
//! bitwise-identical by construction, asserted by tests.

#![cfg(target_arch = "x86_64")]

use crate::gemm::NR;

/// See [`super::MicroKernel`] for the contract.
///
/// Safe wrapper: the dispatcher only hands this kernel out after
/// `is_x86_feature_detected!("avx2")` succeeded.
pub fn kernel(arow: &[f32], tile: &[f32], finite: &[bool], acc: &mut [f32; NR], nr: usize) {
    debug_assert!(is_x86_feature_detected!("avx2"));
    // SAFETY: dispatch verified AVX2; slices are bounds-checked by the
    // contract (tile is [kc][nr], finite is [kc], nr <= NR).
    unsafe { kernel_impl(arow, tile, finite, acc, nr) }
}

#[target_feature(enable = "avx2")]
unsafe fn kernel_impl(arow: &[f32], tile: &[f32], finite: &[bool], acc: &mut [f32; NR], nr: usize) {
    use std::arch::x86_64::*;
    if nr == NR {
        // Register-blocked fast path: NR/8 = 8 accumulators stay live.
        let mut v = [_mm256_setzero_ps(); NR / 8];
        for (i, vi) in v.iter_mut().enumerate() {
            *vi = _mm256_loadu_ps(acc.as_ptr().add(i * 8));
        }
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 && finite[kk] {
                continue;
            }
            let a = _mm256_set1_ps(av);
            let brow = tile.as_ptr().add(kk * NR);
            for (i, vi) in v.iter_mut().enumerate() {
                let b = _mm256_loadu_ps(brow.add(i * 8));
                *vi = _mm256_add_ps(*vi, _mm256_mul_ps(a, b));
            }
        }
        for (i, vi) in v.iter().enumerate() {
            _mm256_storeu_ps(acc.as_mut_ptr().add(i * 8), *vi);
        }
    } else {
        let nv = nr / 8;
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 && finite[kk] {
                continue;
            }
            let a = _mm256_set1_ps(av);
            let brow = tile.as_ptr().add(kk * nr);
            let out = acc.as_mut_ptr();
            for i in 0..nv {
                let p = out.add(i * 8);
                let b = _mm256_loadu_ps(brow.add(i * 8));
                _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), _mm256_mul_ps(a, b)));
            }
            for (j, aj) in acc[nv * 8..nr].iter_mut().enumerate() {
                *aj += av * *brow.add(nv * 8 + j);
            }
        }
    }
}
