//! Low-rank adaptation in a single 8-bit data type (§5.3).
//!
//! Classic LoRA keeps the pretrained weight `W0` quantized (int8) but
//! *upcasts and merges in floating point* before every linear — losing the
//! 8-bit GEMM. The paper instead quantizes everything to the same 8-bit
//! format (Equation 7):
//!
//! ```text
//! h = quant( W0⁸ + α · quant(A¹⁶) · quant(B¹⁶) ) · x
//! ```
//!
//! so the merged weight feeds the 8-bit systolic array directly. The
//! low-rank factors stay in 16-bit master copies (enough precision for the
//! updates) and are quantized on the fly.

/// Which dense layers receive LoRA factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoraTargets {
    /// Query and value projections only (the RoBERTa setting, rank 8 in
    /// the original LoRA paper and §6.1).
    QueryValue,
    /// Every dense layer (the MobileBERT setting: its stacked-FFN outputs
    /// are unstable, so all of them need adapters to retain accuracy).
    AllDense,
}

/// LoRA hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoraConfig {
    /// Low-rank dimension `r`.
    pub rank: usize,
    /// Scaling `α`; the effective update is `(α / r) · A·B`.
    pub alpha: f32,
    /// Which weights get adapters.
    pub targets: LoraTargets,
}

impl LoraConfig {
    /// The paper's RoBERTa configuration: rank 8 on Wq/Wv.
    pub fn roberta_default() -> Self {
        Self {
            rank: 8,
            alpha: 16.0,
            targets: LoraTargets::QueryValue,
        }
    }

    /// The paper's MobileBERT configuration: adapters on every dense layer.
    pub fn mobilebert_default() -> Self {
        Self {
            rank: 4,
            alpha: 8.0,
            targets: LoraTargets::AllDense,
        }
    }

    /// Does weight `name` (e.g. `"enc.0.attn.wq"`) get an adapter?
    pub fn applies_to(&self, name: &str) -> bool {
        match self.targets {
            LoraTargets::QueryValue => name.ends_with(".wq") || name.ends_with(".wv"),
            LoraTargets::AllDense => {
                name.ends_with(".wq")
                    || name.ends_with(".wk")
                    || name.ends_with(".wv")
                    || name.ends_with(".wo")
                    || name.ends_with(".w1")
                    || name.ends_with(".w2")
            }
        }
    }

    /// Effective update scale `α / r`.
    pub fn scale(&self) -> f32 {
        self.alpha / self.rank as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qv_targets() {
        let c = LoraConfig::roberta_default();
        assert!(c.applies_to("enc.0.attn.wq"));
        assert!(c.applies_to("enc.3.attn.wv"));
        assert!(!c.applies_to("enc.0.attn.wk"));
        assert!(!c.applies_to("enc.0.ffn0.w1"));
    }

    #[test]
    fn all_dense_targets() {
        let c = LoraConfig::mobilebert_default();
        assert!(c.applies_to("enc.0.attn.wk"));
        assert!(c.applies_to("enc.1.ffn2.w2"));
        assert!(!c.applies_to("embed.tok"));
        assert!(!c.applies_to("enc.0.ln1.gamma"));
    }

    #[test]
    fn scale() {
        assert_eq!(LoraConfig::roberta_default().scale(), 2.0);
    }
}
