//! Task heads: span extraction (SQuAD-style), sequence classification
//! (GLUE-style) and tied language modelling.

/// The task head attached on top of the backbone's final hidden states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskHead {
    /// Span extraction: a `[H, 2]` linear producing start/end logits over
    /// the sequence (logits shape `[B, S, 2]`).
    Span,
    /// Sequence classification from the first token: logits `[B, classes]`.
    Classify(
        /// Number of classes.
        usize,
    ),
    /// Language modelling with the output projection tied to the token
    /// embedding: logits `[B, S, V]`.
    LmTied,
}

impl TaskHead {
    /// Parameter-name prefix of head weights (trainable even in LoRA mode,
    /// like the classifier in standard LoRA fine-tuning).
    pub const PREFIX: &'static str = "head.";

    /// Does this head add its own parameters? (`LmTied` reuses the
    /// embedding table.)
    pub fn has_params(self) -> bool {
        !matches!(self, TaskHead::LmTied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lm_head_is_tied() {
        assert!(!TaskHead::LmTied.has_params());
        assert!(TaskHead::Span.has_params());
        assert!(TaskHead::Classify(4).has_params());
    }
}
