//! Model architecture configuration and the simulation-scale model zoo.
//!
//! The paper evaluates pretrained checkpoints from 16M to 13B parameters.
//! This reproduction cannot ship those weights, so each family is mirrored
//! by a *simulation-scale* config that preserves the architectural property
//! the paper's analysis hinges on:
//!
//! - `mobilebert*_sim`: **stacked** feed-forward networks without
//!   intermediate layer norms — the trait that widens activations and makes
//!   MobileBERT fragile under Posit8 without fusion (Figure 6);
//! - `bert*_sim` / `roberta*_sim`: classic post-LN encoder blocks;
//! - `whisper*_sim`: encoder-decoder with cross-attention;
//! - `gpt2*_sim` / `llama*_sim`: causal decoders (LLaMA-style uses wider
//!   FFNs and more heads as it "scales").
//!
//! Within a family, `*_sim` sizes scale the same way the paper's models do
//! (more layers/width from tiny → large), so "larger models are more robust
//! to quantization" remains testable.

/// Transformer topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Encoder-only (BERT/RoBERTa/MobileBERT style, bidirectional).
    Encoder,
    /// Decoder-only (GPT/LLaMA style, causal).
    Decoder,
    /// Encoder-decoder with cross-attention (Whisper style).
    EncDec,
}

/// Architecture hyperparameters of a model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransformerConfig {
    /// Human-readable name (paper model it simulates).
    pub name: &'static str,
    /// Topology.
    pub kind: ModelKind,
    /// Vocabulary size.
    pub vocab: usize,
    /// Hidden (embedding) width.
    pub hidden: usize,
    /// Number of layers (per stack for `EncDec`).
    pub layers: usize,
    /// Attention heads (must divide `hidden`).
    pub heads: usize,
    /// Feed-forward inner width.
    pub ffn: usize,
    /// Number of *stacked* FFNs per block (MobileBERT's quirk; 1 = normal).
    pub stacked_ffn: usize,
    /// Layer-norm between stacked FFNs? MobileBERT omits it, which is what
    /// lets activations grow wide.
    pub ln_between_ffn: bool,
    /// Maximum sequence length (positional embedding table size).
    pub max_seq: usize,
}

impl TransformerConfig {
    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Rough parameter count of the backbone (embeddings + blocks).
    pub fn param_count(&self) -> usize {
        let h = self.hidden;
        let attn = 4 * h * h + 4 * h;
        let ffn = self.stacked_ffn * (h * self.ffn * 2 + self.ffn + h);
        let ln = 4 * h; // two layer norms per block
        let block = attn + ffn + ln;
        let blocks = match self.kind {
            ModelKind::EncDec => {
                // decoder blocks also carry a cross-attention
                self.layers * block + self.layers * (block + attn + 2 * h)
            }
            _ => self.layers * block,
        };
        self.vocab * h + self.max_seq * h + blocks
    }

    /// Validate invariants (heads divide hidden, non-zero sizes).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.hidden == 0 || self.layers == 0 || self.heads == 0 || self.vocab == 0 {
            return Err(format!("{}: zero-sized dimension", self.name));
        }
        if !self.hidden.is_multiple_of(self.heads) {
            return Err(format!(
                "{}: hidden {} not divisible by heads {}",
                self.name, self.hidden, self.heads
            ));
        }
        if self.stacked_ffn == 0 {
            return Err(format!("{}: stacked_ffn must be >= 1", self.name));
        }
        Ok(())
    }

    // ---------- the zoo ----------

    /// MobileBERT_tiny analogue: stacked FFNs, two fewer than MobileBERT
    /// (the paper notes this is why it quantizes *better*).
    pub fn mobilebert_tiny_sim() -> Self {
        Self {
            name: "MobileBERT_tiny-sim",
            kind: ModelKind::Encoder,
            vocab: 96,
            hidden: 32,
            layers: 3,
            heads: 4,
            ffn: 64,
            stacked_ffn: 2,
            ln_between_ffn: false,
            max_seq: 48,
        }
    }

    /// MobileBERT analogue: four stacked FFNs, no LN in between.
    pub fn mobilebert_sim() -> Self {
        Self {
            name: "MobileBERT-sim",
            kind: ModelKind::Encoder,
            vocab: 96,
            hidden: 32,
            layers: 4,
            heads: 4,
            ffn: 64,
            stacked_ffn: 4,
            ln_between_ffn: false,
            max_seq: 48,
        }
    }

    /// DistilBERT analogue: plain encoder, middle size.
    pub fn distilbert_sim() -> Self {
        Self {
            name: "DistilBERT-sim",
            kind: ModelKind::Encoder,
            vocab: 96,
            hidden: 56,
            layers: 4,
            heads: 4,
            ffn: 112,
            stacked_ffn: 1,
            ln_between_ffn: true,
            max_seq: 48,
        }
    }

    /// BERT_base analogue.
    pub fn bert_base_sim() -> Self {
        Self {
            name: "BERT_base-sim",
            kind: ModelKind::Encoder,
            vocab: 96,
            hidden: 64,
            layers: 4,
            heads: 4,
            ffn: 128,
            stacked_ffn: 1,
            ln_between_ffn: true,
            max_seq: 48,
        }
    }

    /// BERT_large analogue.
    pub fn bert_large_sim() -> Self {
        Self {
            name: "BERT_large-sim",
            kind: ModelKind::Encoder,
            vocab: 96,
            hidden: 96,
            layers: 6,
            heads: 6,
            ffn: 192,
            stacked_ffn: 1,
            ln_between_ffn: true,
            max_seq: 48,
        }
    }

    /// RoBERTa_base analogue (same skeleton as BERT_base).
    pub fn roberta_base_sim() -> Self {
        Self {
            name: "RoBERTa_base-sim",
            ..Self::bert_base_sim()
        }
    }

    /// RoBERTa_large analogue.
    pub fn roberta_large_sim() -> Self {
        Self {
            name: "RoBERTa_large-sim",
            ..Self::bert_large_sim()
        }
    }

    /// Whisper_tiny analogue (encoder-decoder).
    pub fn whisper_tiny_sim() -> Self {
        Self {
            name: "Whisper_tiny-sim",
            kind: ModelKind::EncDec,
            vocab: 64,
            hidden: 32,
            layers: 2,
            heads: 4,
            ffn: 64,
            stacked_ffn: 1,
            ln_between_ffn: true,
            max_seq: 48,
        }
    }

    /// Whisper_small analogue.
    pub fn whisper_small_sim() -> Self {
        Self {
            name: "Whisper_small-sim",
            hidden: 48,
            layers: 3,
            ffn: 96,
            ..Self::whisper_tiny_sim()
        }
    }

    /// Whisper_large analogue.
    pub fn whisper_large_sim() -> Self {
        Self {
            name: "Whisper_large-sim",
            hidden: 64,
            layers: 4,
            ffn: 128,
            ..Self::whisper_tiny_sim()
        }
    }

    /// GPT-2 Large analogue (causal decoder).
    pub fn gpt2_large_sim() -> Self {
        Self {
            name: "GPT-2-Large-sim",
            kind: ModelKind::Decoder,
            vocab: 128,
            hidden: 48,
            layers: 3,
            heads: 4,
            ffn: 96,
            stacked_ffn: 1,
            ln_between_ffn: true,
            max_seq: 64,
        }
    }

    /// GPT-2 XL analogue.
    pub fn gpt2_xl_sim() -> Self {
        Self {
            name: "GPT-2-XL-sim",
            hidden: 64,
            layers: 4,
            ffn: 128,
            ..Self::gpt2_large_sim()
        }
    }

    /// LLaMA-2 7B analogue.
    pub fn llama7b_sim() -> Self {
        Self {
            name: "LLaMA-2-7B-sim",
            hidden: 96,
            layers: 5,
            heads: 6,
            ffn: 256,
            ..Self::gpt2_large_sim()
        }
    }

    /// LLaMA-2 13B analogue.
    pub fn llama13b_sim() -> Self {
        Self {
            name: "LLaMA-2-13B-sim",
            hidden: 128,
            layers: 6,
            heads: 8,
            ffn: 320,
            ..Self::gpt2_large_sim()
        }
    }

    /// The SQuAD-experiment families of Table 2, smallest to largest.
    pub fn squad_family() -> Vec<Self> {
        vec![
            Self::mobilebert_tiny_sim(),
            Self::mobilebert_sim(),
            Self::distilbert_sim(),
            Self::bert_base_sim(),
            Self::bert_large_sim(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_validates() {
        for cfg in [
            TransformerConfig::mobilebert_tiny_sim(),
            TransformerConfig::mobilebert_sim(),
            TransformerConfig::distilbert_sim(),
            TransformerConfig::bert_base_sim(),
            TransformerConfig::bert_large_sim(),
            TransformerConfig::whisper_tiny_sim(),
            TransformerConfig::whisper_small_sim(),
            TransformerConfig::whisper_large_sim(),
            TransformerConfig::gpt2_large_sim(),
            TransformerConfig::gpt2_xl_sim(),
            TransformerConfig::llama7b_sim(),
            TransformerConfig::llama13b_sim(),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn families_scale_upward() {
        let fam = TransformerConfig::squad_family();
        for w in fam.windows(2) {
            assert!(
                w[0].param_count() <= w[1].param_count(),
                "{} !<= {}",
                w[0].name,
                w[1].name
            );
        }
        assert!(
            TransformerConfig::llama13b_sim().param_count()
                > TransformerConfig::gpt2_large_sim().param_count()
        );
    }

    #[test]
    fn mobilebert_has_stacked_ffn_without_ln() {
        let m = TransformerConfig::mobilebert_sim();
        assert!(m.stacked_ffn > 1 && !m.ln_between_ffn);
        assert!(m.stacked_ffn > TransformerConfig::mobilebert_tiny_sim().stacked_ffn);
        let b = TransformerConfig::bert_base_sim();
        assert_eq!(b.stacked_ffn, 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = TransformerConfig::bert_base_sim();
        c.heads = 5; // does not divide 64
        assert!(c.validate().is_err());
        c.heads = 4;
        c.hidden = 0;
        assert!(c.validate().is_err());
    }
}
