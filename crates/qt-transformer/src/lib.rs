//! The paper's core contribution, rebuilt as a library: Transformer models
//! whose **every operation** can be quantized to Posit8/FP8 with
//! configurable operation fusion (§4), an approximate posit softmax with a
//! custom backward pass (§4.1, §5.2), and LoRA fine-tuning in a single
//! 8-bit data type (§5.3).
//!
//! The model zoo ([`config`]) mirrors the paper's evaluation families at
//! simulation scale: MobileBERT-style encoders with stacked
//! feed-forward networks (the architecture quirk that makes MobileBERT
//! hard to quantize), BERT/RoBERTa-style encoders, Whisper-style
//! encoder-decoders and GPT/LLaMA-style decoders.
//!
//! Quantization is injected through a [`QuantCtx`]: every operation input
//! passes through [`QuantCtx::cut`], which fake-quantizes the forward value
//! (unless the fusion level exempts the site) and quantizes + rescales the
//! gradient on the way back — exactly the paper's GPU simulation recipe.

#![warn(missing_docs)]

pub mod cancel;
pub mod config;
pub mod heads;
pub mod lora;
pub mod model;
pub mod params;
pub mod probe;
pub mod qctx;
pub mod softmax;

pub use cancel::{CancelCause, CancelToken, ForwardCancelled};
pub use config::{ModelKind, TransformerConfig};
pub use heads::TaskHead;
pub use lora::LoraConfig;
pub use model::{Model, ModelOutput, TokenBatch, TrainMode};
pub use params::ParamStore;
pub use probe::ProbeStore;
pub use qctx::QuantCtx;
pub use qt_quant::{NonFinitePolicy, TensorHealth};
pub use softmax::Softmax;
