//! Named parameter storage shared by models, optimizers and checkpoints.

use qt_tensor::Tensor;
use rand::Rng;
use std::collections::BTreeMap;

/// An ordered map of named parameter tensors.
///
/// Ordering is deterministic (BTreeMap), which keeps optimizer state,
/// serialization and RNG consumption reproducible.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: BTreeMap<String, Tensor>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a parameter.
    pub fn insert(&mut self, name: impl Into<String>, t: Tensor) {
        self.params.insert(name.into(), t);
    }

    /// Insert a trunc-normal(0, std) initialised parameter.
    pub fn init_normal(
        &mut self,
        name: impl Into<String>,
        shape: &[usize],
        std: f32,
        rng: &mut impl Rng,
    ) {
        let t = Tensor::randn(shape, rng).map(|x| (x * std).clamp(-2.0 * std, 2.0 * std));
        self.insert(name, t);
    }

    /// Insert a zeros parameter.
    pub fn init_zeros(&mut self, name: impl Into<String>, shape: &[usize]) {
        self.insert(name, Tensor::zeros(shape));
    }

    /// Insert a ones parameter.
    pub fn init_ones(&mut self, name: impl Into<String>, shape: &[usize]) {
        self.insert(name, Tensor::ones(shape));
    }

    /// Borrow a parameter.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown (a wiring bug, not a runtime state).
    pub fn get(&self, name: &str) -> &Tensor {
        self.params
            .get(name)
            .unwrap_or_else(|| panic!("unknown parameter {name:?}"))
    }

    /// Mutably borrow a parameter (for optimizer updates).
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn get_mut(&mut self, name: &str) -> &mut Tensor {
        self.params
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown parameter {name:?}"))
    }

    /// Does a parameter exist?
    pub fn contains(&self, name: &str) -> bool {
        self.params.contains_key(name)
    }

    /// Iterate `(name, tensor)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Names in deterministic order.
    pub fn names(&self) -> Vec<String> {
        self.params.keys().cloned().collect()
    }

    /// Number of parameters (elements, not tensors).
    pub fn num_elements(&self) -> usize {
        self.params.values().map(|t| t.len()).sum()
    }

    /// Number of tensors.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` if no parameters are stored.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Sum of elements over tensors whose name passes `filter` — convenient
    /// for counting trainable parameters.
    pub fn num_elements_matching(&self, filter: impl Fn(&str) -> bool) -> usize {
        self.params
            .iter()
            .filter(|(k, _)| filter(k))
            .map(|(_, v)| v.len())
            .sum()
    }
}

impl FromIterator<(String, Tensor)> for ParamStore {
    fn from_iter<I: IntoIterator<Item = (String, Tensor)>>(iter: I) -> Self {
        Self {
            params: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn insert_get_iterate() {
        let mut ps = ParamStore::new();
        ps.init_zeros("b.bias", &[4]);
        ps.init_ones("a.gamma", &[4]);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.num_elements(), 8);
        // deterministic (sorted) order
        let names = ps.names();
        assert_eq!(names, vec!["a.gamma".to_string(), "b.bias".to_string()]);
        assert_eq!(ps.get("a.gamma").data(), &[1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn get_unknown_panics() {
        ParamStore::new().get("nope");
    }

    #[test]
    fn trunc_normal_is_bounded() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamStore::new();
        ps.init_normal("w", &[1000], 0.1, &mut rng);
        let amax = ps.get("w").amax();
        assert!(amax <= 0.2 + 1e-6, "{amax}");
        assert!(amax > 0.05);
    }

    #[test]
    fn filtered_count() {
        let mut ps = ParamStore::new();
        ps.init_zeros("layer0.lora_a", &[8]);
        ps.init_zeros("layer0.w", &[100]);
        assert_eq!(ps.num_elements_matching(|n| n.contains("lora")), 8);
    }
}
