//! The posit softmax (§4.1) and its re-derived backward pass (§5.2).
//!
//! Forward, per row `z` of the last axis:
//!
//! 1. `u_i = z_i - max(z)` (all inputs to the exponential are ≤ 0);
//! 2. `e_i = f(u_i)` with the thresholded + shifted approximate posit
//!    exponential of Equation 3 (a 256-entry function of the Posit(8,1)
//!    code — literally a LUT here, as in hardware the sigmoid/reciprocal
//!    bit tricks make it combinational logic);
//! 3. `t = Σ e_i` accumulated in high precision (fused, §3.2);
//! 4. `r = f_recip(t)`: the piecewise-linear posit reciprocal;
//! 5. `s_i = e_i · r`.
//!
//! Backward (Equation 4): the PWL reciprocal is *not* `1/t`, so the usual
//! softmax Jacobian diverges in training; instead
//! `∂s_j/∂z_i = δ_ij e_j r + e_j f'(t) e_i` with
//! `f'(t) = -2^(-2⌊log2 t⌋ - 1)` (Equation 5).

use qt_autograd::{Tape, Var};
use qt_posit::approx::{fast_reciprocal, pwl_reciprocal_derivative, ExpApprox};
use qt_posit::P8E1;
use qt_quant::SoftmaxKind;
use qt_tensor::Tensor;

/// A softmax implementation (exact or posit-approximate) recordable on a
/// [`Tape`] with the correct custom backward.
#[derive(Debug, Clone)]
pub struct Softmax {
    kind: SoftmaxKind,
    /// `e_i` per Posit(8,1) input code (256 entries) when the approximate
    /// exponential is enabled.
    exp_lut: Option<Vec<f32>>,
}

impl Softmax {
    /// Build a softmax for the given kind.
    pub fn new(kind: SoftmaxKind) -> Self {
        let exp_lut = match kind {
            SoftmaxKind::PositApprox {
                approx_exp: true,
                exp,
                ..
            } => Some(build_exp_lut(exp)),
            _ => None,
        };
        Self { kind, exp_lut }
    }

    /// Apply over the last axis of `scores` and record on the tape.
    pub fn apply(&self, tape: &mut Tape, scores: Var) -> Var {
        match self.kind {
            SoftmaxKind::Exact => tape.softmax_lastdim(scores),
            SoftmaxKind::PositApprox {
                approx_exp,
                approx_recip,
                exp,
            } => {
                let lut = self.exp_lut.clone();
                let fwd = self.forward(tape.value(scores));
                tape.custom(
                    vec![scores],
                    fwd,
                    Box::new(move |g, parents, _| {
                        vec![backward(
                            g,
                            &parents[0],
                            lut.as_deref(),
                            approx_exp,
                            approx_recip,
                            exp,
                        )]
                    }),
                )
            }
        }
    }

    /// Forward evaluation without a tape (inference fast path).
    pub fn forward(&self, scores: &Tensor) -> Tensor {
        match self.kind {
            SoftmaxKind::Exact => scores.softmax_lastdim(),
            SoftmaxKind::PositApprox {
                approx_exp,
                approx_recip,
                exp,
            } => {
                // Rows are independent; chunk over whole rows with a fixed
                // chunk length so output is identical at any thread count.
                const ROW_CHUNK: usize = 4 * 1024;
                let mut out = scores.clone();
                let last = *scores.shape().last().expect("softmax of scalar");
                let rows = scores.len() / last;
                let lut = self.exp_lut.as_deref();
                let data = out.data_mut();
                if rows <= 1 || data.len() < ROW_CHUNK {
                    for row in data.chunks_mut(last) {
                        row_forward(row, lut, approx_exp, approx_recip, exp);
                    }
                } else {
                    let rows_per = (ROW_CHUNK / last).max(1);
                    qt_par::parallel_for_slices_mut(data, rows_per * last, |_, _, chunk| {
                        for row in chunk.chunks_mut(last) {
                            row_forward(row, lut, approx_exp, approx_recip, exp);
                        }
                    });
                }
                out
            }
        }
    }
}

/// Tabulate the approximate exponential over every Posit(8,1) code.
fn build_exp_lut(cfg: ExpApprox) -> Vec<f32> {
    (0u16..256)
        .map(|c| cfg.eval_p8(P8E1::from_bits(c)).to_f32())
        .collect()
}

fn eval_exp(u: f32, lut: Option<&[f32]>, approx_exp: bool) -> f32 {
    if approx_exp {
        let lut = lut.expect("exp LUT missing");
        lut[P8E1::from_f32(u).bits() as usize]
    } else {
        libm::expf(u)
    }
}

fn eval_recip(t: f32, approx_recip: bool) -> f32 {
    if t <= 0.0 {
        return 0.0; // fully-masked row: all exponentials truncated
    }
    if approx_recip {
        fast_reciprocal(P8E1::from_f32(t)).to_f32()
    } else {
        1.0 / t
    }
}

fn row_forward(
    row: &mut [f32],
    lut: Option<&[f32]>,
    approx_exp: bool,
    approx_recip: bool,
    _exp: ExpApprox,
) {
    let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let mut t = 0.0f32;
    for x in row.iter_mut() {
        *x = eval_exp(*x - m, lut, approx_exp);
        t += *x;
    }
    let r = eval_recip(t, approx_recip);
    for x in row.iter_mut() {
        *x *= r;
    }
}

fn backward(
    g: &Tensor,
    scores: &Tensor,
    lut: Option<&[f32]>,
    approx_exp: bool,
    approx_recip: bool,
    _exp: ExpApprox,
) -> Tensor {
    let last = *scores.shape().last().expect("softmax of scalar");
    let rows = scores.len() / last;
    let mut out = Tensor::zeros(scores.shape());
    for rix in 0..rows {
        let z = &scores.data()[rix * last..(rix + 1) * last];
        let gr = &g.data()[rix * last..(rix + 1) * last];
        // Recompute forward intermediates.
        let (mut m, mut argmax) = (f32::NEG_INFINITY, 0usize);
        for (i, &v) in z.iter().enumerate() {
            if v > m {
                m = v;
                argmax = i;
            }
        }
        let e: Vec<f32> = z.iter().map(|&v| eval_exp(v - m, lut, approx_exp)).collect();
        let t: f32 = e.iter().sum();
        let r = eval_recip(t, approx_recip);
        let fprime = if t <= 0.0 {
            0.0
        } else if approx_recip {
            pwl_reciprocal_derivative(t as f64) as f32
        } else {
            -1.0 / (t * t)
        };
        // de_k = g_k·r + (Σ_i g_i e_i)·f'(t);  du_k = de_k · e_k
        let gdot: f32 = gr.iter().zip(&e).map(|(&a, &b)| a * b).sum();
        let orow = &mut out.data_mut()[rix * last..(rix + 1) * last];
        let mut du_sum = 0.0f32;
        for k in 0..last {
            let de = gr[k] * r + gdot * fprime;
            let du = de * e[k];
            orow[k] = du;
            du_sum += du;
        }
        // max-subtraction: dz_j = du_j - δ(j = argmax)·Σ du
        orow[argmax] -= du_sum;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_quant::SoftmaxKind;

    fn approx_kind() -> SoftmaxKind {
        SoftmaxKind::posit_full()
    }

    #[test]
    fn exact_matches_tensor_softmax() {
        let s = Softmax::new(SoftmaxKind::Exact);
        let x = Tensor::from_vec(vec![0.1, 1.0, -0.4, 2.0], &[2, 2]);
        assert_eq!(s.forward(&x).data(), x.softmax_lastdim().data());
    }

    #[test]
    fn approx_rows_are_near_normalised() {
        let s = Softmax::new(approx_kind());
        let x = Tensor::from_vec(vec![1.0, 0.5, -0.5, -2.0, 3.0, 0.0, -1.0, 1.5], &[2, 4]);
        let y = s.forward(&x);
        for r in 0..2 {
            let sum: f32 = y.data()[r * 4..(r + 1) * 4].iter().sum();
            // PWL reciprocal + shifted exp: sums are close to 1, not exact.
            assert!((sum - 1.0).abs() < 0.25, "row {r}: {sum}");
        }
    }

    #[test]
    fn approx_close_to_exact_softmax() {
        let s = Softmax::new(approx_kind());
        let x = Tensor::from_vec(vec![2.0, 1.0, 0.0, -1.0], &[1, 4]);
        let y = s.forward(&x);
        let ex = x.softmax_lastdim();
        for i in 0..4 {
            assert!(
                (y.data()[i] - ex.data()[i]).abs() < 0.1,
                "i={i}: {} vs {}",
                y.data()[i],
                ex.data()[i]
            );
        }
    }

    #[test]
    fn masked_positions_get_zero_attention() {
        // With the thresholded exponential, a -30 masked score must get
        // exactly zero probability (§4.1's entire point).
        let s = Softmax::new(approx_kind());
        let x = Tensor::from_vec(vec![1.0, 0.0, -30.0, -30.0], &[1, 4]);
        let y = s.forward(&x);
        assert_eq!(y.data()[2], 0.0);
        assert_eq!(y.data()[3], 0.0);
        assert!(y.data()[0] > y.data()[1]);
    }

    #[test]
    fn raw_exponential_leaks_attention() {
        // Without the threshold, masked tokens keep non-zero attention.
        let s = Softmax::new(SoftmaxKind::PositApprox {
            approx_exp: true,
            approx_recip: true,
            exp: ExpApprox::raw(),
        });
        let x = Tensor::from_vec(vec![1.0, 0.0, -30.0, -30.0], &[1, 4]);
        let y = s.forward(&x);
        assert!(y.data()[2] > 0.0, "raw approximation should leak");
    }

    #[test]
    fn exact_backward_matches_finite_difference() {
        use qt_autograd::Tape;
        let sm = Softmax::new(SoftmaxKind::Exact);
        let x0 = Tensor::from_vec(vec![0.4, -0.2, 0.9, 0.1], &[1, 4]);
        let w = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[1, 4]);
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone(), true);
        let y = sm.apply(&mut tape, x);
        let wv = tape.leaf(w.clone(), false);
        let yw = tape.mul(y, wv);
        let l = tape.sum_all(yw);
        let grads = tape.backward(l);
        let gx = grads.get(x).unwrap().clone();
        for idx in 0..4 {
            let eval = |v: f32| {
                let mut x1 = x0.clone();
                x1.data_mut()[idx] = v;
                sm.forward(&x1).mul(&w).sum_all()
            };
            let eps = 5e-3;
            let fd = (eval(x0.data()[idx] + eps) - eval(x0.data()[idx] - eps)) / (2.0 * eps);
            assert!(
                (gx.data()[idx] - fd).abs() < 0.05,
                "idx {idx}: {} vs {fd}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn pwl_backward_matches_smooth_pwl_model() {
        // The hardware forward quantizes t to Posit8 before the reciprocal,
        // so its true derivative is a staircase; Equation 4/5 differentiates
        // the *smooth* PWL model instead (what the paper trains with).
        // Check the analytic backward against finite differences of that
        // smooth model.
        use qt_autograd::Tape;
        use qt_posit::approx::pwl_reciprocal;
        let kind = SoftmaxKind::PositApprox {
            approx_exp: false,
            approx_recip: true,
            exp: ExpApprox::PAPER_BEST,
        };
        let sm = Softmax::new(kind);
        let x0 = Tensor::from_vec(vec![0.4, -0.2, 0.9, 0.1], &[1, 4]);
        let w = [1.0f32, -2.0, 0.5, 3.0];
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone(), true);
        let y = sm.apply(&mut tape, x);
        let wv = tape.leaf(Tensor::from_vec(w.to_vec(), &[1, 4]), false);
        let yw = tape.mul(y, wv);
        let l = tape.sum_all(yw);
        let grads = tape.backward(l);
        let gx = grads.get(x).unwrap().clone();
        let smooth = |z: &[f32]| -> f32 {
            let m = z.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let e: Vec<f32> = z.iter().map(|&v| libm::expf(v - m)).collect();
            let t: f32 = e.iter().sum();
            let r = pwl_reciprocal(t as f64) as f32;
            e.iter().zip(&w).map(|(&ei, &wi)| ei * r * wi).sum()
        };
        for idx in 0..4 {
            let eval = |v: f32| {
                let mut z = x0.data().to_vec();
                z[idx] = v;
                smooth(&z)
            };
            let eps = 5e-3;
            let fd = (eval(x0.data()[idx] + eps) - eval(x0.data()[idx] - eps)) / (2.0 * eps);
            assert!(
                (gx.data()[idx] - fd).abs() < 0.03,
                "idx {idx}: analytic {} vs smooth-model fd {fd}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn pwl_reciprocal_backward_differs_from_exact() {
        // Equation 4/5 exists because the PWL reciprocal's derivative is a
        // step function; verify the two backward passes disagree.
        let x0 = Tensor::from_vec(vec![0.9, 0.2, -0.5], &[1, 3]);
        let grad_of = |kind: SoftmaxKind| {
            let sm = Softmax::new(kind);
            let mut tape = Tape::new();
            let x = tape.leaf(x0.clone(), true);
            let y = sm.apply(&mut tape, x);
            let w = tape.leaf(Tensor::from_vec(vec![1.0, 0.0, 0.0], &[1, 3]), false);
            let yw = tape.mul(y, w);
            let l = tape.sum_all(yw);
            tape.backward(l).get(x).unwrap().clone()
        };
        let exact = grad_of(SoftmaxKind::Exact);
        let pwl = grad_of(SoftmaxKind::PositApprox {
            approx_exp: false,
            approx_recip: true,
            exp: ExpApprox::PAPER_BEST,
        });
        let diff: f32 = exact
            .data()
            .iter()
            .zip(pwl.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "backwards should differ, diff={diff}");
    }
}
