//! Activation/gradient probing for the paper's distribution figures
//! (Figures 6 and 10).

use qt_tensor::{Tensor, TensorStats};

/// Collects named tensor statistics during forward/backward passes.
///
/// Attach one to a [`crate::QuantCtx`] and every quantization cut records
/// the *pre-quantization* distribution of the tensor flowing through it.
#[derive(Debug, Default, Clone)]
pub struct ProbeStore {
    entries: Vec<(String, TensorStats)>,
}

impl ProbeStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record statistics of `t` under `name`.
    pub fn record(&mut self, name: &str, t: &Tensor) {
        self.record_stats(name, TensorStats::of(t));
    }

    /// Record pre-computed statistics under `name` (avoids a second
    /// pass when the caller already has [`TensorStats`] in hand).
    pub fn record_stats(&mut self, name: &str, stats: TensorStats) {
        self.entries.push((name.to_string(), stats));
    }

    /// All `(name, stats)` entries in recording order.
    pub fn entries(&self) -> &[(String, TensorStats)] {
        &self.entries
    }

    /// Entries whose name contains `needle`, in stable recording order.
    ///
    /// ```
    /// use qt_transformer::ProbeStore;
    /// use qt_tensor::Tensor;
    ///
    /// let mut p = ProbeStore::new();
    /// p.record("layer1.act", &Tensor::from_vec(vec![1.0], &[1]));
    /// p.record("layer0.act", &Tensor::from_vec(vec![2.0], &[1]));
    /// p.record("layer0.grad", &Tensor::from_vec(vec![3.0], &[1]));
    /// let acts = p.matching(".act");
    /// // Recording order, not name order:
    /// assert_eq!(acts[0].0, "layer1.act");
    /// assert_eq!(acts[1].0, "layer0.act");
    /// assert_eq!(acts.len(), 2);
    /// ```
    pub fn matching(&self, needle: &str) -> Vec<&(String, TensorStats)> {
        self.entries
            .iter()
            .filter(|(n, _)| n.contains(needle))
            .collect()
    }

    /// Merge the log2 histograms of all entries matching `needle` into one
    /// (bucket-wise sum), or `None` if nothing matches.
    pub fn merged_hist(&self, needle: &str) -> Option<Vec<u64>> {
        self.merged_hist_where(|n| n.contains(needle))
    }

    /// Merge the log2 histograms of all entries whose name satisfies
    /// `pred`, or `None` if nothing matches.
    pub fn merged_hist_where(&self, pred: impl Fn(&str) -> bool) -> Option<Vec<u64>> {
        let mut hist = vec![0u64; TensorStats::BUCKETS];
        let mut any = false;
        for (n, s) in &self.entries {
            if !pred(n) {
                continue;
            }
            any = true;
            for (h, &c) in hist.iter_mut().zip(&s.log2_hist) {
                *h += c;
            }
        }
        any.then_some(hist)
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drop all entries, returning how many were recorded — handy
    /// between evaluation phases that reuse one store.
    pub fn reset(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut p = ProbeStore::new();
        p.record("layer0.act", &Tensor::from_vec(vec![1.0, 2.0], &[2]));
        p.record("layer1.act", &Tensor::from_vec(vec![4.0], &[1]));
        p.record("layer0.grad", &Tensor::from_vec(vec![1e-6], &[1]));
        assert_eq!(p.len(), 3);
        assert_eq!(p.matching(".act").len(), 2);
        let hist = p.merged_hist(".act").unwrap();
        let total: u64 = hist.iter().sum();
        assert_eq!(total, 3);
        assert!(p.merged_hist("nothing").is_none());
        p.clear();
        assert!(p.is_empty());
    }

    #[test]
    fn matching_preserves_recording_order() {
        let mut p = ProbeStore::new();
        for name in ["c.act", "a.act", "b.act"] {
            p.record(name, &Tensor::from_vec(vec![1.0], &[1]));
        }
        let names: Vec<&str> = p.matching(".act").iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["c.act", "a.act", "b.act"]);
    }

    #[test]
    fn reset_reports_count_and_empties() {
        let mut p = ProbeStore::new();
        p.record("x", &Tensor::from_vec(vec![1.0], &[1]));
        p.record("y", &Tensor::from_vec(vec![2.0], &[1]));
        assert_eq!(p.reset(), 2);
        assert!(p.is_empty());
        assert_eq!(p.reset(), 0);
    }
}
