//! [`QuantCtx`]: injects quantization at operation boundaries.
//!
//! The paper's simulation recipe (§6): *"clipping tensor values to the
//! Posit8 or FP8 representable range before and after each operation;
//! storing the value back into BFloat16"*. Here every operation input runs
//! through [`QuantCtx::cut`], which
//!
//! - **forward**: fake-quantizes the value to the forward format — unless
//!   the site’s [`OpClass`] is fused at the scheme’s fusion level;
//! - **backward**: quantizes the gradient to the backward format, applying
//!   per-tensor delayed scaling (§5.1) and recording the observed amax into
//!   the shared [`AmaxTracker`].

use crate::cancel::{CancelToken, ForwardCancelled};
use crate::probe::ProbeStore;
use crate::softmax::Softmax;
use qt_autograd::{reduce_grad_to_shape, Tape, Var};
use qt_quant::{
    matmul_codes, AmaxTracker, ElemFormat, FakeQuant, OpClass, PackedQuantB, QuantScheme,
    ScalingMode, TensorHealth,
};
use qt_tensor::{Tensor, TensorStats};
use qt_trace::{CycleModel, QuantEvent, SpanId, TraceHandle};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One cached weight pack: the decoded KC×NR panels plus the fingerprint
/// of the f32 weight bits it was built from. A fingerprint/shape mismatch
/// (weight update, LoRA merge change, injected bit flip) repacks.
struct PackEntry {
    fingerprint: u64,
    pack: Rc<PackedQuantB>,
}

/// FNV-1a over the exact f32 bit patterns — cheap (one linear pass),
/// deterministic, and sensitive to any single-bit weight corruption.
fn fnv1a64(data: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in data {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Quantization context threaded through a model's forward pass.
#[derive(Clone)]
pub struct QuantCtx {
    scheme: QuantScheme,
    fq_fwd: Rc<FakeQuant>,
    fq_bwd: Rc<FakeQuant>,
    softmax: Rc<Softmax>,
    tracker: Rc<RefCell<AmaxTracker>>,
    health: Rc<RefCell<BTreeMap<String, TensorHealth>>>,
    /// Per-GEMM-site cache of decoded weight packs (inference only;
    /// shared across clones of this context, like the health map).
    gemm_cache: Rc<RefCell<BTreeMap<String, PackEntry>>>,
    probe: Option<Rc<RefCell<ProbeStore>>>,
    trace: Option<TraceHandle>,
    cycles: Option<Rc<dyn CycleModel>>,
    cancel: Option<CancelToken>,
    training: bool,
}

impl QuantCtx {
    /// Context for inference (no gradient bookkeeping).
    pub fn inference(scheme: QuantScheme) -> Self {
        Self::build(scheme, false)
    }

    /// Context for training: gradients are quantized and amax history is
    /// tracked.
    pub fn training(scheme: QuantScheme) -> Self {
        Self::build(scheme, true)
    }

    fn build(scheme: QuantScheme, training: bool) -> Self {
        let history = match scheme.scaling {
            ScalingMode::PerTensorAmax { history } => history,
            _ => 1,
        };
        Self {
            scheme,
            fq_fwd: Rc::new(FakeQuant::with_guard(
                scheme.fwd,
                scheme.underflow,
                scheme.nonfinite,
            )),
            fq_bwd: Rc::new(FakeQuant::with_guard(
                scheme.bwd,
                scheme.underflow,
                scheme.nonfinite,
            )),
            softmax: Rc::new(Softmax::new(scheme.softmax)),
            tracker: Rc::new(RefCell::new(AmaxTracker::new(history))),
            health: Rc::new(RefCell::new(BTreeMap::new())),
            gemm_cache: Rc::new(RefCell::new(BTreeMap::new())),
            probe: None,
            trace: None,
            cycles: None,
            cancel: None,
            training,
        }
    }

    /// Attach a cooperative cancellation token: the model charges one
    /// block credit per transformer block against it and
    /// [`crate::Model::try_forward`] aborts cleanly when the token
    /// cancels or its budget runs dry.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Charge one block credit against the attached token; infallible
    /// when no token is attached.
    pub fn charge_block(&self) -> Result<(), ForwardCancelled> {
        match &self.cancel {
            Some(t) => t.charge_block(),
            None => Ok(()),
        }
    }

    /// Attach a probe that records pre-quantization tensor statistics at
    /// every cut.
    pub fn with_probe(mut self, probe: Rc<RefCell<ProbeStore>>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Attach a trace session: every cut emits a quantization event, the
    /// model wraps blocks/attention/FFNs in spans, and (with a cycle
    /// model) each GEMM becomes a span whose duration is simulated
    /// cycles. Without a session none of that work happens.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attach a cycle-cost oracle (e.g. `qt_accel::SystolicSim`) used to
    /// attribute simulated cycles to GEMM/softmax spans. Only consulted
    /// when a trace session is also attached.
    pub fn with_cycle_model(mut self, model: Rc<dyn CycleModel>) -> Self {
        self.cycles = Some(model);
        self
    }

    /// The attached trace session, if any.
    pub fn trace(&self) -> Option<&TraceHandle> {
        self.trace.as_ref()
    }

    /// `true` when a trace session is attached (cheap gate for callers
    /// that would otherwise build span names for nothing).
    pub fn traced(&self) -> bool {
        self.trace.is_some()
    }

    /// Open a span on the attached session; no-op (returns `None`)
    /// untraced.
    pub fn span_begin(&self, name: &str, cat: &str) -> Option<SpanId> {
        self.trace
            .as_ref()
            .map(|t| t.borrow_mut().begin(name, cat))
    }

    /// Close a span opened by [`QuantCtx::span_begin`].
    pub fn span_end(&self, id: Option<SpanId>) {
        if let (Some(t), Some(id)) = (&self.trace, id) {
            t.borrow_mut().end(id);
        }
    }

    /// Record a simulated-GEMM span at `site` for a `[m, k] × [k, n]`
    /// GEMM, and attribute its simulated cycles to the active kernel
    /// backend (`gemm.backend.cycles`, labelled by the dispatch decision —
    /// deterministic, never wall time). No-op unless both a session and a
    /// cycle model are attached.
    pub fn gemm_span(&self, site: &str, m: usize, k: usize, n: usize) {
        if let (Some(t), Some(cm)) = (&self.trace, &self.cycles) {
            let cost = cm.gemm_cost(m as u64, k as u64, n as u64);
            let mut t = t.borrow_mut();
            t.metrics_mut().counter_add(
                "gemm.backend.cycles",
                &[("backend", qt_tensor::kernels::active().name())],
                cost.cycles,
            );
            t.gemm(site, [m as u64, k as u64, n as u64], cost);
        }
    }

    /// Count one GEMM dispatch on the `gemm.backend` metric: which SIMD
    /// backend the kernel layer selected and which domain the multiply ran
    /// in (`code` = pre-packed quantized weight, `f32` = dequantize-then-
    /// matmul). Records the dispatch *decision*, so manifests stay
    /// deterministic. No-op untraced.
    fn note_gemm_backend(&self, domain: &str) {
        if let Some(t) = &self.trace {
            t.borrow_mut().metrics_mut().counter_add(
                "gemm.backend",
                &[
                    ("backend", qt_tensor::kernels::active().name()),
                    ("domain", domain),
                ],
                1,
            );
        }
    }

    /// The scheme in effect.
    pub fn scheme(&self) -> &QuantScheme {
        self.scheme_ref()
    }

    fn scheme_ref(&self) -> &QuantScheme {
        &self.scheme
    }

    /// Shared amax tracker (inspect after training for Figure 10).
    pub fn tracker(&self) -> Rc<RefCell<AmaxTracker>> {
        Rc::clone(&self.tracker)
    }

    /// Per-cut numerical health accumulated since the last
    /// [`QuantCtx::reset_health`], sorted by cut name. Forward cuts are
    /// keyed by their site name, gradient cuts by `"<name>.grad"`.
    pub fn health_report(&self) -> Vec<(String, TensorHealth)> {
        self.health
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Health of one cut site, if it has run.
    pub fn health_of(&self, name: &str) -> Option<TensorHealth> {
        self.health.borrow().get(name).copied()
    }

    /// All health counters folded into one summary.
    pub fn health_total(&self) -> TensorHealth {
        let mut total = TensorHealth::default();
        for h in self.health.borrow().values() {
            total.merge(h);
        }
        total
    }

    /// Clear accumulated health counters (e.g. between batches).
    pub fn reset_health(&self) {
        self.health.borrow_mut().clear();
    }

    /// Is this site quantized under the scheme?
    pub fn quantizes(&self, op: OpClass) -> bool {
        !matches!(self.scheme.fwd, ElemFormat::Fp32) && self.scheme.quantized_ops().contains(op)
    }

    /// Quantization cut: returns a [`Var`] whose forward value is the
    /// (possibly) quantized input and whose backward pass quantizes the
    /// gradient. `name` keys the probe entry and the per-tensor amax
    /// history; use stable names like `"layer2.ffn0.act"`.
    pub fn cut(&self, tape: &mut Tape, x: Var, op: OpClass, name: &str) -> Var {
        if let Some(p) = &self.probe {
            let stats = TensorStats::of(tape.value(x));
            // Probe records also flow into the attached session's metrics
            // registry, on the same binade axis.
            if let Some(t) = &self.trace {
                let mut t = t.borrow_mut();
                let m = t.metrics_mut();
                m.merge_hist("probe.log2", &[("site", name)], &stats.log2_hist);
                m.gauge_set("probe.amax", &[("site", name)], stats.amax as f64);
            }
            p.borrow_mut().record_stats(name, stats);
        }
        let quantize_fwd = self.quantizes(op);
        let quantize_bwd = self.training && !matches!(self.scheme.bwd, ElemFormat::Fp32);
        if !quantize_fwd && !quantize_bwd {
            return x;
        }
        let fwd_value = if quantize_fwd {
            let (v, h) = self.fq_fwd.quantize_with_health(tape.value(x));
            if let Some(t) = &self.trace {
                t.borrow_mut().quant(&QuantEvent {
                    site: name,
                    format: self.scheme.fwd.name(),
                    amax: tape.value(x).amax(),
                    elements: h.elements,
                    saturated: h.saturated,
                    underflowed: h.underflowed,
                    nonfinite_in: h.nonfinite_in,
                    nonfinite_out: h.nonfinite_out,
                });
            }
            self.health
                .borrow_mut()
                .entry(name.to_string())
                .or_default()
                .merge(&h);
            v
        } else {
            tape.value(x).clone()
        };
        let fq_bwd = Rc::clone(&self.fq_bwd);
        let tracker = Rc::clone(&self.tracker);
        let health = Rc::clone(&self.health);
        let scaling = self.scheme.scaling;
        let bwd_fmt = self.scheme.bwd;
        let key = format!("{name}.grad");
        let probe = self.probe.clone();
        let trace = self.trace.clone();
        tape.custom(
            vec![x],
            fwd_value,
            Box::new(move |g, _parents, _| {
                if !quantize_bwd {
                    return vec![g.clone()];
                }
                if let Some(p) = &probe {
                    p.borrow_mut().record(&key, g);
                }
                let (gq, h) = match scaling {
                    ScalingMode::None | ScalingMode::LossScale(_) => {
                        fq_bwd.quantize_with_health(g)
                    }
                    ScalingMode::PerTensorAmax { .. } => {
                        // Delayed scaling: use the scale predicted from
                        // history, then record this step's amax.
                        let scale = tracker.borrow().scale_for(&key, bwd_fmt);
                        let amax = g.amax();
                        tracker.borrow_mut().record(&key, amax);
                        fq_bwd.quantize_scaled_with_health(g, scale)
                    }
                };
                if let Some(t) = &trace {
                    t.borrow_mut().quant(&QuantEvent {
                        site: &key,
                        format: bwd_fmt.name(),
                        amax: g.amax(),
                        elements: h.elements,
                        saturated: h.saturated,
                        underflowed: h.underflowed,
                        nonfinite_in: h.nonfinite_in,
                        nonfinite_out: h.nonfinite_out,
                    });
                }
                health
                    .borrow_mut()
                    .entry(key.clone())
                    .or_default()
                    .merge(&h);
                vec![gq]
            }),
        )
    }

    /// Quantize a weight tensor entering a GEMM. Weights are always cut at
    /// GEMM sites in an 8-bit scheme.
    pub fn cut_weight(&self, tape: &mut Tape, w: Var, name: &str) -> Var {
        self.cut(tape, w, OpClass::Gemm, name)
    }

    /// The quantized GEMM entry point: `x @ w` where both operands have
    /// already been cut. In an inference context with a quantized scheme
    /// and a 2-D weight, this runs the **code-domain path**: the weight is
    /// encoded to storage codes and decoded once into packed `KC × NR`
    /// panels (cached per `site`, validated by shape + an FNV-1a
    /// fingerprint of the exact weight bits, so weight updates and
    /// injected bit flips repack), then multiplied through the
    /// SIMD-dispatched blocked engine without materializing a fresh f32
    /// weight per call. Anything else — training, `Fp32` schemes, batched
    /// weights — takes the ordinary [`Tape::matmul`].
    ///
    /// Both paths are bitwise-identical (the code-domain contract is
    /// asserted in tests) and both register the exact matmul backward, so
    /// gradients are unaffected by the forward path choice.
    pub fn matmul_q(&self, tape: &mut Tape, x: Var, w: Var, site: &str) -> Var {
        let code_eligible = !self.training
            && !matches!(self.scheme.fwd, ElemFormat::Fp32)
            && tape.value(w).ndim() == 2
            && tape.value(x).ndim() >= 2
            && tape.value(x).shape()[tape.value(x).ndim() - 1] == tape.value(w).shape()[0];
        if !code_eligible {
            self.note_gemm_backend("f32");
            return tape.matmul(x, w);
        }
        let pack = self.weight_pack(site, tape.value(w));
        let y = matmul_codes(tape.value(x), &pack);
        self.note_gemm_backend("code");
        tape.custom(
            vec![x, w],
            y,
            Box::new(|g, parents, _| {
                // Exactly Tape::matmul's backward.
                let ga = g.matmul(&parents[1].transpose_last2());
                let gb = parents[0].transpose_last2().matmul(g);
                vec![
                    reduce_grad_to_shape(&ga, parents[0].shape()),
                    reduce_grad_to_shape(&gb, parents[1].shape()),
                ]
            }),
        )
    }

    /// Fetch (or build) the decoded panel pack for `site`'s weight.
    fn weight_pack(&self, site: &str, w: &Tensor) -> Rc<PackedQuantB> {
        let fp = fnv1a64(w.data());
        let (k, n) = (w.shape()[0], w.shape()[1]);
        let mut cache = self.gemm_cache.borrow_mut();
        if let Some(e) = cache.get(site) {
            if e.fingerprint == fp && e.pack.k() == k && e.pack.n() == n {
                self.note_pack_cache("hit");
                return Rc::clone(&e.pack);
            }
        }
        let codes = self
            .fq_fwd
            .quantize_to_codes(w)
            .expect("code path requires a non-Fp32 scheme");
        let pack = Rc::new(PackedQuantB::pack(&codes));
        cache.insert(
            site.to_string(),
            PackEntry {
                fingerprint: fp,
                pack: Rc::clone(&pack),
            },
        );
        self.note_pack_cache("miss");
        pack
    }

    /// Count a weight-pack cache event (`gemm.pack_cache`, labelled
    /// hit/miss). No-op untraced.
    fn note_pack_cache(&self, event: &str) {
        if let Some(t) = &self.trace {
            t.borrow_mut()
                .metrics_mut()
                .counter_add("gemm.pack_cache", &[("event", event)], 1);
        }
    }

    /// Number of weight packs currently cached (tests / diagnostics).
    pub fn cached_packs(&self) -> usize {
        self.gemm_cache.borrow().len()
    }

    /// The scheme's softmax, recorded with its custom backward.
    pub fn softmax(&self, tape: &mut Tape, scores: Var) -> Var {
        self.softmax.apply(tape, scores)
    }

    /// [`QuantCtx::softmax`] that also attributes vector-unit cycles at
    /// `site` when a session and cycle model are attached. Rows are the
    /// product of the leading dimensions, width the trailing one — the
    /// shape the accelerator's vector unit sees.
    pub fn softmax_named(&self, tape: &mut Tape, scores: Var, site: &str) -> Var {
        if let (Some(t), Some(cm)) = (&self.trace, &self.cycles) {
            let shape = tape.value(scores).shape().to_vec();
            if let Some((&width, rows)) = shape.split_last() {
                let rows: usize = rows.iter().product();
                let cycles = cm.softmax_cycles(rows as u64, width as u64);
                t.borrow_mut()
                    .vector(site, cycles, (rows * width) as u64);
            }
        }
        self.softmax.apply(tape, scores)
    }

    /// `true` when constructed with [`QuantCtx::training`].
    pub fn is_training(&self) -> bool {
        self.training
    }
}

impl core::fmt::Debug for QuantCtx {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("QuantCtx")
            .field("scheme", &self.scheme)
            .field("training", &self.training)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_quant::FusionLevel;
    use qt_tensor::Tensor;

    #[test]
    fn cut_quantizes_forward_value() {
        let ctx = QuantCtx::inference(QuantScheme::posit8());
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.03, 9999.0], &[2]), true);
        let q = ctx.cut(&mut tape, x, OpClass::Gemm, "t");
        assert_eq!(tape.value(q).data(), &[1.0, 4096.0]);
    }

    #[test]
    fn fusion_skips_forward_quantization() {
        let scheme = QuantScheme::posit8().with_fusion(FusionLevel::Residual);
        let ctx = QuantCtx::inference(scheme);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.03], &[1]), true);
        let q = ctx.cut(&mut tape, x, OpClass::Residual, "t");
        assert_eq!(tape.value(q).data(), &[1.03]); // untouched
        let g = ctx.cut(&mut tape, x, OpClass::Gemm, "t2");
        assert_eq!(tape.value(g).data(), &[1.0]); // GEMM still quantized
    }

    #[test]
    fn training_quantizes_gradients_with_scaling() {
        let ctx = QuantCtx::training(QuantScheme::posit8());
        let mut tape = Tape::new();
        // gradient magnitude ~1e-5: underflows Posit8 without scaling
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]), true);
        let q = ctx.cut(&mut tape, x, OpClass::Gemm, "t");
        let s = tape.sum_all(q);
        let tiny = tape.mul_scalar(s, 1e-5);
        // First backward: no history → scale derived from amax=1 (64);
        // 1e-5·64 ≈ 2^-10.6 sits at the very bottom of the posit range,
        // so the gradient survives only coarsely (> 30% error).
        let g1 = tape.backward(tiny);
        let coarse = g1.get(x).unwrap().data()[0];
        assert!(coarse > 0.0, "coarse grad lost entirely");
        assert!(
            (coarse - 1e-5).abs() / 1e-5 > 0.3,
            "first step should be coarse, got {coarse}"
        );
        // History now knows amax=1e-5 → next step's scale rescues it.
        let g2 = tape.backward(tiny);
        let gx = g2.get(x).unwrap();
        assert!(
            (gx.data()[0] - 1e-5).abs() / 1e-5 < 0.05,
            "rescued grad {:?}",
            gx.data()
        );
    }

    #[test]
    fn identity_scheme_is_transparent() {
        let ctx = QuantCtx::training(QuantScheme::fp32());
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.12345], &[1]), true);
        let q = ctx.cut(&mut tape, x, OpClass::Gemm, "t");
        assert_eq!(q, x); // no node inserted at all
    }

    #[test]
    fn cut_accumulates_health_per_site() {
        let ctx = QuantCtx::inference(QuantScheme::posit8());
        let mut tape = Tape::new();
        // One saturating and one underflowing element at site "a"; a clean
        // tensor at site "b".
        let a = tape.leaf(Tensor::from_vec(vec![1e9, 1e-9, 1.0], &[3]), false);
        let b = tape.leaf(Tensor::from_vec(vec![0.5, -0.25], &[2]), false);
        let _ = ctx.cut(&mut tape, a, OpClass::Gemm, "a");
        let _ = ctx.cut(&mut tape, b, OpClass::Gemm, "b");
        let ha = ctx.health_of("a").unwrap();
        assert_eq!(ha.elements, 3);
        assert_eq!(ha.saturated, 1);
        assert_eq!(ha.underflowed, 1);
        let hb = ctx.health_of("b").unwrap();
        assert!(hb.is_clean());
        // Second pass over the same site accumulates.
        let _ = ctx.cut(&mut tape, a, OpClass::Gemm, "a");
        assert_eq!(ctx.health_of("a").unwrap().elements, 6);
        let total = ctx.health_total();
        assert_eq!(total.elements, 8);
        assert_eq!(total.saturated, 2);
        ctx.reset_health();
        assert!(ctx.health_report().is_empty());
    }

    #[test]
    fn gradient_cut_reports_health_under_grad_key() {
        let ctx = QuantCtx::training(QuantScheme::posit8());
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]), true);
        let q = ctx.cut(&mut tape, x, OpClass::Gemm, "t");
        let s = tape.sum_all(q);
        let _ = tape.backward(s);
        let names: Vec<String> = ctx.health_report().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"t".to_string()));
        assert!(names.contains(&"t.grad".to_string()), "{names:?}");
    }

    #[test]
    fn health_report_is_sorted_and_merges_repeat_sites() {
        let ctx = QuantCtx::training(QuantScheme::posit8());
        let mut tape = Tape::new();
        // Cut sites deliberately out of lexicographic order, one repeated.
        for (name, n) in [("z.act", 2usize), ("a.act", 3), ("m.act", 1), ("a.act", 3)] {
            let x = tape.leaf(Tensor::from_vec(vec![1.0; n], &[n]), true);
            let q = ctx.cut(&mut tape, x, OpClass::Gemm, name);
            let s = tape.sum_all(q);
            let _ = tape.backward(s);
        }
        let report = ctx.health_report();
        let names: Vec<&str> = report.iter().map(|(n, _)| n.as_str()).collect();
        // Sorted by site name, forward and ".grad" keys interleaved.
        assert_eq!(
            names,
            ["a.act", "a.act.grad", "m.act", "m.act.grad", "z.act", "z.act.grad"]
        );
        // The repeated site merged both passes: 3 + 3 elements.
        let a = &report[0].1;
        assert_eq!(a.elements, 6);
        assert_eq!(ctx.health_of("a.act.grad").unwrap().elements, 6);
    }

    #[test]
    fn traced_cut_emits_quant_events_and_probe_metrics() {
        let probe = Rc::new(RefCell::new(ProbeStore::new()));
        let session = qt_trace::TraceSession::new("t").handle();
        let ctx = QuantCtx::training(QuantScheme::posit8())
            .with_probe(Rc::clone(&probe))
            .with_trace(Rc::clone(&session));
        assert!(ctx.traced());
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1e9, 1.0], &[2]), true);
        let q = ctx.cut(&mut tape, x, OpClass::Gemm, "site");
        let s = tape.sum_all(q);
        let _ = tape.backward(s);
        let sess = session.borrow();
        // Forward event carries pre-quant amax and the saturation count.
        let fwd = &sess.quant_sites()["site"];
        assert_eq!(fwd.events, 1);
        assert_eq!(fwd.saturated, 1);
        assert_eq!(fwd.amax_max, 1e9);
        assert!(fwd.formats.contains("Posit(8,1)"));
        // Backward event lands under the .grad key.
        assert_eq!(sess.quant_sites()["site.grad"].events, 1);
        // Probe records flowed into the metrics registry.
        let hist = sess.metrics().hist("probe.log2", &[("site", "site")]).unwrap();
        assert_eq!(hist.count(), 2);
        assert_eq!(
            sess.metrics().gauge_value("probe.amax", &[("site", "site")]),
            Some(1e9)
        );
    }

    #[test]
    fn untraced_ctx_keeps_hot_path_quiet() {
        let ctx = QuantCtx::inference(QuantScheme::posit8());
        assert!(!ctx.traced());
        assert!(ctx.span_begin("x", "block").is_none());
        ctx.span_end(None);
        ctx.gemm_span("g", 4, 4, 4); // no session/model: silently ignored
    }

    #[test]
    fn matmul_q_code_path_is_bitwise_identical_to_tape_matmul() {
        let ctx = QuantCtx::inference(QuantScheme::posit8());
        let mut tape = Tape::new();
        let (b, m, k, n) = (2usize, 5, 33, 17);
        let xs: Vec<f32> = (0..b * m * k).map(|i| (i as f32) * 0.173 - 9.0).collect();
        let ws: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.031 - 4.0).collect();
        let x0 = tape.leaf(Tensor::from_vec(xs, &[b, m, k]), true);
        let w0 = tape.leaf(Tensor::from_vec(ws, &[k, n]), true);
        // Cut both operands as the model does; code path quantizes the
        // (already on-grid) weight idempotently.
        let x = ctx.cut(&mut tape, x0, OpClass::Gemm, "x");
        let w = ctx.cut_weight(&mut tape, w0, "w");
        let yq = ctx.matmul_q(&mut tape, x, w, "site");
        let yf = tape.matmul(x, w);
        let (qv, fv) = (tape.value(yq).clone(), tape.value(yf).clone());
        assert_eq!(qv.shape(), fv.shape());
        for (a, b) in qv.data().iter().zip(fv.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "code path diverged: {a} vs {b}");
        }
        // Backward through the custom node is the exact matmul backward.
        let sq = tape.sum_all(yq);
        let gq = tape.backward(sq);
        let sf = tape.sum_all(yf);
        let gf = tape.backward(sf);
        for v in [x0, w0] {
            let (a, b) = (gq.get(v).unwrap(), gf.get(v).unwrap());
            assert_eq!(a.data(), b.data(), "grad mismatch through code path");
        }
    }

    #[test]
    fn matmul_q_caches_packs_and_repacks_on_weight_change() {
        let session = qt_trace::TraceSession::new("t").handle();
        let ctx = QuantCtx::inference(QuantScheme::posit8()).with_trace(Rc::clone(&session));
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0; 8], &[2, 4]), false);
        let w1 = tape.leaf(Tensor::from_vec(vec![0.5; 12], &[4, 3]), false);
        let _ = ctx.matmul_q(&mut tape, x, w1, "site");
        assert_eq!(ctx.cached_packs(), 1);
        let _ = ctx.matmul_q(&mut tape, x, w1, "site");
        assert_eq!(ctx.cached_packs(), 1, "same bits must reuse the pack");
        // Same site, different weight bits: fingerprint mismatch repacks.
        let w2 = tape.leaf(Tensor::from_vec(vec![0.25; 12], &[4, 3]), false);
        let _ = ctx.matmul_q(&mut tape, x, w2, "site");
        assert_eq!(ctx.cached_packs(), 1, "stale entry replaced, not grown");
        let sess = session.borrow();
        let m = sess.metrics();
        assert_eq!(m.counter_value("gemm.pack_cache", &[("event", "miss")]), 2);
        assert_eq!(m.counter_value("gemm.pack_cache", &[("event", "hit")]), 1);
        assert_eq!(
            m.counter_value(
                "gemm.backend",
                &[("backend", qt_tensor::kernels::active().name()), ("domain", "code")]
            ),
            3
        );
    }

    #[test]
    fn matmul_q_falls_back_to_f32_when_ineligible() {
        // Training contexts and Fp32 schemes must not take the code path.
        let session = qt_trace::TraceSession::new("t").handle();
        let ctx = QuantCtx::training(QuantScheme::posit8()).with_trace(Rc::clone(&session));
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]), true);
        let w = tape.leaf(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]), true);
        let y = ctx.matmul_q(&mut tape, x, w, "site");
        assert_eq!(tape.value(y).data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ctx.cached_packs(), 0);
        // Batched (non-2-D) weights fall back too, e.g. attention scores.
        let ctx2 = QuantCtx::inference(QuantScheme::posit8());
        let mut tape2 = Tape::new();
        let a = tape2.leaf(Tensor::from_vec(vec![1.0; 8], &[2, 2, 2]), false);
        let bt = tape2.leaf(Tensor::from_vec(vec![1.0; 8], &[2, 2, 2]), false);
        let _ = ctx2.matmul_q(&mut tape2, a, bt, "scores");
        assert_eq!(ctx2.cached_packs(), 0);
        let sess = session.borrow();
        let m = sess.metrics();
        assert_eq!(
            m.counter_value(
                "gemm.backend",
                &[("backend", qt_tensor::kernels::active().name()), ("domain", "f32")]
            ),
            1
        );
    }

    #[test]
    fn probe_records_pre_quant_stats() {
        let probe = Rc::new(RefCell::new(ProbeStore::new()));
        let ctx = QuantCtx::inference(QuantScheme::posit8()).with_probe(Rc::clone(&probe));
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![123456.0], &[1]), false);
        let _ = ctx.cut(&mut tape, x, OpClass::Gemm, "site");
        let p = probe.borrow();
        let (name, stats) = &p.entries()[0];
        assert_eq!(name, "site");
        assert_eq!(stats.amax, 123456.0); // pre-quantization value
    }
}
