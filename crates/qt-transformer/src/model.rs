//! The Transformer model: embeddings, attention blocks (with stacked-FFN
//! support), encoder/decoder/enc-dec assembly, task heads, and
//! quantization cuts at every operation boundary (Figure 5).

use crate::cancel::ForwardCancelled;
use crate::config::{ModelKind, TransformerConfig};
use crate::heads::TaskHead;
use crate::lora::LoraConfig;
use crate::params::ParamStore;
use crate::qctx::QuantCtx;
use qt_autograd::{Tape, Var};
use qt_quant::OpClass;
use qt_tensor::Tensor;
use rand::Rng;
use std::collections::BTreeMap;

/// Additive mask value for padded/causally-hidden positions. Chosen so
/// that (a) it survives 8-bit quantization (well inside Posit8/FP8 range)
/// and (b) after max-subtraction it falls far below the approximate
/// exponential's threshold θ.
pub const MASK_NEG: f32 = -30.0;

/// A batch of token sequences with a validity mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBatch {
    /// Token ids, row-major `[batch, seq]`.
    pub ids: Vec<usize>,
    /// Batch size.
    pub batch: usize,
    /// Sequence length (padded).
    pub seq: usize,
    /// Per-position validity: `true` = real token, `false` = padding.
    pub valid: Vec<bool>,
}

impl TokenBatch {
    /// Batch where every position is valid.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != batch * seq`.
    pub fn dense(ids: Vec<usize>, batch: usize, seq: usize) -> Self {
        assert_eq!(ids.len(), batch * seq, "ids length mismatch");
        let valid = vec![true; ids.len()];
        Self {
            ids,
            batch,
            seq,
            valid,
        }
    }

    /// Batch with an explicit validity mask.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn with_mask(ids: Vec<usize>, batch: usize, seq: usize, valid: Vec<bool>) -> Self {
        assert_eq!(ids.len(), batch * seq, "ids length mismatch");
        assert_eq!(valid.len(), ids.len(), "mask length mismatch");
        Self {
            ids,
            batch,
            seq,
            valid,
        }
    }

    /// Additive padding mask of shape `[B, 1, 1, S]` (0 valid, `MASK_NEG`
    /// padded).
    pub fn padding_mask(&self) -> Tensor {
        let data: Vec<f32> = self
            .valid
            .iter()
            .map(|&v| if v { 0.0 } else { MASK_NEG })
            .collect();
        Tensor::from_vec(data, &[self.batch, 1, 1, self.seq])
    }
}

/// Which parameters are trainable this pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainMode {
    /// Inference: nothing trainable.
    Frozen,
    /// Full fine-tuning: every parameter trainable.
    Full,
    /// LoRA: only `*.lora_a` / `*.lora_b` and head parameters trainable.
    Lora,
}

impl TrainMode {
    fn trainable(self, name: &str) -> bool {
        match self {
            TrainMode::Frozen => false,
            TrainMode::Full => true,
            TrainMode::Lora => name.contains(".lora_") || name.starts_with(TaskHead::PREFIX),
        }
    }
}

/// Output of a forward pass.
#[derive(Debug)]
pub struct ModelOutput {
    /// Task logits: `[B, S, 2]` (span), `[B, classes]` (classify) or
    /// `[B, S, V]` (LM).
    pub logits: Var,
    /// Final hidden states `[B, S, H]` (decoder side for enc-dec).
    pub hidden: Var,
    /// Tape variables of every parameter touched this pass, by name.
    pub param_vars: BTreeMap<String, Var>,
}

/// A Transformer model with named parameters and optional LoRA adapters.
#[derive(Debug, Clone)]
pub struct Model {
    /// Architecture.
    pub cfg: TransformerConfig,
    /// All parameters (including any LoRA factors and head weights).
    pub params: ParamStore,
    /// Task head.
    pub head: TaskHead,
    /// LoRA configuration, if adapters have been added.
    pub lora: Option<LoraConfig>,
}

impl Model {
    /// Initialise a model with random weights.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see
    /// [`TransformerConfig::validate`]).
    pub fn new(cfg: TransformerConfig, head: TaskHead, rng: &mut impl Rng) -> Self {
        cfg.validate().expect("invalid config");
        let mut p = ParamStore::new();
        let h = cfg.hidden;
        let std_h = 1.0 / (h as f32).sqrt();
        p.init_normal("embed.tok", &[cfg.vocab, h], 0.5 * std_h * 4.0, rng);
        p.init_normal("embed.pos", &[cfg.max_seq, h], 0.5 * std_h, rng);
        p.init_ones("embed.ln.gamma", &[h]);
        p.init_zeros("embed.ln.beta", &[h]);

        let prefixes: &[&str] = match cfg.kind {
            ModelKind::Encoder => &["enc"],
            ModelKind::Decoder => &["dec"],
            ModelKind::EncDec => &["enc", "dec"],
        };
        for prefix in prefixes {
            for l in 0..cfg.layers {
                init_block(&mut p, &cfg, &format!("{prefix}.{l}"), rng);
            }
        }
        if cfg.kind == ModelKind::EncDec {
            for l in 0..cfg.layers {
                init_attn(&mut p, &cfg, &format!("dec.{l}.xattn"), rng);
                p.init_ones(format!("dec.{l}.lnx.gamma"), &[h]);
                p.init_zeros(format!("dec.{l}.lnx.beta"), &[h]);
            }
        }

        match head {
            TaskHead::Span => {
                p.init_normal("head.span.w", &[h, 2], std_h, rng);
                p.init_zeros("head.span.b", &[2]);
            }
            TaskHead::Classify(k) => {
                p.init_normal("head.cls.w", &[h, k], std_h, rng);
                p.init_zeros("head.cls.b", &[k]);
            }
            TaskHead::LmTied => {}
        }

        Self {
            cfg,
            params: p,
            head,
            lora: None,
        }
    }

    /// Add LoRA adapters (and, per §5.3, quantize nothing here — the
    /// factors live in 16-bit master copies and are quantized on the fly
    /// at every forward).
    pub fn add_lora(&mut self, lora: LoraConfig, rng: &mut impl Rng) {
        let names = self.params.names();
        for name in names {
            if !lora.applies_to(&name) {
                continue;
            }
            let shape = self.params.get(&name).shape().to_vec();
            let (i, o) = (shape[0], shape[1]);
            let std_a = 1.0 / (lora.rank as f32).sqrt();
            self.params
                .init_normal(format!("{name}.lora_a"), &[i, lora.rank], std_a, rng);
            self.params
                .init_zeros(format!("{name}.lora_b"), &[lora.rank, o]);
        }
        self.lora = Some(lora);
    }

    /// Number of trainable parameters under `mode`.
    pub fn trainable_params(&self, mode: TrainMode) -> usize {
        self.params.num_elements_matching(|n| mode.trainable(n))
    }

    /// Run the forward pass on `tape`.
    ///
    /// For [`ModelKind::EncDec`], `dec_batch` supplies the decoder tokens;
    /// it is ignored otherwise.
    ///
    /// # Panics
    ///
    /// Panics if an enc-dec model is called without `dec_batch`, a
    /// sequence exceeds `cfg.max_seq`, or the context's cancellation
    /// token aborts the pass (use [`Model::try_forward`] to handle
    /// cancellation as a value).
    pub fn forward(
        &self,
        tape: &mut Tape,
        qctx: &QuantCtx,
        batch: &TokenBatch,
        dec_batch: Option<&TokenBatch>,
        mode: TrainMode,
    ) -> ModelOutput {
        self.try_forward(tape, qctx, batch, dec_batch, mode)
            .expect("forward pass cancelled; call try_forward to handle this")
    }

    /// [`Model::forward`] with cooperative cancellation: one block credit
    /// is charged against the context's [`crate::CancelToken`] before
    /// every transformer block (encoder and decoder alike), so a serving
    /// deadline can abort the pass mid-model. The pass either completes
    /// fully or returns [`ForwardCancelled`] — a partial or stale output
    /// never escapes. Without an attached token this never errors.
    ///
    /// # Errors
    ///
    /// [`ForwardCancelled`] when the attached token is cancelled or its
    /// block budget runs out before the remaining blocks are charged.
    ///
    /// # Panics
    ///
    /// Panics if an enc-dec model is called without `dec_batch`, or a
    /// sequence exceeds `cfg.max_seq`.
    pub fn try_forward(
        &self,
        tape: &mut Tape,
        qctx: &QuantCtx,
        batch: &TokenBatch,
        dec_batch: Option<&TokenBatch>,
        mode: TrainMode,
    ) -> Result<ModelOutput, ForwardCancelled> {
        assert!(batch.seq <= self.cfg.max_seq, "sequence too long");
        let mut b = Builder {
            tape,
            qctx,
            model: self,
            mode,
            vars: BTreeMap::new(),
        };
        let (hidden, head_batch) = match self.cfg.kind {
            ModelKind::Encoder => {
                let x = b.embed(batch);
                let mask = batch.padding_mask();
                let mut x = x;
                for l in 0..self.cfg.layers {
                    qctx.charge_block()?;
                    x = b.block(x, None, &mask, &format!("enc.{l}"), batch.batch, batch.seq);
                }
                (x, batch)
            }
            ModelKind::Decoder => {
                let x = b.embed(batch);
                let mask = causal_mask(batch);
                let mut x = x;
                for l in 0..self.cfg.layers {
                    qctx.charge_block()?;
                    x = b.block(x, None, &mask, &format!("dec.{l}"), batch.batch, batch.seq);
                }
                (x, batch)
            }
            ModelKind::EncDec => {
                let dec = dec_batch.expect("enc-dec model needs decoder batch");
                assert!(dec.seq <= self.cfg.max_seq, "decoder sequence too long");
                // encoder stack
                let mut m = b.embed(batch);
                let enc_mask = batch.padding_mask();
                for l in 0..self.cfg.layers {
                    qctx.charge_block()?;
                    m = b.block(m, None, &enc_mask, &format!("enc.{l}"), batch.batch, batch.seq);
                }
                // decoder stack with cross-attention to m
                let mut x = b.embed(dec);
                let self_mask = causal_mask(dec);
                for l in 0..self.cfg.layers {
                    qctx.charge_block()?;
                    x = b.block(
                        x,
                        Some((m, &enc_mask)),
                        &self_mask,
                        &format!("dec.{l}"),
                        dec.batch,
                        dec.seq,
                    );
                }
                (x, dec)
            }
        };
        let logits = b.apply_head(hidden, head_batch);
        let vars = b.vars;
        Ok(ModelOutput {
            logits,
            hidden,
            param_vars: vars,
        })
    }

    /// Transformer blocks one full forward pass charges against a
    /// cancellation token: `layers` for single-stack models, `2 × layers`
    /// for encoder-decoders. Serving deadlines convert to block budgets
    /// with this.
    pub fn blocks_per_forward(&self) -> u64 {
        match self.cfg.kind {
            ModelKind::Encoder | ModelKind::Decoder => self.cfg.layers as u64,
            ModelKind::EncDec => 2 * self.cfg.layers as u64,
        }
    }
}

fn init_attn(p: &mut ParamStore, cfg: &TransformerConfig, prefix: &str, rng: &mut impl Rng) {
    let h = cfg.hidden;
    let std = 1.0 / (h as f32).sqrt();
    for w in ["wq", "wk", "wv", "wo"] {
        p.init_normal(format!("{prefix}.{w}"), &[h, h], std, rng);
    }
    for b in ["bq", "bk", "bv", "bo"] {
        p.init_zeros(format!("{prefix}.{b}"), &[h]);
    }
}

fn init_block(p: &mut ParamStore, cfg: &TransformerConfig, prefix: &str, rng: &mut impl Rng) {
    let h = cfg.hidden;
    init_attn(p, cfg, &format!("{prefix}.attn"), rng);
    p.init_ones(format!("{prefix}.ln1.gamma"), &[h]);
    p.init_zeros(format!("{prefix}.ln1.beta"), &[h]);
    p.init_ones(format!("{prefix}.ln2.gamma"), &[h]);
    p.init_zeros(format!("{prefix}.ln2.beta"), &[h]);
    let std_in = 1.0 / (h as f32).sqrt();
    let std_out = 1.0 / (cfg.ffn as f32).sqrt();
    for j in 0..cfg.stacked_ffn {
        p.init_normal(format!("{prefix}.ffn{j}.w1"), &[h, cfg.ffn], std_in, rng);
        p.init_zeros(format!("{prefix}.ffn{j}.b1"), &[cfg.ffn]);
        p.init_normal(format!("{prefix}.ffn{j}.w2"), &[cfg.ffn, h], std_out, rng);
        p.init_zeros(format!("{prefix}.ffn{j}.b2"), &[h]);
        if cfg.ln_between_ffn && cfg.stacked_ffn > 1 && j + 1 < cfg.stacked_ffn {
            p.init_ones(format!("{prefix}.lnf{j}.gamma"), &[h]);
            p.init_zeros(format!("{prefix}.lnf{j}.beta"), &[h]);
        }
    }
}

/// Causal + padding mask `[B, 1, S, S]`.
fn causal_mask(batch: &TokenBatch) -> Tensor {
    let (b, s) = (batch.batch, batch.seq);
    let mut t = Tensor::zeros(&[b, 1, s, s]);
    for bi in 0..b {
        for i in 0..s {
            for j in 0..s {
                let hidden_by_causality = j > i;
                let padded = !batch.valid[bi * s + j];
                if hidden_by_causality || padded {
                    t.set(&[bi, 0, i, j], MASK_NEG);
                }
            }
        }
    }
    t
}

/// Per-forward-pass graph builder.
struct Builder<'a> {
    tape: &'a mut Tape,
    qctx: &'a QuantCtx,
    model: &'a Model,
    mode: TrainMode,
    vars: BTreeMap<String, Var>,
}

impl Builder<'_> {
    /// Leaf-register (once) and return a parameter.
    fn p(&mut self, name: &str) -> Var {
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        let trainable = self.mode.trainable(name);
        let v = self
            .tape
            .leaf(self.model.params.get(name).clone(), trainable);
        self.vars.insert(name.to_string(), v);
        v
    }

    /// Effective weight for a dense layer: the raw parameter, or the
    /// quantized LoRA merge of Equation 7.
    fn weight(&mut self, name: &str) -> Var {
        let w0 = self.p(name);
        let Some(lora) = self.model.lora else {
            return self.qctx.cut_weight(self.tape, w0, name);
        };
        if !lora.applies_to(name) || !self.model.params.contains(&format!("{name}.lora_a")) {
            return self.qctx.cut_weight(self.tape, w0, name);
        }
        // quant(W0^8 + (α/r)·quant(A)·quant(B))
        let a = self.p(&format!("{name}.lora_a"));
        let bb = self.p(&format!("{name}.lora_b"));
        let w0q = self.qctx.cut_weight(self.tape, w0, name);
        let aq = self
            .qctx
            .cut_weight(self.tape, a, &format!("{name}.lora_a"));
        let bq = self
            .qctx
            .cut_weight(self.tape, bb, &format!("{name}.lora_b"));
        let ab = self.tape.matmul(aq, bq);
        let delta = self.tape.mul_scalar(ab, lora.scale());
        let merged = self.tape.add(w0q, delta);
        self.qctx
            .cut_weight(self.tape, merged, &format!("{name}.merged"))
    }

    /// `x @ W + b` with GEMM-site quantization of both operands.
    fn linear(&mut self, x: Var, w_name: &str, b_name: &str, site: &str) -> Var {
        let xq = self
            .qctx
            .cut(self.tape, x, OpClass::Gemm, &format!("{site}.in"));
        let w = self.weight(w_name);
        if self.qctx.traced() {
            let xs = self.tape.value(xq).shape().to_vec();
            let n = *self.tape.value(w).shape().last().unwrap_or(&1);
            if let Some((&k, lead)) = xs.split_last() {
                self.qctx.gemm_span(site, lead.iter().product(), k, n);
            }
        }
        let y = self.qctx.matmul_q(self.tape, xq, w, site);
        let b = self.p(b_name);
        self.tape.add(y, b)
    }

    /// Token + positional embeddings with embedding layer norm.
    fn embed(&mut self, batch: &TokenBatch) -> Var {
        let span = self.qctx.span_begin("embed", "embed");
        let (b, s) = (batch.batch, batch.seq);
        let tok_table = self.p("embed.tok");
        let tok = self.tape.embedding(tok_table, &batch.ids, &[b, s]);
        let pos_ids: Vec<usize> = (0..b).flat_map(|_| 0..s).collect();
        let pos_table = self.p("embed.pos");
        let pos = self.tape.embedding(pos_table, &pos_ids, &[b, s]);
        let sum = self.tape.add(tok, pos);
        let g = self.p("embed.ln.gamma");
        let be = self.p("embed.ln.beta");
        let ln_in = self
            .qctx
            .cut(self.tape, sum, OpClass::LayerNorm, "embed.ln.in");
        let out = self.tape.layernorm(ln_in, g, be, 1e-5);
        self.qctx.span_end(span);
        out
    }

    /// Multi-head attention with quantization at every site of Figure 5.
    /// `kv`: `None` for self-attention, or the key/value source.
    fn attention(
        &mut self,
        x: Var,
        kv: Option<Var>,
        mask: &Tensor,
        prefix: &str,
        batch: usize,
        q_seq: usize,
    ) -> Var {
        let cfg = &self.model.cfg;
        let (nh, dh, h) = (cfg.heads, cfg.head_dim(), cfg.hidden);
        let kv_src = kv.unwrap_or(x);
        let kv_seq = self.tape.value(kv_src).shape()[1];
        let span = self.qctx.span_begin(prefix, "attn");

        let q = self.linear(x, &format!("{prefix}.wq"), &format!("{prefix}.bq"), &format!("{prefix}.q"));
        let k = self.linear(
            kv_src,
            &format!("{prefix}.wk"),
            &format!("{prefix}.bk"),
            &format!("{prefix}.k"),
        );
        let v = self.linear(
            kv_src,
            &format!("{prefix}.wv"),
            &format!("{prefix}.bv"),
            &format!("{prefix}.v"),
        );

        // [B, S, H] -> [B, nh, S, dh]
        let qh = self.heads_split(q, batch, q_seq, nh, dh);
        let kh = self.heads_split(k, batch, kv_seq, nh, dh);
        let vh = self.heads_split(v, batch, kv_seq, nh, dh);

        // raw scores: QKᵀ — the GEMM whose *output* feeds attention scaling
        let qq = self
            .qctx
            .cut(self.tape, qh, OpClass::Gemm, &format!("{prefix}.scores.q"));
        let kt = self.tape.permute(kh, &[0, 1, 3, 2]);
        let kq = self
            .qctx
            .cut(self.tape, kt, OpClass::Gemm, &format!("{prefix}.scores.k"));
        if self.qctx.traced() {
            // QKᵀ as the accelerator sees it: one [B·nh·Sq, dh] × [dh, Skv]
            self.qctx
                .gemm_span(&format!("{prefix}.scores"), batch * nh * q_seq, dh, kv_seq);
        }
        let raw = self
            .qctx
            .matmul_q(self.tape, qq, kq, &format!("{prefix}.scores"));

        // attention scaling site: the paper's most sensitive input (§4)
        let raw_q = self.qctx.cut(
            self.tape,
            raw,
            OpClass::AttnScaling,
            &format!("{prefix}.unscaled_attn"),
        );
        let scaled = self.tape.mul_scalar(raw_q, 1.0 / (dh as f32).sqrt());

        // mask, then softmax (activation site)
        let mask_leaf = self.tape.leaf(mask.clone(), false);
        let masked = self.tape.add(scaled, mask_leaf);
        let sm_in = self.qctx.cut(
            self.tape,
            masked,
            OpClass::Activation,
            &format!("{prefix}.softmax.in"),
        );
        let probs = if self.qctx.traced() {
            self.qctx
                .softmax_named(self.tape, sm_in, &format!("{prefix}.softmax"))
        } else {
            self.qctx.softmax(self.tape, sm_in)
        };

        // context: probs @ V
        let pq = self
            .qctx
            .cut(self.tape, probs, OpClass::Gemm, &format!("{prefix}.ctx.p"));
        let vq = self
            .qctx
            .cut(self.tape, vh, OpClass::Gemm, &format!("{prefix}.ctx.v"));
        if self.qctx.traced() {
            self.qctx
                .gemm_span(&format!("{prefix}.ctx"), batch * nh * q_seq, kv_seq, dh);
        }
        let ctx = self
            .qctx
            .matmul_q(self.tape, pq, vq, &format!("{prefix}.ctx"));

        // [B, nh, S, dh] -> [B, S, H], output projection
        let merged = self.tape.permute(ctx, &[0, 2, 1, 3]);
        let merged = self.tape.reshape(merged, &[batch, q_seq, h]);
        let out = self.linear(
            merged,
            &format!("{prefix}.wo"),
            &format!("{prefix}.bo"),
            &format!("{prefix}.o"),
        );
        self.qctx.span_end(span);
        out
    }

    fn heads_split(&mut self, x: Var, b: usize, s: usize, nh: usize, dh: usize) -> Var {
        let r = self.tape.reshape(x, &[b, s, nh, dh]);
        self.tape.permute(r, &[0, 2, 1, 3])
    }

    /// Residual add with both inputs cut at the residual site, then LN.
    fn residual_ln(&mut self, x: Var, sub: Var, ln: &str, site: &str) -> Var {
        let xr = self
            .qctx
            .cut(self.tape, x, OpClass::Residual, &format!("{site}.res.x"));
        let sr = self
            .qctx
            .cut(self.tape, sub, OpClass::Residual, &format!("{site}.res.f"));
        let sum = self.tape.add(xr, sr);
        let g = self.p(&format!("{ln}.gamma"));
        let b = self.p(&format!("{ln}.beta"));
        let ln_in = self
            .qctx
            .cut(self.tape, sum, OpClass::LayerNorm, &format!("{site}.ln.in"));
        self.tape.layernorm(ln_in, g, b, 1e-5)
    }

    /// One FFN: `W2·gelu(W1·x + b1) + b2` with the GELU input cut at the
    /// activation site.
    fn ffn(&mut self, x: Var, prefix: &str) -> Var {
        let span = self.qctx.span_begin(prefix, "ffn");
        let h1 = self.linear(
            x,
            &format!("{prefix}.w1"),
            &format!("{prefix}.b1"),
            &format!("{prefix}.up"),
        );
        let act_in = self.qctx.cut(
            self.tape,
            h1,
            OpClass::Activation,
            &format!("{prefix}.gelu.in"),
        );
        let a = self.tape.gelu(act_in);
        let out = self.linear(
            a,
            &format!("{prefix}.w2"),
            &format!("{prefix}.b2"),
            &format!("{prefix}.down"),
        );
        self.qctx.span_end(span);
        out
    }

    /// A full block: self-attention (+ optional cross-attention) and the
    /// (possibly stacked) FFNs.
    fn block(
        &mut self,
        x: Var,
        cross: Option<(Var, &Tensor)>,
        self_mask: &Tensor,
        prefix: &str,
        batch: usize,
        seq: usize,
    ) -> Var {
        let span = self.qctx.span_begin(prefix, "block");
        let attn = self.attention(x, None, self_mask, &format!("{prefix}.attn"), batch, seq);
        let mut x = self.residual_ln(x, attn, &format!("{prefix}.ln1"), &format!("{prefix}.attn"));

        if let Some((memory, mem_mask)) = cross {
            let xa = self.attention(
                x,
                Some(memory),
                mem_mask,
                &format!("{prefix}.xattn"),
                batch,
                seq,
            );
            x = self.residual_ln(x, xa, &format!("{prefix}.lnx"), &format!("{prefix}.xattn"));
        }

        let cfg = &self.model.cfg;
        let stacked = cfg.stacked_ffn;
        for j in 0..stacked {
            let f = self.ffn(x, &format!("{prefix}.ffn{j}"));
            let last = j + 1 == stacked;
            if last {
                x = self.residual_ln(x, f, &format!("{prefix}.ln2"), &format!("{prefix}.ffn{j}"));
            } else if cfg.ln_between_ffn {
                x = self.residual_ln(x, f, &format!("{prefix}.lnf{j}"), &format!("{prefix}.ffn{j}"));
            } else {
                // MobileBERT-style: bare residual accumulation, no norm —
                // this is what lets activations grow wide (Figure 6).
                let xr = self.qctx.cut(
                    self.tape,
                    x,
                    OpClass::Residual,
                    &format!("{prefix}.ffn{j}.res.x"),
                );
                let fr = self.qctx.cut(
                    self.tape,
                    f,
                    OpClass::Residual,
                    &format!("{prefix}.ffn{j}.res.f"),
                );
                x = self.tape.add(xr, fr);
            }
        }
        self.qctx.span_end(span);
        x
    }

    fn apply_head(&mut self, hidden: Var, batch: &TokenBatch) -> Var {
        let span = self.qctx.span_begin("head", "head");
        let out = self.apply_head_inner(hidden, batch);
        self.qctx.span_end(span);
        out
    }

    fn apply_head_inner(&mut self, hidden: Var, batch: &TokenBatch) -> Var {
        match self.model.head {
            TaskHead::Span => self.linear(hidden, "head.span.w", "head.span.b", "head.span"),
            TaskHead::Classify(_) => {
                // first-token pooling via a constant selector [1, S]
                let s = batch.seq;
                let mut sel = Tensor::zeros(&[1, s]);
                sel.set(&[0, 0], 1.0);
                let selv = self.tape.leaf(sel, false);
                let pooled = self.tape.matmul(selv, hidden); // [B, 1, H]
                let h = self.model.cfg.hidden;
                let pooled = self.tape.reshape(pooled, &[batch.batch, h]);
                let t = self.tape.tanh(pooled);
                self.linear(t, "head.cls.w", "head.cls.b", "head.cls")
            }
            TaskHead::LmTied => {
                let table = self.p("embed.tok");
                let tq = self.qctx.cut_weight(self.tape, table, "embed.tok.lm");
                let wt = self.tape.transpose_last2(tq);
                let hq = self
                    .qctx
                    .cut(self.tape, hidden, OpClass::Gemm, "head.lm.in");
                if self.qctx.traced() {
                    let hs = self.tape.value(hq).shape().to_vec();
                    if let Some((&k, lead)) = hs.split_last() {
                        self.qctx
                            .gemm_span("head.lm", lead.iter().product(), k, self.model.cfg.vocab);
                    }
                }
                self.qctx.matmul_q(self.tape, hq, wt, "head.lm")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_quant::QuantScheme;
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_batch(cfg: &TransformerConfig, b: usize, s: usize, rng: &mut StdRng) -> TokenBatch {
        let ids: Vec<usize> = (0..b * s).map(|_| rng.gen_range(0..cfg.vocab)).collect();
        TokenBatch::dense(ids, b, s)
    }

    #[test]
    fn encoder_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = TransformerConfig::mobilebert_tiny_sim();
        let model = Model::new(cfg.clone(), TaskHead::Span, &mut rng);
        let batch = tiny_batch(&cfg, 2, 8, &mut rng);
        let mut tape = Tape::new();
        let qctx = QuantCtx::inference(QuantScheme::fp32());
        let out = model.forward(&mut tape, &qctx, &batch, None, TrainMode::Frozen);
        assert_eq!(tape.value(out.logits).shape(), &[2, 8, 2]);
        assert_eq!(tape.value(out.hidden).shape(), &[2, 8, cfg.hidden]);
    }

    #[test]
    fn classify_head_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = TransformerConfig::bert_base_sim();
        let model = Model::new(cfg.clone(), TaskHead::Classify(3), &mut rng);
        let batch = tiny_batch(&cfg, 4, 6, &mut rng);
        let mut tape = Tape::new();
        let qctx = QuantCtx::inference(QuantScheme::bf16());
        let out = model.forward(&mut tape, &qctx, &batch, None, TrainMode::Frozen);
        assert_eq!(tape.value(out.logits).shape(), &[4, 3]);
    }

    #[test]
    fn decoder_lm_shapes_and_causality() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = TransformerConfig::gpt2_large_sim();
        let model = Model::new(cfg.clone(), TaskHead::LmTied, &mut rng);
        let b = tiny_batch(&cfg, 1, 6, &mut rng);
        let qctx = QuantCtx::inference(QuantScheme::fp32());
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &qctx, &b, None, TrainMode::Frozen);
        assert_eq!(tape.value(out.logits).shape(), &[1, 6, cfg.vocab]);
        // causality: changing a later token must not change earlier logits
        let mut b2 = b.clone();
        b2.ids[5] = (b2.ids[5] + 1) % cfg.vocab;
        let mut tape2 = Tape::new();
        let out2 = model.forward(&mut tape2, &qctx, &b2, None, TrainMode::Frozen);
        let l1 = tape.value(out.logits);
        let l2 = tape2.value(out2.logits);
        for i in 0..5 * cfg.vocab {
            assert_eq!(l1.data()[i], l2.data()[i], "position {i} leaked");
        }
        assert_ne!(
            &l1.data()[5 * cfg.vocab..],
            &l2.data()[5 * cfg.vocab..],
            "last position should change"
        );
    }

    #[test]
    fn encdec_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = TransformerConfig::whisper_tiny_sim();
        let model = Model::new(cfg.clone(), TaskHead::LmTied, &mut rng);
        let enc = tiny_batch(&cfg, 2, 10, &mut rng);
        let dec = tiny_batch(&cfg, 2, 5, &mut rng);
        let qctx = QuantCtx::inference(QuantScheme::fp32());
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &qctx, &enc, Some(&dec), TrainMode::Frozen);
        assert_eq!(tape.value(out.logits).shape(), &[2, 5, cfg.vocab]);
    }

    #[test]
    fn padding_is_ignored_by_encoder() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = TransformerConfig::bert_base_sim();
        let model = Model::new(cfg.clone(), TaskHead::Classify(2), &mut rng);
        let qctx = QuantCtx::inference(QuantScheme::fp32());
        // same content, different padding tokens
        let mut ids1 = vec![1usize, 2, 3, 4, 0, 0];
        let valid = vec![true, true, true, true, false, false];
        let b1 = TokenBatch::with_mask(ids1.clone(), 1, 6, valid.clone());
        ids1[4] = 7;
        ids1[5] = 9;
        let b2 = TokenBatch::with_mask(ids1, 1, 6, valid);
        let mut t1 = Tape::new();
        let o1 = model.forward(&mut t1, &qctx, &b1, None, TrainMode::Frozen);
        let mut t2 = Tape::new();
        let o2 = model.forward(&mut t2, &qctx, &b2, None, TrainMode::Frozen);
        let d1 = t1.value(o1.logits).data().to_vec();
        let d2 = t2.value(o2.logits).data().to_vec();
        for (a, b) in d1.iter().zip(&d2) {
            assert!((a - b).abs() < 2e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn lora_mode_trains_only_adapters_and_head() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = TransformerConfig::bert_base_sim();
        let mut model = Model::new(cfg.clone(), TaskHead::Classify(2), &mut rng);
        model.add_lora(LoraConfig::roberta_default(), &mut rng);
        let full = model.trainable_params(TrainMode::Full);
        let lora = model.trainable_params(TrainMode::Lora);
        assert!(lora < full / 10, "lora {lora} vs full {full}");
        assert!(lora > 0);
        // gradient check: backward must produce grads for adapters only
        let batch = tiny_batch(&cfg, 2, 4, &mut rng);
        let qctx = QuantCtx::training(QuantScheme::bf16());
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &qctx, &batch, None, TrainMode::Lora);
        let loss = tape.cross_entropy(out.logits, &[0, 1]);
        let grads = tape.backward(loss);
        let a_var = out.param_vars.get("enc.0.attn.wq.lora_a").unwrap();
        let w_var = out.param_vars.get("enc.0.attn.wq").unwrap();
        assert!(grads.get(*a_var).is_some(), "adapter should have grad");
        assert!(grads.get(*w_var).is_none(), "frozen base should not");
    }

    #[test]
    fn traced_forward_nests_gemms_inside_blocks() {
        use qt_trace::{CycleModel, GemmCost, RecordKind, TraceSession};
        use std::rc::Rc;

        struct FlatCost;
        impl CycleModel for FlatCost {
            fn gemm_cost(&self, m: u64, k: u64, n: u64) -> GemmCost {
                GemmCost {
                    cycles: m * k * n,
                    macs: m * k * n,
                    active_cycles: m * k * n,
                    sram_bytes: 0,
                }
            }
            fn softmax_cycles(&self, rows: u64, width: u64) -> u64 {
                rows * width
            }
        }

        let mut rng = StdRng::seed_from_u64(8);
        let cfg = TransformerConfig::mobilebert_tiny_sim();
        let model = Model::new(cfg.clone(), TaskHead::Span, &mut rng);
        let batch = tiny_batch(&cfg, 1, 4, &mut rng);
        let session = TraceSession::new("fwd").handle();
        let qctx = QuantCtx::inference(QuantScheme::posit8())
            .with_trace(Rc::clone(&session))
            .with_cycle_model(Rc::new(FlatCost));
        let mut tape = Tape::new();
        let _ = model.forward(&mut tape, &qctx, &batch, None, TrainMode::Frozen);

        let sess = session.borrow();
        assert!(sess.open_spans() == 0, "all spans closed");
        let records = sess.records();
        let block_idx = records
            .iter()
            .position(|r| r.cat == "block")
            .expect("block span");
        // GEMM spans nest (transitively) under the block span.
        let gemm = records
            .iter()
            .find(|r| r.cat == "gemm")
            .expect("gemm span");
        assert!(gemm.depth > records[block_idx].depth);
        // Cycle model costs rolled up into the block.
        assert!(records[block_idx].total_cycles() > 0);
        // Attention GEMMs and softmax vector work were attributed.
        assert!(sess.gemm_sites().keys().any(|k| k.ends_with(".scores")));
        assert!(sess.gemm_sites().keys().any(|k| k.ends_with(".ctx")));
        assert!(sess
            .vector_sites()
            .keys()
            .any(|k| k.ends_with(".softmax")));
        // Quant events were recorded per cut site.
        assert!(!sess.quant_sites().is_empty());
        assert!(records
            .iter()
            .any(|r| matches!(r.kind, RecordKind::Instant) && r.cat == "quant"));
    }

    #[test]
    fn budgeted_forward_completes_fully_or_not_at_all() {
        use crate::cancel::{CancelCause, CancelToken};
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = TransformerConfig::mobilebert_tiny_sim();
        let model = Model::new(cfg.clone(), TaskHead::Span, &mut rng);
        let batch = tiny_batch(&cfg, 1, 6, &mut rng);
        let blocks = model.blocks_per_forward();
        assert_eq!(blocks, cfg.layers as u64);

        // Reference: no token attached.
        let qctx = QuantCtx::inference(QuantScheme::posit8());
        let mut tape = Tape::new();
        let reference = model.forward(&mut tape, &qctx, &batch, None, TrainMode::Frozen);
        let ref_logits = tape.value(reference.logits).data().to_vec();

        // Exactly enough budget: completes, bitwise identical.
        let token = CancelToken::with_block_budget(blocks);
        let ctx = QuantCtx::inference(QuantScheme::posit8()).with_cancel(token.clone());
        let mut t2 = Tape::new();
        let out = model
            .try_forward(&mut t2, &ctx, &batch, None, TrainMode::Frozen)
            .expect("budget covers the full pass");
        assert_eq!(t2.value(out.logits).data(), &ref_logits[..]);
        assert_eq!(token.blocks_used(), blocks);

        // One credit short: aborts at the final block, no output.
        for budget in 0..blocks {
            let token = CancelToken::with_block_budget(budget);
            let ctx = QuantCtx::inference(QuantScheme::posit8()).with_cancel(token.clone());
            let mut t3 = Tape::new();
            let err = model
                .try_forward(&mut t3, &ctx, &batch, None, TrainMode::Frozen)
                .unwrap_err();
            assert_eq!(err.cause, CancelCause::BudgetExhausted);
            assert_eq!(err.blocks_completed, budget);
            assert_eq!(token.blocks_used(), budget);
        }

        // External cancel before the pass: aborts at the first block.
        let token = CancelToken::new();
        token.cancel();
        let ctx = QuantCtx::inference(QuantScheme::posit8()).with_cancel(token);
        let mut t4 = Tape::new();
        let err = model
            .try_forward(&mut t4, &ctx, &batch, None, TrainMode::Frozen)
            .unwrap_err();
        assert_eq!(err.cause, CancelCause::Cancelled);
        assert_eq!(err.blocks_completed, 0);
    }

    #[test]
    fn encdec_budget_counts_both_stacks() {
        use crate::cancel::CancelToken;
        let mut rng = StdRng::seed_from_u64(10);
        let cfg = TransformerConfig::whisper_tiny_sim();
        let model = Model::new(cfg.clone(), TaskHead::LmTied, &mut rng);
        assert_eq!(model.blocks_per_forward(), 2 * cfg.layers as u64);
        let enc = tiny_batch(&cfg, 1, 6, &mut rng);
        let dec = tiny_batch(&cfg, 1, 3, &mut rng);
        let token = CancelToken::with_block_budget(model.blocks_per_forward());
        let ctx = QuantCtx::inference(QuantScheme::fp32()).with_cancel(token.clone());
        let mut tape = Tape::new();
        model
            .try_forward(&mut tape, &ctx, &enc, Some(&dec), TrainMode::Frozen)
            .expect("budget covers both stacks");
        assert_eq!(token.blocks_used(), 2 * cfg.layers as u64);
    }

    #[test]
    fn full_training_step_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = TransformerConfig::mobilebert_tiny_sim();
        let model_cfg = cfg.clone();
        let mut model = Model::new(model_cfg, TaskHead::Classify(2), &mut rng);
        let batch = tiny_batch(&cfg, 4, 6, &mut rng);
        let targets = [0usize, 1, 0, 1];
        let qctx = QuantCtx::training(QuantScheme::fp32());
        let mut last = f32::INFINITY;
        for _ in 0..12 {
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, &qctx, &batch, None, TrainMode::Full);
            let loss = tape.cross_entropy(out.logits, &targets);
            let lv = tape.value(loss).data()[0];
            let grads = tape.backward(loss);
            for (name, var) in &out.param_vars {
                if let Some(g) = grads.get(*var) {
                    let lr = 0.2;
                    let g = g.clone();
                    model.params.get_mut(name).zip_inplace(&g, |p, gv| p - lr * gv);
                }
            }
            last = lv;
        }
        assert!(last < 0.35, "loss should fall with SGD, got {last}");
    }
}
