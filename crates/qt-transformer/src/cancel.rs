//! Cooperative cancellation for in-flight forward passes.
//!
//! A serving runtime cannot afford to run a 24-block forward to
//! completion when the request's deadline expired after block 3. The
//! autograd tape has no preemption points, so cancellation is
//! *cooperative*: the model charges one credit per transformer block
//! against a [`CancelToken`] threaded through the [`crate::QuantCtx`],
//! and aborts cleanly (no partial output ever escapes) when the token is
//! cancelled or its block budget runs dry.
//!
//! The budget is denominated in **blocks**, not wall time, on purpose:
//! a block is the natural preemption granularity of the computation, and
//! a block count is deterministic — the same request with the same
//! budget aborts at exactly the same point on every host and at every
//! thread-pool size, which is what lets the serving benchmarks produce
//! bitwise-identical counters across `QT_THREADS` settings.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Why a forward pass was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called (external abort: shutdown,
    /// client disconnect, admission revoked).
    Cancelled,
    /// The block budget ran out (deadline expressed in block credits).
    BudgetExhausted,
}

/// Error returned by [`crate::Model::try_forward`] when the attached
/// token aborted the pass. No partial output accompanies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardCancelled {
    /// What tripped the abort.
    pub cause: CancelCause,
    /// Blocks fully completed before the abort.
    pub blocks_completed: u64,
}

impl fmt::Display for ForwardCancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.cause {
            CancelCause::Cancelled => write!(
                f,
                "forward cancelled after {} blocks",
                self.blocks_completed
            ),
            CancelCause::BudgetExhausted => write!(
                f,
                "block budget exhausted after {} blocks",
                self.blocks_completed
            ),
        }
    }
}

impl std::error::Error for ForwardCancelled {}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Remaining block credits; `u64::MAX` means unlimited.
    remaining: AtomicU64,
    /// Blocks charged so far.
    used: AtomicU64,
}

/// Shared, thread-safe cancellation token.
///
/// Clones share state: a worker hands one clone to the forward pass and
/// keeps another to [`CancelToken::cancel`] from outside.
#[derive(Debug, Clone)]
pub struct CancelToken(Arc<Inner>);

impl CancelToken {
    /// Token with an unlimited block budget (cancellable only via
    /// [`CancelToken::cancel`]).
    pub fn new() -> Self {
        Self::with_block_budget(u64::MAX)
    }

    /// Token that permits at most `blocks` transformer blocks before the
    /// forward pass aborts with [`CancelCause::BudgetExhausted`].
    pub fn with_block_budget(blocks: u64) -> Self {
        Self(Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            remaining: AtomicU64::new(blocks),
            used: AtomicU64::new(0),
        }))
    }

    /// Request cancellation; the pass aborts at its next block boundary.
    pub fn cancel(&self) {
        self.0.cancelled.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.cancelled.load(Ordering::Acquire)
    }

    /// Blocks charged against this token so far.
    pub fn blocks_used(&self) -> u64 {
        self.0.used.load(Ordering::Acquire)
    }

    /// Charge one block credit. Called by the model before each block.
    ///
    /// # Errors
    ///
    /// [`ForwardCancelled`] when the token was cancelled or the budget is
    /// already spent; the block is then *not* charged.
    pub fn charge_block(&self) -> Result<(), ForwardCancelled> {
        let used = self.0.used.load(Ordering::Acquire);
        if self.is_cancelled() {
            return Err(ForwardCancelled {
                cause: CancelCause::Cancelled,
                blocks_completed: used,
            });
        }
        let remaining = self.0.remaining.load(Ordering::Acquire);
        if remaining == 0 {
            return Err(ForwardCancelled {
                cause: CancelCause::BudgetExhausted,
                blocks_completed: used,
            });
        }
        if remaining != u64::MAX {
            self.0.remaining.fetch_sub(1, Ordering::AcqRel);
        }
        self.0.used.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_token_never_trips_on_budget() {
        let t = CancelToken::new();
        for _ in 0..1000 {
            t.charge_block().unwrap();
        }
        assert_eq!(t.blocks_used(), 1000);
    }

    #[test]
    fn budget_exhausts_exactly() {
        let t = CancelToken::with_block_budget(3);
        for _ in 0..3 {
            t.charge_block().unwrap();
        }
        let e = t.charge_block().unwrap_err();
        assert_eq!(e.cause, CancelCause::BudgetExhausted);
        assert_eq!(e.blocks_completed, 3);
        // Still exhausted on subsequent calls, blocks_used unchanged.
        assert!(t.charge_block().is_err());
        assert_eq!(t.blocks_used(), 3);
    }

    #[test]
    fn cancel_wins_over_budget_and_is_shared_by_clones() {
        let t = CancelToken::with_block_budget(10);
        t.charge_block().unwrap();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        let e = t.charge_block().unwrap_err();
        assert_eq!(e.cause, CancelCause::Cancelled);
        assert_eq!(e.blocks_completed, 1);
    }

    #[test]
    fn zero_budget_rejects_first_block() {
        let t = CancelToken::with_block_budget(0);
        let e = t.charge_block().unwrap_err();
        assert_eq!(e.cause, CancelCause::BudgetExhausted);
        assert_eq!(e.blocks_completed, 0);
    }

    #[test]
    fn error_display_names_the_cause() {
        let t = CancelToken::with_block_budget(0);
        let e = t.charge_block().unwrap_err();
        assert!(e.to_string().contains("budget"));
    }
}
