//! Zero-dependency data parallelism on scoped threads.
//!
//! The workspace builds offline, so there is no rayon; this crate provides
//! the small slice-parallel surface the kernels need, built entirely on
//! [`std::thread::scope`]:
//!
//! - [`parallel_for`] — run a closure over unit indices `0..units`;
//! - [`parallel_map_slices`] — map fixed-size chunks of a slice to values,
//!   returned in chunk order;
//! - [`parallel_for_slices_mut`] / [`parallel_map_slices_mut`] — hand out
//!   disjoint mutable chunks (safe: the slice is carved with
//!   `split_at_mut`, no aliasing is possible);
//! - [`parallel_for_parts_mut`] — the same with caller-chosen part lengths
//!   (the GEMM uses this to align parts to `batch × row-block` units).
//!
//! # Determinism contract
//!
//! Every function in this crate partitions work by *fixed* chunk
//! boundaries that depend only on the input length and the caller's chunk
//! size — never on the thread count. Each chunk is computed independently
//! and lands in its own disjoint output region, so results (and the
//! [`tasks_executed`] counter) are **bitwise identical for any thread
//! count**, including fully serial execution. Callers must follow the same
//! rule: never branch on [`threads`] when choosing chunk sizes.
//!
//! # Pool sizing
//!
//! The process-global pool size comes from the `QT_THREADS` environment
//! variable, read once (0 or unset → [`std::thread::available_parallelism`]).
//! Tests and benchmarks override it for the current thread with
//! [`with_threads`] / [`serial`].

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Process-global pool size, parsed from `QT_THREADS` exactly once.
static CONFIGURED: OnceLock<usize> = OnceLock::new();

/// Total chunk tasks dispatched through this crate (monotonic; feeds the
/// `par.chunk_tasks` metric). Deterministic across thread counts because
/// chunk boundaries are.
static TASKS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The `QT_THREADS` value this process was configured with, if set.
pub fn qt_threads_env() -> Option<String> {
    std::env::var("QT_THREADS").ok()
}

fn configured() -> usize {
    *CONFIGURED.get_or_init(|| {
        match qt_threads_env().and_then(|s| s.trim().parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    })
}

/// Effective pool size for work issued from the current thread: the
/// [`with_threads`] override if one is active, else the process-global
/// `QT_THREADS` configuration. Always ≥ 1.
pub fn threads() -> usize {
    OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(configured)
        .max(1)
}

/// Run `f` with the pool size pinned to `n` on the current thread.
///
/// Scoped and re-entrant: the previous override (if any) is restored on
/// exit, including on panic. This is how the determinism tests sweep
/// thread counts within one process.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            OVERRIDE.with(|o| o.set(prev));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(n.max(1)))));
    f()
}

/// Escape hatch: run `f` with all qt-par work on the calling thread.
pub fn serial<R>(f: impl FnOnce() -> R) -> R {
    with_threads(1, f)
}

/// Chunk tasks dispatched so far, process-wide. Same value for the same
/// workload at any thread count.
pub fn tasks_executed() -> u64 {
    TASKS.load(Ordering::Relaxed)
}

/// Run `f(u)` for every `u in 0..units`, distributing contiguous index
/// ranges over the pool. `f` must only touch state disjoint per unit.
pub fn parallel_for(units: usize, f: impl Fn(usize) + Sync) {
    if units == 0 {
        return;
    }
    TASKS.fetch_add(units as u64, Ordering::Relaxed);
    let t = threads().min(units);
    if t <= 1 {
        for u in 0..units {
            f(u);
        }
        return;
    }
    std::thread::scope(|s| {
        for (lo, hi) in ranges(units, t) {
            let f = &f;
            s.spawn(move || {
                for u in lo..hi {
                    f(u);
                }
            });
        }
    });
}

/// Map chunks of `chunk_len` elements of `data` through `f(chunk_index,
/// element_offset, chunk)`, returning the results in chunk order. The last
/// chunk may be short; `chunk_len` is clamped to ≥ 1.
pub fn parallel_map_slices<T: Sync, R: Send>(
    data: &[T],
    chunk_len: usize,
    f: impl Fn(usize, usize, &[T]) -> R + Sync,
) -> Vec<R> {
    let chunk_len = chunk_len.max(1);
    let nchunks = data.len().div_ceil(chunk_len);
    if nchunks == 0 {
        return Vec::new();
    }
    TASKS.fetch_add(nchunks as u64, Ordering::Relaxed);
    let t = threads().min(nchunks);
    let run = |c: usize| {
        let off = c * chunk_len;
        let end = (off + chunk_len).min(data.len());
        f(c, off, &data[off..end])
    };
    if t <= 1 {
        return (0..nchunks).map(run).collect();
    }
    let mut out: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = ranges(nchunks, t)
            .into_iter()
            .map(|(lo, hi)| {
                let run = &run;
                s.spawn(move || (lo..hi).map(run).collect::<Vec<R>>())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });
    let mut all = Vec::with_capacity(nchunks);
    for part in out.drain(..) {
        all.extend(part);
    }
    all
}

/// Run `f(chunk_index, element_offset, chunk)` over disjoint mutable
/// chunks of `chunk_len` elements.
pub fn parallel_for_slices_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, usize, &mut [T]) + Sync,
) {
    let _: Vec<()> = parallel_map_slices_mut(data, chunk_len, |c, off, ch| f(c, off, ch));
}

/// [`parallel_for_slices_mut`] that also collects one `R` per chunk, in
/// chunk order — how per-chunk health-counter-style partials come back.
pub fn parallel_map_slices_mut<T: Send, R: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, usize, &mut [T]) -> R + Sync,
) -> Vec<R> {
    let chunk_len = chunk_len.max(1);
    let n = data.len();
    let lens: Vec<usize> = (0..n.div_ceil(chunk_len))
        .map(|c| chunk_len.min(n - c * chunk_len))
        .collect();
    parallel_for_parts_mut(data, &lens, f)
}

/// Run `f(part_index, element_offset, part)` over disjoint mutable parts
/// whose lengths the caller supplies (`part_lens` must sum to
/// `data.len()`). Parts are assigned to threads in contiguous runs; the
/// returned values are in part order regardless of thread count.
///
/// # Panics
///
/// Panics if `part_lens` does not sum to `data.len()`.
pub fn parallel_for_parts_mut<T: Send, R: Send>(
    data: &mut [T],
    part_lens: &[usize],
    f: impl Fn(usize, usize, &mut [T]) -> R + Sync,
) -> Vec<R> {
    let total: usize = part_lens.iter().sum();
    assert_eq!(total, data.len(), "part lengths must cover the slice");
    let nparts = part_lens.len();
    if nparts == 0 {
        return Vec::new();
    }
    TASKS.fetch_add(nparts as u64, Ordering::Relaxed);
    let t = threads().min(nparts);
    if t <= 1 {
        let mut out = Vec::with_capacity(nparts);
        let mut rest = data;
        let mut off = 0;
        for (p, &len) in part_lens.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(len);
            out.push(f(p, off, head));
            off += len;
            rest = tail;
        }
        return out;
    }
    let mut out: Vec<Vec<R>> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(t);
        let mut rest = data;
        let mut off = 0;
        let mut part = 0;
        for (lo, hi) in ranges(nparts, t) {
            let span: usize = part_lens[lo..hi].iter().sum();
            let (head, tail) = rest.split_at_mut(span);
            rest = tail;
            let base_off = off;
            off += span;
            debug_assert_eq!(part, lo);
            part = hi;
            let f = &f;
            handles.push(s.spawn(move || {
                let mut local = Vec::with_capacity(hi - lo);
                let mut rest = head;
                let mut off = base_off;
                for (p, &len) in part_lens.iter().enumerate().take(hi).skip(lo) {
                    let (chunk, tail) = rest.split_at_mut(len);
                    local.push(f(p, off, chunk));
                    off += len;
                    rest = tail;
                }
                local
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });
    let mut all = Vec::with_capacity(nparts);
    for p in out.drain(..) {
        all.extend(p);
    }
    all
}

/// Split `0..n` into `t` contiguous ranges whose sizes differ by ≤ 1.
fn ranges(n: usize, t: usize) -> Vec<(usize, usize)> {
    let base = n / t;
    let extra = n % t;
    let mut out = Vec::with_capacity(t);
    let mut lo = 0;
    for i in 0..t {
        let len = base + usize::from(i < extra);
        if len == 0 {
            break;
        }
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_exactly() {
        for n in [0usize, 1, 2, 5, 7, 16, 100] {
            for t in 1..=9 {
                let r = ranges(n, t);
                let mut expect = 0;
                for &(lo, hi) in &r {
                    assert_eq!(lo, expect);
                    assert!(hi > lo);
                    expect = hi;
                }
                assert_eq!(expect, n.min(expect.max(n)));
                assert_eq!(r.iter().map(|(l, h)| h - l).sum::<usize>(), n);
            }
        }
    }

    #[test]
    fn parallel_for_touches_every_unit_once() {
        use std::sync::atomic::AtomicU32;
        let hits: Vec<AtomicU32> = (0..37).map(|_| AtomicU32::new(0)).collect();
        for t in [1, 2, 4, 8] {
            with_threads(t, || {
                parallel_for(hits.len(), |u| {
                    hits[u].fetch_add(1, Ordering::Relaxed);
                });
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 4);
        }
    }

    #[test]
    fn map_slices_in_chunk_order_for_any_thread_count() {
        let data: Vec<u32> = (0..103).collect();
        let expect: Vec<u64> = parallel_map_slices(&data, 10, |c, off, ch| {
            c as u64 * 1000 + off as u64 + ch.iter().map(|&x| x as u64).sum::<u64>()
        });
        for t in [1, 2, 3, 8] {
            let got = with_threads(t, || {
                parallel_map_slices(&data, 10, |c, off, ch| {
                    c as u64 * 1000 + off as u64 + ch.iter().map(|&x| x as u64).sum::<u64>()
                })
            });
            assert_eq!(got, expect, "threads={t}");
        }
    }

    #[test]
    fn mut_chunks_are_disjoint_and_ordered() {
        for t in [1, 2, 5] {
            let mut data = vec![0u32; 23];
            with_threads(t, || {
                parallel_for_slices_mut(&mut data, 4, |c, off, ch| {
                    for (i, x) in ch.iter_mut().enumerate() {
                        *x = (c * 100 + off + i) as u32;
                    }
                });
            });
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(x, ((i / 4) * 100 + i) as u32, "threads={t}");
            }
        }
    }

    #[test]
    fn parts_respect_custom_lengths() {
        let mut data = vec![0u8; 10];
        let sums = parallel_for_parts_mut(&mut data, &[3, 1, 6], |p, off, part| {
            for x in part.iter_mut() {
                *x = p as u8 + 1;
            }
            off
        });
        assert_eq!(sums, vec![0, 3, 4]);
        assert_eq!(data, vec![1, 1, 1, 2, 3, 3, 3, 3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "cover the slice")]
    fn parts_must_cover() {
        let mut d = vec![0u8; 4];
        let _ = parallel_for_parts_mut(&mut d, &[1, 2], |_, _, _| ());
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let outer = threads();
        with_threads(3, || {
            assert_eq!(threads(), 3);
            with_threads(1, || assert_eq!(threads(), 1));
            assert_eq!(threads(), 3);
        });
        assert_eq!(threads(), outer);
    }

    #[test]
    fn task_counter_is_thread_count_invariant() {
        let data = vec![1.0f32; 100];
        let before = tasks_executed();
        with_threads(1, || {
            let _ = parallel_map_slices(&data, 16, |_, _, c| c.len());
        });
        let serial_tasks = tasks_executed() - before;
        let mid = tasks_executed();
        with_threads(7, || {
            let _ = parallel_map_slices(&data, 16, |_, _, c| c.len());
        });
        assert_eq!(tasks_executed() - mid, serial_tasks);
        assert_eq!(serial_tasks, 7); // ceil(100 / 16)
    }
}
