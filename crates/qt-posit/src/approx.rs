//! Bitwise approximate posit operations (paper §3.3 and §4.1).
//!
//! Posits admit startlingly cheap approximations of transcendental
//! functions:
//!
//! - **Sigmoid** (es = 0 only): invert the sign bit and shift the code right
//!   by two, shifting in zeros.
//! - **Reciprocal** (any es): XOR the code with the negated sign mask, i.e.
//!   invert every bit except the sign — pure NOT gates in hardware. The
//!   result is a piecewise-linear function whose segments connect the points
//!   `(2^n, 2^-n)` (Figure 7), up to one final-position code.
//! - **Exponential**: composed from the two, via
//!   `e^x = 1/S(-x) - 1`, plus the paper's two corrections: outputs are
//!   truncated to zero below a threshold `θ` (so attention masks still
//!   work), and the curve is shifted by `ε` to hug `e^x` (Equation 3).
//!
//! All functions here operate on posit values and return posit values; the
//! `*_f64` variants run the same bit-level pipeline on `f64` endpoints for
//! plotting and reference use.

use crate::{P8E0, P8E1, Posit};

/// Fast sigmoid on an es = 0 posit: `(bits XOR signmask) >> 2` (§3.3).
///
/// Exact at `x = 0` (gives 0.5) and asymptotically correct at `±maxpos`.
pub fn fast_sigmoid_es0<const N: u32>(x: Posit<N, 0>) -> Posit<N, 0> {
    if x.is_nar() {
        return Posit::NAR;
    }
    let sign_mask = (1u32 << (N - 1)) as u16;
    Posit::from_bits((x.bits() ^ sign_mask) >> 2)
}

/// Fast sigmoid for an arbitrary-es posit.
///
/// The bit trick is only valid for es = 0, so (as §3.3 describes) the value
/// is first converted to the es = 0 format of the same width, the trick is
/// applied, and the result converted back.
pub fn fast_sigmoid<const N: u32, const ES: u32>(x: Posit<N, ES>) -> Posit<N, ES> {
    if x.is_nar() {
        return Posit::NAR;
    }
    let x0 = Posit::<N, 0>::from_f64(x.to_f64());
    let s0 = fast_sigmoid_es0(x0);
    Posit::<N, ES>::from_f64(s0.to_f64())
}

/// Fast reciprocal: two's complement of all non-sign bits (NOT via XOR with
/// the negated sign mask, plus the increment already present in the posit
/// negation datapath), valid for any es (§3.3).
///
/// On the posit grid this is *exactly* the monotone piecewise-linear
/// function whose segments connect `(2^n, 2^-n)` to `(2^(n+1), 2^-(n+1))`
/// (Figure 7, left): exact at powers of two, chordal in between.
/// Zero maps to NaR; NaR maps to NaR.
pub fn fast_reciprocal<const N: u32, const ES: u32>(x: Posit<N, ES>) -> Posit<N, ES> {
    if x.is_nar() {
        return Posit::NAR;
    }
    let invert_mask = ((1u32 << (N - 1)) - 1) as u16;
    Posit::from_bits((x.bits() ^ invert_mask).wrapping_add(1))
}

/// The literal NOT-gates-only reciprocal (XOR with the negated sign mask,
/// no increment), as stated in §3.3's prose. It tracks [`fast_reciprocal`]
/// exactly one code position lower; zero maps to `maxpos`.
pub fn fast_reciprocal_not_only<const N: u32, const ES: u32>(x: Posit<N, ES>) -> Posit<N, ES> {
    if x.is_nar() {
        return Posit::NAR;
    }
    let invert_mask = ((1u32 << (N - 1)) - 1) as u16;
    Posit::from_bits(x.bits() ^ invert_mask)
}

/// The ideal piecewise-linear reciprocal that [`fast_reciprocal`]
/// approximates: segments connecting `(2^n, 2^-n)` to `(2^(n+1), 2^-(n+1))`
/// (Figure 7, left). Reference function for plots and for the softmax
/// backward derivation.
pub fn pwl_reciprocal(x: f64) -> f64 {
    if x == 0.0 {
        return f64::INFINITY;
    }
    let sign = x.signum();
    let a = x.abs();
    let n = libm::floor(libm::log2(a)) as i32;
    let x0 = libm::ldexp(1.0, n);
    let y0 = libm::ldexp(1.0, -n);
    let slope = pwl_reciprocal_derivative(a);
    sign * (y0 + slope * (a - x0))
}

/// Derivative of the piecewise-linear posit reciprocal (Equation 5):
/// `f'(t) = -2^(-2*floor(log2 t) - 1)`.
///
/// Used by the custom softmax backward pass (§5.2).
pub fn pwl_reciprocal_derivative(t: f64) -> f64 {
    let n = libm::floor(libm::log2(t.abs())) as i32;
    -libm::ldexp(1.0, -2 * n - 1)
}

/// Configuration of the approximate posit exponential (Equation 3):
///
/// ```text
/// f(x) = 1/S(-x) + ε   if x ≥ θ
///      = 0             if x < θ
/// ```
///
/// where `S` is [`fast_sigmoid`] and `1/·` is [`fast_reciprocal`]. `ε` is
/// negative and close to `-1.125`; `ε = -1` recovers the raw identity
/// `e^x = 1/S(-x) - 1`, which fails to converge to 0 for very negative
/// inputs and leaks attention onto masked tokens (§4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpApprox {
    /// Threshold below which outputs are truncated to zero.
    pub theta: f64,
    /// Constant added to `1/S(-x)` (negative; `-1` = unshifted).
    pub epsilon: f64,
}

impl ExpApprox {
    /// The paper's best configuration (Table 3): `θ = -4`, `ε = -1.125`.
    pub const PAPER_BEST: Self = Self {
        theta: -4.0,
        epsilon: -1.125,
    };

    /// Unshifted, thresholded variant: subtract exactly 1.
    pub fn thresholded(theta: f64) -> Self {
        Self {
            theta,
            epsilon: -1.0,
        }
    }

    /// Raw identity with no threshold and no shift (the orange curve in
    /// Figure 7 that fails to converge to zero).
    pub fn raw() -> Self {
        Self {
            theta: f64::NEG_INFINITY,
            epsilon: -1.0,
        }
    }

    /// Derive `ε` from `θ` the way §4.1 describes: subtract the value the
    /// *approximated* exponential takes at the threshold, i.e.
    /// `ε = -(1/S(-θ))` evaluated with the approximate posit pipeline.
    pub fn shifted(theta: f64) -> Self {
        let x0 = P8E0::from_f64(-theta);
        let r0 = fast_reciprocal(fast_sigmoid_es0(x0));
        Self {
            theta,
            epsilon: -r0.to_f64(),
        }
    }

    /// Evaluate the approximate exponential on a `Posit<8, 1>` value.
    ///
    /// Only meaningful for non-positive inputs (numerically-stable softmax
    /// subtracts the max first); positive inputs are evaluated as-is and
    /// increasingly overshoot.
    pub fn eval_p8(self, x: P8E1) -> P8E1 {
        if x.is_nar() {
            return P8E1::NAR;
        }
        if x.to_f64() < self.theta {
            return P8E1::ZERO;
        }
        let x0 = P8E0::from_f64(x.negated().to_f64());
        let r0 = fast_reciprocal(fast_sigmoid_es0(x0));
        // The shift is folded into the existing subtraction (§4.1): no
        // extra hardware. The whole pipeline — sigmoid trick, reciprocal
        // trick, subtraction — runs in the es = 0 domain and re-encodes
        // to es = 1 once at the end.
        let shifted = r0 + P8E0::from_f64(self.epsilon);
        P8E1::from_f64(shifted.to_f64())
    }

    /// Evaluate the same bit-level pipeline with `f64` endpoints (for
    /// plotting Figure 7 and for tensor-level reference code).
    pub fn eval_f64(self, x: f64) -> f64 {
        self.eval_p8(P8E1::from_f64(x)).to_f64()
    }
}

impl Default for ExpApprox {
    fn default() -> Self {
        Self::PAPER_BEST
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_es0_fixed_points() {
        assert_eq!(fast_sigmoid_es0(P8E0::ZERO).to_f64(), 0.5);
        // Saturated positive input → just below 1.
        let s = fast_sigmoid_es0(P8E0::from_f64(64.0)).to_f64();
        assert!(s > 0.9 && s < 1.0, "{s}");
        // Saturated negative input → 0.
        assert_eq!(fast_sigmoid_es0(P8E0::from_f64(-64.0)).to_f64(), 0.0);
        assert!(fast_sigmoid_es0(P8E0::NAR).is_nar());
    }

    #[test]
    fn sigmoid_accuracy_bound() {
        // Fast sigmoid tracks the true sigmoid to within ~0.08 absolute
        // over the useful range (Cococcioni et al.).
        for i in -60..=60 {
            let x = i as f64 / 10.0;
            let approx = fast_sigmoid(P8E1::from_f64(x)).to_f64();
            let exact = 1.0 / (1.0 + libm::exp(-x));
            assert!(
                (approx - exact).abs() < 0.09,
                "x={x} approx={approx} exact={exact}"
            );
        }
    }

    #[test]
    fn sigmoid_monotone() {
        let mut prev = -1.0;
        for i in -100..=100 {
            let x = i as f64 / 8.0;
            let s = fast_sigmoid(P8E1::from_f64(x)).to_f64();
            assert!(s >= prev, "x={x}");
            prev = s;
        }
    }

    #[test]
    fn reciprocal_near_powers_of_two() {
        // Within one code of exact at powers of two, chord in between.
        for n in -4..=4i32 {
            let x = libm::ldexp(1.0, n);
            let r = fast_reciprocal(P8E1::from_f64(x)).to_f64();
            let exact = libm::ldexp(1.0, -n);
            let rel = (r - exact).abs() / exact;
            assert!(rel < 0.05, "x={x} r={r} exact={exact}");
        }
    }

    #[test]
    fn reciprocal_relative_error_bound() {
        for p in P8E1::all_finite() {
            if p.is_zero() {
                continue;
            }
            let x = p.to_f64();
            let r = fast_reciprocal(p).to_f64();
            let exact = 1.0 / x;
            let rel = ((r - exact) / exact).abs();
            // PWL chord error peaks ~12.5% mid-segment plus rounding.
            assert!(rel < 0.2, "x={x} r={r} exact={exact} rel={rel}");
        }
    }

    #[test]
    fn reciprocal_special_cases() {
        assert!(fast_reciprocal(P8E1::NAR).is_nar());
        // 1/0 falls out of the bit pattern as NaR.
        assert!(fast_reciprocal(P8E1::ZERO).is_nar());
        // The NOT-only variant saturates 1/0 to maxpos instead.
        assert_eq!(
            fast_reciprocal_not_only(P8E1::ZERO).to_f64(),
            P8E1::maxpos()
        );
        // Sign is preserved, and powers of two are exact.
        assert_eq!(fast_reciprocal(P8E1::from_f64(-2.0)).to_f64(), -0.5);
        // NOT-only tracks one code lower on positives.
        let x = P8E1::from_f64(3.0);
        assert_eq!(
            fast_reciprocal_not_only(x).bits() + 1,
            fast_reciprocal(x).bits()
        );
    }

    #[test]
    fn reciprocal_is_exact_pwl_on_grid() {
        // fast_reciprocal == quantized PWL for every finite non-zero posit.
        for p in P8E1::all_finite() {
            if p.is_zero() {
                continue;
            }
            let approx = fast_reciprocal(p).to_f64();
            let pwl = P8E1::quantize(pwl_reciprocal(p.to_f64()));
            assert_eq!(approx, pwl, "x={}", p.to_f64());
        }
    }

    #[test]
    fn pwl_reciprocal_matches_breakpoints() {
        for n in -6..=6i32 {
            let x = libm::ldexp(1.0, n);
            assert_eq!(pwl_reciprocal(x), libm::ldexp(1.0, -n));
        }
        // Chord value at x = 3 between (2, 0.5) and (4, 0.25).
        assert_eq!(pwl_reciprocal(3.0), 0.375);
        assert_eq!(pwl_reciprocal_derivative(3.0), -0.125);
    }

    #[test]
    fn exp_raw_fails_to_converge() {
        // The uncorrected approximation plateaus above zero for very
        // negative inputs — the attention-mask leak of §4.1.
        let raw = ExpApprox::raw();
        let tail = raw.eval_f64(-50.0);
        assert!(tail > 0.02, "raw tail should leak, got {tail}");
        // And it never reaches zero anywhere left of the knee.
        for i in 5..80 {
            let v = raw.eval_f64(-(i as f64));
            assert!(v > 0.0, "x={} v={v}", -(i as f64));
        }
    }

    #[test]
    fn exp_threshold_fixes_tail() {
        let cfg = ExpApprox::PAPER_BEST;
        assert_eq!(cfg.eval_f64(-50.0), 0.0);
        // -4.3 quantizes below the threshold; -4.01 quantizes *onto* -4.0
        // (the comparison happens after input quantization, as in hardware).
        assert_eq!(cfg.eval_f64(-4.3), 0.0);
        assert!(cfg.eval_f64(-3.9) >= 0.0);
    }

    #[test]
    fn exp_tracks_true_exponential() {
        // Between θ and 0 the shifted curve hugs e^x (Figure 7, green/red).
        let cfg = ExpApprox::PAPER_BEST;
        for i in 0..=40 {
            let x = -4.0 + i as f64 / 10.0;
            let approx = cfg.eval_f64(x);
            let exact = libm::exp(x);
            assert!(
                (approx - exact).abs() < 0.22,
                "x={x} approx={approx} exact={exact}"
            );
        }
    }

    #[test]
    fn shifted_epsilon_derivation() {
        // ε derived at the threshold makes f(θ⁺) small.
        for theta in [-5.0, -4.0, -3.0, -2.0] {
            let cfg = ExpApprox::shifted(theta);
            assert!(cfg.epsilon < -1.0 && cfg.epsilon > -1.5, "{cfg:?}");
            let at_theta = cfg.eval_f64(theta + 1e-9);
            assert!(at_theta.abs() < 0.15, "theta={theta} f={at_theta}");
        }
    }

    #[test]
    fn exp_monotone_above_threshold() {
        let cfg = ExpApprox::PAPER_BEST;
        let mut prev = -1.0;
        for i in 0..=80 {
            let x = -4.0 + i as f64 * 0.05;
            let v = cfg.eval_f64(x);
            assert!(v >= prev - 1e-12, "x={x} v={v} prev={prev}");
            prev = v;
        }
    }
}
