//! Fused posit operations with deferred rounding (paper §3.2).
//!
//! Fusing a chain of multiply-accumulates means rounding only once, at the
//! end, instead of re-encoding every intermediate. For 8-bit posits the
//! exact sum of products fits in a fixed-point accumulator (the *quire*);
//! this module provides a bit-exact [`Quire`] for `N <= 8` and a
//! high-precision `f64` fallback ([`FusedDot`]) for wider formats —
//! matching the paper's accelerators, which accumulate in BFloat16/FP32.

use crate::Posit;

/// Exact fixed-point accumulator for products of `Posit<N, ES>` values,
/// `N <= 8`.
///
/// Every product of two posits is an integer multiple of
/// `2^(-2·maxpos_exp - 2·fmax)`; the quire accumulates those multiples in an
/// `i128`, which leaves > 20 bits of headroom even for `Posit<8, 2>` with
/// thousands of terms.
///
/// # Example
///
/// ```
/// use qt_posit::{P8E1, Quire};
///
/// let a: Vec<P8E1> = [1.5, 2.0, -0.25].iter().map(|&x| P8E1::from_f64(x)).collect();
/// let b: Vec<P8E1> = [2.0, 0.5, 4.0].iter().map(|&x| P8E1::from_f64(x)).collect();
/// let mut q = Quire::<8, 1>::new();
/// for (&x, &y) in a.iter().zip(&b) {
///     q.add_product(x, y);
/// }
/// assert_eq!(q.to_f64(), 3.0); // 3.0 + 1.0 - 1.0, exactly
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quire<const N: u32, const ES: u32> {
    acc: i128,
    nar: bool,
}

impl<const N: u32, const ES: u32> Quire<N, ES> {
    /// Binary exponent of the accumulator's least significant bit.
    /// All products are exact multiples of `2^LSB_EXP`.
    pub const LSB_EXP: i32 = -2 * Posit::<N, ES>::MAXPOS_EXP - 2 * Self::FMAX as i32;
    const FMAX: u32 = N - 3 - ES; // max fraction bits (requires N >= 3 + ES)

    /// Create an empty (zero) quire.
    ///
    /// # Panics
    ///
    /// Panics if `N > 8` — wider formats overflow the `i128` accumulator;
    /// use [`FusedDot`] instead.
    pub fn new() -> Self {
        assert!(N <= 8, "exact quire supports N <= 8; use FusedDot");
        assert!(N >= 3 + ES, "degenerate posit format");
        Self { acc: 0, nar: false }
    }

    /// Accumulate the exact product `a * b`.
    pub fn add_product(&mut self, a: Posit<N, ES>, b: Posit<N, ES>) {
        if a.is_nar() || b.is_nar() {
            self.nar = true;
            return;
        }
        if a.is_zero() || b.is_zero() {
            return;
        }
        self.acc += exact_product_fixed(a, b, Self::LSB_EXP);
    }

    /// Accumulate a single posit value exactly.
    pub fn add(&mut self, p: Posit<N, ES>) {
        self.add_product(p, Posit::ONE);
    }

    /// Subtract the exact product `a * b`.
    pub fn sub_product(&mut self, a: Posit<N, ES>, b: Posit<N, ES>) {
        self.add_product(a.negated(), b);
    }

    /// `true` if any NaR was absorbed.
    pub fn is_nar(&self) -> bool {
        self.nar
    }

    /// The exact accumulated value as `f64`.
    ///
    /// This may itself round (f64 has 53 significand bits) but the
    /// accumulation up to this point was exact.
    pub fn to_f64(&self) -> f64 {
        if self.nar {
            return f64::NAN;
        }
        // i128 → f64 conversion is correctly rounded.
        libm::ldexp(self.acc as f64, Self::LSB_EXP)
    }

    /// Round once to the posit format — the fused operation's single
    /// rounding step.
    pub fn to_posit(&self) -> Posit<N, ES> {
        if self.nar {
            return Posit::NAR;
        }
        Posit::from_f64(self.to_f64())
    }
}

impl<const N: u32, const ES: u32> Default for Quire<N, ES> {
    fn default() -> Self {
        Self::new()
    }
}

/// Exact fixed-point representation of `a * b` with LSB `2^lsb_exp`.
fn exact_product_fixed<const N: u32, const ES: u32>(
    a: Posit<N, ES>,
    b: Posit<N, ES>,
    lsb_exp: i32,
) -> i128 {
    let (sa, ia, ea) = to_int_scale(a);
    let (sb, ib, eb) = to_int_scale(b);
    let mag = (ia as i128) * (ib as i128);
    let shift = ea + eb - lsb_exp;
    debug_assert!(shift >= 0, "product below quire LSB");
    let v = mag << shift;
    if sa != sb {
        -v
    } else {
        v
    }
}

/// Decompose a non-zero posit into `(sign, integer_significand, exponent)`
/// with value `±integer * 2^exponent`.
fn to_int_scale<const N: u32, const ES: u32>(p: Posit<N, ES>) -> (bool, u64, i32) {
    let v = p.to_f64();
    let neg = v < 0.0;
    let a = v.abs();
    let bits = a.to_bits();
    let be = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let frac52 = bits & ((1u64 << 52) - 1);
    // Posit significands have at most FMAX bits; shift the f64 mantissa
    // down to the minimal integer representation.
    let tz = if frac52 == 0 { 52 } else { frac52.trailing_zeros().min(52) };
    let int = ((1u64 << 52) | frac52) >> tz;
    (neg, int, be - (52 - tz as i32))
}

/// High-precision fused dot product for arbitrary posit widths.
///
/// Uses the exact [`Quire`] when `N <= 8`; otherwise accumulates in `f64`
/// (deferred rounding, like a BF16/FP32 accumulator that is much wider than
/// the operand format).
#[derive(Debug, Clone, Copy, Default)]
pub struct FusedDot;

impl FusedDot {
    /// Compute `sum_i a[i] * b[i]` with a single final rounding.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot<const N: u32, const ES: u32>(
        a: &[Posit<N, ES>],
        b: &[Posit<N, ES>],
    ) -> Posit<N, ES> {
        assert_eq!(a.len(), b.len(), "fused dot length mismatch");
        if N <= 8 {
            let mut q = Quire::<N, ES>::new();
            for (&x, &y) in a.iter().zip(b) {
                q.add_product(x, y);
            }
            q.to_posit()
        } else {
            let mut acc = 0.0f64;
            let mut nar = false;
            for (&x, &y) in a.iter().zip(b) {
                if x.is_nar() || y.is_nar() {
                    nar = true;
                }
                acc += x.to_f64() * y.to_f64();
            }
            if nar {
                Posit::NAR
            } else {
                Posit::from_f64(acc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{P8E1, P8E2};

    #[test]
    fn quire_exact_cancellation() {
        // (maxpos * minpos) + 1 - 1 == 1 exactly; a rounding accumulator at
        // 8-bit precision would lose the tiny term.
        let mut q = Quire::<8, 1>::new();
        q.add_product(P8E1::from_f64(4096.0), P8E1::from_f64(2.0_f64.powi(-12)));
        q.add(P8E1::ONE);
        q.add(P8E1::from_f64(-1.0));
        assert_eq!(q.to_f64(), 1.0);
    }

    #[test]
    fn quire_vs_sequential_rounding() {
        // Accumulating 0.0625 sixteen times: fused gives exactly 1.0;
        // sequential posit adds stall once the running sum's ULP exceeds
        // the addend.
        let step = P8E1::from_f64(0.045);
        let mut q = Quire::<8, 1>::new();
        let mut seq = P8E1::ZERO;
        for _ in 0..64 {
            q.add(step);
            seq = seq + step;
        }
        let fused = q.to_posit().to_f64();
        let expect = 64.0 * step.to_f64();
        assert!((fused - expect).abs() / expect < 0.05, "fused {fused}");
        // The sequential result is biased low.
        assert!(seq.to_f64() <= fused);
    }

    #[test]
    fn quire_extreme_products_p8e2() {
        let mut q = Quire::<8, 2>::new();
        let tiny = P8E2::from_f64(libm::ldexp(1.0, -24));
        q.add_product(tiny, tiny); // 2^-48, far below the format
        q.add(P8E2::ONE);
        let v = q.to_f64();
        assert!(v > 1.0 && v < 1.0 + 1e-13);
        assert_eq!(q.to_posit().to_f64(), 1.0); // rounds once at the end
    }

    #[test]
    fn quire_nar_is_sticky() {
        let mut q = Quire::<8, 1>::new();
        q.add(P8E1::NAR);
        q.add(P8E1::ONE);
        assert!(q.is_nar());
        assert!(q.to_posit().is_nar());
    }

    #[test]
    fn fused_dot_matches_f64_reference() {
        let xs: Vec<P8E1> = (0..32).map(|i| P8E1::from_f64(0.1 * i as f64 - 1.5)).collect();
        let ys: Vec<P8E1> = (0..32).map(|i| P8E1::from_f64(0.07 * i as f64 - 1.0)).collect();
        let exact: f64 = xs.iter().zip(&ys).map(|(a, b)| a.to_f64() * b.to_f64()).sum();
        let fused = FusedDot::dot(&xs, &ys).to_f64();
        assert_eq!(fused, P8E1::quantize(exact));
    }

    #[test]
    fn fused_dot_wide_format_fallback() {
        use crate::P16E1;
        let xs: Vec<P16E1> = (0..8).map(|i| P16E1::from_f64(1.0 + i as f64)).collect();
        let ys: Vec<P16E1> = (0..8).map(|_| P16E1::ONE).collect();
        assert_eq!(FusedDot::dot(&xs, &ys).to_f64(), 36.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fused_dot_length_mismatch_panics() {
        let _ = FusedDot::dot::<8, 1>(&[P8E1::ONE], &[]);
    }
}
